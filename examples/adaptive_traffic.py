"""Closing the loop: the control plane re-learns what the network carries.

Six filter chains stream west→east while their *realized* selectivity
drifts from 0.1 to 0.9 — the estimates the optimizer priced go stale,
and the optimal placement flips from the producer side to the consumer
side.  Three twins ride the identical tuple streams:

* **baseline** — re-optimizes every 5 ticks, but prices the stale
  estimated rates: the filters never move, measured usage climbs.
* **control**  — the controller ingests the data plane's measured link
  rates (EWMA per link), calibrates the circuits' estimates and the
  re-optimizer's cached kernel prices, and the filters migrate east.
* **oracle**   — calibration from the analytic true rates: the ceiling
  a perfect estimator could reach.

The headline is the *recovery*: the fraction of the baseline→oracle
usage gap the measured-rate controller closes (PR-4 acceptance floor:
0.3; typically ≈ 1.0).  A second act runs the chaos scenario with the
reliable transport, showing the retransmit buffer riding out node
failures under the extended conservation balance
``sent == delivered + in_flight + buffered``.

Run:
    python examples/adaptive_traffic.py
"""

from __future__ import annotations

import numpy as np

from repro.runtime import DataPlane, RuntimeConfig
from repro.workloads.scenarios import chaos_scenario, selectivity_drift_scenario

TICKS = 90
EVAL_WINDOW = 25
SEED = 0


def run_mode(mode: str):
    scenario = selectivity_drift_scenario(mode=mode, seed=SEED)
    sim = scenario.simulation
    sim.run(TICKS)
    usage = sim.series.mean_data_usage_over(TICKS - EVAL_WINDOW + 1, TICKS + 1)
    return scenario, usage


def main() -> None:
    print("=== act 1: selectivity drift (estimates go stale) ===\n")
    results = {}
    scenarios = {}
    for mode in ("baseline", "control", "oracle"):
        scenarios[mode], results[mode] = run_mode(mode)

    drift_end = scenarios["baseline"].drift_end
    print(f"{'tick':>5}", end="")
    for mode in ("baseline", "control", "oracle"):
        print(f" {mode:>10}", end="")
    print("   (measured usage)")
    series = {m: s.simulation.series.records for m, s in scenarios.items()}
    for t in range(9, TICKS, 10):
        print(f"{t + 1:>5}", end="")
        for mode in ("baseline", "control", "oracle"):
            print(f" {series[mode][t].data_usage:>10.0f}", end="")
        marker = ""
        if t + 1 <= 15:
            marker = "  <- estimates still true"
        elif t + 1 <= drift_end:
            marker = "  <- selectivity drifting"
        print(marker)

    gap = results["baseline"] - results["oracle"]
    recovery = (results["baseline"] - results["control"]) / gap if gap > 0 else 0.0
    print(f"\nmean usage over final {EVAL_WINDOW} ticks:")
    for mode in ("baseline", "control", "oracle"):
        print(f"  {mode:<9} {results[mode]:>8.0f}")
    print(f"  recovery  {recovery:>8.2f} of the baseline->oracle gap "
          f"(acceptance floor 0.30)")
    ctl = scenarios["control"].controller
    print(f"  controller: {ctl.calibrations} calibration passes; filters moved "
          f"east on measured rates alone\n")

    print("=== act 2: reliable transport across node outages ===\n")
    # No evacuation this time: hosts go dark with services still placed
    # on them, so in-flight tuples *would* be dead-node drops — the
    # retransmit buffer parks them until the host returns instead.
    chaos = chaos_scenario(num_nodes=36, num_circuits=4, seed=3)
    overlay = chaos.overlay
    reliable = DataPlane(
        overlay, RuntimeConfig(seed=7, reliable=True, retransmit_buffer=2048)
    )
    hosts = sorted(
        {c.host_of(s) for c in overlay.circuits.values() for s in c.unpinned_ids()}
        - chaos.pinned_nodes
    )
    outage = hosts[: max(1, len(hosts) // 2)]
    peak_buffered = 0
    for tick in range(80):
        mask = np.ones(overlay.num_nodes, dtype=bool)
        if 20 <= tick < 45:
            mask[outage] = False
        overlay.apply_liveness(mask)
        record = reliable.step()
        peak_buffered = max(peak_buffered, record.buffered)
        acct = reliable.accounting()
        assert acct["balanced"], acct
    acct = reliable.accounting()
    print(f"outage            : nodes {outage} dark for ticks 20-44")
    print(f"redelivered       : {reliable.redelivered} tuples "
          f"(would have been dead-node drops; peak buffer {peak_buffered})")
    print(f"buffer overflow   : {reliable.dropped_overflow} dropped, accounted")
    print(f"conservation      : sent {acct['sent']} = off-wire "
          f"{acct['transport_delivered']} + in flight {acct['in_flight']} "
          f"+ buffered {acct['buffered']}  [balanced]")


if __name__ == "__main__":
    main()
