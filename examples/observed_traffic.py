"""The chaos scenario, fully observed: traces, metrics, phases, events.

Same perfect storm as ``live_traffic.py`` — hotspot, drifting
latencies, node churn, mid-stream migrations — but with the PR-8
observability layer attached: deterministic 5%-sampled tuple tracing
(the same tuples would be traced by the scalar twin), the labeled
metrics registry, the hierarchical phase profiler, and the
controller's structured event log.  Observation is free of side
effects: run it with ``obs=None`` and every TickRecord is identical.

At the end the script reconstructs end-to-end spans from the trace,
prints the slowest simulator/data-plane phases, the control plane's
decision log, and exports the full telemetry bundle
(JSONL traces, Prometheus metrics, per-phase profile) to
``telemetry/``.

Run:
    python examples/observed_traffic.py
"""

from __future__ import annotations

from pathlib import Path

from repro.obs import Observability
from repro.obs.trace import EVENT_NAMES
from repro.workloads.scenarios import chaos_scenario

TICKS = 100
OUT_DIR = Path(__file__).parent / "telemetry"


def main() -> None:
    obs = Observability(
        tracing=True, trace_rate=0.05, metrics=True, profiling=True
    )
    scenario = chaos_scenario(
        num_nodes=40,
        num_circuits=4,
        node_capacity=60.0,
        hotspot_start=8,
        hotspot_duration=30,
        seed=3,
        obs=obs,
        control=True,
    )
    sim = scenario.simulation
    print(
        f"overlay: {scenario.overlay.num_nodes} nodes, "
        f"{len(scenario.overlay.circuits)} circuits, "
        f"tracing {obs.tracer.sample_rate:.0%} of tuples\n"
    )

    for _ in range(TICKS):
        sim.step()
        res = sim.data_plane.trace_completeness()
        assert res["ok"], res["violations"]  # every tick, not just at the end

    # -- spans: the sampled tuples' end-to-end stories -------------------
    tracer = obs.tracer
    spans = tracer.spans()  # seq -> [(tick, event, op, node)] causal
    terminals = [
        events[-1][1] for events in spans.values()
        if events[-1][1] >= tracer.PROCESS
    ]
    print(f"traced {tracer.num_events} events -> {len(spans)} spans "
          f"({len(terminals)} closed, {len(spans) - len(terminals)} still live)")
    outcomes: dict[str, int] = {}
    for code in terminals:
        name = EVENT_NAMES[code]
        outcomes[name] = outcomes.get(name, 0) + 1
    for name, count in sorted(outcomes.items(), key=lambda kv: -kv[1]):
        print(f"  {name:<16} {count:>6}")

    # -- phases: where the ticks went ------------------------------------
    print("\nslowest phases:")
    for path, total, calls in obs.profiler.summary()[:8]:
        print(f"  {path:<32} {total * 1e3:>9.2f} ms  {calls:>5} calls")

    # -- control events: what the controller decided ---------------------
    print(f"\ncontrol events ({len(obs.events)}):")
    kinds: dict[str, int] = {}
    for event in obs.events:
        kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
    for kind, count in sorted(kinds.items()):
        print(f"  {kind:<18} x{count}")

    # -- headline metrics -------------------------------------------------
    reg = obs.registry
    print("\nheadline metrics:")
    for name in ("emitted_total", "delivered_total", "dropped_capacity_total",
                 "dropped_dead_total", "redelivered_total", "migrations_total",
                 "failures_total"):
        metric = reg.get(name)
        if metric is not None:
            print(f"  {name:<20} {metric.value:>10.0f}")
    lat = reg.get("latency_ms")
    if lat is not None and lat.count:
        print(f"  {'mean latency (ms)':<20} {lat.sum / lat.count:>10.1f}")

    written = obs.export(OUT_DIR)
    print(f"\ntelemetry bundle -> {OUT_DIR}/")
    for key in sorted(written):
        print(f"  {written[key].name}")


if __name__ == "__main__":
    main()
