"""Decentralized mapping: Hilbert-keyed Chord catalog in action.

Shows the full physical-mapping path of §3.2 without any global
knowledge: every node publishes its cost-space coordinate into a Chord
DHT under a Hilbert-curve key; the optimizer resolves placement
coordinates with O(log n) lookups plus a short ring scan.  Compares the
decentralized answers (and their DHT hop costs) against the exhaustive
oracle, including what happens when nodes fail and withdraw.

Run:
    python examples/decentralized_catalog.py
"""

from __future__ import annotations

import numpy as np

from repro import GroundTruthEvaluator, Overlay
from repro.core.physical_mapping import CatalogMapper, build_catalog
from repro.network.topology import TransitStubParams, transit_stub_topology
from repro.workloads.queries import WorkloadParams, random_query


def main() -> None:
    params = TransitStubParams(
        num_transit_domains=3,
        transit_nodes_per_domain=4,
        stub_domains_per_transit_node=2,
        nodes_per_stub_domain=6,
    )  # 12 + 12*2*6 = 156 nodes
    topology = transit_stub_topology(params, seed=4)
    overlay = Overlay.build(topology, vector_dims=2, embedding_rounds=40, seed=4)
    print(f"Overlay: {overlay.num_nodes} nodes")

    print("Publishing all node coordinates into the Hilbert/Chord catalog...")
    catalog = build_catalog(overlay.cost_space, bits=9, ring_size=64)
    print(
        f"  ring: {len(catalog.ring)} DHT participants, "
        f"{catalog.ring.id_bits}-bit identifiers"
    )
    print(f"  published: {len(catalog.published_nodes)} coordinates")

    judge = GroundTruthEvaluator(overlay.latencies)
    print("\nquery  backend      usage      DHT hops")
    gaps = []
    for seed in range(5):
        query, stats = random_query(
            overlay.num_nodes, WorkloadParams(num_producers=3), seed=seed
        )
        exhaustive = overlay.integrated_optimizer().optimize(query, stats)
        mapper = CatalogMapper(overlay.cost_space, catalog, scan_width=8)
        decentral = overlay.integrated_optimizer(mapper=mapper).optimize(query, stats)
        u_ex = judge.evaluate(exhaustive.circuit).network_usage
        u_cat = judge.evaluate(decentral.circuit).network_usage
        gaps.append(u_cat / max(u_ex, 1e-9))
        print(f"q{seed:02d}    exhaustive  {u_ex:9.1f}          -")
        print(
            f"q{seed:02d}    catalog     {u_cat:9.1f}  "
            f"{decentral.mapping.total_dht_hops:9d}"
        )
    print(f"\nMedian catalog/exhaustive usage ratio: {np.median(gaps):.3f}")

    # Failure handling: the chosen host dies, its coordinate disappears.
    query, stats = random_query(
        overlay.num_nodes, WorkloadParams(num_producers=2), seed=99
    )
    mapper = CatalogMapper(overlay.cost_space, catalog, scan_width=8)
    result = overlay.integrated_optimizer(mapper=mapper).optimize(query, stats)
    (sid,) = result.circuit.unpinned_ids()
    victim = result.circuit.host_of(sid)
    print(f"\nFailing node {victim} (hosts {sid})...")
    catalog.withdraw(victim)
    mapper.exclude(victim)
    replacement = overlay.integrated_optimizer(mapper=mapper).optimize(query, stats)
    new_host = replacement.circuit.host_of(replacement.circuit.unpinned_ids()[0])
    print(f"  re-optimized placement: node {new_host} (was {victim})")
    assert new_host != victim
    print("  catalog no longer returns the failed node. Done.")


if __name__ == "__main__":
    main()
