"""Quickstart: optimize one continuous query on a simulated SBON.

Builds a 600-node transit-stub overlay (the paper's Figure 2 scale),
embeds it into a latency+load cost space, and runs the integrated
optimizer on a 4-way join — printing the candidate plans it explored,
the winner, the placement, and how the two-step baseline compares.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro import GroundTruthEvaluator, Overlay, transit_stub_topology
from repro.workloads import WorkloadParams, random_query


def main() -> None:
    print("Building a 600-node transit-stub topology...")
    topology = transit_stub_topology(seed=1)
    print(f"  {topology.num_nodes} nodes, {len(topology.links)} links")

    print("Embedding into a 2-D latency + squared-load cost space (Vivaldi)...")
    overlay = Overlay.build(
        topology, vector_dims=2, embedding_rounds=30, seed=1
    )

    print("Drawing a random 4-producer continuous join query...")
    query, stats = random_query(
        overlay.num_nodes,
        WorkloadParams(num_producers=4, clustered=True, cluster_span=60),
        name="demo",
        seed=7,
    )
    for producer in query.producers:
        print(f"  {producer.name}: node {producer.node}, rate {producer.rate:.1f}")
    print(f"  consumer: node {query.consumer.node}")

    print("\nIntegrated optimization (every plan virtually placed):")
    integrated = overlay.integrated_optimizer().optimize(query, stats)
    for candidate in sorted(integrated.candidates, key=lambda c: c.cost.total)[:5]:
        print(f"  {candidate.cost.total:10.1f}  {candidate.plan}")
    print(f"  ... ({len(integrated.candidates)} candidates total)")
    print(f"\nWinner: {integrated.plan}")
    for sid in integrated.circuit.unpinned_ids():
        print(f"  {sid} -> node {integrated.circuit.host_of(sid)}")

    two_step = overlay.two_step_optimizer().optimize(query, stats)
    judge = GroundTruthEvaluator(overlay.latencies)
    usage_integrated = judge.evaluate(integrated.circuit).network_usage
    usage_two_step = judge.evaluate(two_step.circuit).network_usage
    print("\nTrue network usage (rate x ms, lower is better):")
    print(f"  integrated: {usage_integrated:10.1f}   plan {integrated.plan}")
    print(f"  two-step  : {usage_two_step:10.1f}   plan {two_step.plan}")
    if usage_two_step > usage_integrated:
        gain = 100 * (usage_two_step - usage_integrated) / usage_two_step
        print(f"  -> integration saved {gain:.1f}% network usage")
    else:
        print("  -> the oblivious plan happened to be network-optimal here")

    print("\nInstalling the circuit (services start consuming CPU)...")
    overlay.install(integrated)
    print(f"  total overlay network usage: {overlay.total_network_usage():.1f}")


if __name__ == "__main__":
    main()
