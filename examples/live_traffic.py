"""Live traffic under chaos: the data plane rides out a perfect storm.

Every installed circuit executes on the live overlay — Poisson sources,
windowed hash joins, latency-delayed delivery — while the control plane
fights a load hotspot on the busiest hosts, drifting latencies, and
node churn.  The re-optimizer migrates services *mid-stream*; in-flight
tuples re-home to the new placements; per-node backpressure drops the
overflow with explicit accounting.  At the end, the conservation
balance proves that every single emitted tuple was delivered, dropped
on purpose, or is still on the wire — none silently lost.

Run:
    python examples/live_traffic.py
"""

from __future__ import annotations

import numpy as np

from repro.workloads.scenarios import chaos_scenario

TICKS = 120
PHASES = [("warm-up", 0, 8), ("hotspot", 8, 38), ("recovery", 38, 120)]


def main() -> None:
    scenario = chaos_scenario(
        num_nodes=40,
        num_circuits=4,
        node_capacity=60.0,
        hotspot_start=8,
        hotspot_duration=30,
        seed=3,
    )
    sim = scenario.simulation
    print(
        f"overlay: {scenario.overlay.num_nodes} nodes, "
        f"{len(scenario.overlay.circuits)} circuits executing live"
    )
    print(f"hotspot targets (busiest hosts): {list(scenario.hotspot_nodes)}")
    print(f"churn-protected (pinned producers/consumers): "
          f"{len(scenario.pinned_nodes)} nodes\n")

    print(f"{'tick':>5} {'emitted':>8} {'delivered':>10} {'dropped':>8} "
          f"{'migr':>5} {'fail':>5} {'p95 ms':>7} {'usage':>9}")
    for t in range(TICKS):
        r = sim.step()
        if (t + 1) % 10 == 0:
            print(f"{r.tick:>5} {r.emitted:>8} {r.delivered:>10} {r.dropped:>8} "
                  f"{r.migrations:>5} {r.failures:>5} {r.latency_p95:>7.0f} "
                  f"{r.data_usage:>9.0f}")

    records = sim.series.records
    print("\nphase summary:")
    for name, lo, hi in PHASES:
        phase = records[lo:hi]
        if not phase:
            continue
        delivered = sum(r.delivered for r in phase)
        dropped = sum(r.dropped for r in phase)
        migrations = sum(r.migrations for r in phase)
        samples = [r.latency_p95 for r in phase if r.delivered]
        p95 = f"{np.mean(samples):5.0f} ms" if samples else "  (none)"
        print(f"  {name:9s} delivered {delivered:6d}  dropped {dropped:5d}  "
              f"migrations {migrations:3d}  mean p95 {p95}")

    acct = scenario.data_plane.accounting()
    print(f"\nconservation: sent {acct['sent']} = "
          f"delivered-from-transport {acct['transport_delivered']} "
          f"+ in-flight {acct['in_flight']}")
    print(f"              processed {acct['processed']} + dropped {acct['dropped']} "
          f"= {acct['processed'] + acct['dropped']}")
    print(f"balanced: {acct['balanced']} — every tuple accounted for, "
          f"through {sim.series.total_migrations()} migrations and "
          f"{sim.series.total_failures()} node failures.")


if __name__ == "__main__":
    main()
