"""Executed streams: validate the optimizer's prices on live tuples.

The optimizer prices circuits from *estimated* rates; this example
optimizes the paper's Figure 1 query both ways (integrated and
two-step), then actually runs both circuits on synthetic Poisson
streams with windowed symmetric-hash joins and latency-delayed
delivery — and shows that the network really carries what the cost
model said it would, and that the integrated circuit really moves
less data.

Run:
    python examples/executed_streams.py
"""

from __future__ import annotations

from repro.core.costs import GroundTruthEvaluator
from repro.core.optimizer import IntegratedOptimizer, TwoStepOptimizer
from repro.engine import CircuitExecutor
from repro.query.selectivity import Statistics
from repro.workloads.scenarios import figure1_scenario

TICKS = 2000


def main() -> None:
    sc = figure1_scenario()
    # Scale selectivities up (preserving their ordering, so the
    # two-step optimizer still takes the cross-cluster bait) so the
    # deep links carry statistically meaningful traffic.
    stats = Statistics(
        dict(sc.stats.rates),
        {pair: min(1.0, 5 * sel) for pair, sel in sc.stats.selectivities.items()},
    )
    judge = GroundTruthEvaluator(sc.latencies)

    for label, optimizer in (
        ("integrated", IntegratedOptimizer(sc.cost_space)),
        ("two-step", TwoStepOptimizer(sc.cost_space)),
    ):
        result = optimizer.optimize(sc.query, stats)
        estimated = judge.evaluate(result.circuit).network_usage
        print(f"\n=== {label}: {result.plan}")
        print(f"estimated network usage: {estimated:9.1f}")

        executor = CircuitExecutor.from_query(
            result.circuit, sc.query, stats, sc.latencies, window=20, seed=42
        )
        report = executor.run(TICKS)
        print(f"measured  network usage: {report.measured_network_usage():9.1f} "
              f"(ratio {report.measured_network_usage() / estimated:.3f})")
        print(f"results delivered: {report.delivered} "
              f"({report.delivery_rate():.2f}/tick), "
              f"mean data latency {report.mean_delivery_latency_ms():.0f} ms")
        print("per-link measured vs estimated rates:")
        for (src, dst), (measured, predicted) in sorted(
            report.rate_agreement(result.circuit).items()
        ):
            bar = "#" * min(40, int(measured * 2))
            print(f"  {src:14s} -> {dst:14s} {measured:7.2f} vs {predicted:7.2f}  {bar}")

    print(
        "\nThe cost model holds on executed tuples, and the integrated "
        "circuit moves less real data than the two-step circuit."
    )


if __name__ == "__main__":
    main()
