"""Volcano monitoring: pinned sensors, adaptive re-optimization.

The paper motivates pinned services with live sensor streams: "live
sensor readings from a volcano originate at a particular volcano; one
cannot move mountains."  This example models that deployment:

* four seismic stations (pinned producers) on stub nodes of one region,
  with pushed-down filters (only events above a magnitude threshold),
* an observatory consumer on the other side of the network,
* a windowed aggregate before delivery,
* background load drift plus a compute hotspot near the volcano —
  watch the re-optimizer migrate the correlation joins away from the
  overloaded region while usage stays near the optimum.

Run:
    python examples/volcano_monitoring.py
"""

from __future__ import annotations

from repro import Overlay
from repro.network.dynamics import HotspotEvent, LoadProcess
from repro.network.topology import TransitStubParams, transit_stub_topology
from repro.query.model import Consumer, Producer, QuerySpec
from repro.query.selectivity import Statistics
from repro.sbon.simulator import Simulation, SimulationConfig


def main() -> None:
    params = TransitStubParams(
        num_transit_domains=3,
        transit_nodes_per_domain=3,
        stub_domains_per_transit_node=2,
        nodes_per_stub_domain=5,
    )  # 99 nodes
    topology = transit_stub_topology(params, seed=3)
    overlay = Overlay.build(topology, vector_dims=2, embedding_rounds=40, seed=3)
    print(f"Overlay: {overlay.num_nodes} nodes (transit-stub)")

    # Sensors live in the first stub region (nodes right after transit).
    stub_nodes = topology.nodes_tagged("stub")
    sensor_nodes = stub_nodes[:4]
    observatory = stub_nodes[-1]

    stations = [
        Producer(f"seismo{i}", node=node, rate=20.0)
        for i, node in enumerate(sensor_nodes)
    ]
    query = QuerySpec(
        name="volcano",
        producers=stations,
        consumer=Consumer("observatory", node=observatory),
        # Station-side magnitude filters: only 10% of readings survive.
        filters={s.name: 0.1 for s in stations},
        # 30-second correlation windows reduce the result stream 5x.
        aggregate_factor=0.2,
    )
    stats = Statistics.build(
        rates={s.name: s.rate for s in stations},
        # Nearby stations correlate strongly (higher selectivity needed
        # to join distant pairs is modelled as lower sel).
        pair_selectivities={
            ("seismo0", "seismo1"): 0.30,
            ("seismo2", "seismo3"): 0.30,
            ("seismo0", "seismo2"): 0.10,
            ("seismo1", "seismo3"): 0.10,
            ("seismo0", "seismo3"): 0.05,
            ("seismo1", "seismo2"): 0.05,
        },
    )

    result = overlay.integrated_optimizer().optimize(query, stats)
    print(f"\nChosen correlation plan: {result.plan}")
    print("Placement (join services hosted in-network):")
    for sid in result.circuit.unpinned_ids():
        node = result.circuit.host_of(sid)
        tag = topology.node_tags[node]
        print(f"  {sid} -> node {node} ({tag})")
    overlay.install(result)
    initial_usage = overlay.total_network_usage()
    print(f"Initial network usage: {initial_usage:.1f}")

    # A compute hotspot hits the volcano-side hosts at tick 10.
    hosts = tuple(
        result.circuit.host_of(sid) for sid in result.circuit.unpinned_ids()
    )
    load = LoadProcess(overlay.num_nodes, mean_load=0.15, sigma=0.02, seed=3)
    load.add_hotspot(
        HotspotEvent(start_tick=10, duration=40, nodes=hosts, extra_load=0.8)
    )
    sim = Simulation(
        overlay,
        load_process=load,
        config=SimulationConfig(reopt_interval=5, migration_threshold=0.01),
    )

    print("\ntick  usage      max-load  migrations")
    mid_hotspot_hosts: list[int] = []
    for _ in range(50):
        record = sim.step()
        if record.tick == 30:  # mid-hotspot snapshot
            mid_hotspot_hosts = [
                result.circuit.host_of(sid)
                for sid in result.circuit.unpinned_ids()
            ]
        if record.tick % 5 == 0 or record.migrations:
            marker = "  <- migrated" if record.migrations else ""
            print(
                f"{record.tick:4d}  {record.network_usage:9.1f}  "
                f"{record.max_load:7.2f}  {record.migrations:10d}{marker}"
            )

    print(f"\nTotal migrations: {sim.series.total_migrations()}")
    final_hosts = [
        result.circuit.host_of(sid) for sid in result.circuit.unpinned_ids()
    ]
    print(f"Join hosts before hotspot : {list(hosts)}")
    print(f"Join hosts during hotspot : {mid_hotspot_hosts}  (fled the overload)")
    print(f"Join hosts after hotspot  : {final_hosts}  (returned once it cleared)")
    print(f"Final network usage: {sim.series.final_usage():.1f} "
          f"(initial {initial_usage:.1f})")


if __name__ == "__main__":
    main()
