"""Multi-query optimization: shared dashboards reusing join services.

Models a monitoring provider where many customers subscribe to
dashboards over the same small set of feed producers.  As dashboards
arrive one by one, the multi-query optimizer searches a radius around
each desired service coordinate and taps already-running joins instead
of building private ones — the paper's Figure 4 at population scale.

Prints per-arrival reuse decisions, then compares aggregate network
usage against the selfish (no-reuse) deployment, and shows how the
pruning radius trades optimizer work for savings.

Run:
    python examples/multi_query_dashboard.py
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import Overlay
from repro.network.topology import TransitStubParams, transit_stub_topology
from repro.query.model import Consumer, Producer, QuerySpec
from repro.query.selectivity import Statistics
from repro.workloads.queries import random_query, WorkloadParams

NUM_DASHBOARDS = 8


def main() -> None:
    params = TransitStubParams(
        num_transit_domains=3,
        transit_nodes_per_domain=3,
        stub_domains_per_transit_node=2,
        nodes_per_stub_domain=5,
    )
    topology = transit_stub_topology(params, seed=8)
    overlay = Overlay.build(topology, vector_dims=2, embedding_rounds=40, seed=8)
    print(f"Overlay: {overlay.num_nodes} nodes")

    # Three feeds, pinned to stub nodes in one region.
    stubs = topology.nodes_tagged("stub")
    feeds = [
        Producer("trades", node=stubs[0], rate=30.0),
        Producer("quotes", node=stubs[1], rate=25.0),
        Producer("news", node=stubs[2], rate=5.0),
    ]
    stats = Statistics.build(
        rates={p.name: p.rate for p in feeds},
        pair_selectivities={
            ("trades", "quotes"): 0.02,
            ("trades", "news"): 0.05,
            ("quotes", "news"): 0.05,
        },
    )
    rng = np.random.default_rng(8)
    consumers = rng.choice(
        [n for n in stubs if n not in {p.node for p in feeds}],
        size=NUM_DASHBOARDS,
        replace=False,
    )
    dashboards = [
        QuerySpec(
            name=f"dash{i}",
            producers=feeds,
            consumer=Consumer(f"dash{i}.C", node=int(node)),
        )
        for i, node in enumerate(consumers)
    ]

    span = float(
        np.linalg.norm(
            overlay.cost_space.vector_matrix().max(axis=0)
            - overlay.cost_space.vector_matrix().min(axis=0)
        )
    )
    radius = 0.15 * span
    mq = overlay.multi_query_optimizer(radius=radius)
    print(f"Pruning radius: {radius:.1f} ms-equivalent (15% of span)\n")

    total_with_reuse = 0.0
    total_selfish = 0.0
    print("dashboard  reused        examined  selfish-cost  actual-cost  saved")
    for query in dashboards:
        result = mq.optimize(query, stats)
        if result.reuse_happened:
            # Register the final circuit's own (new) services too.
            fake = dataclasses.replace(result.standalone, circuit=result.circuit)
            mq.deploy(fake)
            reused = ",".join(d.circuit_name for d in result.reused)
        else:
            mq.deploy(result.standalone)
            reused = "-"
        total_with_reuse += result.cost.total
        total_selfish += result.standalone.cost.total
        saved = 100 * result.savings / max(result.standalone.cost.total, 1e-9)
        print(
            f"{query.name:9s}  {reused:12s}  {result.candidates_examined:8d}  "
            f"{result.standalone.cost.total:12.1f}  {result.cost.total:11.1f}  "
            f"{saved:4.0f}%"
        )

    print(
        f"\nAggregate estimated cost: selfish {total_selfish:.1f} vs "
        f"shared {total_with_reuse:.1f} "
        f"({100 * (1 - total_with_reuse / total_selfish):.0f}% saved)"
    )


if __name__ == "__main__":
    main()
