"""Elastic-scaling properties: key-partition exactness and twin parity.

PR 9's replication invariants, as stated in ROADMAP:

* **key-partition exactness** — a join split into k key-range replicas
  plus a merge relay delivers *exactly* the unreplicated circuit's sink
  tuples (as a multiset; the merge re-interleaves in canonical order),
  because per-key state lands wholly on one replica and the family
  link rates compile to bitwise-identical operator parameters;
* **conservation through split/merge** — ``sent == delivered +
  in_flight + buffered`` and ``delivered == processed + dropped`` hold
  on every tick, including the ticks where a scale event re-homes
  in-flight tuples and per-key state;
* **deterministic routing** — the key-bucket router draws no RNG
  (SplitMix64 of the tuple key), so the vectorized and scalar twins
  route, process, and account identically through scale events, live
  migration, and churn.
"""

import numpy as np

from repro.core.circuit import Circuit, Service
from repro.core.rewriting import (
    merge_replicas,
    merge_sid,
    replica_families,
    replica_sid,
    replicate_operator,
)
from repro.network.dynamics import ChurnProcess
from repro.network.topology import grid_topology
from repro.obs import Observability
from repro.query.operators import ServiceSpec
from repro.runtime.dataplane import DataPlane, RuntimeConfig
from repro.sbon.overlay import Overlay
from repro.sbon.simulator import Simulation, SimulationConfig

TICKS = 40


def join_circuit(name="t"):
    c = Circuit(name=name)
    c.add_service(Service("s1", ServiceSpec.relay(), 1, frozenset({"a"})))
    c.add_service(Service("s2", ServiceSpec.relay(), 2, frozenset({"b"})))
    c.add_service(Service("j", ServiceSpec.join(), None, frozenset({"a", "b"})))
    c.add_service(Service("k", ServiceSpec.relay(), 3, frozenset({"a", "b"})))
    c.add_link("s1", "j", 8.0)
    c.add_link("s2", "j", 5.0)
    c.add_link("j", "k", 2.5)
    c.assign("j", 0)
    return c


def make_overlay(circuit, seed=0):
    overlay = Overlay.build(
        grid_topology(3, 3), vector_dims=2, embedding_rounds=5, seed=seed
    )
    overlay.install_circuit(circuit)
    return overlay


def circuit_shape(circuit):
    return (
        sorted(circuit.services),
        sorted((l.source, l.target, l.rate) for l in circuit.links),
        dict(circuit.placement),
    )


class TestReplicationRewrite:
    """Structural sanity of replicate_operator / merge_replicas."""

    def test_split_structure(self):
        result = replicate_operator(join_circuit(), "j", 3)
        assert result.applied
        circuit = result.circuit
        fams = replica_families(circuit)
        assert fams["j"]["count"] == 3
        assert fams["j"]["replicas"] == [replica_sid("j", i) for i in range(3)]
        assert fams["j"]["merge"] == merge_sid("j")
        # Split in-links carry rate/k per replica; the merge keeps the
        # original downstream rate.
        for i in range(3):
            rates = sorted(
                l.rate for l in circuit.links if l.target == replica_sid("j", i)
            )
            assert np.allclose(rates, [5.0 / 3, 8.0 / 3])
        (out,) = [l for l in circuit.links if l.source == merge_sid("j")]
        assert out.target == "k" and out.rate == 2.5
        # Replicas and merge inherit the base's host by default.
        assert all(
            circuit.placement[sid] == 0
            for sid in (*fams["j"]["replicas"], fams["j"]["merge"])
        )

    def test_merge_restores_original_exactly(self):
        original = join_circuit()
        up = replicate_operator(original, "j", 3)
        down = merge_replicas(up.circuit, "j")
        assert down.applied
        assert circuit_shape(down.circuit) == circuit_shape(original)

    def test_rescale_and_refusals(self):
        up = replicate_operator(join_circuit(), "j", 3).circuit
        rescaled = replicate_operator(up, "j", 2)
        assert rescaled.applied
        assert replica_families(rescaled.circuit)["j"]["count"] == 2
        assert not replicate_operator(join_circuit(), "s1", 3).applied  # source
        assert not replicate_operator(join_circuit(), "k", 3).applied  # sink
        assert not replicate_operator(join_circuit(), "j", 1).applied  # no-op
        assert not replicate_operator(up, "j", 3).applied  # already at k


class TestKeyPartitionExactness:
    """Replicated and unreplicated twins deliver identical sink multisets."""

    def run_plane(self, circuit, scalar=False, seed=7):
        plane = DataPlane(make_overlay(circuit), RuntimeConfig(seed=seed))
        plane.sink_log = []
        for _ in range(TICKS):
            plane.step_scalar() if scalar else plane.step()
            assert plane.accounting()["balanced"]
        return plane

    def test_static_k3_matches_unreplicated(self):
        flat = self.run_plane(join_circuit())
        split = self.run_plane(replicate_operator(join_circuit(), "j", 3).circuit)
        assert len(flat.sink_log) > 0
        assert sorted(split.sink_log) == sorted(flat.sink_log)

    def test_scalar_twin_matches_too(self):
        flat = self.run_plane(join_circuit())
        split = self.run_plane(
            replicate_operator(join_circuit(), "j", 3).circuit, scalar=True
        )
        assert sorted(split.sink_log) == sorted(flat.sink_log)

    def test_scale_round_trip_matches_continuous_run(self):
        """k=1 → k=3 → k=1 mid-run delivers the uninterrupted run's tuples."""
        flat = self.run_plane(join_circuit())
        overlay = make_overlay(join_circuit())
        plane = DataPlane(overlay, RuntimeConfig(seed=7))
        plane.sink_log = []
        for _ in range(15):
            plane.step()
        up = replicate_operator(overlay.circuits["t"], "j", 3)
        assert up.applied
        overlay.replace_circuit(up.circuit)
        for _ in range(15):
            plane.step()
        down = merge_replicas(overlay.circuits["t"], "j")
        assert down.applied
        overlay.replace_circuit(down.circuit)
        for _ in range(TICKS - 30):
            plane.step()
        assert plane.accounting()["balanced"]
        assert plane.recompiles >= 2
        assert sorted(plane.sink_log) == sorted(flat.sink_log)


class TestTwinEquivalenceUnderScaling:
    """Vectorized and scalar twins stay tick-for-tick equal through
    scale events, live migration, churn, and backpressure."""

    def test_tick_for_tick_through_scale_events(self):
        planes = []
        for _ in range(2):
            overlay = make_overlay(join_circuit())
            planes.append(
                (overlay, DataPlane(overlay, RuntimeConfig(seed=7, node_capacity=30.0)))
            )
        for t in range(TICKS):
            recs = []
            for (overlay, plane), scalar in zip(planes, (False, True)):
                if t == 10:
                    up = replicate_operator(
                        overlay.circuits["t"], "j", 3, placement=[0, 4, 8]
                    )
                    overlay.replace_circuit(up.circuit)
                if t == 20:
                    overlay.apply_migration("t", replica_sid("j", 1), 5)
                if t == 30:
                    down = replicate_operator(overlay.circuits["t"], "j", 1)
                    overlay.replace_circuit(down.circuit)
                recs.append(plane.step_scalar() if scalar else plane.step())
            rv, rs = recs
            assert (rv.emitted, rv.delivered, rv.dropped, rv.processed) == (
                rs.emitted,
                rs.delivered,
                rs.dropped,
                rs.processed,
            ), t
            assert abs(rv.cpu_cost - rs.cpu_cost) < 1e-9, t
            for _, plane in planes:
                assert plane.accounting()["balanced"], t

    def test_simulation_twins_with_churn_and_trace_completeness(self):
        """Full tick loop with churn: twins emit equal records and the
        per-span trace completeness invariant holds on every tick —
        including the scale-event and merge ticks."""
        sims = []
        for _ in range(2):
            overlay = make_overlay(join_circuit())
            obs = Observability(tracing=True, trace_rate=1.0, metrics=True)
            sims.append(
                Simulation(
                    overlay,
                    churn=ChurnProcess(
                        overlay.num_nodes,
                        fail_prob=0.03,
                        recover_prob=0.3,
                        protected={0, 1, 2, 3},
                        seed=3,
                    ),
                    config=SimulationConfig(reopt_interval=0),
                    data_plane=DataPlane(overlay, RuntimeConfig(seed=9)),
                    obs=obs,
                )
            )
        for t in range(30):
            recs = []
            for sim, scalar in zip(sims, (False, True)):
                if t == 8:
                    up = replicate_operator(
                        sim.overlay.circuits["t"], "j", 3, placement=[0, 4, 8]
                    )
                    sim.overlay.replace_circuit(up.circuit)
                if t == 20:
                    down = merge_replicas(sim.overlay.circuits["t"], "j")
                    sim.overlay.replace_circuit(down.circuit)
                recs.append(sim.step_scalar() if scalar else sim.step())
                res = sim.data_plane.trace_completeness()
                assert res["ok"], (t, res["violations"])
                assert sim.data_plane.accounting()["balanced"], t
            assert recs[0] == recs[1], t
