"""Determinism + batched-tick twin equivalence of the scalar-only
re-optimization paths.

``full_reoptimize`` and ``rewrite_step`` are deliberately scalar paths
(plan enumeration and rewrite search, not tick kernels) — but they run
*between* batched ticks in a live system, so they must (1) be exactly
deterministic, and (2) leave twin simulations (``step`` vs
``step_scalar`` under the shared-RNG discipline) equivalent when either
path replaces a running circuit mid-stream.
"""

import numpy as np
import pytest

from repro.core.reoptimizer import Reoptimizer
from repro.network.dynamics import LoadProcess
from repro.runtime import DataPlane, RuntimeConfig
from repro.sbon.overlay import Overlay
from repro.sbon.simulator import Simulation, SimulationConfig
from repro.network.topology import grid_topology
from repro.workloads.queries import WorkloadParams, random_query
from tests.property.test_dataplane_properties import assert_traffic_equal
from tests.unit.test_rewriting import three_way_setup
from repro.workloads.scenarios import perfect_cost_space

PARAMS = WorkloadParams(
    num_producers=3, rate_bounds=(3.0, 8.0), selectivity_bounds=(0.2, 0.6)
)


def installed_overlay(seed=0, side=5, num_circuits=2):
    """Overlay with optimized circuits plus their (query, stats) pairs."""
    n = side * side
    overlay = Overlay.build(
        grid_topology(side, side), vector_dims=2, embedding_rounds=20, seed=seed
    )
    optimizer = overlay.integrated_optimizer()
    workload = []
    for i in range(num_circuits):
        query, stats = random_query(n, PARAMS, name=f"q{i}", seed=seed * 10 + i)
        overlay.install(optimizer.optimize(query, stats))
        workload.append((query, stats))
    return overlay, workload


def twin_simulations(seed=0):
    sims, workloads = [], []
    for _ in range(2):
        overlay, workload = installed_overlay(seed=seed)
        plane = DataPlane(overlay, RuntimeConfig(seed=99))
        sims.append(
            Simulation(
                overlay,
                load_process=LoadProcess(overlay.num_nodes, sigma=0.1, seed=1),
                config=SimulationConfig(reopt_interval=3, migration_threshold=0.0),
                data_plane=plane,
            )
        )
        workloads.append(workload)
    return sims, workloads


def degrade(overlay, name):
    """Push a circuit's unpinned services onto one bad corner node."""
    circuit = overlay.circuits[name]
    worst = overlay.num_nodes - 1
    for sid in circuit.unpinned_ids():
        overlay.apply_migration(name, sid, worst)


class TestFullReoptimizeDeterminism:
    def test_identical_runs_produce_identical_reports(self):
        results = []
        for _ in range(2):
            overlay, workload = installed_overlay(seed=3)
            degrade(overlay, "q0")
            query, stats = workload[0]
            reopt = overlay.reoptimizer()
            report, fresh = reopt.full_reoptimize(
                overlay.circuits["q0"], query, stats, replace_threshold=0.0
            )
            results.append(
                (
                    report.replaced_plan,
                    report.cost_before.total,
                    report.cost_after.total,
                    None if fresh is None else sorted(fresh.circuit.placement.items()),
                )
            )
        assert results[0] == results[1]
        assert results[0][0], "degraded circuit should have been replaced"

    def test_rewrite_step_deterministic(self):
        outcomes = []
        for _ in range(2):
            space = perfect_cost_space([(10.0 * i, 0.0) for i in range(8)])
            circuit, _, stats = three_way_setup()
            circuit.assign("q/join0", 5)
            circuit.assign("q/join1", 5)
            rewritten, applied = Reoptimizer(space).rewrite_step(circuit, stats)
            outcomes.append((applied, sorted(rewritten.placement.items())))
        assert outcomes[0] == outcomes[1]
        assert outcomes[0][0]


class TestScalarPathsAgainstBatchedTick:
    """Replacing a live circuit mid-run keeps the twins equivalent."""

    def test_full_reoptimize_replacement_preserves_twin_equivalence(self):
        (a, b), (wl_a, wl_b) = twin_simulations(seed=5)
        for _ in range(5):
            assert_traffic_equal(a.step(), b.step_scalar())
        for sim in (a, b):
            degrade(sim.overlay, "q0")
        # The scalar-only path runs identically against both twins...
        replacements = []
        for sim, workload in ((a, wl_a), (b, wl_b)):
            query, stats = workload[0]
            reopt = sim.overlay.reoptimizer()
            report, fresh = reopt.full_reoptimize(
                sim.overlay.circuits["q0"], query, stats, replace_threshold=0.0
            )
            assert report.replaced_plan and fresh is not None
            sim.overlay.uninstall("q0")
            sim.overlay.install(fresh)
            replacements.append(sorted(fresh.circuit.placement.items()))
        assert replacements[0] == replacements[1]
        # ...and the batched tick stays tuple-for-tuple equivalent.
        # (In-flight tuples of the old circuit re-home to the fresh
        # circuit's same-named services through the recompile remap,
        # so nothing drops — the conservation balance proves it.)
        for _ in range(10):
            assert_traffic_equal(a.step(), b.step_scalar())
        assert a.data_plane.dropped_uninstalled == b.data_plane.dropped_uninstalled
        assert a.data_plane.accounting() == b.data_plane.accounting()
        assert a.data_plane.accounting()["balanced"]

    def test_rewrite_step_replacement_preserves_twin_equivalence(self):
        (a, b), (wl_a, wl_b) = twin_simulations(seed=7)
        for _ in range(5):
            assert_traffic_equal(a.step(), b.step_scalar())
        # Colocate q0's joins on one node so a rewrite applies, then
        # swap the rewritten circuit in on both twins.
        rewritten_placements = []
        for sim, workload in ((a, wl_a), (b, wl_b)):
            overlay = sim.overlay
            circuit = overlay.circuits["q0"]
            joins = [
                sid for sid, svc in circuit.services.items()
                if svc.kind.value == "join"
            ]
            target = circuit.host_of(joins[0])
            for sid in joins[1:]:
                overlay.apply_migration("q0", sid, target)
            _, stats = workload[0]
            rewritten, applied = overlay.reoptimizer().rewrite_step(circuit, stats)
            assert applied
            overlay.uninstall("q0")
            overlay.install_circuit(rewritten)
            rewritten_placements.append(sorted(rewritten.placement.items()))
        assert rewritten_placements[0] == rewritten_placements[1]
        for _ in range(10):
            assert_traffic_equal(a.step(), b.step_scalar())
        assert a.data_plane.accounting() == b.data_plane.accounting()
        assert a.data_plane.accounting()["balanced"]

    def test_full_reoptimize_keep_path_changes_nothing(self):
        (a, b), (wl_a, _) = twin_simulations(seed=9)
        for _ in range(3):
            assert_traffic_equal(a.step(), b.step_scalar())
        query, stats = wl_a[0]
        before = dict(a.overlay.circuits["q0"].placement)
        report, fresh = a.overlay.reoptimizer().full_reoptimize(
            a.overlay.circuits["q0"], query, stats, replace_threshold=10.0
        )
        assert fresh is None and not report.replaced_plan
        assert a.overlay.circuits["q0"].placement == before
        for _ in range(5):
            assert_traffic_equal(a.step(), b.step_scalar())
