"""Equivalence properties of the control plane and reliable transport.

Same discipline as the data-plane properties: every vectorized path
keeps a scalar reference consuming identical inputs, and twin instances
stepped through either path must agree exactly — here extended to the
retransmit buffer (tuples bound to failed nodes), the controller's
estimator banks and decisions, and the two-level join-state layout
(whose merge threshold must be unobservable).
"""

import numpy as np
import pytest

from repro.control import ControlConfig, Controller
from repro.runtime import DataPlane, RuntimeConfig
from repro.sbon.simulator import Simulation, SimulationConfig
from repro.workloads.scenarios import selectivity_drift_scenario
from tests.property.test_dataplane_properties import (
    assert_traffic_equal,
    traffic_overlay,
)


def assert_control_fields_equal(rv, rs):
    assert (rv.shed, rv.redelivered, rv.buffered) == (
        rs.shed, rs.redelivered, rs.buffered,
    )


def outage_mask(num_nodes, hosts, tick):
    """Deterministic rolling outage over the given hosts."""
    mask = np.ones(num_nodes, dtype=bool)
    if hosts and (tick // 7) % 2 == 1:
        start = (tick // 7) % len(hosts)
        mask[hosts[start::2]] = False
    return mask


def unpinned_hosts(overlay, pinned):
    return sorted(
        {c.host_of(s) for c in overlay.circuits.values() for s in c.unpinned_ids()}
        - pinned
    )


class TestReliableTwins:
    def test_twins_agree_across_outages(self):
        cfg = RuntimeConfig(seed=7, reliable=True, retransmit_buffer=1 << 14)
        ov_a, pinned = traffic_overlay(seed=4)
        ov_b, _ = traffic_overlay(seed=4)
        a, b = DataPlane(ov_a, cfg), DataPlane(ov_b, cfg)
        hosts = unpinned_hosts(ov_a, pinned)
        for tick in range(45):
            mask = outage_mask(ov_a.num_nodes, hosts, tick)
            ov_a.apply_liveness(mask)
            ov_b.apply_liveness(mask)
            rv, rs = a.step(), b.step_scalar()
            assert_traffic_equal(rv, rs)
            assert_control_fields_equal(rv, rs)
            assert a.accounting()["balanced"], a.accounting()
            assert b.accounting()["balanced"], b.accounting()
        assert a.accounting() == b.accounting()
        assert a.redelivered == b.redelivered > 0

    def test_bounded_buffer_overflow_twins_agree(self):
        cfg = RuntimeConfig(seed=7, reliable=True, retransmit_buffer=8)
        ov_a, pinned = traffic_overlay(seed=4)
        ov_b, _ = traffic_overlay(seed=4)
        a, b = DataPlane(ov_a, cfg), DataPlane(ov_b, cfg)
        hosts = unpinned_hosts(ov_a, pinned)
        mask = np.ones(ov_a.num_nodes, dtype=bool)
        mask[hosts] = False
        for tick in range(25):
            if tick == 5:
                ov_a.apply_liveness(mask)
                ov_b.apply_liveness(mask)
            rv, rs = a.step(), b.step_scalar()
            assert_traffic_equal(rv, rs)
            assert_control_fields_equal(rv, rs)
            assert a.accounting()["balanced"]
        assert a.dropped_overflow == b.dropped_overflow > 0
        assert a.accounting() == b.accounting()

    def test_reliable_uninstall_drops_buffered_with_accounting(self):
        cfg = RuntimeConfig(seed=5, reliable=True)
        ov_a, pinned = traffic_overlay(seed=6)
        ov_b, _ = traffic_overlay(seed=6)
        a, b = DataPlane(ov_a, cfg), DataPlane(ov_b, cfg)
        hosts = unpinned_hosts(ov_a, pinned)
        mask = np.ones(ov_a.num_nodes, dtype=bool)
        mask[hosts] = False
        ov_a.apply_liveness(mask)
        ov_b.apply_liveness(mask)
        for _ in range(8):
            assert_traffic_equal(a.step(), b.step_scalar())
        assert a.accounting()["buffered"] > 0
        ov_a.uninstall("q1")
        ov_b.uninstall("q1")
        for _ in range(5):
            assert_traffic_equal(a.step(), b.step_scalar())
        assert a.dropped_uninstalled == b.dropped_uninstalled > 0
        assert a.accounting() == b.accounting()
        assert a.accounting()["balanced"]


class TestJoinStateLayout:
    """The two-level (base + append buffer) layout is unobservable."""

    @pytest.mark.parametrize("merge_limit", [1, 16, 1 << 30])
    def test_merge_threshold_never_changes_results(self, merge_limit):
        reference = DataPlane(traffic_overlay(seed=11)[0], RuntimeConfig(seed=3, window=30))
        tuned = DataPlane(traffic_overlay(seed=11)[0], RuntimeConfig(seed=3, window=30))
        tuned._state_merge_limit = merge_limit
        for _ in range(25):
            rv, rs = tuned.step(), reference.step()
            assert rv == rs
        assert tuned.accounting() == reference.accounting()

    def test_layout_matches_scalar_reference_with_large_windows(self):
        cfg = RuntimeConfig(seed=9, window=40)
        a = DataPlane(traffic_overlay(seed=12)[0], cfg)
        b = DataPlane(traffic_overlay(seed=12)[0], cfg)
        a._state_merge_limit = 8  # force frequent merges mid-tick
        for _ in range(30):
            assert_traffic_equal(a.step(), b.step_scalar())
        assert a.accounting() == b.accounting()
        assert a.accounting()["balanced"]


class TestControllerTwins:
    def test_controller_decisions_identical_across_paths(self):
        cfg = RuntimeConfig(seed=7, reliable=True, node_capacity=45.0)
        ctl_cfg = ControlConfig(
            warmup=4, calibrate_interval=3, drop_threshold=0.01,
            trigger_cooldown=4, shed_limit=30.0, alpha=0.4,
        )
        ov_a, pinned = traffic_overlay(seed=4)
        ov_b, _ = traffic_overlay(seed=4)
        a, b = DataPlane(ov_a, cfg), DataPlane(ov_b, cfg)
        ca, cb = Controller(a, ctl_cfg), Controller(b, ctl_cfg)
        hosts = unpinned_hosts(ov_a, pinned)
        for tick in range(35):
            mask = outage_mask(ov_a.num_nodes, hosts, tick)
            ov_a.apply_liveness(mask)
            ov_b.apply_liveness(mask)
            rv, rs = a.step(), b.step_scalar()
            assert_traffic_equal(rv, rs)
            cv, cs = ca.step(rv), cb.step_scalar(rs)
            assert cv == cs
        keys = ca.link_rates.keys()
        np.testing.assert_array_equal(ca.link_rates.rates(keys), cb.link_rates.rates(keys))
        np.testing.assert_array_equal(
            ca.node_processed.rates(), cb.node_processed.rates()
        )
        assert ca.calibrations == cb.calibrations > 0
        # Calibration wrote identical rates into both twins' circuits.
        for name, circuit in ov_a.circuits.items():
            assert [l.rate for l in circuit.links] == [
                l.rate for l in ov_b.circuits[name].links
            ]

    def test_closed_loop_simulation_twins_agree(self):
        a = selectivity_drift_scenario(mode="control", seed=3, num_nodes=30, num_chains=3)
        b = selectivity_drift_scenario(mode="control", seed=3, num_nodes=30, num_chains=3)
        for _ in range(45):
            rv, rs = a.simulation.step(), b.simulation.step_scalar()
            assert (rv.migrations, rv.failures, rv.calibrated_links) == (
                rs.migrations, rs.failures, rs.calibrated_links,
            )
            assert_traffic_equal(rv, rs)
        for name, circuit in a.overlay.circuits.items():
            twin = b.overlay.circuits[name]
            assert circuit.placement == twin.placement
            np.testing.assert_allclose(
                [l.rate for l in circuit.links],
                [l.rate for l in twin.links],
                rtol=1e-12,
            )
        assert a.data_plane.accounting() == b.data_plane.accounting()
        assert a.data_plane.accounting()["balanced"]


class TestClosedLoopDeterminism:
    def test_same_seed_same_control_series(self):
        runs = []
        for _ in range(2):
            scenario = selectivity_drift_scenario(
                mode="control", seed=5, num_nodes=30, num_chains=3
            )
            scenario.simulation.run(40)
            runs.append(
                [
                    (r.data_usage, r.migrations, r.calibrated_links)
                    for r in scenario.simulation.series.records
                ]
            )
        assert runs[0] == runs[1]
