"""Property-based tests for the Hilbert curve."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht.hilbert import (
    HilbertMapper,
    hilbert_decode,
    hilbert_encode,
    morton_decode,
    morton_encode,
)


@st.composite
def curve_params(draw):
    bits = draw(st.integers(min_value=1, max_value=6))
    dims = draw(st.integers(min_value=1, max_value=4))
    return bits, dims


@given(curve_params(), st.data())
@settings(max_examples=150)
def test_hilbert_roundtrip(params, data):
    bits, dims = params
    coords = tuple(
        data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
        for _ in range(dims)
    )
    index = hilbert_encode(coords, bits)
    assert 0 <= index < (1 << (bits * dims))
    assert hilbert_decode(index, bits, dims) == coords


@given(curve_params(), st.data())
@settings(max_examples=150)
def test_morton_roundtrip(params, data):
    bits, dims = params
    coords = tuple(
        data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
        for _ in range(dims)
    )
    index = morton_encode(coords, bits)
    assert morton_decode(index, bits, dims) == coords


@given(st.integers(min_value=2, max_value=5), st.integers(min_value=2, max_value=3))
@settings(max_examples=20, deadline=None)
def test_hilbert_is_bijective_over_whole_grid(bits, dims):
    total = 1 << (bits * dims)
    if total > 4096:
        total = 4096  # truncated prefix is still injective
    seen = set()
    for index in range(total):
        cell = hilbert_decode(index, bits, dims)
        assert cell not in seen
        seen.add(cell)


@given(st.integers(min_value=1, max_value=5), st.data())
@settings(max_examples=80, deadline=None)
def test_hilbert_adjacent_indices_adjacent_cells(bits, data):
    dims = data.draw(st.integers(min_value=2, max_value=3))
    top = (1 << (bits * dims)) - 2
    index = data.draw(st.integers(min_value=0, max_value=top))
    a = hilbert_decode(index, bits, dims)
    b = hilbert_decode(index + 1, bits, dims)
    assert sum(abs(x - y) for x, y in zip(a, b)) == 1


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            st.floats(min_value=-100, max_value=100, allow_nan=False),
        ),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=60)
def test_mapper_fit_quantize_never_fails_on_fitted_points(points):
    pts = np.asarray(points)
    mapper = HilbertMapper.fit(pts, bits=8)
    for p in pts:
        cell = mapper.quantize(p)
        assert all(0 <= c < 256 for c in cell)
        key = mapper.key_for(p)
        assert 0 <= key < (1 << mapper.key_bits)


@given(
    st.floats(min_value=0, max_value=100, allow_nan=False),
    st.floats(min_value=0, max_value=100, allow_nan=False),
)
@settings(max_examples=80)
def test_mapper_dequantize_bounded_error(x, y):
    mapper = HilbertMapper(lows=(0.0, 0.0), highs=(100.0, 100.0), bits=10)
    point = np.array([x, y])
    back = mapper.dequantize(mapper.quantize(point))
    cell = 100.0 / ((1 << 10) - 1)
    assert np.all(np.abs(back - point) <= cell)
