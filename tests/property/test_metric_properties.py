"""Property-based tests for metric-space structure."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coordinates import CostCoordinate
from repro.network.latency import LatencyMatrix
from repro.network.topology import Topology

finite_float = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)
non_negative = st.floats(min_value=0.0, max_value=1e3, allow_nan=False)


@st.composite
def coordinate_triples(draw):
    vdims = draw(st.integers(min_value=1, max_value=4))
    sdims = draw(st.integers(min_value=0, max_value=2))

    def coord():
        vec = tuple(draw(finite_float) for _ in range(vdims))
        sca = tuple(draw(non_negative) for _ in range(sdims))
        return CostCoordinate(vec, sca)

    return coord(), coord(), coord()


@given(coordinate_triples())
@settings(max_examples=200)
def test_cost_distance_metric_axioms(coords):
    a, b, c = coords
    # Non-negativity and identity.
    assert a.distance_to(b) >= 0
    assert a.distance_to(a) == 0
    # Symmetry.
    assert a.distance_to(b) == b.distance_to(a)
    # Triangle inequality (Euclidean, so must hold exactly up to fp).
    assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6


@given(coordinate_triples())
@settings(max_examples=100)
def test_vector_distance_never_exceeds_full_distance(coords):
    a, b, _ = coords
    assert a.vector_distance_to(b) <= a.distance_to(b) + 1e-9


@st.composite
def random_topologies(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    topo = Topology(num_nodes=n)
    # Spanning chain keeps it connected; extra random links.
    for i in range(1, n):
        topo.add_link(
            i - 1, i, draw(st.floats(min_value=0.1, max_value=50.0, allow_nan=False))
        )
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            topo.add_link(
                u, v, draw(st.floats(min_value=0.1, max_value=50.0, allow_nan=False))
            )
    return topo


@given(random_topologies())
@settings(max_examples=100, deadline=None)
def test_shortest_path_matrix_satisfies_triangle_inequality(topo):
    lm = LatencyMatrix.from_topology(topo)
    m = lm.values
    n = lm.num_nodes
    for a in range(n):
        for b in range(n):
            for c in range(n):
                assert m[a, c] <= m[a, b] + m[b, c] + 1e-9


@given(random_topologies())
@settings(max_examples=80, deadline=None)
def test_shortest_paths_never_exceed_direct_links(topo):
    lm = LatencyMatrix.from_topology(topo)
    for link in topo.links:
        assert lm.latency(link.u, link.v) <= link.latency_ms + 1e-9
