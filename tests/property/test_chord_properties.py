"""Property-based tests for the Chord ring."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht.chord import ChordRing


@st.composite
def ring_and_keys(draw):
    id_bits = 12
    ids = draw(
        st.sets(
            st.integers(min_value=0, max_value=(1 << id_bits) - 1),
            min_size=1,
            max_size=24,
        )
    )
    keys = draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << id_bits) - 1),
            min_size=1,
            max_size=16,
        )
    )
    return id_bits, sorted(ids), keys


@given(ring_and_keys())
@settings(max_examples=100, deadline=None)
def test_lookup_always_finds_ground_truth_owner(setup):
    id_bits, ids, keys = setup
    ring = ChordRing(id_bits=id_bits)
    for node_id in ids:
        ring.join(node_id=node_id)
    for key in keys:
        result = ring.lookup(key)
        # Ground truth: first node clockwise from key.
        candidates = [i for i in ids if i >= key]
        expected = min(candidates) if candidates else min(ids)
        assert result.owner == expected


@given(ring_and_keys())
@settings(max_examples=60, deadline=None)
def test_put_get_roundtrip_and_invariants(setup):
    id_bits, ids, keys = setup
    ring = ChordRing(id_bits=id_bits)
    for node_id in ids:
        ring.join(node_id=node_id)
    for i, key in enumerate(keys):
        ring.put(key, f"value-{i}")
    for i, key in enumerate(keys):
        value, _ = ring.get(key)
        # Later puts to the same key overwrite; find the last writer.
        last = max(j for j, k in enumerate(keys) if k == key)
        assert value == f"value-{last}"
    ring.verify_invariants()


@given(ring_and_keys(), st.data())
@settings(max_examples=50, deadline=None)
def test_leave_preserves_data_and_invariants(setup, data):
    id_bits, ids, keys = setup
    if len(ids) < 2:
        return
    ring = ChordRing(id_bits=id_bits)
    for node_id in ids:
        ring.join(node_id=node_id)
    for key in keys:
        ring.put(key, key * 7)
    departing = data.draw(st.sampled_from(ids))
    ring.leave(departing)
    ring.verify_invariants()
    for key in keys:
        value, _ = ring.get(key)
        assert value == key * 7


@given(ring_and_keys())
@settings(max_examples=50, deadline=None)
def test_hop_count_bounded_by_id_bits(setup):
    id_bits, ids, keys = setup
    ring = ChordRing(id_bits=id_bits)
    for node_id in ids:
        ring.join(node_id=node_id)
    for key in keys:
        assert ring.lookup(key).hops <= id_bits + 1
