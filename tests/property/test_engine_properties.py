"""Property-based tests for the stream engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.operators import DecimatingAggregate, SymmetricHashJoin
from repro.engine.tuples import StreamTuple


def tup(ts: int, key: int, name: str) -> StreamTuple:
    return StreamTuple(ts=ts, key=key, lineage=frozenset((name,)))


@st.composite
def join_traces(draw):
    """Random interleaved arrivals on both ports, time-ordered."""
    window = draw(st.integers(min_value=0, max_value=8))
    n = draw(st.integers(min_value=1, max_value=40))
    events = []
    now = 0
    for i in range(n):
        now += draw(st.integers(min_value=0, max_value=3))
        port = draw(st.integers(min_value=0, max_value=1))
        key = draw(st.integers(min_value=0, max_value=4))
        events.append((now, port, key, i))
    return window, events


@given(join_traces())
@settings(max_examples=150, deadline=None)
def test_join_emits_each_valid_pair_exactly_once(trace):
    window, events = trace
    join = SymmetricHashJoin(window=window, eviction_slack=100)
    emitted = 0
    for now, port, key, i in events:
        emitted += len(join.process(port, tup(now, key, f"s{port}.{i}"), now))

    # Ground truth: all cross-port pairs with equal key within window.
    expected = 0
    for ts_a, port_a, key_a, _ in events:
        for ts_b, port_b, key_b, _ in events:
            if port_a == 0 and port_b == 1:
                if key_a == key_b and abs(ts_a - ts_b) <= window:
                    expected += 1
    assert emitted == expected


@given(join_traces())
@settings(max_examples=100, deadline=None)
def test_join_output_lineage_spans_both_ports(trace):
    window, events = trace
    join = SymmetricHashJoin(window=window, eviction_slack=100)
    for now, port, key, i in events:
        for out in join.process(port, tup(now, key, f"s{port}.{i}"), now):
            sides = {name.split(".")[0] for name in out.lineage}
            assert sides == {"s0", "s1"}
            assert out.ts == max(t.ts for t in [out]) >= 0


@given(
    st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
    st.integers(min_value=1, max_value=2000),
)
@settings(max_examples=80, deadline=None)
def test_decimator_exact_long_run_count(factor, n):
    op = DecimatingAggregate(factor)
    emitted = sum(len(op.process(0, tup(0, i % 5, "A"), 0)) for i in range(n))
    # Credit accumulation realizes the factor with error < 1 tuple over
    # any horizon — the property the rate model relies on.
    assert abs(emitted - factor * n) <= 1


@given(st.integers(min_value=0, max_value=6), st.integers(min_value=0, max_value=30))
@settings(max_examples=80, deadline=None)
def test_join_state_bounded_by_retention(window, slack):
    join = SymmetricHashJoin(window=window, eviction_slack=slack)
    # One tuple per tick per port, single key: state must stay within
    # retention horizon per side (+1 for the just-inserted tuple).
    for now in range(100):
        join.process(0, tup(now, 0, f"a{now}"), now)
        join.process(1, tup(now, 0, f"b{now}"), now)
    horizon = window + slack + 1
    assert join.state_size() <= 2 * horizon + 2
