"""Twin-equivalence and conservation properties of the cost currency.

The repo discipline extended to the unified load model: twin data
planes stepped through the batched kernels and the per-tuple scalar
reference (identical RNG draws) must agree on every cost column —
exactly, because the default model's coefficients are dyadic rationals
and admission prices are quantized to 1/256 cost units — while the
tuple-conservation balance and the cost-attribution identities hold at
every tick, including under churn, migration, reliable retransmission,
and cost-based backpressure/shedding.
"""

import numpy as np
import pytest

from repro.control import ControlConfig, Controller
from repro.core.load_model import LoadModel
from repro.network.dynamics import ChurnProcess, LatencyDriftProcess, LoadProcess
from repro.network.topology import grid_topology
from repro.runtime.dataplane import DataPlane, RuntimeConfig
from repro.sbon.overlay import Overlay
from repro.sbon.simulator import Simulation, SimulationConfig
from repro.workloads.queries import WorkloadParams, random_query

PARAMS = WorkloadParams(
    num_producers=3, rate_bounds=(3.0, 8.0), selectivity_bounds=(0.2, 0.6)
)
MODEL = LoadModel()  # default: dyadic coefficients, join-heavy


def traffic_overlay(seed=0, num_circuits=3, side=5):
    n = side * side
    overlay = Overlay.build(
        grid_topology(side, side), vector_dims=2, embedding_rounds=20, seed=seed
    )
    pinned = set()
    optimizer = overlay.integrated_optimizer()
    for i in range(num_circuits):
        query, stats = random_query(n, PARAMS, name=f"q{i}", seed=seed * 10 + i)
        overlay.install(optimizer.optimize(query, stats))
        pinned |= {p.node for p in query.producers} | {query.consumer.node}
    return overlay, pinned


def cost_simulation(seed=0, capacity=50.0, reliable=False):
    overlay, pinned = traffic_overlay(seed)
    n = overlay.num_nodes
    plane = DataPlane(
        overlay,
        RuntimeConfig(
            seed=99, node_capacity=capacity, load_model=MODEL, reliable=reliable
        ),
    )
    return Simulation(
        overlay,
        load_process=LoadProcess(n, sigma=0.1, seed=1),
        latency_drift=LatencyDriftProcess(overlay.latencies, drift_sigma=0.03, seed=2),
        churn=ChurnProcess(
            n, fail_prob=0.01, recover_prob=0.2, protected=pinned, seed=3
        ),
        config=SimulationConfig(reopt_interval=3, migration_threshold=0.0),
        data_plane=plane,
    )


class TestCostTwinEquivalence:
    def test_cost_columns_bit_identical_on_plain_traffic(self):
        a = DataPlane(
            traffic_overlay(seed=4)[0],
            RuntimeConfig(seed=7, node_capacity=40.0, load_model=MODEL),
        )
        b = DataPlane(
            traffic_overlay(seed=4)[0],
            RuntimeConfig(seed=7, node_capacity=40.0, load_model=MODEL),
        )
        for _ in range(30):
            rv, rs = a.step(), b.step_scalar()
            assert rv == rs  # every field, cpu_cost/cpu_dropped included
            np.testing.assert_array_equal(a.tick_node_cpu, b.tick_node_cpu)
        assert a.accounting() == b.accounting()
        assert a.accounting()["balanced"]
        assert a.cpu_dropped_total > 0, "capacity never priced anything out"

    def test_twins_agree_under_chaos_with_cost_gating(self):
        a, b = cost_simulation(seed=5), cost_simulation(seed=5)
        for _ in range(30):
            rv, rs = a.step(), b.step_scalar()
            assert (rv.migrations, rv.failures) == (rs.migrations, rs.failures)
            assert rv.cpu_cost == rs.cpu_cost
            assert rv.cpu_dropped == rs.cpu_dropped
            assert (rv.emitted, rv.delivered, rv.dropped) == (
                rs.emitted, rs.delivered, rs.dropped
            )
            np.testing.assert_array_equal(
                a.data_plane.tick_node_cpu, b.data_plane.tick_node_cpu
            )
        assert a.data_plane.accounting() == b.data_plane.accounting()
        assert a.data_plane.accounting()["balanced"]

    def test_shed_controllers_make_identical_cost_decisions(self):
        ov_f, _ = traffic_overlay(seed=6)
        ov_s, _ = traffic_overlay(seed=6)
        fast = DataPlane(ov_f, RuntimeConfig(seed=11, load_model=MODEL))
        slow = DataPlane(ov_s, RuntimeConfig(seed=11, load_model=MODEL))
        cfg = ControlConfig(
            warmup=3, shed_limit=30.0, shed_release=0.6, drop_threshold=None,
            calibrate_interval=1000, cpu_calibrate=False,
        )
        ctl_f, ctl_s = Controller(fast, cfg), Controller(slow, cfg)
        shed_any = False
        for _ in range(30):
            cv = ctl_f.step(fast.step())
            cs = ctl_s.step_scalar(slow.step_scalar())
            assert cv == cs
            shed_any = shed_any or bool(cv.shed_nodes)
            np.testing.assert_array_equal(
                ctl_f.node_cpu.rates(), ctl_s.node_cpu.rates()
            )
        assert shed_any, "cost shed limit never tripped in the fixture"
        assert fast.dropped_shed == slow.dropped_shed > 0
        assert fast.accounting() == slow.accounting()


class TestCostConservation:
    def test_extended_conservation_with_reliable_and_cost_gating(self):
        sim = cost_simulation(seed=7, reliable=True)
        for _ in range(40):
            sim.step()
            acct = sim.data_plane.accounting()
            assert acct["balanced"], acct
            assert acct["sent"] == (
                acct["transport_delivered"] + acct["in_flight"] + acct["buffered"]
            )
        assert sim.series.total_failures() > 0

    def test_cost_attribution_every_tick(self):
        sim = cost_simulation(seed=8)
        plane = sim.data_plane
        running = 0.0
        for _ in range(30):
            record = sim.step()
            # Tick total == per-node scatter == TickRecord field.
            assert record.cpu_cost == pytest.approx(
                float(plane.tick_node_cpu.sum())
            )
            running += record.cpu_cost
            assert plane.cpu_cost_total == pytest.approx(running)
            assert plane.cpu_by_node.sum() == pytest.approx(plane.cpu_cost_total)
            assert record.cpu_cost >= 0 and record.cpu_dropped >= 0

    def test_unit_model_cost_is_tuple_count(self):
        overlay, _ = traffic_overlay(seed=9)
        plane = DataPlane(overlay, RuntimeConfig(seed=13, node_capacity=40.0))
        for _ in range(25):
            record = plane.step()
            assert record.cpu_cost == record.processed
            np.testing.assert_array_equal(
                plane.tick_node_cpu, plane.tick_node_processed.astype(float)
            )
        # Cumulatively: every admission rejection cost exactly 1.
        assert plane.cpu_dropped_total == (
            plane.dropped_capacity + plane.dropped_shed
        )
