"""Observability invariants: behavioral neutrality and trace completeness.

The PR-8 discipline: the obs layer watches the data plane but may never
steer it.  Two properties pin that down under chaos (churn + drift +
backpressure + reliable transport + control plane):

1. **Neutrality** — a simulation with full observability attached
   produces a TickRecord stream identical, tick for tick, to a twin
   with no observability at all.  RNG draws, seq assignment, admission
   order: nothing may shift.
2. **Completeness** — at ``sample_rate=1.0`` every traced tuple's span
   must be closed by a terminal event or still be accounted for in the
   transport (in flight or retransmit-buffered), every tick, and the
   per-event totals must reconcile with the data plane's conservation
   counters.  At partial rates the per-span invariant still holds for
   every sampled tuple.

Both hold for the vectorized twin and the scalar reference, and the two
twins' canonical event streams are identical at rate 1.0.
"""

import numpy as np

from repro.network.dynamics import ChurnProcess, LatencyDriftProcess, LoadProcess
from repro.network.topology import grid_topology
from repro.obs import Observability
from repro.runtime import DataPlane, RuntimeConfig
from repro.sbon.overlay import Overlay
from repro.sbon.simulator import Simulation, SimulationConfig
from repro.workloads.queries import WorkloadParams, random_query

PARAMS = WorkloadParams(
    num_producers=3, rate_bounds=(3.0, 8.0), selectivity_bounds=(0.2, 0.6)
)

TICKS = 30


def observed_simulation(seed=0, obs=None, reliable=True, capacity=40.0):
    """Chaotic sim: churn, drift, control plane, reliable transport."""
    overlay = Overlay.build(
        grid_topology(5, 5), vector_dims=2, embedding_rounds=20, seed=seed
    )
    n = overlay.num_nodes
    pinned = set()
    optimizer = overlay.integrated_optimizer()
    for i in range(3):
        query, stats = random_query(n, PARAMS, name=f"q{i}", seed=seed * 10 + i)
        overlay.install(optimizer.optimize(query, stats))
        pinned |= {p.node for p in query.producers} | {query.consumer.node}
    plane = DataPlane(
        overlay, RuntimeConfig(seed=99, node_capacity=capacity, reliable=reliable)
    )
    return Simulation(
        overlay,
        load_process=LoadProcess(n, sigma=0.1, seed=1),
        latency_drift=LatencyDriftProcess(overlay.latencies, drift_sigma=0.03, seed=2),
        churn=ChurnProcess(
            n, fail_prob=0.05, recover_prob=0.3, protected=pinned, seed=3
        ),
        config=SimulationConfig(reopt_interval=3, migration_threshold=0.0),
        data_plane=plane,
        control=True,
        obs=obs,
    )


def full_obs(rate=1.0):
    return Observability(
        tracing=True, trace_rate=rate, metrics=True, profiling=True
    )


class TestBehavioralNeutrality:
    """obs-on and obs-off twins emit identical TickRecord streams."""

    def test_vectorized_twin_unperturbed(self):
        sim_on = observed_simulation(seed=4, obs=full_obs())
        sim_off = observed_simulation(seed=4, obs=None)
        for _ in range(TICKS):
            assert sim_on.step() == sim_off.step()

    def test_scalar_twin_unperturbed(self):
        sim_on = observed_simulation(seed=5, obs=full_obs())
        sim_off = observed_simulation(seed=5, obs=None)
        for _ in range(TICKS):
            assert sim_on.step_scalar() == sim_off.step_scalar()

    def test_partial_rate_unperturbed(self):
        sim_on = observed_simulation(seed=6, obs=full_obs(rate=0.05))
        sim_off = observed_simulation(seed=6, obs=None)
        for _ in range(TICKS):
            assert sim_on.step() == sim_off.step()


class TestTraceCompleteness:
    """Every sampled span is terminal or transport-accounted, every tick."""

    def test_vectorized_full_rate_with_totals(self):
        sim = observed_simulation(seed=4, obs=full_obs())
        for t in range(TICKS):
            sim.step()
            res = sim.data_plane.trace_completeness()
            assert res["ok"], (t, res["violations"])
        assert res["spans"] > 0
        assert sim.data_plane.accounting()["balanced"]

    def test_scalar_full_rate_with_totals(self):
        sim = observed_simulation(seed=4, obs=full_obs())
        for t in range(TICKS):
            sim.step_scalar()
            res = sim.data_plane.trace_completeness()
            assert res["ok"], (t, res["violations"])
        assert res["spans"] > 0

    def test_vectorized_partial_rate(self):
        sim = observed_simulation(seed=7, obs=full_obs(rate=0.05))
        for t in range(TICKS):
            sim.step()
            res = sim.data_plane.trace_completeness()
            assert res["ok"], (t, res["violations"])
        assert sim.data_plane._obs.tracer.num_events > 0

    def test_scalar_partial_rate(self):
        sim = observed_simulation(seed=7, obs=full_obs(rate=0.05))
        for t in range(TICKS):
            sim.step_scalar()
            res = sim.data_plane.trace_completeness()
            assert res["ok"], (t, res["violations"])


class TestTwinTraceEquality:
    """Vectorized and scalar twins record the same canonical events."""

    def test_canonical_streams_identical(self):
        obs_v, obs_s = full_obs(), full_obs()
        sim_v = observed_simulation(seed=4, obs=obs_v)
        sim_s = observed_simulation(seed=4, obs=obs_s)
        for _ in range(TICKS):
            sim_v.step()
            sim_s.step_scalar()
        ev_v = obs_v.tracer.events_canonical()
        assert len(ev_v) > 0
        assert ev_v == obs_s.tracer.events_canonical()

    def test_canonical_streams_identical_partial_rate(self):
        obs_v, obs_s = full_obs(rate=0.1), full_obs(rate=0.1)
        sim_v = observed_simulation(seed=8, obs=obs_v)
        sim_s = observed_simulation(seed=8, obs=obs_s)
        for _ in range(TICKS):
            sim_v.step()
            sim_s.step_scalar()
        ev_v = obs_v.tracer.events_canonical()
        assert len(ev_v) > 0
        assert ev_v == obs_s.tracer.events_canonical()


class TestUninstallTracing:
    """In-flight tuples orphaned by an uninstall get DROP_UNINSTALL spans."""

    def _run(self, step):
        overlay = Overlay.build(
            grid_topology(4, 4), vector_dims=2, embedding_rounds=20, seed=1
        )
        optimizer = overlay.integrated_optimizer()
        for i in range(2):
            query, stats = random_query(16, PARAMS, name=f"q{i}", seed=1 + i)
            overlay.install(optimizer.optimize(query, stats))
        obs = full_obs()
        plane = DataPlane(overlay, RuntimeConfig(seed=8))
        plane.attach_obs(obs)
        for _ in range(10):
            step(plane)
        overlay.uninstall("q0")
        step(plane)
        assert plane.dropped_uninstalled > 0
        tracer = obs.tracer
        events = tracer.events()
        n_uninst = int(np.count_nonzero(events["event"] == tracer.DROP_UNINSTALL))
        assert n_uninst == plane.dropped_uninstalled
        res = plane.trace_completeness()
        assert res["ok"], res["violations"]

    def test_vectorized(self):
        self._run(lambda plane: plane.step())

    def test_scalar(self):
        self._run(lambda plane: plane.step_scalar())
