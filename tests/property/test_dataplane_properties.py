"""Equivalence and conservation properties of the data-plane runtime.

The PR-1/PR-2 discipline: every vectorized kernel keeps a scalar
reference consuming the same RNG draws, pinned by equivalence tests.
For the data plane that means twin instances stepped through
``DataPlane.step`` (batched transport + kernels) and
``DataPlane.step_scalar`` (per-tuple heapq + per-key tables) must agree
tuple for tuple — including under churn, live migration, and
backpressure — and the conservation balance must hold at every tick.
"""

import numpy as np
import pytest

from repro.network.dynamics import ChurnProcess, HotspotEvent, LatencyDriftProcess, LoadProcess
from repro.runtime import jit as jit_kernels
from repro.network.topology import grid_topology
from repro.runtime.dataplane import (
    DataPlane,
    RuntimeConfig,
    _filter_bucket,
    _filter_bucket_int,
    _pair_bucket,
    _pair_bucket_int,
)
from repro.sbon.overlay import Overlay
from repro.sbon.simulator import Simulation, SimulationConfig
from repro.workloads.queries import WorkloadParams, random_query
from repro.workloads.scenarios import chaos_scenario

PARAMS = WorkloadParams(
    num_producers=3, rate_bounds=(3.0, 8.0), selectivity_bounds=(0.2, 0.6)
)


def traffic_overlay(seed=0, num_circuits=3, side=5):
    n = side * side
    overlay = Overlay.build(
        grid_topology(side, side), vector_dims=2, embedding_rounds=20, seed=seed
    )
    pinned = set()
    optimizer = overlay.integrated_optimizer()
    for i in range(num_circuits):
        query, stats = random_query(n, PARAMS, name=f"q{i}", seed=seed * 10 + i)
        overlay.install(optimizer.optimize(query, stats))
        pinned |= {p.node for p in query.producers} | {query.consumer.node}
    return overlay, pinned


def chaotic_simulation(seed=0, capacity=40.0, **runtime):
    overlay, pinned = traffic_overlay(seed)
    n = overlay.num_nodes
    plane = DataPlane(
        overlay, RuntimeConfig(seed=99, node_capacity=capacity, **runtime)
    )
    return Simulation(
        overlay,
        load_process=LoadProcess(n, sigma=0.1, seed=1),
        latency_drift=LatencyDriftProcess(overlay.latencies, drift_sigma=0.03, seed=2),
        churn=ChurnProcess(
            n, fail_prob=0.01, recover_prob=0.2, protected=pinned, seed=3
        ),
        config=SimulationConfig(reopt_interval=3, migration_threshold=0.0),
        data_plane=plane,
    )


def assert_traffic_equal(rv, rs):
    """Works on both TrafficRecord (.usage) and TickRecord (.data_usage)."""
    assert (rv.emitted, rv.delivered, rv.dropped) == (rs.emitted, rs.delivered, rs.dropped)
    uv = rv.usage if hasattr(rv, "usage") else rv.data_usage
    us = rs.usage if hasattr(rs, "usage") else rs.data_usage
    assert uv == pytest.approx(us, rel=1e-9, abs=1e-6)
    assert rv.latency_p50 == pytest.approx(rs.latency_p50, abs=1e-9)
    assert rv.latency_p95 == pytest.approx(rs.latency_p95, abs=1e-9)
    assert rv.latency_p99 == pytest.approx(rs.latency_p99, abs=1e-9)


class TestHashParity:
    """The batched buckets and their per-tuple twins are the same hash."""

    def test_filter_bucket_matches_int_version(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 1 << 31, size=500)
        salts = rng.integers(0, 1 << 20, size=500)
        batched = _filter_bucket(keys, salts)
        for i in range(500):
            assert batched[i] == _filter_bucket_int(int(keys[i]), int(salts[i]))

    def test_pair_bucket_matches_int_version_and_is_symmetric(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 1 << 31, size=500)
        ta = rng.integers(0, 1 << 20, size=500)
        tb = rng.integers(0, 1 << 20, size=500)
        salts = rng.integers(0, 1 << 20, size=500)
        batched = _pair_bucket(keys, ta, tb, salts)
        swapped = _pair_bucket(keys, tb, ta, salts)
        np.testing.assert_array_equal(batched, swapped)
        for i in range(500):
            assert batched[i] == _pair_bucket_int(
                int(keys[i]), int(ta[i]), int(tb[i]), int(salts[i])
            )

    def test_buckets_are_uniform_enough(self):
        rng = np.random.default_rng(2)
        b = _filter_bucket(rng.integers(0, 1 << 40, size=20000), np.zeros(20000, dtype=np.int64))
        assert 0.0 <= b.min() and b.max() < 1.0
        assert abs(b.mean() - 0.5) < 0.02


class TestStepEquivalence:
    def test_plain_traffic_twins_agree(self):
        a = DataPlane(traffic_overlay(seed=4)[0], RuntimeConfig(seed=7))
        b = DataPlane(traffic_overlay(seed=4)[0], RuntimeConfig(seed=7))
        for _ in range(30):
            assert_traffic_equal(a.step(), b.step_scalar())
        assert a.accounting() == b.accounting()
        assert a.accounting()["balanced"]

    def test_twins_agree_under_churn_migration_and_backpressure(self):
        a, b = chaotic_simulation(seed=5), chaotic_simulation(seed=5)
        for _ in range(30):
            rv, rs = a.step(), b.step_scalar()
            assert (rv.migrations, rv.failures) == (rs.migrations, rs.failures)
            assert_traffic_equal(rv, rs)
        assert a.data_plane.accounting() == b.data_plane.accounting()
        assert a.data_plane.accounting()["balanced"]
        # Placements stayed twin-equal through live migrations too.
        for name, circuit in a.overlay.circuits.items():
            assert circuit.placement == b.overlay.circuits[name].placement

    def test_twins_agree_across_uninstall_and_install(self):
        ov_a, _ = traffic_overlay(seed=6)
        ov_b, _ = traffic_overlay(seed=6)
        a = DataPlane(ov_a, RuntimeConfig(seed=5))
        b = DataPlane(ov_b, RuntimeConfig(seed=5))
        for _ in range(10):
            assert_traffic_equal(a.step(), b.step_scalar())
        ov_a.uninstall("q1")
        ov_b.uninstall("q1")
        for _ in range(5):
            assert_traffic_equal(a.step(), b.step_scalar())
        assert a.dropped_uninstalled == b.dropped_uninstalled > 0
        query, stats = random_query(25, PARAMS, name="q9", seed=77)
        ov_a.install(ov_a.integrated_optimizer().optimize(query, stats))
        ov_b.install(ov_b.integrated_optimizer().optimize(query, stats))
        for _ in range(10):
            assert_traffic_equal(a.step(), b.step_scalar())
        assert a.accounting() == b.accounting()
        assert a.accounting()["balanced"]


class TestJoinStateLayouts:
    """Epoch-ring join state is pinned bit-identical to the two-level
    reference — and the high-water admission ledger to the frozen-scan
    reference — under the full chaos mix: churn, live migration,
    capacity backpressure, and window expiry.  Tiny merge/flush limits
    force many epoch seals and generation folds, so expiring windows
    cross epoch boundaries constantly instead of staying inside the
    append buffer.
    """

    VARIANTS = [
        ("epoch", "highwater", "auto"),  # the defaults, jit fallback live
        ("epoch", "frozen", "numpy"),
        ("twolevel", "highwater", "numpy"),
    ]

    @staticmethod
    def _shrink(sim):
        sim.data_plane._state_merge_limit = 16
        sim.data_plane._epoch_flush_limit = 16
        return sim

    def test_all_layouts_agree_under_chaos(self):
        common = dict(seed=5, window=8)
        ref = self._shrink(
            chaotic_simulation(
                join_state="twolevel", admission="frozen", jit="numpy", **common
            )
        )
        others = [
            self._shrink(
                chaotic_simulation(
                    join_state=js, admission=adm, jit=jit, **common
                )
            )
            for js, adm, jit in self.VARIANTS
        ]
        for _ in range(40):
            r0 = ref.step()
            for sim in others:
                assert sim.step() == r0
        acct = ref.data_plane.accounting()
        assert acct["balanced"]
        for sim in others:
            assert sim.data_plane.accounting() == acct
        # The equivalence exercised real epoch machinery: the ring
        # sealed chunks and chaos produced churn-driven eviction.
        epoch_plane = others[0].data_plane
        assert len(epoch_plane._ring) >= 1
        assert acct["dropped"] > 0

    def test_epoch_scalar_twin_still_agrees(self):
        """The scalar per-key reference is layout-blind: epoch defaults
        on the vectorized side must still match it tuple for tuple."""
        a = chaotic_simulation(seed=7, window=8)
        b = chaotic_simulation(seed=7, window=8)
        a.data_plane._state_merge_limit = 16
        a.data_plane._epoch_flush_limit = 16
        for _ in range(25):
            rv, rs = a.step(), b.step_scalar()
            assert (rv.migrations, rv.failures) == (rs.migrations, rs.failures)
            assert_traffic_equal(rv, rs)
        assert a.data_plane.accounting() == b.data_plane.accounting()


class TestJitTier:
    """The optional numba tier is a pure accelerator: same records."""

    def test_auto_matches_numpy_bit_for_bit(self):
        # With numba absent "auto" silently falls back to NumPy; with
        # numba present it compiles — either way records are identical.
        a = DataPlane(
            traffic_overlay(seed=4)[0],
            RuntimeConfig(seed=7, node_capacity=40.0, jit="auto"),
        )
        b = DataPlane(
            traffic_overlay(seed=4)[0],
            RuntimeConfig(seed=7, node_capacity=40.0, jit="numpy"),
        )
        for _ in range(30):
            assert a.step() == b.step()
        assert a.accounting() == b.accounting()
        assert a.accounting()["balanced"]

    def test_numba_tier_matches_numpy_bit_for_bit(self):
        if not jit_kernels.numba_available():
            pytest.skip("numba not installed in this environment")
        a = DataPlane(
            traffic_overlay(seed=4)[0],
            RuntimeConfig(seed=7, node_capacity=40.0, jit="numba"),
        )
        b = DataPlane(
            traffic_overlay(seed=4)[0],
            RuntimeConfig(seed=7, node_capacity=40.0, jit="numpy"),
        )
        for _ in range(30):
            assert a.step() == b.step()
        assert a.accounting() == b.accounting()

    def test_explicit_numba_errors_without_numba(self):
        if jit_kernels.numba_available():
            pytest.skip("numba installed: the explicit tier works")
        with pytest.raises(RuntimeError):
            DataPlane(
                traffic_overlay(seed=4)[0], RuntimeConfig(seed=7, jit="numba")
            )


class TestConservation:
    def test_no_tuple_lost_under_chaos(self):
        scenario = chaos_scenario(num_nodes=30, num_circuits=3, node_capacity=40.0, seed=3)
        sim = scenario.simulation
        for _ in range(50):
            sim.step()
            acct = scenario.data_plane.accounting()
            assert acct["balanced"], acct
        assert sim.series.total_failures() > 0
        assert sim.series.total_migrations() > 0
        assert scenario.data_plane.dropped > 0
        assert sim.series.total_delivered() > 0

    def test_lossless_without_churn_or_capacity(self):
        overlay, _ = traffic_overlay(seed=8)
        plane = DataPlane(overlay, RuntimeConfig(seed=1))
        for _ in range(40):
            plane.step()
        acct = plane.accounting()
        assert acct["balanced"]
        assert acct["dropped"] == 0
        assert acct["sent"] == acct["processed"] + acct["in_flight"]


class TestDeterminism:
    def test_same_seed_same_series(self):
        a = DataPlane(traffic_overlay(seed=9)[0], RuntimeConfig(seed=13))
        b = DataPlane(traffic_overlay(seed=9)[0], RuntimeConfig(seed=13))
        for _ in range(20):
            assert a.step() == b.step()

    def test_different_seed_differs(self):
        a = DataPlane(traffic_overlay(seed=9)[0], RuntimeConfig(seed=13))
        b = DataPlane(traffic_overlay(seed=9)[0], RuntimeConfig(seed=14))
        records_a = [a.step() for _ in range(10)]
        records_b = [b.step() for _ in range(10)]
        assert any(ra.emitted != rb.emitted for ra, rb in zip(records_a, records_b))
