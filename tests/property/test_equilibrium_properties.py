"""Property tests: iterative relaxation agrees with the exact solver."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.circuit import Circuit
from repro.core.optimizer import pinned_vector_positions
from repro.core.virtual_placement import (
    exact_spring_equilibrium,
    placement_energy,
    relaxation_placement,
)
from repro.query.generator import enumerate_all_plans
from repro.query.model import Consumer, Producer, QuerySpec
from repro.query.selectivity import Statistics
from repro.workloads.scenarios import perfect_cost_space

position = st.tuples(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)


@st.composite
def instances(draw):
    num_producers = draw(st.integers(min_value=2, max_value=4))
    n = num_producers + 1 + draw(st.integers(min_value=1, max_value=5))
    positions = [draw(position) for _ in range(n)]
    seed = draw(st.integers(min_value=0, max_value=1 << 16))
    plan_idx = draw(st.integers(min_value=0, max_value=1 << 10))
    names = [f"P{i}" for i in range(num_producers)]
    stats = Statistics.random(names, seed=seed)
    producers = [
        Producer(name, node=i, rate=stats.rate(name))
        for i, name in enumerate(names)
    ]
    query = QuerySpec(
        name="q", producers=producers, consumer=Consumer("C", node=num_producers)
    )
    return positions, query, stats, plan_idx


@given(instances())
@settings(max_examples=50, deadline=None)
def test_relaxation_converges_to_exact_equilibrium(instance):
    positions, query, stats, plan_idx = instance
    space = perfect_cost_space(positions)
    plans = enumerate_all_plans(query.producer_names)
    plan = plans[plan_idx % len(plans)]
    circuit = Circuit.from_plan(plan, query, stats)
    pinned = pinned_vector_positions(circuit, space)

    exact = exact_spring_equilibrium(circuit, pinned)
    iterative = relaxation_placement(
        circuit, pinned, max_iterations=2000, tolerance=1e-8
    )
    scale = max(
        1.0,
        float(np.linalg.norm(np.ptp(np.array(list(pinned.values())), axis=0))),
    )
    for sid, exact_pos in exact.positions.items():
        gap = float(np.linalg.norm(exact_pos - iterative.position_of(sid)))
        assert gap <= 1e-3 * scale


@given(instances())
@settings(max_examples=50, deadline=None)
def test_exact_equilibrium_is_a_local_minimum(instance):
    positions, query, stats, plan_idx = instance
    space = perfect_cost_space(positions)
    plans = enumerate_all_plans(query.producer_names)
    plan = plans[plan_idx % len(plans)]
    circuit = Circuit.from_plan(plan, query, stats)
    pinned = pinned_vector_positions(circuit, space)
    exact = exact_spring_equilibrium(circuit, pinned)

    base = dict(pinned)
    base.update(exact.positions)
    base_energy = placement_energy(circuit, base)
    rng = np.random.default_rng(0)
    for sid in exact.positions:
        for _ in range(4):
            nudged = {k: v.copy() for k, v in base.items()}
            nudged[sid] = nudged[sid] + rng.normal(0, 0.5, size=2)
            assert placement_energy(circuit, nudged) >= base_energy - 1e-6
