"""Property-based tests for plan generation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.generator import (
    count_all_plans,
    enumerate_all_plans,
    enumerate_left_deep_plans,
    top_k_plans,
)
from repro.query.selectivity import Statistics, rate_of_subset

names_strategy = st.integers(min_value=1, max_value=5).map(
    lambda n: [f"P{i}" for i in range(n)]
)


@given(names_strategy)
@settings(max_examples=20, deadline=None)
def test_full_enumeration_count_and_coverage(names):
    plans = enumerate_all_plans(names)
    assert len(plans) == count_all_plans(len(names))
    signatures = {p.signature() for p in plans}
    assert len(signatures) == len(plans)
    for plan in plans:
        assert plan.producers == frozenset(names)
        assert plan.num_services == len(names) - 1


@given(names_strategy, st.integers(min_value=0, max_value=1 << 16))
@settings(max_examples=40, deadline=None)
def test_topk_best_matches_brute_force(names, seed):
    stats = Statistics.random(names, seed=seed)
    dp = top_k_plans(names, stats, k=1)[0]
    brute = min(
        enumerate_all_plans(names), key=lambda p: p.intermediate_rate_cost(stats)
    )
    assert abs(
        dp.intermediate_rate_cost(stats) - brute.intermediate_rate_cost(stats)
    ) <= 1e-9 * max(1.0, brute.intermediate_rate_cost(stats))


@given(names_strategy, st.integers(min_value=0, max_value=1 << 16))
@settings(max_examples=30, deadline=None)
def test_topk_subset_of_enumeration_costs(names, seed):
    stats = Statistics.random(names, seed=seed)
    all_costs = {
        p.signature(): p.intermediate_rate_cost(stats)
        for p in enumerate_all_plans(names)
    }
    for plan in top_k_plans(names, stats, k=4):
        sig = plan.signature()
        assert sig in all_costs
        assert abs(plan.intermediate_rate_cost(stats) - all_costs[sig]) <= 1e-9 * max(
            1.0, all_costs[sig]
        )


@given(names_strategy)
@settings(max_examples=20, deadline=None)
def test_left_deep_plans_are_subset_of_all_plans(names):
    all_sigs = {p.signature() for p in enumerate_all_plans(names)}
    for plan in enumerate_left_deep_plans(names):
        assert plan.is_left_deep()
        assert plan.signature() in all_sigs


@given(
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=0, max_value=1 << 16),
)
@settings(max_examples=40, deadline=None)
def test_root_rate_identical_across_plans(n, seed):
    # All plans over the same producers produce the same final stream:
    # the root output rate must be plan-independent.
    names = [f"P{i}" for i in range(n)]
    stats = Statistics.random(names, seed=seed)
    expected = rate_of_subset(stats, set(names))
    for plan in enumerate_all_plans(names):
        assert abs(plan.root.output_rate(stats) - expected) <= 1e-9 * expected
