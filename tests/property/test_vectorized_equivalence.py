"""Equivalence: vectorized kernels vs retained scalar references.

The struct-of-arrays refactor keeps the pre-vectorization Python-loop
implementations (``nearest_node_scalar``, ``nodes_within_scalar``,
``sweep_scalar``, ``placement_*_scalar``, the dynamics ``step_scalar``
family, ``Reoptimizer.local_step_scalar`` / ``evacuate_scalar``, the
scalar Hilbert/Morton encoders, and ``Simulation.step_scalar``) as
ground truth; these tests assert the production vectorized paths
reproduce them to 1e-9 (exact integers for curve keys and RNG-driven
state) on randomized inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.circuit import Circuit, Service
from repro.core.coordinates import CostCoordinate
from repro.core.cost_space import (
    CostSpace,
    CostSpaceSpec,
    nearest_node_scalar,
    nodes_within_scalar,
)
from repro.core import virtual_placement as vp
from repro.core.costs import CostSpaceEvaluator, GroundTruthEvaluator
from repro.core.reoptimizer import Reoptimizer, _CircuitKernel
from repro.core.weighting import exponential, linear, squared, threshold, zero
from repro.dht import hilbert as hb
from repro.dht.chord import ChordRing
from repro.network.dynamics import (
    ChurnProcess,
    HotspotEvent,
    LatencyDriftProcess,
    LoadProcess,
)
from repro.network.latency import LatencyMatrix
from repro.query.operators import ServiceSpec


@st.composite
def spaces_and_targets(draw):
    seed = draw(st.integers(min_value=0, max_value=1 << 16))
    n = draw(st.integers(min_value=1, max_value=120))
    vector_dims = draw(st.integers(min_value=1, max_value=3))
    with_load = draw(st.booleans())
    rng = np.random.default_rng(seed)
    embedding = rng.uniform(-100.0, 100.0, size=(n, vector_dims))
    if with_load:
        spec = CostSpaceSpec.latency_load(vector_dims=vector_dims)
        space = CostSpace.from_embedding(
            spec, embedding, {"cpu_load": rng.uniform(0, 1, size=n)}
        )
        scalars = (float(rng.uniform(0, 100)),)
    else:
        spec = CostSpaceSpec.latency_only(vector_dims=vector_dims)
        space = CostSpace.from_embedding(spec, embedding)
        scalars = ()
    target = CostCoordinate(
        tuple(float(v) for v in rng.uniform(-100, 100, size=vector_dims)), scalars
    )
    num_excluded = draw(st.integers(min_value=0, max_value=max(0, n - 1)))
    exclude = set(int(i) for i in rng.choice(n, size=num_excluded, replace=False))
    return space, target, exclude, seed


class TestCostSpaceQueries:
    @given(spaces_and_targets())
    @settings(max_examples=80, deadline=None)
    def test_nearest_node_matches_scalar(self, case):
        space, target, exclude, _ = case
        assert space.nearest_node(target, exclude=exclude) == nearest_node_scalar(
            space, target, exclude=exclude
        )

    @given(spaces_and_targets())
    @settings(max_examples=80, deadline=None)
    def test_nodes_within_matches_scalar(self, case):
        space, target, exclude, seed = case
        rng = np.random.default_rng(seed + 1)
        radius = float(rng.uniform(0, 250))
        assert space.nodes_within(target, radius, exclude=exclude) == (
            nodes_within_scalar(space, target, radius, exclude=exclude)
        )

    @given(spaces_and_targets())
    @settings(max_examples=40, deadline=None)
    def test_distances_from_matches_pointwise(self, case):
        space, target, _, _ = case
        batched = space.distances_from(target)
        pointwise = np.array(
            [target.distance_to(space.coordinate(i)) for i in range(space.num_nodes)]
        )
        assert np.allclose(batched, pointwise, atol=1e-9)

    @given(spaces_and_targets())
    @settings(max_examples=40, deadline=None)
    def test_nearest_nodes_batch_matches_single(self, case):
        space, target, exclude, seed = case
        rng = np.random.default_rng(seed + 2)
        targets = [target]
        for _ in range(4):
            targets.append(
                CostCoordinate(
                    tuple(
                        float(v)
                        for v in rng.uniform(-100, 100, size=target.vector_dims)
                    ),
                    tuple(float(rng.uniform(0, 100)) for _ in target.scalar),
                )
            )
        batched = space.nearest_nodes(targets, exclude=exclude)
        singles = [space.nearest_node(t, exclude=exclude) for t in targets]
        assert list(batched) == singles


class TestWeightingArrays:
    @pytest.mark.parametrize(
        "weighting",
        [squared(70.0), linear(30.0), exponential(3.0, 50.0), threshold(0.6, 80.0), zero()],
        ids=lambda w: w.name,
    )
    def test_apply_array_matches_scalar(self, weighting):
        rng = np.random.default_rng(11)
        values = rng.uniform(0.0, 1.0, size=257)
        batched = weighting.apply_array(values)
        pointwise = np.array([weighting(v) for v in values])
        assert np.allclose(batched, pointwise, atol=1e-9)

    def test_apply_array_rejects_negative_input(self):
        with pytest.raises(ValueError):
            squared().apply_array(np.array([0.1, -0.2]))


def random_circuit(seed: int, num_unpinned: int = 12, num_pinned: int = 4):
    """A random connected circuit plus pinned vector positions."""
    rng = np.random.default_rng(seed)
    circuit = Circuit(name="t")
    pinned_positions = {}
    for a in range(num_pinned):
        sid = f"t/p{a}"
        circuit.add_service(
            Service(sid, ServiceSpec.relay(), pinned_node=a, producers=frozenset((f"P{a}",)))
        )
        pinned_positions[sid] = rng.uniform(-50.0, 50.0, size=2)
    ids = list(circuit.services)
    for i in range(num_unpinned):
        sid = f"t/s{i}"
        circuit.add_service(
            Service(sid, ServiceSpec.join(), pinned_node=None, producers=frozenset((f"S{i}",)))
        )
        # Connect to an existing service (keeps the graph connected) and
        # sometimes to a second one; zero rates exercise the skip path.
        circuit.add_link(str(rng.choice(ids)), sid, float(rng.uniform(0.0, 8.0)))
        if rng.random() < 0.7:
            other = str(rng.choice(ids))
            if other != sid:
                circuit.add_link(other, sid, float(rng.uniform(0.0, 8.0)))
        ids.append(sid)
    return circuit, pinned_positions


SWEEP_MODES = [
    ("relaxation", True, False),
    ("centroid", False, False),
    ("weiszfeld", True, True),
]


class TestPlacementSweeps:
    @pytest.mark.parametrize("mode,rate_weighted,distance_weighted", SWEEP_MODES)
    @pytest.mark.parametrize("seed", range(6))
    def test_matrix_sweep_matches_scalar_sweep(
        self, seed, mode, rate_weighted, distance_weighted
    ):
        circuit, pinned_positions = random_circuit(seed)
        positions, unpinned = vp._pinned_and_unpinned(circuit, pinned_positions)
        arrays = vp._CircuitArrays(circuit, positions, unpinned)
        center = np.mean(
            [positions[sid] for sid in circuit.pinned_ids()], axis=0
        )
        scalar_positions = dict(positions)
        scalar_positions.update({sid: center.copy() for sid in unpinned})

        for _ in range(5):
            move_vec = arrays.sweep(rate_weighted, distance_weighted)
            move_ref = vp.sweep_scalar(
                circuit, scalar_positions, unpinned, rate_weighted, distance_weighted
            )
            assert move_vec == pytest.approx(move_ref, abs=1e-9)
            placed = arrays.unpinned_positions()
            for sid in unpinned:
                assert np.allclose(placed[sid], scalar_positions[sid], atol=1e-9)

    @pytest.mark.parametrize("seed", range(4))
    def test_objectives_match_scalar(self, seed):
        circuit, pinned_positions = random_circuit(seed)
        placement = vp.relaxation_placement(circuit, pinned_positions)
        positions = {sid: np.asarray(p) for sid, p in pinned_positions.items()}
        positions.update(placement.positions)
        assert vp.placement_energy(circuit, positions) == pytest.approx(
            vp.placement_energy_scalar(circuit, positions), rel=1e-9
        )
        assert vp.placement_utilization(circuit, positions) == pytest.approx(
            vp.placement_utilization_scalar(circuit, positions), rel=1e-9
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_full_placements_match_scalar_driver(self, seed):
        """Whole runs agree: same sweeps, same convergence, same result."""
        circuit, pinned_positions = random_circuit(seed, num_unpinned=20)
        positions, unpinned = vp._pinned_and_unpinned(circuit, pinned_positions)
        center = np.mean([positions[sid] for sid in circuit.pinned_ids()], axis=0)
        positions.update({sid: center.copy() for sid in unpinned})
        for _ in range(200):
            if vp.sweep_scalar(circuit, positions, unpinned, True, False) < 1e-4:
                break
        placement = vp.relaxation_placement(circuit, pinned_positions)
        for sid in unpinned:
            assert np.allclose(placement.position_of(sid), positions[sid], atol=1e-9)


class TestExactEquilibriumSolvers:
    @pytest.mark.parametrize("seed", range(3))
    def test_sparse_and_dense_solvers_agree(self, seed, monkeypatch):
        if vp._sparse() is None:
            pytest.skip("scipy not available")
        circuit, pinned_positions = random_circuit(seed, num_unpinned=80)
        monkeypatch.setattr(vp, "SPARSE_SOLVER_THRESHOLD", 1)
        sparse = vp.exact_spring_equilibrium(circuit, pinned_positions)
        monkeypatch.setattr(vp, "SPARSE_SOLVER_THRESHOLD", 1 << 30)
        dense = vp.exact_spring_equilibrium(circuit, pinned_positions)
        assert sparse.positions.keys() == dense.positions.keys()
        for sid in sparse.positions:
            assert np.allclose(
                sparse.positions[sid], dense.positions[sid], atol=1e-7
            )

    def test_large_circuit_uses_sparse_path(self):
        if vp._sparse() is None:
            pytest.skip("scipy not available")
        circuit, pinned_positions = random_circuit(1, num_unpinned=vp.SPARSE_SOLVER_THRESHOLD + 10)
        result = vp.exact_spring_equilibrium(circuit, pinned_positions)
        relax = vp.relaxation_placement(
            circuit, pinned_positions, max_iterations=5000, tolerance=1e-10
        )
        for sid, pos in result.positions.items():
            assert np.allclose(relax.position_of(sid), pos, atol=1e-4)


# -- dynamics processes ----------------------------------------------------


def _twin_load_processes(seed: int) -> tuple[LoadProcess, LoadProcess]:
    def make() -> LoadProcess:
        proc = LoadProcess(num_nodes=40, sigma=0.08, seed=seed)
        proc.add_hotspot(HotspotEvent(start_tick=2, duration=4, nodes=(1, 5, 9), extra_load=0.5))
        proc.add_hotspot(HotspotEvent(start_tick=5, duration=2, nodes=(5, 6), extra_load=0.9))
        return proc

    return make(), make()


class TestDynamicsEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_load_step_matches_scalar(self, seed):
        vector, scalar = _twin_load_processes(seed)
        for _ in range(8):
            assert np.allclose(vector.step(), scalar.step_scalar(), atol=1e-9)
            assert np.allclose(vector.loads(), scalar.loads_scalar(), atol=1e-9)

    @pytest.mark.parametrize("seed", range(4))
    def test_latency_drift_step_matches_scalar(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.uniform(0, 50, size=(12, 2))
        diff = points[:, None, :] - points[None, :, :]
        base = LatencyMatrix(np.sqrt((diff ** 2).sum(axis=-1)))
        vector = LatencyDriftProcess(base, drift_sigma=0.05, reversion=0.1, seed=seed)
        scalar = LatencyDriftProcess(base, drift_sigma=0.05, reversion=0.1, seed=seed)
        for _ in range(5):
            assert np.allclose(
                vector.step().values, scalar.step_scalar().values, atol=1e-9
            )

    @pytest.mark.parametrize("seed", range(5))
    def test_churn_step_matches_scalar(self, seed):
        kwargs = dict(
            num_nodes=60, fail_prob=0.15, recover_prob=0.4, protected={0, 3}, seed=seed
        )
        vector, scalar = ChurnProcess(**kwargs), ChurnProcess(**kwargs)
        for _ in range(10):
            assert vector.step() == scalar.step_scalar()
            assert vector.alive() == scalar.alive()

    def test_processes_are_deterministic_per_seed(self):
        # Satellite: one seeded np.random.Generator per process — the
        # same seed must replay the exact same trajectory.
        a, b = _twin_load_processes(9)
        a.step(12), b.step(12)
        assert np.array_equal(a.loads(), b.loads())
        base = LatencyMatrix.from_topology(__import__("repro.network.topology", fromlist=["grid_topology"]).grid_topology(3, 3))
        d1 = LatencyDriftProcess(base, seed=9)
        d2 = LatencyDriftProcess(base, seed=9)
        assert np.array_equal(d1.step(6).values, d2.step(6).values)
        c1 = ChurnProcess(30, fail_prob=0.3, recover_prob=0.5, seed=9)
        c2 = ChurnProcess(30, fail_prob=0.3, recover_prob=0.5, seed=9)
        assert c1.step(6) == c2.step(6)
        assert c1.alive() == c2.alive()


# -- re-optimizer pricing --------------------------------------------------


def _random_placed_circuit(
    rng: np.random.Generator, n: int, name: str = "r", num_unpinned: int = 8
) -> Circuit:
    """A random connected circuit fully placed on nodes ``[0, n)``."""
    circuit = Circuit(name=name)
    for a in range(3):
        circuit.add_service(
            Service(
                f"{name}/p{a}",
                ServiceSpec.relay(),
                int(rng.integers(n)),
                frozenset((f"P{a}",)),
            )
        )
    ids = list(circuit.services)
    for i in range(num_unpinned):
        sid = f"{name}/s{i}"
        circuit.add_service(
            Service(sid, ServiceSpec.join(), None, frozenset((f"S{i}",)))
        )
        circuit.add_link(str(rng.choice(ids)), sid, float(rng.uniform(0.0, 8.0)))
        if rng.random() < 0.6:
            other = str(rng.choice(ids))
            if other != sid:
                circuit.add_link(other, sid, float(rng.uniform(0.0, 8.0)))
        circuit.assign(sid, int(rng.integers(n)))
        ids.append(sid)
    return circuit


def _placed_circuit_and_space(seed: int, num_unpinned: int = 8):
    """A random placed circuit over a random latency+load cost space."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(20, 60))
    spec = CostSpaceSpec.latency_load(vector_dims=2)
    embedding = rng.uniform(-80.0, 80.0, size=(n, 2))
    loads = rng.uniform(0.0, 1.0, size=n)
    space = CostSpace.from_embedding(spec, embedding, {"cpu_load": loads})
    circuit = _random_placed_circuit(rng, n, num_unpinned=num_unpinned)
    latencies = None
    if seed % 2 == 0:
        diff = embedding[:, None, :] - embedding[None, :, :]
        latencies = LatencyMatrix(np.sqrt((diff ** 2).sum(axis=-1)))
    return circuit, space, loads, latencies


def _evaluator_for(seed, space, loads, latencies):
    if latencies is not None:
        return GroundTruthEvaluator(latencies, loads)
    return CostSpaceEvaluator(space)


class TestReoptimizerEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_kernel_total_matches_evaluator(self, seed):
        circuit, space, loads, latencies = _placed_circuit_and_space(seed)
        evaluator = _evaluator_for(seed, space, loads, latencies)
        kernel = _CircuitKernel(circuit)
        hosts = kernel.hosts(circuit)
        for load_weight in (0.0, 0.7, 1.0):
            expected = evaluator.evaluate(circuit, load_weight=load_weight).total
            assert kernel.total(hosts, evaluator, load_weight) == pytest.approx(
                expected, rel=1e-9, abs=1e-9
            )

    @pytest.mark.parametrize("seed", range(8))
    def test_kernel_targets_match_local_targets(self, seed):
        circuit, space, loads, latencies = _placed_circuit_and_space(seed)
        reopt = Reoptimizer(space)
        kernel = _CircuitKernel(circuit)
        batched = kernel.targets(kernel.hosts(circuit), space.vector_matrix())
        for k, sid in enumerate(kernel.unpinned_sids):
            assert np.allclose(batched[k], reopt._local_target(circuit, sid), atol=1e-9)

    @pytest.mark.parametrize("seed", range(8))
    def test_local_step_matches_scalar(self, seed):
        circuit, space, loads, latencies = _placed_circuit_and_space(seed)
        evaluator = _evaluator_for(seed, space, loads, latencies)
        vec_circuit, sc_circuit = circuit.copy(), circuit.copy()
        vec = Reoptimizer(space, evaluator=evaluator, migration_threshold=0.01)
        sc = Reoptimizer(space, evaluator=evaluator, migration_threshold=0.01)
        rv = vec.local_step(vec_circuit)
        rs = sc.local_step_scalar(sc_circuit)
        assert [(m.service_id, m.from_node, m.to_node) for m in rv.migrations] == [
            (m.service_id, m.from_node, m.to_node) for m in rs.migrations
        ]
        assert vec_circuit.placement == sc_circuit.placement
        for mv, ms in zip(rv.migrations, rs.migrations):
            assert mv.cost_before == pytest.approx(ms.cost_before, rel=1e-9)
            assert mv.cost_after == pytest.approx(ms.cost_after, rel=1e-9)
        assert rv.cost_before.total == pytest.approx(rs.cost_before.total, rel=1e-9)
        assert rv.cost_after.total == pytest.approx(rs.cost_after.total, rel=1e-9)

    @pytest.mark.parametrize("seed", range(6))
    def test_step_all_matches_scalar(self, seed):
        _, space, _, _ = _placed_circuit_and_space(seed)
        rng = np.random.default_rng(seed + 100)
        circuits_v, circuits_s = [], []
        for offset in range(3):
            circuit = _random_placed_circuit(rng, space.num_nodes, name=f"r{offset}")
            circuits_v.append(circuit.copy())
            circuits_s.append(circuit.copy())
        vec = Reoptimizer(space, migration_threshold=0.01)
        sc = Reoptimizer(space, migration_threshold=0.01)
        reports_v = vec.step_all(circuits_v)
        reports_s = sc.step_all_scalar(circuits_s)
        for rv, rs, cv, cs in zip(reports_v, reports_s, circuits_v, circuits_s):
            assert [(m.service_id, m.to_node) for m in rv.migrations] == [
                (m.service_id, m.to_node) for m in rs.migrations
            ]
            assert cv.placement == cs.placement

    @pytest.mark.parametrize("seed", range(6))
    def test_evacuate_matches_scalar(self, seed):
        circuit, space, loads, latencies = _placed_circuit_and_space(seed)
        evaluator = _evaluator_for(seed, space, loads, latencies)
        failed = circuit.host_of(circuit.unpinned_ids()[0])
        vec_circuit, sc_circuit = circuit.copy(), circuit.copy()
        vec = Reoptimizer(space, evaluator=evaluator)
        sc = Reoptimizer(space, evaluator=evaluator)
        mv = vec.evacuate(vec_circuit, failed)
        ms = sc.evacuate_scalar(sc_circuit, failed)
        assert [(m.service_id, m.to_node) for m in mv] == [
            (m.service_id, m.to_node) for m in ms
        ]
        assert vec_circuit.placement == sc_circuit.placement
        for a, b in zip(mv, ms):
            assert a.cost_before == pytest.approx(b.cost_before, rel=1e-9)
            assert a.cost_after == pytest.approx(b.cost_after, rel=1e-9)


# -- Hilbert / Morton batch kernels ---------------------------------------


@st.composite
def curve_cases(draw):
    dims = draw(st.integers(min_value=1, max_value=6))
    bits = draw(st.integers(min_value=1, max_value=min(10, 64 // dims)))
    seed = draw(st.integers(min_value=0, max_value=1 << 16))
    rng = np.random.default_rng(seed)
    m = int(rng.integers(1, 80))
    coords = rng.integers(0, 1 << bits, size=(m, dims))
    return bits, dims, coords


class TestCurveBatchEquivalence:
    @given(curve_cases())
    @settings(max_examples=60, deadline=None)
    def test_hilbert_batch_matches_scalar_roundtrip(self, case):
        bits, dims, coords = case
        keys = hb.hilbert_encode_batch(coords, bits)
        reference = [
            hb.hilbert_encode(tuple(int(c) for c in row), bits) for row in coords
        ]
        assert [int(k) for k in keys] == reference
        decoded = hb.hilbert_decode_batch(keys, bits, dims)
        assert np.array_equal(decoded.astype(np.int64), coords)

    @given(curve_cases())
    @settings(max_examples=60, deadline=None)
    def test_morton_batch_matches_scalar_roundtrip(self, case):
        bits, dims, coords = case
        keys = hb.morton_encode_batch(coords, bits)
        reference = [
            hb.morton_encode(tuple(int(c) for c in row), bits) for row in coords
        ]
        assert [int(k) for k in keys] == reference
        decoded = hb.morton_decode_batch(keys, bits, dims)
        assert np.array_equal(decoded.astype(np.int64), coords)

    @given(st.integers(min_value=0, max_value=1 << 16))
    @settings(max_examples=40, deadline=None)
    def test_mapper_batch_keys_match_scalar(self, seed):
        rng = np.random.default_rng(seed)
        dims = int(rng.integers(1, 4))
        bits = int(rng.integers(2, 11))
        lows = rng.uniform(-50, 0, size=dims)
        highs = lows + rng.uniform(1.0, 100.0, size=dims)
        mapper = hb.HilbertMapper(tuple(lows), tuple(highs), bits=bits)
        points = rng.uniform(-80, 120, size=(50, dims))
        batched = mapper.keys_for(points)
        reference = [hb.hilbert_encode(mapper.quantize(p), bits) for p in points]
        assert [int(k) for k in batched] == reference
        cells = mapper.quantize_batch(points)
        for row, point in zip(cells, points):
            assert tuple(int(c) for c in row) == mapper.quantize(point)


class TestChordBatchOwners:
    @given(st.integers(min_value=0, max_value=1 << 16))
    @settings(max_examples=30, deadline=None)
    def test_owners_of_matches_bisect_reference(self, seed):
        rng = np.random.default_rng(seed)
        ring = ChordRing(id_bits=16)
        for node_id in rng.choice(1 << 16, size=20, replace=False):
            ring.join(node_id=int(node_id))
        keys = rng.integers(0, 1 << 16, size=200)
        batched = ring.owners_of(keys)
        assert [int(o) for o in batched] == [ring._owner_of(int(k)) for k in keys]
        ring.verify_invariants()


# -- overlay + full simulation tick ---------------------------------------


class TestOverlayAndSimulationEquivalence:
    def _simulation(self, seed: int):
        from repro.network.topology import grid_topology
        from repro.sbon.overlay import Overlay
        from repro.sbon.simulator import Simulation, SimulationConfig
        from repro.workloads.queries import WorkloadParams, random_query

        overlay = Overlay.build(
            grid_topology(4, 4), vector_dims=2, embedding_rounds=15, seed=seed
        )
        integ = overlay.integrated_optimizer()
        for i in range(2):
            query, stats = random_query(
                16, WorkloadParams(num_producers=3), name=f"q{i}", seed=seed + i
            )
            overlay.install(integ.optimize(query, stats))
        load = LoadProcess(16, sigma=0.1, seed=seed + 10)
        load.add_hotspot(
            HotspotEvent(start_tick=2, duration=6, nodes=(0, 1, 2), extra_load=0.7)
        )
        drift = LatencyDriftProcess(overlay.latencies, drift_sigma=0.04, seed=seed + 11)
        churn = ChurnProcess(
            16, fail_prob=0.04, recover_prob=0.3, protected=set(range(8)), seed=seed + 12
        )
        return Simulation(
            overlay,
            load_process=load,
            latency_drift=drift,
            churn=churn,
            config=SimulationConfig(reopt_interval=2, migration_threshold=0.01),
        )

    @pytest.mark.parametrize("seed", [0, 3])
    def test_step_matches_step_scalar(self, seed):
        vector, scalar = self._simulation(seed), self._simulation(seed)
        for _ in range(8):
            rv = vector.step()
            rs = scalar.step_scalar()
            assert rv.migrations == rs.migrations
            assert rv.failures == rs.failures
            assert rv.network_usage == pytest.approx(rs.network_usage, rel=1e-9, abs=1e-9)
            assert rv.mean_load == pytest.approx(rs.mean_load, rel=1e-9, abs=1e-9)
            assert rv.max_load == pytest.approx(rs.max_load, rel=1e-9, abs=1e-9)
        for name, circuit in vector.overlay.circuits.items():
            assert circuit.placement == scalar.overlay.circuits[name].placement
        assert np.allclose(
            vector.overlay.loads(), scalar.overlay.loads_scalar(), atol=1e-9
        )

    def test_overlay_array_loads_track_node_state(self):
        sim = self._simulation(1)
        overlay = sim.overlay
        rng = np.random.default_rng(2)
        overlay.set_background_loads(rng.uniform(0, 0.8, size=16))
        sim.run(5)
        assert np.allclose(overlay.loads(), overlay.loads_scalar(), atol=1e-9)
        memory_scalar = np.array([node.memory_load for node in overlay.nodes])
        assert np.allclose(overlay.memory_loads(), memory_scalar, atol=1e-9)
        assert overlay.total_network_usage() == pytest.approx(
            overlay.total_network_usage_scalar(), rel=1e-9
        )
        name = next(iter(overlay.circuits))
        overlay.uninstall(name)
        assert np.allclose(overlay.loads(), overlay.loads_scalar(), atol=1e-9)
        assert overlay.total_network_usage() == pytest.approx(
            overlay.total_network_usage_scalar(), rel=1e-9
        )
