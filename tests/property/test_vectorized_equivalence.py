"""Equivalence: vectorized kernels vs retained scalar references.

The struct-of-arrays refactor keeps the pre-vectorization Python-loop
implementations (``nearest_node_scalar``, ``nodes_within_scalar``,
``sweep_scalar``, ``placement_*_scalar``) as ground truth; these tests
assert the production vectorized paths reproduce them to 1e-9 on
randomized inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.circuit import Circuit, Service
from repro.core.coordinates import CostCoordinate
from repro.core.cost_space import (
    CostSpace,
    CostSpaceSpec,
    nearest_node_scalar,
    nodes_within_scalar,
)
from repro.core import virtual_placement as vp
from repro.core.weighting import exponential, linear, squared, threshold, zero
from repro.query.operators import ServiceSpec


@st.composite
def spaces_and_targets(draw):
    seed = draw(st.integers(min_value=0, max_value=1 << 16))
    n = draw(st.integers(min_value=1, max_value=120))
    vector_dims = draw(st.integers(min_value=1, max_value=3))
    with_load = draw(st.booleans())
    rng = np.random.default_rng(seed)
    embedding = rng.uniform(-100.0, 100.0, size=(n, vector_dims))
    if with_load:
        spec = CostSpaceSpec.latency_load(vector_dims=vector_dims)
        space = CostSpace.from_embedding(
            spec, embedding, {"cpu_load": rng.uniform(0, 1, size=n)}
        )
        scalars = (float(rng.uniform(0, 100)),)
    else:
        spec = CostSpaceSpec.latency_only(vector_dims=vector_dims)
        space = CostSpace.from_embedding(spec, embedding)
        scalars = ()
    target = CostCoordinate(
        tuple(float(v) for v in rng.uniform(-100, 100, size=vector_dims)), scalars
    )
    num_excluded = draw(st.integers(min_value=0, max_value=max(0, n - 1)))
    exclude = set(int(i) for i in rng.choice(n, size=num_excluded, replace=False))
    return space, target, exclude, seed


class TestCostSpaceQueries:
    @given(spaces_and_targets())
    @settings(max_examples=80, deadline=None)
    def test_nearest_node_matches_scalar(self, case):
        space, target, exclude, _ = case
        assert space.nearest_node(target, exclude=exclude) == nearest_node_scalar(
            space, target, exclude=exclude
        )

    @given(spaces_and_targets())
    @settings(max_examples=80, deadline=None)
    def test_nodes_within_matches_scalar(self, case):
        space, target, exclude, seed = case
        rng = np.random.default_rng(seed + 1)
        radius = float(rng.uniform(0, 250))
        assert space.nodes_within(target, radius, exclude=exclude) == (
            nodes_within_scalar(space, target, radius, exclude=exclude)
        )

    @given(spaces_and_targets())
    @settings(max_examples=40, deadline=None)
    def test_distances_from_matches_pointwise(self, case):
        space, target, _, _ = case
        batched = space.distances_from(target)
        pointwise = np.array(
            [target.distance_to(space.coordinate(i)) for i in range(space.num_nodes)]
        )
        assert np.allclose(batched, pointwise, atol=1e-9)

    @given(spaces_and_targets())
    @settings(max_examples=40, deadline=None)
    def test_nearest_nodes_batch_matches_single(self, case):
        space, target, exclude, seed = case
        rng = np.random.default_rng(seed + 2)
        targets = [target]
        for _ in range(4):
            targets.append(
                CostCoordinate(
                    tuple(
                        float(v)
                        for v in rng.uniform(-100, 100, size=target.vector_dims)
                    ),
                    tuple(float(rng.uniform(0, 100)) for _ in target.scalar),
                )
            )
        batched = space.nearest_nodes(targets, exclude=exclude)
        singles = [space.nearest_node(t, exclude=exclude) for t in targets]
        assert list(batched) == singles


class TestWeightingArrays:
    @pytest.mark.parametrize(
        "weighting",
        [squared(70.0), linear(30.0), exponential(3.0, 50.0), threshold(0.6, 80.0), zero()],
        ids=lambda w: w.name,
    )
    def test_apply_array_matches_scalar(self, weighting):
        rng = np.random.default_rng(11)
        values = rng.uniform(0.0, 1.0, size=257)
        batched = weighting.apply_array(values)
        pointwise = np.array([weighting(v) for v in values])
        assert np.allclose(batched, pointwise, atol=1e-9)

    def test_apply_array_rejects_negative_input(self):
        with pytest.raises(ValueError):
            squared().apply_array(np.array([0.1, -0.2]))


def random_circuit(seed: int, num_unpinned: int = 12, num_pinned: int = 4):
    """A random connected circuit plus pinned vector positions."""
    rng = np.random.default_rng(seed)
    circuit = Circuit(name="t")
    pinned_positions = {}
    for a in range(num_pinned):
        sid = f"t/p{a}"
        circuit.add_service(
            Service(sid, ServiceSpec.relay(), pinned_node=a, producers=frozenset((f"P{a}",)))
        )
        pinned_positions[sid] = rng.uniform(-50.0, 50.0, size=2)
    ids = list(circuit.services)
    for i in range(num_unpinned):
        sid = f"t/s{i}"
        circuit.add_service(
            Service(sid, ServiceSpec.join(), pinned_node=None, producers=frozenset((f"S{i}",)))
        )
        # Connect to an existing service (keeps the graph connected) and
        # sometimes to a second one; zero rates exercise the skip path.
        circuit.add_link(str(rng.choice(ids)), sid, float(rng.uniform(0.0, 8.0)))
        if rng.random() < 0.7:
            other = str(rng.choice(ids))
            if other != sid:
                circuit.add_link(other, sid, float(rng.uniform(0.0, 8.0)))
        ids.append(sid)
    return circuit, pinned_positions


SWEEP_MODES = [
    ("relaxation", True, False),
    ("centroid", False, False),
    ("weiszfeld", True, True),
]


class TestPlacementSweeps:
    @pytest.mark.parametrize("mode,rate_weighted,distance_weighted", SWEEP_MODES)
    @pytest.mark.parametrize("seed", range(6))
    def test_matrix_sweep_matches_scalar_sweep(
        self, seed, mode, rate_weighted, distance_weighted
    ):
        circuit, pinned_positions = random_circuit(seed)
        positions, unpinned = vp._pinned_and_unpinned(circuit, pinned_positions)
        arrays = vp._CircuitArrays(circuit, positions, unpinned)
        center = np.mean(
            [positions[sid] for sid in circuit.pinned_ids()], axis=0
        )
        scalar_positions = dict(positions)
        scalar_positions.update({sid: center.copy() for sid in unpinned})

        for _ in range(5):
            move_vec = arrays.sweep(rate_weighted, distance_weighted)
            move_ref = vp.sweep_scalar(
                circuit, scalar_positions, unpinned, rate_weighted, distance_weighted
            )
            assert move_vec == pytest.approx(move_ref, abs=1e-9)
            placed = arrays.unpinned_positions()
            for sid in unpinned:
                assert np.allclose(placed[sid], scalar_positions[sid], atol=1e-9)

    @pytest.mark.parametrize("seed", range(4))
    def test_objectives_match_scalar(self, seed):
        circuit, pinned_positions = random_circuit(seed)
        placement = vp.relaxation_placement(circuit, pinned_positions)
        positions = {sid: np.asarray(p) for sid, p in pinned_positions.items()}
        positions.update(placement.positions)
        assert vp.placement_energy(circuit, positions) == pytest.approx(
            vp.placement_energy_scalar(circuit, positions), rel=1e-9
        )
        assert vp.placement_utilization(circuit, positions) == pytest.approx(
            vp.placement_utilization_scalar(circuit, positions), rel=1e-9
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_full_placements_match_scalar_driver(self, seed):
        """Whole runs agree: same sweeps, same convergence, same result."""
        circuit, pinned_positions = random_circuit(seed, num_unpinned=20)
        positions, unpinned = vp._pinned_and_unpinned(circuit, pinned_positions)
        center = np.mean([positions[sid] for sid in circuit.pinned_ids()], axis=0)
        positions.update({sid: center.copy() for sid in unpinned})
        for _ in range(200):
            if vp.sweep_scalar(circuit, positions, unpinned, True, False) < 1e-4:
                break
        placement = vp.relaxation_placement(circuit, pinned_positions)
        for sid in unpinned:
            assert np.allclose(placement.position_of(sid), positions[sid], atol=1e-9)


class TestExactEquilibriumSolvers:
    @pytest.mark.parametrize("seed", range(3))
    def test_sparse_and_dense_solvers_agree(self, seed, monkeypatch):
        if vp._sparse() is None:
            pytest.skip("scipy not available")
        circuit, pinned_positions = random_circuit(seed, num_unpinned=80)
        monkeypatch.setattr(vp, "SPARSE_SOLVER_THRESHOLD", 1)
        sparse = vp.exact_spring_equilibrium(circuit, pinned_positions)
        monkeypatch.setattr(vp, "SPARSE_SOLVER_THRESHOLD", 1 << 30)
        dense = vp.exact_spring_equilibrium(circuit, pinned_positions)
        assert sparse.positions.keys() == dense.positions.keys()
        for sid in sparse.positions:
            assert np.allclose(
                sparse.positions[sid], dense.positions[sid], atol=1e-7
            )

    def test_large_circuit_uses_sparse_path(self):
        if vp._sparse() is None:
            pytest.skip("scipy not available")
        circuit, pinned_positions = random_circuit(1, num_unpinned=vp.SPARSE_SOLVER_THRESHOLD + 10)
        result = vp.exact_spring_equilibrium(circuit, pinned_positions)
        relax = vp.relaxation_placement(
            circuit, pinned_positions, max_iterations=5000, tolerance=1e-10
        )
        for sid, pos in result.positions.items():
            assert np.allclose(relax.position_of(sid), pos, atol=1e-4)
