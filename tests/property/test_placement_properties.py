"""Property-based tests for placement and optimizer invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.circuit import Circuit
from repro.core.optimizer import (
    IntegratedOptimizer,
    TwoStepOptimizer,
    pinned_vector_positions,
)
from repro.core.virtual_placement import (
    placement_energy,
    relaxation_placement,
)
from repro.query.generator import enumerate_all_plans
from repro.query.model import Consumer, Producer, QuerySpec
from repro.query.selectivity import Statistics
from repro.workloads.scenarios import perfect_cost_space

position = st.tuples(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)


@st.composite
def placement_instances(draw):
    """A random query over a random planted node population."""
    num_nodes = draw(st.integers(min_value=6, max_value=20))
    positions = [draw(position) for _ in range(num_nodes)]
    num_producers = draw(st.integers(min_value=2, max_value=4))
    node_ids = draw(
        st.permutations(range(num_nodes)).map(
            lambda p: list(p[: num_producers + 1])
        )
    )
    seed = draw(st.integers(min_value=0, max_value=1 << 16))
    names = [f"P{i}" for i in range(num_producers)]
    stats = Statistics.random(names, seed=seed)
    producers = [
        Producer(name, node=node, rate=stats.rate(name))
        for name, node in zip(names, node_ids[:-1])
    ]
    query = QuerySpec(
        name="q", producers=producers, consumer=Consumer("C", node=node_ids[-1])
    )
    return positions, query, stats


@given(placement_instances())
@settings(max_examples=40, deadline=None)
def test_relaxation_energy_at_most_endpoint_heuristics(instance):
    # The spring equilibrium's energy must not exceed placing every
    # service at any single pinned endpoint (those are feasible points).
    positions, query, stats = instance
    space = perfect_cost_space(positions)
    plan = enumerate_all_plans(query.producer_names)[0]
    circuit = Circuit.from_plan(plan, query, stats)
    pinned = pinned_vector_positions(circuit, space)
    vp = relaxation_placement(circuit, pinned)
    for anchor in pinned.values():
        candidate = dict(pinned)
        for sid in circuit.unpinned_ids():
            candidate[sid] = np.asarray(anchor, dtype=float)
        assert vp.objective <= placement_energy(circuit, candidate) + 1e-6


@given(placement_instances())
@settings(max_examples=40, deadline=None)
def test_virtual_positions_inside_pinned_hull_bounding_box(instance):
    # Spring equilibria are convex combinations of anchors, so each
    # coordinate lies within the pinned bounding box.
    positions, query, stats = instance
    space = perfect_cost_space(positions)
    plan = enumerate_all_plans(query.producer_names)[-1]
    circuit = Circuit.from_plan(plan, query, stats)
    pinned = pinned_vector_positions(circuit, space)
    anchors = np.array(list(pinned.values()))
    lows = anchors.min(axis=0) - 1e-6
    highs = anchors.max(axis=0) + 1e-6
    vp = relaxation_placement(circuit, pinned)
    for sid, pos in vp.positions.items():
        assert np.all(pos >= lows) and np.all(pos <= highs)


@given(placement_instances())
@settings(max_examples=25, deadline=None)
def test_integrated_estimate_never_above_two_step(instance):
    positions, query, stats = instance
    space = perfect_cost_space(positions)
    integrated = IntegratedOptimizer(space).optimize(query, stats)
    two_step = TwoStepOptimizer(space).optimize(query, stats)
    assert integrated.cost.total <= two_step.cost.total + 1e-6


@given(placement_instances())
@settings(max_examples=25, deadline=None)
def test_optimizer_output_placement_complete_and_valid(instance):
    positions, query, stats = instance
    space = perfect_cost_space(positions)
    result = IntegratedOptimizer(space).optimize(query, stats)
    assert result.circuit.is_fully_placed()
    for sid, node in result.circuit.placement.items():
        assert 0 <= node < space.num_nodes
