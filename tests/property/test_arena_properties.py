"""Properties of the global circuit arena runtime path (PR 7).

The arena discipline extends PR-1/PR-2 twin-testing one level up: the
incremental arena data plane (segment install/tombstone/compaction,
cached host columns, scratch buffers) must reproduce the legacy
full-recompile path *tick for tick* — every TrafficRecord/TickRecord
field except ``recompiles`` (mode-dependent by design) bit-for-bit for
counts and cost, 1e-9 for measured usage — under chaos, mid-run
install/uninstall, and rolling tenant churn.  Compaction must be
unobservable: compacting at any tick leaves every subsequent record
identical to a twin that never compacts.
"""

import numpy as np
import pytest

from repro.network.dynamics import ChurnProcess, LatencyDriftProcess, LoadProcess
from repro.network.topology import grid_topology
from repro.runtime.arena import ArenaSegment, CircuitArena, ScratchArena
from repro.runtime.dataplane import DataPlane, RuntimeConfig
from repro.sbon.overlay import Overlay
from repro.sbon.simulator import Simulation, SimulationConfig
from repro.workloads.queries import WorkloadParams, random_query
from repro.workloads.scenarios import tenant_churn_scenario

PARAMS = WorkloadParams(
    num_producers=3, rate_bounds=(3.0, 8.0), selectivity_bounds=(0.2, 0.6)
)

TRAFFIC_FIELDS = (
    "tick",
    "emitted",
    "delivered",
    "dropped",
    "processed",
    "in_flight",
    "latency_p50",
    "latency_p95",
    "latency_p99",
    "shed",
    "redelivered",
    "buffered",
    "cpu_cost",
    "cpu_dropped",
)


def assert_records_equal(ra, rb):
    """All fields equal except ``recompiles``; usage to 1e-9 rel."""
    for name in TRAFFIC_FIELDS:
        if hasattr(ra, name):
            assert getattr(ra, name) == getattr(rb, name), name
    ua = ra.usage if hasattr(ra, "usage") else ra.data_usage
    ub = rb.usage if hasattr(rb, "usage") else rb.data_usage
    assert ua == pytest.approx(ub, rel=1e-9, abs=1e-9)


def traffic_overlay(seed=0, num_circuits=3, side=5):
    n = side * side
    overlay = Overlay.build(
        grid_topology(side, side), vector_dims=2, embedding_rounds=20, seed=seed
    )
    pinned = set()
    optimizer = overlay.integrated_optimizer()
    for i in range(num_circuits):
        query, stats = random_query(n, PARAMS, name=f"q{i}", seed=seed * 10 + i)
        overlay.install(optimizer.optimize(query, stats))
        pinned |= {p.node for p in query.producers} | {query.consumer.node}
    return overlay, pinned


def chaotic_simulation(seed=0, capacity=40.0, fused=True, **runtime_kwargs):
    overlay, pinned = traffic_overlay(seed)
    n = overlay.num_nodes
    plane = DataPlane(
        overlay, RuntimeConfig(seed=99, node_capacity=capacity, **runtime_kwargs)
    )
    return Simulation(
        overlay,
        load_process=LoadProcess(n, sigma=0.1, seed=1),
        latency_drift=LatencyDriftProcess(overlay.latencies, drift_sigma=0.03, seed=2),
        churn=ChurnProcess(
            n, fail_prob=0.01, recover_prob=0.2, protected=pinned, seed=3
        ),
        config=SimulationConfig(
            reopt_interval=3, migration_threshold=0.0, fused_reopt=fused
        ),
        data_plane=plane,
    )


def churn_overlay_pair(seed=6):
    """Twin overlays + planes, one incremental and one legacy."""
    ov_a, _ = traffic_overlay(seed=seed)
    ov_b, _ = traffic_overlay(seed=seed)
    a = DataPlane(ov_a, RuntimeConfig(seed=5, incremental=True))
    b = DataPlane(ov_b, RuntimeConfig(seed=5, incremental=False))
    return ov_a, ov_b, a, b


# ---------------------------------------------------------------------------
# Scratch arena unit behavior
# ---------------------------------------------------------------------------


class TestScratchArena:
    def test_views_reuse_one_growing_buffer(self):
        scratch = ScratchArena()
        a = scratch.array("x", 10, np.int64)
        assert a.size == 10 and a.dtype == np.int64
        b = scratch.array("x", 4, np.int64)
        # Same backing memory: no allocation for a smaller request.
        assert b.base is a.base or b.base is a or a.base is b.base
        before = scratch.allocated_bytes
        scratch.array("x", 8, np.int64)
        assert scratch.allocated_bytes == before

    def test_growth_is_geometric(self):
        scratch = ScratchArena()
        scratch.array("x", 100, np.float64)
        buf0 = scratch._pool["x"]
        scratch.array("x", buf0.size + 1, np.float64)
        assert scratch._pool["x"].size >= 2 * buf0.size

    def test_zeros_is_zeroed_even_after_dirty_use(self):
        scratch = ScratchArena()
        view = scratch.array("z", 16, np.float64)
        view.fill(7.0)
        again = scratch.zeros("z", 16)
        np.testing.assert_array_equal(again, np.zeros(16))

    def test_dtype_change_reallocates(self):
        scratch = ScratchArena()
        scratch.array("x", 8, np.int64)
        f = scratch.array("x", 8, np.float64)
        assert f.dtype == np.float64


# ---------------------------------------------------------------------------
# Circuit arena bookkeeping
# ---------------------------------------------------------------------------


class TestCircuitArena:
    def test_append_tombstone_compaction_roundtrip(self):
        arena = CircuitArena(compact_threshold=0.25)
        arena.reset([("a", 3, 4), ("b", 2, 2), ("c", 4, 5)])
        assert arena.num_ops == 9 and arena.num_links == 11
        seg = arena.tombstone("b")
        assert isinstance(seg, ArenaSegment) and seg.op_base == 3
        assert arena.dead_ops == 2 and arena.dead_links == 2
        # Identity-except-dead mapping drops exactly b's rows.
        mapping = arena.op_mapping()
        assert list(mapping[3:5]) == [-1, -1]
        assert list(mapping[:3]) == [0, 1, 2] and list(mapping[5:]) == [5, 6, 7, 8]
        op_gather, link_gather, op_map, link_map = arena.compaction()
        np.testing.assert_array_equal(op_gather, [0, 1, 2, 5, 6, 7, 8])
        assert list(op_map[op_gather]) == list(range(7))
        assert link_gather.size == 9 and list(link_map[link_gather]) == list(range(9))
        arena.apply_compaction()
        assert arena.num_ops == 7 and arena.dead_ops == 0
        assert arena.segments["c"].op_base == 3  # slid left over the hole
        assert arena.tombstone_fraction == 0.0

    def test_threshold_gate(self):
        arena = CircuitArena(compact_threshold=0.5)
        arena.reset([("a", 5, 5), ("b", 5, 5)])
        arena.tombstone("a")
        assert not arena.needs_compaction  # exactly at 0.5, not above
        arena2 = CircuitArena(compact_threshold=0.25)
        arena2.reset([("a", 5, 5), ("b", 5, 5)])
        arena2.tombstone("a")
        assert arena2.needs_compaction

    def test_append_after_tombstone_extends_tail(self):
        arena = CircuitArena()
        arena.reset([("a", 2, 1)])
        arena.tombstone("a")
        seg = arena.append("b", 3, 2)
        assert seg.op_base == 2 and seg.link_base == 1
        assert arena.live_op_rows().tolist() == [2, 3, 4]

    def test_duplicate_segment_rejected(self):
        arena = CircuitArena()
        arena.append("a", 1, 0)
        with pytest.raises(ValueError):
            arena.append("a", 1, 0)


# ---------------------------------------------------------------------------
# Incremental arena vs legacy full-recompile equivalence
# ---------------------------------------------------------------------------


class TestArenaEquivalence:
    def test_twins_agree_under_chaos(self):
        a = chaotic_simulation(seed=5, incremental=True)
        b = chaotic_simulation(seed=5, incremental=False)
        for _ in range(30):
            assert_records_equal(a.step(), b.step())
        assert a.data_plane.accounting() == b.data_plane.accounting()
        assert a.data_plane.accounting()["balanced"]

    def test_arena_vs_scalar_under_chaos(self):
        a = chaotic_simulation(seed=7, incremental=True)
        b = chaotic_simulation(seed=7, incremental=False)
        for _ in range(25):
            assert_records_equal(a.step(), b.step_scalar())
        assert a.data_plane.accounting() == b.data_plane.accounting()

    def test_twins_agree_across_install_uninstall_midrun(self):
        ov_a, ov_b, a, b = churn_overlay_pair(seed=6)
        for _ in range(8):
            assert_records_equal(a.step(), b.step())
        ov_a.uninstall("q1")
        ov_b.uninstall("q1")
        for _ in range(5):
            assert_records_equal(a.step(), b.step())
        assert a.dropped_uninstalled == b.dropped_uninstalled > 0
        for name in ("q8", "q9"):
            query, stats = random_query(25, PARAMS, name=name, seed=77 + len(name))
            ov_a.install(ov_a.integrated_optimizer().optimize(query, stats))
            ov_b.install(ov_b.integrated_optimizer().optimize(query, stats))
        ov_a.uninstall("q0")
        ov_b.uninstall("q0")
        for _ in range(10):
            assert_records_equal(a.step(), b.step())
        assert a.accounting() == b.accounting()
        assert a.accounting()["balanced"]
        # The incremental plane never fully recompiled; the legacy one did.
        assert a.recompiles == 0
        assert b.recompiles >= 2

    def test_twins_agree_under_tenant_churn(self):
        a = tenant_churn_scenario(num_nodes=20, initial_circuits=5, seed=11)
        b = tenant_churn_scenario(
            num_nodes=20, initial_circuits=5, seed=11, incremental=False
        )
        for tick in range(24):
            a.simulation.step()
            b.simulation.step()
            if tick % 2 == 0:
                a.churn_tick()
                b.churn_tick()
        for ra, rb in zip(a.simulation.series.records, b.simulation.series.records):
            assert_records_equal(ra, rb)
        assert a.data_plane.accounting()["balanced"]
        assert b.data_plane.accounting()["balanced"]
        # Compile churn is observable and mode-shaped: the legacy twin
        # recompiles once for the initial installs (the plane is built
        # before the tenants arrive) plus once per churn round.
        assert a.data_plane.recompiles == 0
        assert b.data_plane.recompiles == 13
        assert sum(r.recompiles for r in b.simulation.series.records) == 13

    def test_replacement_recompiles_both_modes(self):
        """Same-name circuit replacement forces a logged full recompile."""
        ov, _ = traffic_overlay(seed=4)
        plane = DataPlane(ov, RuntimeConfig(seed=7, incremental=True))
        plane.step()
        assert plane.recompiles == 0
        ov.circuits["q1"] = ov.circuits["q1"].copy()  # equal but not identical
        ov.invalidate_usage_cache()
        record = plane.step()
        assert plane.recompiles == 1
        assert record.recompiles == 1
        acct = plane.accounting()
        assert acct["balanced"]


# ---------------------------------------------------------------------------
# Fused cross-circuit re-optimization
# ---------------------------------------------------------------------------


class TestFusedReopt:
    def test_fused_step_all_matches_percircuit(self):
        from repro.core.reoptimizer import Reoptimizer

        ov_a, _ = traffic_overlay(seed=12, num_circuits=4)
        ov_b, _ = traffic_overlay(seed=12, num_circuits=4)
        ra = Reoptimizer(
            ov_a.cost_space,
            mapper=ov_a.exhaustive_mapper(),
            migration_threshold=0.0,
            kernel_cache={},
        )
        rb = Reoptimizer(
            ov_b.cost_space,
            mapper=ov_b.exhaustive_mapper(),
            migration_threshold=0.0,
            kernel_cache={},
        )
        for _ in range(4):  # repeated passes exercise the arena cache
            reps_a = ra.step_all(list(ov_a.circuits.values()))
            reps_b = rb.step_all_percircuit(list(ov_b.circuits.values()))
            for pa, pb in zip(reps_a, reps_b):
                assert [
                    (m.service_id, m.from_node, m.to_node) for m in pa.migrations
                ] == [
                    (m.service_id, m.from_node, m.to_node) for m in pb.migrations
                ]
                for ma, mb in zip(pa.migrations, pb.migrations):
                    assert ma.cost_before == mb.cost_before
                    assert ma.cost_after == mb.cost_after
        for name, circuit in ov_a.circuits.items():
            assert circuit.placement == ov_b.circuits[name].placement

    def test_fused_arena_sees_calibrated_rates(self):
        from repro.core.reoptimizer import (
            _ARENA_KEY,
            Reoptimizer,
            refresh_kernel_rates,
        )

        ov, _ = traffic_overlay(seed=13, num_circuits=3)
        cache = {}
        reopt = Reoptimizer(
            ov.cost_space, mapper=ov.exhaustive_mapper(), kernel_cache=cache
        )
        circuits = list(ov.circuits.values())
        reopt.step_all(circuits)
        arena = cache[_ARENA_KEY]
        target = circuits[0]
        new_rates = np.array([l.rate for l in target.links]) * 3.0
        assert refresh_kernel_rates(cache, target, new_rates)
        assert arena.rates_stale()
        reopt.step_all(circuits)  # lazily refreshed, not rebuilt
        assert cache[_ARENA_KEY] is arena
        assert not arena.rates_stale()
        ref, kernel = cache[target.name]
        k = arena.kernels.index(kernel)
        s0, s1 = arena.seg_offsets[k], arena.seg_offsets[k + 1]
        np.testing.assert_array_equal(arena.seg_weight[s0:s1], kernel.seg_weight)

    def test_fused_simulation_twin(self):
        a = chaotic_simulation(seed=15, fused=True)
        b = chaotic_simulation(seed=15, fused=False)
        for _ in range(25):
            ra, rb = a.step(), b.step()
            assert (ra.migrations, ra.failures) == (rb.migrations, rb.failures)
            assert_records_equal(ra, rb)
            assert ra.network_usage == rb.network_usage
        for name, circuit in a.overlay.circuits.items():
            assert circuit.placement == b.overlay.circuits[name].placement


# ---------------------------------------------------------------------------
# Compaction unobservability
# ---------------------------------------------------------------------------


class TestCompactionUnobservable:
    def test_compaction_timing_never_changes_records(self):
        # Twin A compacts eagerly (tiny threshold); twin B never does
        # (threshold 1.0 can't be exceeded).  Identical churn schedule;
        # every record must match bit for bit.
        a = tenant_churn_scenario(
            num_nodes=20, initial_circuits=5, seed=2, compact_threshold=0.01
        )
        b = tenant_churn_scenario(
            num_nodes=20, initial_circuits=5, seed=2, compact_threshold=1.0
        )
        compacted = False
        for tick in range(20):
            a.simulation.step()
            b.simulation.step()
            a.churn_tick()
            b.churn_tick()
            if a.data_plane._arena.num_ops < b.data_plane._arena.num_ops:
                compacted = True
        assert compacted, "eager twin never compacted — fixture too small"
        assert b.data_plane._arena.dead_ops > 0, "lazy twin unexpectedly compacted"
        for ra, rb in zip(a.simulation.series.records, b.simulation.series.records):
            assert_records_equal(ra, rb)
            assert ra.recompiles == rb.recompiles == 0
        # link_keys() identity survives compaction (estimator contract).
        assert a.data_plane.accounting() == b.data_plane.accounting()

    def test_conservation_every_tick_under_churn_and_compaction(self):
        s = tenant_churn_scenario(
            num_nodes=20, initial_circuits=6, seed=9, compact_threshold=0.05
        )
        for tick in range(25):
            s.simulation.step()
            acct = s.data_plane.accounting()
            assert acct["balanced"], (tick, acct)
            if tick >= 5:  # warm up so tuples actually reach consumers
                s.churn_tick(installs=1, uninstalls=1)
        assert s.data_plane.dropped_uninstalled > 0
        assert s.simulation.series.total_delivered() > 0


# ---------------------------------------------------------------------------
# Gid stability (the hash-salt identity behind all of the above)
# ---------------------------------------------------------------------------


class TestGidStability:
    def test_gids_survive_install_uninstall_and_compaction(self):
        ov, _ = traffic_overlay(seed=3)
        plane = DataPlane(
            ov, RuntimeConfig(seed=5, incremental=True, compact_threshold=0.01)
        )
        plane.step()
        by_key = {
            key: int(plane._gid[row]) for key, row in plane._op_index.items()
        }
        ov.uninstall("q0")
        query, stats = random_query(25, PARAMS, name="q7", seed=55)
        ov.install(ov.integrated_optimizer().optimize(query, stats))
        for _ in range(3):
            plane.step()
        for key, row in plane._op_index.items():
            if key in by_key:
                assert int(plane._gid[row]) == by_key[key]
        # Fresh ops got fresh gids — no salt collision with the dead q0.
        q0_gids = {g for k, g in by_key.items() if k[0] == "q0"}
        q7_gids = {
            int(plane._gid[row])
            for key, row in plane._op_index.items()
            if key[0] == "q7"
        }
        assert not (q0_gids & q7_gids)
