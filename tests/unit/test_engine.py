"""Unit tests for the executable stream engine."""

import numpy as np
import pytest

from repro.core.circuit import Circuit
from repro.engine.executor import CircuitExecutor
from repro.engine.generators import (
    SourceConfig,
    StreamSource,
    key_domain_for_selectivity,
)
from repro.engine.operators import (
    DecimatingAggregate,
    FilterOperator,
    RelayOperator,
    SymmetricHashJoin,
)
from repro.engine.tuples import StreamTuple
from repro.query.model import Consumer, Producer, QuerySpec
from repro.query.plan import JoinNode, LeafNode, LogicalPlan
from repro.query.selectivity import Statistics
from repro.workloads.scenarios import planted_latency_matrix


def t(ts, key, name="A", size=1.0) -> StreamTuple:
    return StreamTuple(ts=ts, key=key, lineage=frozenset((name,)), size=size)


class TestStreamTuple:
    def test_merge_combines(self):
        merged = t(5, 7, "A").merge(t(9, 7, "B"))
        assert merged.ts == 9
        assert merged.lineage == frozenset({"A", "B"})
        assert merged.size == 2.0

    def test_merge_requires_same_key(self):
        with pytest.raises(ValueError):
            t(1, 1, "A").merge(t(1, 2, "B"))

    def test_merge_rejects_lineage_overlap(self):
        with pytest.raises(ValueError):
            t(1, 1, "A").merge(t(1, 1, "A"))

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamTuple(ts=-1, key=0, lineage=frozenset(("A",)))
        with pytest.raises(ValueError):
            StreamTuple(ts=0, key=0, lineage=frozenset(("A",)), size=0.0)


class TestStreamSource:
    def test_mean_rate_realized(self):
        source = StreamSource(SourceConfig("A", rate=3.0, key_domain=100), seed=1)
        total = sum(len(source.tick(now)) for now in range(2000))
        assert total / 2000 == pytest.approx(3.0, rel=0.1)

    def test_filter_thins_stream(self):
        full = StreamSource(SourceConfig("A", rate=5.0, key_domain=10), seed=2)
        thinned = StreamSource(
            SourceConfig("A", rate=5.0, key_domain=10, filter_selectivity=0.2), seed=2
        )
        n_full = sum(len(full.tick(now)) for now in range(1000))
        n_thin = sum(len(thinned.tick(now)) for now in range(1000))
        assert n_thin / n_full == pytest.approx(0.2, rel=0.2)

    def test_keys_within_domain(self):
        source = StreamSource(SourceConfig("A", rate=4.0, key_domain=7), seed=0)
        for now in range(100):
            for tuple_ in source.tick(now):
                assert 0 <= tuple_.key < 7

    def test_key_domain_for_selectivity(self):
        assert key_domain_for_selectivity(0.1, window=20) == 410
        assert key_domain_for_selectivity(1.0, window=0) == 1
        with pytest.raises(ValueError):
            key_domain_for_selectivity(0.0, 10)


class TestSymmetricHashJoin:
    def test_matches_within_window(self):
        join = SymmetricHashJoin(window=5)
        assert join.process(0, t(0, 42, "A"), now=0) == []
        out = join.process(1, t(3, 42, "B"), now=3)
        assert len(out) == 1
        assert out[0].lineage == frozenset({"A", "B"})

    def test_no_match_outside_window(self):
        join = SymmetricHashJoin(window=5)
        join.process(0, t(0, 42, "A"), now=0)
        assert join.process(1, t(6, 42, "B"), now=6) == []

    def test_no_match_on_different_keys(self):
        join = SymmetricHashJoin(window=5)
        join.process(0, t(0, 1, "A"), now=0)
        assert join.process(1, t(0, 2, "B"), now=0) == []

    def test_each_pair_matched_once(self):
        join = SymmetricHashJoin(window=10)
        join.process(0, t(0, 5, "A"), now=0)
        first = join.process(1, t(1, 5, "B"), now=1)
        again = join.process(0, t(2, 5, "A2"), now=2)
        # first emitted A-B; the new A2 matches B once.
        assert len(first) == 1 and len(again) == 1
        assert join.emitted == 2

    def test_state_evicted(self):
        join = SymmetricHashJoin(window=2)
        for now in range(20):
            join.process(0, t(now, now % 3, "A"), now=now)
            join.process(1, t(now, (now + 1) % 3, "B"), now=now)
        assert join.state_size() < 40  # bounded, not all 40 tuples

    def test_eviction_slack_keeps_delayed_partners(self):
        strict = SymmetricHashJoin(window=2, eviction_slack=0)
        slacked = SymmetricHashJoin(window=2, eviction_slack=10)
        for join in (strict, slacked):
            join.process(0, t(0, 9, "A"), now=0)
        # B generated at ts=1 (in window) but delivered at now=8.
        assert strict.process(1, t(1, 9, "B"), now=8) == []
        assert len(slacked.process(1, t(1, 9, "B"), now=8)) == 1

    def test_port_validation(self):
        with pytest.raises(ValueError):
            SymmetricHashJoin(window=1).process(2, t(0, 0), now=0)


class TestFilterAndAggregate:
    def test_filter_selectivity_realized(self):
        op = FilterOperator(0.3)
        passed = sum(
            len(op.process(0, t(0, key), now=0)) for key in range(5000)
        )
        assert passed / 5000 == pytest.approx(0.3, abs=0.05)

    def test_filter_deterministic(self):
        a, b = FilterOperator(0.5, salt=1), FilterOperator(0.5, salt=1)
        for key in range(100):
            assert len(a.process(0, t(0, key), 0)) == len(b.process(0, t(0, key), 0))

    def test_aggregate_factor_realized(self):
        op = DecimatingAggregate(0.25)
        emitted = sum(len(op.process(0, t(0, i), 0)) for i in range(1000))
        assert emitted == 250

    def test_relay_passes_everything(self):
        op = RelayOperator()
        assert len(op.process(0, t(0, 0), 0)) == 1
        assert op.processed == op.emitted == 1


class TestReportMath:
    """LinkMeasurement / ExecutionReport arithmetic (satellite of E18)."""

    def test_rate_is_tuples_per_tick(self):
        from repro.engine.executor import LinkMeasurement

        m = LinkMeasurement("a", "b", latency_ms=50.0, tuples=120, size_units=240.0)
        assert m.rate(60) == pytest.approx(2.0)
        assert m.rate(0) == 0.0

    def test_usage_is_rate_times_latency(self):
        from repro.engine.executor import LinkMeasurement

        m = LinkMeasurement("a", "b", latency_ms=50.0, tuples=120)
        assert m.usage(60) == pytest.approx(2.0 * 50.0)
        assert m.usage(0) == 0.0

    def test_measured_usage_aggregates_links(self):
        from repro.engine.executor import ExecutionReport, LinkMeasurement

        report = ExecutionReport(ticks=100)
        report.links[("a", "b")] = LinkMeasurement("a", "b", 10.0, tuples=300)
        report.links[("b", "c")] = LinkMeasurement("b", "c", 0.0, tuples=999)
        report.links[("c", "d")] = LinkMeasurement("c", "d", 25.0, tuples=100)
        # 3/tick x 10ms + colocated 0 + 1/tick x 25ms
        assert report.measured_network_usage() == pytest.approx(30.0 + 0.0 + 25.0)

    def test_measured_usage_equals_per_link_estimate_sum(self):
        circuit, report = executed_setup(ticks=1500)
        total = sum(
            report.links[(l.source, l.target)].usage(report.ticks)
            for l in circuit.links
        )
        assert report.measured_network_usage() == pytest.approx(total)

    def test_delivery_rate_and_empty_latency(self):
        from repro.engine.executor import ExecutionReport

        report = ExecutionReport(ticks=50, delivered=25)
        assert report.delivery_rate() == pytest.approx(0.5)
        assert report.mean_delivery_latency_ms() == 0.0

    def test_executor_deterministic_under_fixed_seed(self):
        _, first = executed_setup(ticks=800, seed=11)
        _, second = executed_setup(ticks=800, seed=11)
        assert first.delivered == second.delivered
        assert first.delivery_latencies_ms == second.delivery_latencies_ms
        assert first.operator_stats == second.operator_stats
        for key, m in first.links.items():
            other = second.links[key]
            assert (m.tuples, m.size_units) == (other.tuples, other.size_units)

    def test_different_seeds_differ(self):
        _, first = executed_setup(ticks=800, seed=11)
        _, second = executed_setup(ticks=800, seed=12)
        assert any(
            first.links[k].tuples != second.links[k].tuples for k in first.links
        )


def executed_setup(window=20, ticks=2500, sel=0.1, seed=3):
    positions = [(0.0, 0.0), (80.0, 0.0), (40.0, 60.0), (40.0, 20.0)]
    lm = planted_latency_matrix(positions)
    query = QuerySpec(
        "q",
        [Producer("A", node=0, rate=4.0), Producer("B", node=1, rate=4.0)],
        Consumer("C", node=2),
    )
    stats = Statistics.build({"A": 4.0, "B": 4.0}, {("A", "B"): sel})
    plan = LogicalPlan(JoinNode(LeafNode("A"), LeafNode("B")))
    circuit = Circuit.from_plan(plan, query, stats)
    circuit.assign("q/join0", 3)
    executor = CircuitExecutor.from_query(
        circuit, query, stats, lm, window=window, seed=seed
    )
    return circuit, executor.run(ticks)


class TestCircuitExecutor:
    def test_source_rates_match_statistics(self):
        circuit, report = executed_setup()
        measured, predicted = report.rate_agreement(circuit)[("q/src:A", "q/join0")]
        assert measured == pytest.approx(predicted, rel=0.1)

    def test_join_output_rate_matches_rate_model(self):
        circuit, report = executed_setup()
        measured, predicted = report.rate_agreement(circuit)[("q/join0", "q/sink:C")]
        assert measured == pytest.approx(predicted, rel=0.15)

    def test_measured_usage_matches_estimate(self):
        from repro.core.costs import GroundTruthEvaluator

        positions = [(0.0, 0.0), (80.0, 0.0), (40.0, 60.0), (40.0, 20.0)]
        lm = planted_latency_matrix(positions)
        circuit, report = executed_setup()
        estimated = GroundTruthEvaluator(lm).evaluate(circuit).network_usage
        assert report.measured_network_usage() == pytest.approx(estimated, rel=0.15)

    def test_delivered_tuples_have_full_lineage(self):
        circuit, report = executed_setup(ticks=500)
        assert report.delivered > 0
        # Sink relay processed = delivered.
        processed, _ = report.operator_stats["q/sink:C"]
        assert processed == report.delivered

    def test_delivery_latency_positive_and_bounded(self):
        circuit, report = executed_setup(ticks=1000)
        mean_latency = report.mean_delivery_latency_ms()
        assert mean_latency > 0
        # Bounded by window wait + two hops worth of delay, generously.
        assert mean_latency < 20 * 10.0 + 500.0

    def test_requires_placed_circuit(self):
        positions = [(0.0, 0.0), (80.0, 0.0), (40.0, 60.0)]
        lm = planted_latency_matrix(positions)
        query = QuerySpec(
            "q",
            [Producer("A", node=0, rate=4.0), Producer("B", node=1, rate=4.0)],
            Consumer("C", node=2),
        )
        stats = Statistics.build({"A": 4.0, "B": 4.0}, {("A", "B"): 0.1})
        plan = LogicalPlan(JoinNode(LeafNode("A"), LeafNode("B")))
        circuit = Circuit.from_plan(plan, query, stats)
        with pytest.raises(ValueError):
            CircuitExecutor.from_query(circuit, query, stats, lm)

    def test_aggregate_factor_applies_end_to_end(self):
        positions = [(0.0, 0.0), (80.0, 0.0), (40.0, 60.0), (40.0, 20.0)]
        lm = planted_latency_matrix(positions)
        query = QuerySpec(
            "q",
            [Producer("A", node=0, rate=4.0), Producer("B", node=1, rate=4.0)],
            Consumer("C", node=2),
            aggregate_factor=0.25,
        )
        stats = Statistics.build({"A": 4.0, "B": 4.0}, {("A", "B"): 0.1})
        plan = LogicalPlan(JoinNode(LeafNode("A"), LeafNode("B")))
        circuit = Circuit.from_plan(plan, query, stats)
        circuit.assign("q/join0", 3)
        circuit.assign("q/agg", 3)
        executor = CircuitExecutor.from_query(circuit, query, stats, lm, seed=5)
        report = executor.run(2000)
        measured, predicted = report.rate_agreement(circuit)[("q/agg", "q/sink:C")]
        assert measured == pytest.approx(predicted, rel=0.2)

    def test_invalid_ticks(self):
        positions = [(0.0, 0.0), (80.0, 0.0), (40.0, 60.0), (40.0, 20.0)]
        lm = planted_latency_matrix(positions)
        query = QuerySpec(
            "q",
            [Producer("A", node=0, rate=4.0), Producer("B", node=1, rate=4.0)],
            Consumer("C", node=2),
        )
        stats = Statistics.build({"A": 4.0, "B": 4.0}, {("A", "B"): 0.1})
        plan = LogicalPlan(JoinNode(LeafNode("A"), LeafNode("B")))
        circuit = Circuit.from_plan(plan, query, stats)
        circuit.assign("q/join0", 3)
        executor = CircuitExecutor.from_query(circuit, query, stats, lm)
        with pytest.raises(ValueError):
            executor.run(0)
