"""Unit tests for the coordinate catalog (Hilbert keys over Chord)."""

import numpy as np
import pytest

from repro.dht.catalog import CoordinateCatalog
from repro.dht.hilbert import HilbertMapper


def make_catalog(bits=8, ring_size=32) -> CoordinateCatalog:
    mapper = HilbertMapper(lows=(0.0, 0.0), highs=(100.0, 100.0), bits=bits)
    return CoordinateCatalog(mapper, ring_size=ring_size)


class TestPublish:
    def test_publish_and_lookup_self(self):
        catalog = make_catalog()
        catalog.publish(7, [25.0, 75.0])
        entry, _ = catalog.nearest([25.0, 75.0])
        assert entry.physical_node == 7

    def test_republish_updates_coordinate(self):
        catalog = make_catalog()
        catalog.publish(1, [10.0, 10.0])
        catalog.publish(2, [90.0, 90.0])
        catalog.publish(1, [89.0, 89.0])  # node 1 moved
        assert catalog.entry_for(1).coordinate == (89.0, 89.0)
        entry, _ = catalog.nearest([0.0, 0.0])
        # nobody is near the origin anymore; nearest is whichever of the
        # two is closer: both ~126 away, node 1 at (89,89) is closest.
        assert entry.physical_node in (1, 2)

    def test_withdraw(self):
        catalog = make_catalog()
        catalog.publish(3, [50.0, 50.0])
        catalog.withdraw(3)
        entry, _ = catalog.nearest([50.0, 50.0])
        assert entry is None

    def test_withdraw_unknown_raises(self):
        with pytest.raises(KeyError):
            make_catalog().withdraw(9)

    def test_published_nodes_listing(self):
        catalog = make_catalog()
        catalog.publish(5, [1.0, 1.0])
        catalog.publish(2, [2.0, 2.0])
        assert catalog.published_nodes == [2, 5]

    def test_same_cell_nodes_both_stored(self):
        catalog = make_catalog()
        catalog.publish(1, [50.0, 50.0])
        catalog.publish(2, [50.0, 50.0])
        entries, _ = catalog.k_nearest([50.0, 50.0], k=2)
        assert {e.physical_node for e in entries} == {1, 2}


class TestNearest:
    def test_nearest_matches_exhaustive_on_spread_points(self):
        catalog = make_catalog()
        rng = np.random.default_rng(0)
        points = rng.uniform(0, 100, size=(40, 2))
        for node, point in enumerate(points):
            catalog.publish(node, point)
        mismatches = 0
        for _ in range(30):
            query = rng.uniform(0, 100, size=2)
            approx, _ = catalog.nearest(query, scan_width=8)
            exact = catalog.exhaustive_nearest(query)
            if approx.physical_node != exact.physical_node:
                mismatches += 1
        # The scan is approximate but should almost always agree.
        assert mismatches <= 3

    def test_empty_catalog_returns_none(self):
        entry, stats = make_catalog().nearest([1.0, 2.0])
        assert entry is None
        assert stats.candidates == 0

    def test_exclusion(self):
        catalog = make_catalog()
        catalog.publish(1, [10.0, 10.0])
        catalog.publish(2, [12.0, 12.0])
        entry, _ = catalog.nearest([10.0, 10.0], exclude={1})
        assert entry.physical_node == 2

    def test_stats_reports_hops(self):
        catalog = make_catalog(ring_size=64)
        catalog.publish(1, [10.0, 10.0])
        _, stats = catalog.nearest([10.0, 10.0])
        assert stats.dht_hops >= 0
        assert stats.candidates >= 1


class TestKNearestAndRadius:
    def _populated(self) -> CoordinateCatalog:
        catalog = make_catalog()
        for node, xy in enumerate([(10, 10), (12, 10), (14, 10), (90, 90)]):
            catalog.publish(node, [float(xy[0]), float(xy[1])])
        return catalog

    def test_k_nearest_ordering(self):
        catalog = self._populated()
        entries, _ = catalog.k_nearest([10.0, 10.0], k=3, scan_width=8)
        assert [e.physical_node for e in entries] == [0, 1, 2]

    def test_k_nearest_validates_k(self):
        with pytest.raises(ValueError):
            self._populated().k_nearest([0.0, 0.0], k=0)

    def test_within_radius_excludes_far_nodes(self):
        catalog = self._populated()
        hits, _ = catalog.within_radius([10.0, 10.0], radius=5.0, scan_width=8)
        assert {e.physical_node for e in hits} == {0, 1, 2}

    def test_within_radius_zero(self):
        catalog = self._populated()
        hits, _ = catalog.within_radius([10.0, 10.0], radius=0.0, scan_width=8)
        assert {e.physical_node for e in hits} == {0}

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            self._populated().within_radius([0.0, 0.0], radius=-1.0)


class TestNearestBatch:
    """The shared-neighborhood batch scan must match per-key nearest()."""

    def _populated(self, seed=0, n=40) -> CoordinateCatalog:
        catalog = make_catalog()
        rng = np.random.default_rng(seed)
        for node, point in enumerate(rng.uniform(0, 100, size=(n, 2))):
            catalog.publish(node, point)
        return catalog

    def test_matches_per_key_nearest(self):
        catalog = self._populated()
        rng = np.random.default_rng(1)
        queries = rng.uniform(0, 100, size=(25, 2))
        batch_entries, batch_stats = catalog.nearest_batch(queries, scan_width=6)
        for query, entry, stats in zip(queries, batch_entries, batch_stats):
            ref_entry, ref_stats = catalog.nearest(query, scan_width=6)
            assert entry is ref_entry or entry == ref_entry
            assert entry.physical_node == ref_entry.physical_node
            assert stats.dht_hops == ref_stats.dht_hops
            assert stats.ring_entries_scanned == ref_stats.ring_entries_scanned
            assert stats.candidates == ref_stats.candidates

    def test_tie_break_matches_per_key(self):
        # Two nodes in the same spot: batch and per-key must pick the
        # same one (min keeps the first of equal-distance candidates,
        # in neighborhood insertion order).
        catalog = make_catalog()
        catalog.publish(1, [50.0, 50.0])
        catalog.publish(2, [50.0, 50.0])
        queries = np.array([[50.0, 50.0], [49.0, 51.0]])
        batch_entries, _ = catalog.nearest_batch(queries)
        for query, entry in zip(queries, batch_entries):
            ref, _ = catalog.nearest(query)
            assert entry.physical_node == ref.physical_node

    def test_exclusion_matches_per_key(self):
        catalog = self._populated(seed=2, n=20)
        queries = np.random.default_rng(3).uniform(0, 100, size=(10, 2))
        exclude = {0, 3, 7}
        batch_entries, _ = catalog.nearest_batch(queries, exclude=exclude)
        for query, entry in zip(queries, batch_entries):
            ref, _ = catalog.nearest(query, exclude=exclude)
            assert entry.physical_node == ref.physical_node
            assert entry.physical_node not in exclude

    def test_empty_catalog_returns_nones(self):
        entries, stats = make_catalog().nearest_batch(np.zeros((3, 2)))
        assert entries == [None, None, None]
        assert all(s.candidates == 0 for s in stats)

    def test_shared_owner_shares_one_walk(self):
        # Queries in the same quantization cell land on the same owner;
        # the batch path must do one walk, not one per query.
        catalog = self._populated(seed=4, n=30)
        queries = np.tile([[37.0, 42.0]], (8, 1))
        calls = 0
        original = catalog._scan_from

        def counting(*args, **kwargs):
            nonlocal calls
            calls += 1
            return original(*args, **kwargs)

        catalog._scan_from = counting
        try:
            entries, _ = catalog.nearest_batch(queries)
        finally:
            catalog._scan_from = original
        assert calls == 1
        assert len({e.physical_node for e in entries}) == 1

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            self._populated().nearest_batch(np.zeros(4))
