"""Unit tests for the coordinate catalog (Hilbert keys over Chord)."""

import numpy as np
import pytest

from repro.dht.catalog import CoordinateCatalog
from repro.dht.hilbert import HilbertMapper


def make_catalog(bits=8, ring_size=32) -> CoordinateCatalog:
    mapper = HilbertMapper(lows=(0.0, 0.0), highs=(100.0, 100.0), bits=bits)
    return CoordinateCatalog(mapper, ring_size=ring_size)


class TestPublish:
    def test_publish_and_lookup_self(self):
        catalog = make_catalog()
        catalog.publish(7, [25.0, 75.0])
        entry, _ = catalog.nearest([25.0, 75.0])
        assert entry.physical_node == 7

    def test_republish_updates_coordinate(self):
        catalog = make_catalog()
        catalog.publish(1, [10.0, 10.0])
        catalog.publish(2, [90.0, 90.0])
        catalog.publish(1, [89.0, 89.0])  # node 1 moved
        assert catalog.entry_for(1).coordinate == (89.0, 89.0)
        entry, _ = catalog.nearest([0.0, 0.0])
        # nobody is near the origin anymore; nearest is whichever of the
        # two is closer: both ~126 away, node 1 at (89,89) is closest.
        assert entry.physical_node in (1, 2)

    def test_withdraw(self):
        catalog = make_catalog()
        catalog.publish(3, [50.0, 50.0])
        catalog.withdraw(3)
        entry, _ = catalog.nearest([50.0, 50.0])
        assert entry is None

    def test_withdraw_unknown_raises(self):
        with pytest.raises(KeyError):
            make_catalog().withdraw(9)

    def test_published_nodes_listing(self):
        catalog = make_catalog()
        catalog.publish(5, [1.0, 1.0])
        catalog.publish(2, [2.0, 2.0])
        assert catalog.published_nodes == [2, 5]

    def test_same_cell_nodes_both_stored(self):
        catalog = make_catalog()
        catalog.publish(1, [50.0, 50.0])
        catalog.publish(2, [50.0, 50.0])
        entries, _ = catalog.k_nearest([50.0, 50.0], k=2)
        assert {e.physical_node for e in entries} == {1, 2}


class TestNearest:
    def test_nearest_matches_exhaustive_on_spread_points(self):
        catalog = make_catalog()
        rng = np.random.default_rng(0)
        points = rng.uniform(0, 100, size=(40, 2))
        for node, point in enumerate(points):
            catalog.publish(node, point)
        mismatches = 0
        for _ in range(30):
            query = rng.uniform(0, 100, size=2)
            approx, _ = catalog.nearest(query, scan_width=8)
            exact = catalog.exhaustive_nearest(query)
            if approx.physical_node != exact.physical_node:
                mismatches += 1
        # The scan is approximate but should almost always agree.
        assert mismatches <= 3

    def test_empty_catalog_returns_none(self):
        entry, stats = make_catalog().nearest([1.0, 2.0])
        assert entry is None
        assert stats.candidates == 0

    def test_exclusion(self):
        catalog = make_catalog()
        catalog.publish(1, [10.0, 10.0])
        catalog.publish(2, [12.0, 12.0])
        entry, _ = catalog.nearest([10.0, 10.0], exclude={1})
        assert entry.physical_node == 2

    def test_stats_reports_hops(self):
        catalog = make_catalog(ring_size=64)
        catalog.publish(1, [10.0, 10.0])
        _, stats = catalog.nearest([10.0, 10.0])
        assert stats.dht_hops >= 0
        assert stats.candidates >= 1


class TestKNearestAndRadius:
    def _populated(self) -> CoordinateCatalog:
        catalog = make_catalog()
        for node, xy in enumerate([(10, 10), (12, 10), (14, 10), (90, 90)]):
            catalog.publish(node, [float(xy[0]), float(xy[1])])
        return catalog

    def test_k_nearest_ordering(self):
        catalog = self._populated()
        entries, _ = catalog.k_nearest([10.0, 10.0], k=3, scan_width=8)
        assert [e.physical_node for e in entries] == [0, 1, 2]

    def test_k_nearest_validates_k(self):
        with pytest.raises(ValueError):
            self._populated().k_nearest([0.0, 0.0], k=0)

    def test_within_radius_excludes_far_nodes(self):
        catalog = self._populated()
        hits, _ = catalog.within_radius([10.0, 10.0], radius=5.0, scan_width=8)
        assert {e.physical_node for e in hits} == {0, 1, 2}

    def test_within_radius_zero(self):
        catalog = self._populated()
        hits, _ = catalog.within_radius([10.0, 10.0], radius=0.0, scan_width=8)
        assert {e.physical_node for e in hits} == {0}

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            self._populated().within_radius([0.0, 0.0], radius=-1.0)
