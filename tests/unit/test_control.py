"""Unit tests for the control plane: estimator, controller, drift."""

import numpy as np
import pytest

from repro.control import ControlConfig, Controller, RateEstimator
from repro.core.circuit import Circuit, Service
from repro.core.cost_space import CostSpace, CostSpaceSpec
from repro.core.reoptimizer import Reoptimizer, _CircuitKernel, refresh_kernel_rates
from repro.network.latency import LatencyMatrix
from repro.query.operators import ServiceSpec
from repro.runtime import DataPlane, ParameterDrift, RuntimeConfig
from repro.sbon.overlay import Overlay


def planted_overlay(n=12, seed=0):
    rng = np.random.default_rng(seed)
    points = rng.uniform(0.0, 100.0, size=(n, 2))
    diff = points[:, None, :] - points[None, :, :]
    latencies = LatencyMatrix(np.sqrt((diff ** 2).sum(axis=-1)))
    spec = CostSpaceSpec.latency_load(vector_dims=2)
    space = CostSpace.from_embedding(spec, points, {"cpu_load": np.zeros(n)})
    return Overlay(latencies, space)


def chain_circuit(name="c0", producer=0, middle=1, sink=2, rate=6.0, sel=0.5):
    circuit = Circuit(name=name)
    circuit.add_service(Service(f"{name}/src", ServiceSpec.relay(), producer, frozenset(("P",))))
    circuit.add_service(Service(f"{name}/f", ServiceSpec.filter(sel), None, frozenset(("P",))))
    circuit.add_service(Service(f"{name}/sink", ServiceSpec.relay(), sink, frozenset(("P",))))
    circuit.add_link(f"{name}/src", f"{name}/f", rate)
    circuit.add_link(f"{name}/f", f"{name}/sink", rate * sel)
    circuit.assign(f"{name}/f", middle)
    return circuit


class TestRateEstimator:
    def test_first_observation_initializes_ewma(self):
        est = RateEstimator(alpha=0.5)
        est.observe(np.array([10.0, 4.0]), keys=["a", "b"])
        assert est.rate("a") == 10.0 and est.rate("b") == 4.0
        est.observe(np.array([0.0, 8.0]), keys=["a", "b"])
        assert est.rate("a") == pytest.approx(5.0)
        assert est.rate("b") == pytest.approx(6.0)

    def test_unknown_key_defaults(self):
        est = RateEstimator()
        est.observe(np.array([1.0]), keys=["a"])
        assert est.rate("zzz", default=-1.0) == -1.0
        assert est.seen("zzz") == 0

    def test_late_key_growth_and_quantiles(self):
        est = RateEstimator(alpha=0.5, window=8)
        keys1 = ["a"]
        est.observe(np.array([4.0]), keys=keys1)
        est.observe(np.array([4.0]), keys=keys1)
        keys2 = ["a", "b"]
        est.observe(np.array([4.0, 10.0]), keys=keys2)
        # b's earlier non-existence counts as zero samples.
        qa, qb = est.quantile(1.0, keys=["a", "b"])
        assert qa == 4.0 and qb == 10.0
        assert est.quantile(0.0, keys=["b"])[0] == 0.0

    def test_implicit_integer_keys(self):
        est = RateEstimator()
        est.observe(np.array([1.0, 2.0, 3.0]))
        assert list(est.rates()) == [1.0, 2.0, 3.0]
        assert est.keys() == [0, 1, 2]

    def test_scalar_twin_bit_identical(self):
        rng = np.random.default_rng(3)
        a = RateEstimator(alpha=0.3, window=6)
        b = RateEstimator(alpha=0.3, window=6)
        keys = ["x", "y", "z"]
        for t in range(20):
            values = rng.poisson(5.0, size=3).astype(float)
            use = keys if t % 3 else keys[:2]  # sometimes omit a key
            a.observe(values[: len(use)], keys=use)
            b.observe_scalar(values[: len(use)], keys=use)
            np.testing.assert_array_equal(a.rates(keys), b.rates(keys))
            np.testing.assert_array_equal(
                a.quantile(0.9, keys), b.quantile(0.9, keys)
            )

    def test_duplicate_keys_sum_and_twins_agree(self):
        # Aliased keys (e.g. parallel circuit links with one (source,
        # target) pair) sum into one sample on both paths.
        a, b = RateEstimator(alpha=0.5), RateEstimator(alpha=0.5)
        keys = ["x", "x", "y"]
        for values in ([2.0, 3.0, 1.0], [4.0, 0.0, 7.0]):
            a.observe(np.array(values), keys=keys)
            b.observe_scalar(np.array(values), keys=keys)
            np.testing.assert_array_equal(a.rates(["x", "y"]), b.rates(["x", "y"]))
        assert a.rate("x") == pytest.approx(4.5)  # ewma over sums 5, 4
        assert a.seen("x") == 2

    def test_identity_fast_path_matches_keyed_observations(self):
        fast, keyed = RateEstimator(alpha=0.3), RateEstimator(alpha=0.3)
        rng = np.random.default_rng(1)
        keys = list(range(5))
        for _ in range(10):
            values = rng.poisson(4.0, size=5).astype(float)
            fast.observe(values)
            keyed.observe(values, keys=keys)
            np.testing.assert_array_equal(fast.rates(), keyed.rates(keys))
        assert fast.keys() == keys

    def test_mode_commitment(self):
        est = RateEstimator()
        est.observe(np.array([1.0]), keys=["a"])
        with pytest.raises(RuntimeError):
            est.observe_scalar(np.array([1.0]), keys=["a"])

    def test_validation(self):
        with pytest.raises(ValueError):
            RateEstimator(alpha=0.0)
        with pytest.raises(ValueError):
            RateEstimator(window=0)
        est = RateEstimator()
        with pytest.raises(ValueError):
            est.observe(np.array([1.0, 2.0]), keys=["a"])


class TestParameterDrift:
    def test_linear_ramp(self):
        drift = ParameterDrift("c", "s", "selectivity", 0.2, 0.8, begin=10, duration=10)
        assert drift.value(0) == 0.2
        assert drift.value(10) == 0.2
        assert drift.value(15) == pytest.approx(0.5)
        assert drift.value(20) == 0.8
        assert drift.value(99) == 0.8

    def test_step_change(self):
        drift = ParameterDrift("c", "s", "source_rate", 1.0, 9.0, begin=5, duration=0)
        assert drift.value(5) == 1.0
        assert drift.value(6) == 9.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ParameterDrift("c", "s", "nope", 0.1, 0.9)
        with pytest.raises(ValueError):
            ParameterDrift("c", "s", "selectivity", -0.1, 0.9)

    def test_drift_moves_realized_selectivity(self):
        overlay = planted_overlay()
        overlay.install_circuit(chain_circuit(sel=0.25))
        drift = ParameterDrift("c0", "c0/f", "selectivity", 0.25, 1.0, begin=5, duration=5)
        plane = DataPlane(overlay, RuntimeConfig(seed=1, drift=(drift,)))
        op = plane._op_index[("c0", "c0/f")]
        plane.step()
        assert plane._op_sel[op] == 0.25
        for _ in range(12):
            plane.step()
        assert plane._op_sel[op] == 1.0
        # true_link_rates reflects the drifted truth, not the estimate.
        rates = plane.true_link_rates()
        assert rates[("c0", "c0/f", "c0/sink")] == pytest.approx(6.0)

    def test_source_rate_drift_changes_emissions(self):
        overlay = planted_overlay()
        overlay.install_circuit(chain_circuit())
        drift = ParameterDrift("c0", "c0/src", "source_rate", 6.0, 0.0, begin=3, duration=0)
        plane = DataPlane(overlay, RuntimeConfig(seed=1, drift=(drift,)))
        early = sum(plane.step().emitted for _ in range(3))
        late = sum(plane.step().emitted for _ in range(10))
        assert early > 0 and late == 0


class TestTrueLinkRates:
    def test_chain_propagation(self):
        overlay = planted_overlay()
        overlay.install_circuit(chain_circuit(rate=6.0, sel=0.5))
        plane = DataPlane(overlay, RuntimeConfig(seed=0))
        rates = plane.true_link_rates()
        assert rates[("c0", "c0/src", "c0/f")] == pytest.approx(6.0)
        assert rates[("c0", "c0/f", "c0/sink")] == pytest.approx(3.0)

    def test_estimator_converges_to_true_rates(self):
        overlay = planted_overlay()
        overlay.install_circuit(chain_circuit(rate=6.0, sel=0.5))
        plane = DataPlane(overlay, RuntimeConfig(seed=5))
        est = RateEstimator(alpha=0.05, window=64)
        for _ in range(400):
            plane.step()
            est.observe(plane.tick_link_tuples.astype(float), plane.link_keys())
        for key, true_rate in plane.true_link_rates().items():
            assert est.rate(key) == pytest.approx(true_rate, rel=0.25)


class TestKernelRateHook:
    def test_set_rates_reprices_kernel(self):
        overlay = planted_overlay()
        circuit = chain_circuit()
        kernel = _CircuitKernel(circuit)
        evaluator = overlay.estimate_evaluator()
        hosts = kernel.hosts(circuit)
        before = kernel.total(hosts, evaluator, 1.0)
        kernel.set_rates(np.array([12.0, 6.0]))
        after = kernel.total(hosts, evaluator, 1.0)
        assert after > before
        np.testing.assert_array_equal(kernel.link_rates, [12.0, 6.0])
        # Spring weights follow the new rates too.
        assert kernel.seg_weight[0] == pytest.approx(18.0)

    def test_set_rates_shape_validation(self):
        kernel = _CircuitKernel(chain_circuit())
        with pytest.raises(ValueError):
            kernel.set_rates(np.array([1.0]))

    def test_refresh_kernel_rates_only_touches_live_entry(self):
        import weakref

        circuit = chain_circuit()
        kernel = _CircuitKernel(circuit)
        cache = {"c0": (weakref.ref(circuit), kernel)}
        assert refresh_kernel_rates(cache, circuit, np.array([9.0, 3.0]))
        np.testing.assert_array_equal(kernel.link_rates, [9.0, 3.0])
        other = chain_circuit()  # same name, different object
        assert not refresh_kernel_rates(cache, other, np.array([1.0, 1.0]))
        np.testing.assert_array_equal(kernel.link_rates, [9.0, 3.0])
        assert not refresh_kernel_rates(None, circuit, np.array([1.0, 1.0]))

    def test_calibration_path_updates_circuit_and_cached_kernel(self):
        # The production path: set_link_rates + refresh_kernel_rates
        # against the re-optimizer's shared kernel cache.
        overlay = planted_overlay()
        circuit = chain_circuit()
        cache: dict = {}
        reopt = Reoptimizer(overlay.cost_space, kernel_cache=cache)
        kernel = reopt._kernel(circuit)
        rates = np.array([4.0, 2.0])
        circuit.set_link_rates(rates)
        assert refresh_kernel_rates(cache, circuit, rates)
        assert [l.rate for l in circuit.links] == [4.0, 2.0]
        np.testing.assert_array_equal(kernel.link_rates, [4.0, 2.0])

    def test_circuit_set_link_rates_validation(self):
        circuit = chain_circuit()
        with pytest.raises(ValueError):
            circuit.set_link_rates([1.0])


class TestController:
    def make_plane(self, sel=0.5, drift_to=None, seed=2):
        overlay = planted_overlay()
        overlay.install_circuit(chain_circuit(rate=6.0, sel=sel))
        drift = ()
        if drift_to is not None:
            drift = (
                ParameterDrift("c0", "c0/f", "selectivity", sel, drift_to, 0, 0),
            )
        plane = DataPlane(overlay, RuntimeConfig(seed=seed, drift=drift))
        return overlay, plane

    def run_controller(self, plane, controller, ticks):
        for _ in range(ticks):
            controller.step(plane.step())

    def test_calibration_moves_estimates_toward_measured(self):
        overlay, plane = self.make_plane(sel=0.1, drift_to=0.9)
        controller = Controller(
            plane, ControlConfig(warmup=4, calibrate_interval=5, alpha=0.2)
        )
        self.run_controller(plane, controller, 40)
        circuit = overlay.circuits["c0"]
        out_rate = circuit.links[1].rate
        # Estimated 0.6 tuples/tick; realized 5.4: calibration rewrote it.
        assert out_rate == pytest.approx(5.4, rel=0.35)
        assert controller.calibrations > 0

    def test_oracle_calibrates_to_true_rates(self):
        overlay, plane = self.make_plane(sel=0.1, drift_to=0.9)
        controller = Controller(
            plane,
            ControlConfig(warmup=1, calibrate_interval=1),
            oracle=True,
        )
        self.run_controller(plane, controller, 3)
        circuit = overlay.circuits["c0"]
        assert circuit.links[0].rate == pytest.approx(6.0)
        assert circuit.links[1].rate == pytest.approx(5.4)

    def test_young_links_keep_their_priors(self):
        overlay, plane = self.make_plane(sel=0.5)
        controller = Controller(
            plane,
            ControlConfig(warmup=1, calibrate_interval=1, min_observations=50),
        )
        self.run_controller(plane, controller, 5)
        # Too few observations: estimates untouched.
        assert overlay.circuits["c0"].links[0].rate == 6.0

    def test_trigger_fires_on_drop_breach_with_cooldown(self):
        # Zero node capacity: every delivery is dropped, so the
        # measured drop fraction breaches immediately after warmup.
        overlay = planted_overlay(seed=9)
        overlay.install_circuit(chain_circuit(rate=6.0, sel=0.5))
        plane = DataPlane(overlay, RuntimeConfig(seed=2, node_capacity=0.0))
        controller = Controller(
            plane,
            ControlConfig(
                warmup=3, drop_threshold=0.2, trigger_cooldown=5,
                exclude_drop_rate=0.5, calibrate_interval=100,
            ),
        )
        triggers = []
        for _ in range(12):
            record = controller.step(plane.step())
            triggers.append(record.replace_triggered)
            if record.replace_triggered:
                assert record.excluded_nodes  # drop-hot nodes named
        fired = [i for i, t in enumerate(triggers) if t]
        assert fired, "drop breach never triggered"
        assert all(b - a >= 5 for a, b in zip(fired, fired[1:]))

    def test_shed_policy_caps_and_releases(self):
        overlay = planted_overlay(seed=4)
        overlay.install_circuit(chain_circuit(rate=20.0, sel=0.5))
        drift = (
            ParameterDrift("c0", "c0/src", "source_rate", 20.0, 0.0, 30, 0),
        )
        plane = DataPlane(overlay, RuntimeConfig(seed=2, drift=drift))
        controller = Controller(
            plane,
            ControlConfig(
                warmup=3, shed_limit=10.0, shed_release=0.5, alpha=0.4,
                drop_threshold=None, calibrate_interval=1000,
            ),
        )
        shed_seen = released_seen = False
        shed_drops = 0
        for _ in range(60):
            record = plane.step()
            shed_drops += record.shed
            ctl = controller.step(record)
            shed_seen = shed_seen or bool(ctl.shed_nodes)
            released_seen = released_seen or bool(ctl.released_nodes)
        assert shed_seen, "overload never shed"
        assert released_seen, "cap never released after the load stopped"
        assert shed_drops > 0
        assert plane.dropped_shed == shed_drops
        assert plane.accounting()["balanced"]

    def test_simulation_control_true_wires_default_controller(self):
        from repro.sbon.simulator import Simulation

        overlay, plane = self.make_plane()
        sim = Simulation(overlay, data_plane=plane, control=True)
        assert sim.controller is not None
        assert sim.controller.kernel_cache is sim._kernel_cache
        sim.run(3)
        assert sim.controller.ticks == 3

    def test_simulation_control_requires_data_plane(self):
        from repro.sbon.simulator import Simulation

        overlay, _ = self.make_plane()
        with pytest.raises(ValueError):
            Simulation(overlay, control=True)
