"""Unit tests for local plan rewriting (recompose / decompose / reorder)."""

import pytest

from repro.core.circuit import Circuit
from repro.core.rewriting import (
    colocated_join_pairs,
    decompose_join,
    recompose_colocated_joins,
    reorder_adjacent_joins,
)
from repro.query.model import Consumer, Producer, QuerySpec
from repro.query.operators import ServiceKind
from repro.query.plan import JoinNode, LeafNode, LogicalPlan
from repro.query.selectivity import Statistics, rate_of_subset


def three_way_setup(sel_ab=0.1, sel_bc=0.2, sel_ac=0.5):
    producers = [
        Producer("A", node=0, rate=10.0),
        Producer("B", node=1, rate=5.0),
        Producer("C", node=2, rate=2.0),
    ]
    query = QuerySpec(name="q", producers=producers, consumer=Consumer("S", node=3))
    stats = Statistics.build(
        rates={"A": 10.0, "B": 5.0, "C": 2.0},
        pair_selectivities={
            ("A", "B"): sel_ab, ("B", "C"): sel_bc, ("A", "C"): sel_ac
        },
    )
    plan = LogicalPlan(
        JoinNode(JoinNode(LeafNode("A"), LeafNode("B")), LeafNode("C"))
    )
    circuit = Circuit.from_plan(plan, query, stats)
    return circuit, query, stats


class TestColocationDetection:
    def test_colocated_pair_found(self):
        circuit, _, _ = three_way_setup()
        circuit.assign("q/join0", 5)
        circuit.assign("q/join1", 5)
        assert colocated_join_pairs(circuit) == [("q/join0", "q/join1")]

    def test_separated_pair_not_found(self):
        circuit, _, _ = three_way_setup()
        circuit.assign("q/join0", 5)
        circuit.assign("q/join1", 6)
        assert colocated_join_pairs(circuit) == []

    def test_requires_placement(self):
        circuit, _, _ = three_way_setup()
        with pytest.raises(ValueError):
            colocated_join_pairs(circuit)


class TestRecompose:
    def _merged(self):
        circuit, query, stats = three_way_setup()
        circuit.assign("q/join0", 5)
        circuit.assign("q/join1", 5)
        return recompose_colocated_joins(circuit, "q/join0", "q/join1"), stats

    def test_merges_into_downstream(self):
        result, _ = self._merged()
        assert result.applied
        circuit = result.circuit
        assert "q/join0" not in circuit.services
        merged = circuit.services["q/join1"]
        assert merged.producers == frozenset({"A", "B", "C"})

    def test_inputs_rewired(self):
        result, _ = self._merged()
        circuit = result.circuit
        inputs = {l.source for l in circuit.links if l.target == "q/join1"}
        assert inputs == {"q/src:A", "q/src:B", "q/src:C"}

    def test_intra_node_link_removed(self):
        result, _ = self._merged()
        circuit = result.circuit
        assert not any(
            l.source == "q/join0" or l.target == "q/join0" for l in circuit.links
        )
        # 3 producer inputs + 1 output to sink = 4 links.
        assert len(circuit.links) == 4

    def test_placement_preserved(self):
        result, _ = self._merged()
        assert result.circuit.host_of("q/join1") == 5
        assert result.circuit.is_fully_placed()

    def test_rejects_non_colocated(self):
        circuit, _, _ = three_way_setup()
        circuit.assign("q/join0", 5)
        circuit.assign("q/join1", 6)
        with pytest.raises(ValueError):
            recompose_colocated_joins(circuit, "q/join0", "q/join1")


class TestDecompose:
    def test_round_trip_recompose_then_decompose(self):
        (merged_result, stats) = TestRecompose()._merged()
        merged = merged_result.circuit
        result = decompose_join(merged, "q/join1", stats)
        assert result.applied
        circuit = result.circuit
        sub = circuit.services["q/join1.sub"]
        assert sub.kind is ServiceKind.JOIN
        # Greedy split picks the most selective pair: rates are
        # AB=5, BC=2, AC=10 -> picks B,C.
        assert sub.producers == frozenset({"B", "C"})
        # Sub-join starts on the multi-join's host.
        assert circuit.host_of("q/join1.sub") == circuit.host_of("q/join1")

    def test_sub_join_link_rate_is_pair_rate(self):
        (merged_result, stats) = TestRecompose()._merged()
        result = decompose_join(merged_result.circuit, "q/join1", stats)
        link = next(
            l for l in result.circuit.links if l.source == "q/join1.sub"
        )
        assert link.rate == pytest.approx(rate_of_subset(stats, {"B", "C"}))

    def test_two_way_join_not_decomposed(self):
        circuit, _, stats = three_way_setup()
        circuit.assign("q/join0", 5)
        circuit.assign("q/join1", 5)
        result = decompose_join(circuit, "q/join0", stats)
        assert not result.applied


class TestReorder:
    def test_reorders_to_cheaper_association(self):
        # AB join is expensive (sel 0.9); BC is cheap -> reorder should
        # re-associate the upstream to join B with C.
        circuit, _, stats = three_way_setup(sel_ab=0.9, sel_bc=0.01, sel_ac=0.5)
        circuit.assign("q/join0", 5)
        circuit.assign("q/join1", 5)
        result = reorder_adjacent_joins(circuit, "q/join0", "q/join1", stats)
        assert result.applied
        upstream = result.circuit.services["q/join0"]
        assert upstream.producers == frozenset({"B", "C"})
        # The link into the downstream carries the new pair rate.
        link = next(
            l
            for l in result.circuit.links
            if l.source == "q/join0" and l.target == "q/join1"
        )
        assert link.rate == pytest.approx(rate_of_subset(stats, {"B", "C"}))

    def test_keeps_optimal_association(self):
        circuit, _, stats = three_way_setup(sel_ab=0.001, sel_bc=0.5, sel_ac=0.5)
        circuit.assign("q/join0", 5)
        circuit.assign("q/join1", 5)
        result = reorder_adjacent_joins(circuit, "q/join0", "q/join1", stats)
        assert not result.applied

    def test_rejects_non_colocated(self):
        circuit, _, stats = three_way_setup()
        circuit.assign("q/join0", 5)
        circuit.assign("q/join1", 6)
        with pytest.raises(ValueError):
            reorder_adjacent_joins(circuit, "q/join0", "q/join1", stats)

    def test_total_producer_coverage_preserved(self):
        circuit, _, stats = three_way_setup(sel_ab=0.9, sel_bc=0.01, sel_ac=0.5)
        circuit.assign("q/join0", 5)
        circuit.assign("q/join1", 5)
        result = reorder_adjacent_joins(circuit, "q/join0", "q/join1", stats)
        downstream = result.circuit.services["q/join1"]
        assert downstream.producers == frozenset({"A", "B", "C"})
        inputs = {l.source for l in result.circuit.links if l.target == "q/join1"}
        assert "q/join0" in inputs and "q/src:A" in inputs
