"""Unit tests for the tick-driven simulation."""

import pytest

from repro.network.dynamics import ChurnProcess, HotspotEvent, LoadProcess
from repro.network.topology import grid_topology
from repro.sbon.overlay import Overlay
from repro.sbon.simulator import Simulation, SimulationConfig
from repro.workloads.queries import random_query


def simulated_overlay(seed=0) -> Overlay:
    overlay = Overlay.build(
        grid_topology(4, 4), vector_dims=2, embedding_rounds=20, seed=seed
    )
    query, stats = random_query(16, seed=seed)
    result = overlay.integrated_optimizer().optimize(query, stats)
    overlay.install(result)
    return overlay


class TestConfig:
    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(reopt_interval=-1)


class TestSimulation:
    def test_runs_and_records(self):
        overlay = simulated_overlay()
        sim = Simulation(
            overlay,
            load_process=LoadProcess(16, seed=1),
            config=SimulationConfig(reopt_interval=5),
        )
        series = sim.run(12)
        assert len(series) == 12
        assert series.records[0].tick == 1
        assert series.records[-1].tick == 12
        assert all(r.circuits == 1 for r in series.records)

    def test_zero_ticks(self):
        sim = Simulation(simulated_overlay())
        assert len(sim.run(0)) == 0
        with pytest.raises(ValueError):
            sim.run(-1)

    def test_reopt_disabled_never_migrates(self):
        overlay = simulated_overlay()
        sim = Simulation(
            overlay,
            load_process=LoadProcess(16, sigma=0.2, seed=3),
            config=SimulationConfig(reopt_interval=0),
        )
        series = sim.run(20)
        assert series.total_migrations() == 0

    def test_hotspot_triggers_migration_away(self):
        overlay = simulated_overlay()
        circuit = next(iter(overlay.circuits.values()))
        hosts = {circuit.host_of(sid) for sid in circuit.unpinned_ids()}
        load = LoadProcess(16, mean_load=0.05, sigma=0.0, theta=1.0, seed=1)
        load.add_hotspot(
            HotspotEvent(start_tick=1, duration=1000, nodes=tuple(hosts), extra_load=0.95)
        )
        sim = Simulation(
            overlay,
            load_process=load,
            config=SimulationConfig(reopt_interval=2, migration_threshold=0.0),
        )
        series = sim.run(10)
        assert series.total_migrations() >= 1
        new_hosts = {circuit.host_of(sid) for sid in circuit.unpinned_ids()}
        assert new_hosts != hosts

    def test_churn_evacuates_failed_hosts(self):
        overlay = simulated_overlay()
        circuit = next(iter(overlay.circuits.values()))
        pinned_nodes = {
            circuit.host_of(sid) for sid in circuit.pinned_ids()
        }
        churn = ChurnProcess(
            16, fail_prob=0.2, recover_prob=0.0, protected=pinned_nodes, seed=2
        )
        sim = Simulation(overlay, churn=churn, config=SimulationConfig(reopt_interval=0))
        series = sim.run(10)
        assert series.total_failures() > 0
        failed = overlay.failed_nodes()
        for sid in circuit.unpinned_ids():
            assert circuit.host_of(sid) not in failed

    def test_ground_truth_reopt_variant(self):
        overlay = simulated_overlay()
        sim = Simulation(
            overlay,
            load_process=LoadProcess(16, seed=5),
            config=SimulationConfig(reopt_interval=3, use_ground_truth_for_reopt=True),
        )
        series = sim.run(6)
        assert len(series) == 6
