"""Unit tests for the bandwidth substrate and congestion-aware pricing."""

import math

import numpy as np
import pytest

from repro.core.bandwidth_costs import BandwidthAwareEvaluator
from repro.core.circuit import Circuit
from repro.core.costs import GroundTruthEvaluator
from repro.core.optimizer import IntegratedOptimizer
from repro.network.bandwidth import (
    BandwidthMatrix,
    assign_link_capacities,
    widest_paths,
)
from repro.network.latency import LatencyMatrix
from repro.network.topology import (
    Topology,
    TransitStubParams,
    transit_stub_topology,
)
from repro.query.model import Consumer, Producer, QuerySpec
from repro.query.plan import JoinNode, LeafNode, LogicalPlan
from repro.query.selectivity import Statistics


def small_ts():
    return transit_stub_topology(
        TransitStubParams(
            num_transit_domains=2,
            transit_nodes_per_domain=2,
            stub_domains_per_transit_node=1,
            nodes_per_stub_domain=3,
        ),
        seed=0,
    )


class TestCapacities:
    def test_class_based_capacities(self):
        topo = small_ts()
        caps = assign_link_capacities(topo, seed=0)
        tags = topo.node_tags
        for (u, v), cap in caps.items():
            classes = {tags[u], tags[v]}
            if classes == {"transit"}:
                assert cap >= 1000 * 0.75
            elif classes == {"stub"}:
                assert cap <= 20 * 1.25

    def test_untagged_topology_uniform_class(self):
        topo = Topology(num_nodes=3)
        topo.add_link(0, 1, 1.0)
        topo.add_link(1, 2, 1.0)
        caps = assign_link_capacities(topo, edge_capacity=10.0, seed=1)
        for cap in caps.values():
            assert 7.5 <= cap <= 12.5


class TestWidestPaths:
    def test_chain_bottleneck(self):
        topo = Topology(num_nodes=3)
        topo.add_link(0, 1, 1.0)
        topo.add_link(1, 2, 1.0)
        caps = {(0, 1): 100.0, (1, 2): 10.0}
        width = widest_paths(topo, caps, 0)
        assert width[1] == 100.0
        assert width[2] == 10.0

    def test_prefers_fat_detour(self):
        # 0-2 direct thin link vs fat path through 1.
        topo = Topology(num_nodes=3)
        topo.add_link(0, 2, 1.0)
        topo.add_link(0, 1, 1.0)
        topo.add_link(1, 2, 1.0)
        caps = {(0, 2): 5.0, (0, 1): 50.0, (1, 2): 40.0}
        width = widest_paths(topo, caps, 0)
        assert width[2] == 40.0

    def test_source_is_infinite(self):
        topo = Topology(num_nodes=2)
        topo.add_link(0, 1, 1.0)
        width = widest_paths(topo, {(0, 1): 7.0}, 0)
        assert width[0] == math.inf

    def test_invalid_source(self):
        topo = Topology(num_nodes=2)
        topo.add_link(0, 1, 1.0)
        with pytest.raises(ValueError):
            widest_paths(topo, {(0, 1): 1.0}, 5)


class TestBandwidthMatrix:
    def test_from_topology_symmetry_and_diag(self):
        topo = small_ts()
        bw = BandwidthMatrix.from_topology(topo, seed=0)
        assert bw.bottleneck(0, 0) == math.inf
        assert bw.bottleneck(0, 3) == bw.bottleneck(3, 0)
        assert bw.bottleneck(0, 3) > 0

    def test_stub_pairs_thinner_than_transit_pairs(self):
        topo = small_ts()
        bw = BandwidthMatrix.from_topology(topo, seed=0)
        transit = topo.nodes_tagged("transit")
        stub = topo.nodes_tagged("stub")
        t_bw = bw.bottleneck(transit[0], transit[-1])
        s_bw = bw.bottleneck(stub[0], stub[-1])
        assert s_bw < t_bw

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError):
            BandwidthMatrix(np.array([[0.0, 1.0], [2.0, 0.0]]))


class TestBandwidthAwareEvaluator:
    def _setup(self):
        # Line: P(0) -thin- M(1) -fat- C(2); alt host 3 reachable fat.
        topo = Topology(num_nodes=4)
        topo.add_link(0, 1, 10.0)
        topo.add_link(1, 2, 10.0)
        topo.add_link(1, 3, 10.0)
        caps = {(0, 1): 100.0, (1, 2): 2.0, (1, 3): 100.0}
        lm = LatencyMatrix.from_topology(topo)
        bw = BandwidthMatrix.from_topology(topo, capacities=caps)
        query = QuerySpec(
            "q",
            [Producer("A", node=0, rate=10.0), Producer("B", node=3, rate=10.0)],
            Consumer("C", node=2),
        )
        stats = Statistics.build({"A": 10.0, "B": 10.0}, {("A", "B"): 0.05})
        circuit = Circuit.from_plan(
            LogicalPlan(JoinNode(LeafNode("A"), LeafNode("B"))), query, stats
        )
        return lm, bw, circuit

    def test_no_penalty_when_under_cap(self):
        lm, bw, circuit = self._setup()
        circuit.assign("q/join0", 1)
        ev = BandwidthAwareEvaluator(lm, bw, utilization_cap=0.8)
        # join output rate 5 crosses the (1,2) bottleneck of 2 -> penalty.
        assert ev.congestion_penalty(circuit) > 0

    def test_penalty_zero_on_fat_paths(self):
        lm, bw, circuit = self._setup()
        circuit.assign("q/join0", 1)
        fat = BandwidthMatrix(np.full((4, 4), 1e9) - np.diag([0.0] * 4))
        ev = BandwidthAwareEvaluator(lm, fat)
        assert ev.congestion_penalty(circuit) == 0.0
        base = GroundTruthEvaluator(lm).evaluate(circuit)
        assert ev.evaluate(circuit).total == pytest.approx(base.total)

    def test_total_includes_penalty(self):
        lm, bw, circuit = self._setup()
        circuit.assign("q/join0", 1)
        congested = BandwidthAwareEvaluator(lm, bw).evaluate(circuit)
        plain = GroundTruthEvaluator(lm).evaluate(circuit)
        assert congested.total > plain.total
        assert congested.network_usage == pytest.approx(plain.network_usage)

    def test_parameter_validation(self):
        lm, bw, _ = self._setup()
        with pytest.raises(ValueError):
            BandwidthAwareEvaluator(lm, bw, utilization_cap=0.0)
        with pytest.raises(ValueError):
            BandwidthAwareEvaluator(lm, bw, congestion_weight=-1.0)

    def test_size_mismatch_rejected(self):
        lm, _, _ = self._setup()
        small_bw = BandwidthMatrix(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            BandwidthAwareEvaluator(lm, small_bw)

    def test_optimizer_with_bandwidth_avoids_thin_link(self):
        # With the congestion-aware evaluator guiding selection, the
        # optimizer should not route the heavy stream across the thin
        # (1,2) link when a placement avoiding it exists.
        lm, bw, circuit = self._setup()
        from repro.workloads.scenarios import perfect_cost_space

        # Perfect 1-D-ish space from latencies via classical positions.
        positions = [(0.0, 0.0), (10.0, 0.0), (20.0, 0.0), (10.0, 10.0)]
        space = perfect_cost_space(positions)
        query = QuerySpec(
            "q",
            [Producer("A", node=0, rate=10.0), Producer("B", node=3, rate=10.0)],
            Consumer("C", node=2),
        )
        stats = Statistics.build({"A": 10.0, "B": 10.0}, {("A", "B"): 0.05})
        aware = IntegratedOptimizer(
            space, evaluator=BandwidthAwareEvaluator(lm, bw, congestion_weight=50.0)
        ).optimize(query, stats)
        ev = BandwidthAwareEvaluator(lm, bw, congestion_weight=50.0)
        assert ev.congestion_penalty(aware.circuit) <= min(
            ev.congestion_penalty(_assign(aware.circuit.copy(), host))
            for host in range(4)
        ) + 1e-9


def _assign(circuit, host):
    circuit.assign(circuit.unpinned_ids()[0], host)
    return circuit
