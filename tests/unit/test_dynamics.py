"""Unit tests for load, latency-drift, and churn processes."""

import numpy as np
import pytest

from repro.network.dynamics import (
    ChurnProcess,
    HotspotEvent,
    LatencyDriftProcess,
    LoadProcess,
)
from repro.network.latency import LatencyMatrix
from repro.network.topology import grid_topology


class TestLoadProcess:
    def test_loads_stay_in_bounds(self):
        proc = LoadProcess(num_nodes=20, sigma=0.3, seed=0)
        for _ in range(50):
            loads = proc.step()
            assert np.all(loads >= 0.0)
            assert np.all(loads <= 1.0)

    def test_mean_reversion(self):
        proc = LoadProcess(num_nodes=200, mean_load=0.4, theta=0.2, sigma=0.02, seed=1)
        proc.step(200)
        assert abs(proc.loads().mean() - 0.4) < 0.1

    def test_hotspot_applies_only_while_active(self):
        proc = LoadProcess(num_nodes=4, mean_load=0.2, sigma=0.0, theta=1.0, seed=0)
        proc.add_hotspot(HotspotEvent(start_tick=2, duration=3, nodes=(1,), extra_load=0.7))
        proc.step(2)  # tick = 2 -> active
        assert proc.load_of(1) > 0.8
        proc.step(3)  # tick = 5 -> expired
        assert proc.load_of(1) < 0.5

    def test_hotspot_validation(self):
        proc = LoadProcess(num_nodes=2)
        with pytest.raises(ValueError):
            proc.add_hotspot(HotspotEvent(0, 0, (0,), 0.5))

    def test_deterministic(self):
        a = LoadProcess(num_nodes=5, seed=3)
        b = LoadProcess(num_nodes=5, seed=3)
        a.step(10)
        b.step(10)
        assert np.allclose(a.loads(), b.loads())

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LoadProcess(num_nodes=0)
        with pytest.raises(ValueError):
            LoadProcess(num_nodes=2, mean_load=2.0)


class TestLatencyDrift:
    def _base(self) -> LatencyMatrix:
        return LatencyMatrix.from_topology(grid_topology(3, 3))

    def test_matrix_stays_valid(self):
        drift = LatencyDriftProcess(self._base(), drift_sigma=0.1, seed=0)
        lm = drift.step(20)  # constructor of LatencyMatrix validates
        assert lm.num_nodes == 9

    def test_drift_changes_latencies(self):
        base = self._base()
        drift = LatencyDriftProcess(base, drift_sigma=0.1, seed=1)
        lm = drift.step(10)
        assert not np.allclose(lm.values, base.values)

    def test_reversion_bounds_excursion(self):
        base = self._base()
        drift = LatencyDriftProcess(base, drift_sigma=0.02, reversion=0.3, seed=2)
        lm = drift.step(500)
        ratio = lm.values[0, 1] / base.values[0, 1]
        assert 0.3 < ratio < 3.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LatencyDriftProcess(self._base(), drift_sigma=-1)
        with pytest.raises(ValueError):
            LatencyDriftProcess(self._base(), reversion=2.0)

    def test_returned_snapshots_stay_frozen(self):
        # Recording the drift trajectory must not alias one live buffer.
        drift = LatencyDriftProcess(self._base(), drift_sigma=0.1, seed=5)
        first = drift.step()
        first_values = first.values.copy()
        drift.step(3)
        assert np.array_equal(first.values, first_values)


class TestUnifiedRngDeterminism:
    """Each process owns one seeded np.random.Generator (no ``random``
    module): identical seeds must replay identical trajectories."""

    def test_latency_drift_deterministic(self):
        base = LatencyMatrix.from_topology(grid_topology(3, 3))
        a = LatencyDriftProcess(base, drift_sigma=0.05, seed=4)
        b = LatencyDriftProcess(base, drift_sigma=0.05, seed=4)
        assert np.array_equal(a.step(15).values, b.step(15).values)

    def test_churn_deterministic(self):
        a = ChurnProcess(50, fail_prob=0.2, recover_prob=0.4, seed=4)
        b = ChurnProcess(50, fail_prob=0.2, recover_prob=0.4, seed=4)
        assert a.step(15) == b.step(15)
        assert a.alive() == b.alive()

    def test_different_seeds_diverge(self):
        a = ChurnProcess(200, fail_prob=0.3, seed=1)
        b = ChurnProcess(200, fail_prob=0.3, seed=2)
        assert a.step(3) != b.step(3)

    def test_churn_alive_mask_matches_alive(self):
        churn = ChurnProcess(30, fail_prob=0.5, recover_prob=0.2, seed=3)
        churn.step(5)
        assert churn.alive_mask().tolist() == churn.alive()


class TestChurn:
    def test_protected_nodes_never_fail(self):
        churn = ChurnProcess(10, fail_prob=1.0, recover_prob=0.0, protected={0, 1}, seed=0)
        churn.step(5)
        assert churn.is_alive(0) and churn.is_alive(1)
        assert not churn.is_alive(5)

    def test_failures_reported_once(self):
        churn = ChurnProcess(10, fail_prob=1.0, recover_prob=0.0, seed=0)
        failed_first = churn.step()
        failed_second = churn.step()
        assert len(failed_first) == 10
        assert failed_second == []

    def test_recovery(self):
        churn = ChurnProcess(5, fail_prob=1.0, recover_prob=1.0, seed=0)
        churn.step()  # all fail
        churn.step()  # all recover (and maybe re-fail; fail checked first)
        # With fail_prob=1 the alive ones fail again, but the dead ones
        # recover: after two steps all nodes flipped twice -> alive count
        # can be anything deterministic; just assert no exception and
        # liveness flags are booleans.
        assert len(churn.alive()) == 5

    def test_alive_nodes_listing(self):
        churn = ChurnProcess(4, fail_prob=0.0, seed=0)
        churn.step(3)
        assert churn.alive_nodes() == [0, 1, 2, 3]

    def test_invalid_probs(self):
        with pytest.raises(ValueError):
            ChurnProcess(3, fail_prob=1.5)
