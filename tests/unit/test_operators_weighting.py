"""Unit tests for service specs and weighting functions."""

import pytest

from repro.core.weighting import exponential, linear, squared, threshold, zero
from repro.query.operators import ServiceKind, ServiceSpec, processing_load


class TestServiceSpec:
    def test_factories(self):
        assert ServiceSpec.join().kind is ServiceKind.JOIN
        assert ServiceSpec.filter(0.5).selectivity == 0.5
        assert ServiceSpec.aggregate().kind is ServiceKind.AGGREGATE
        assert ServiceSpec.union().kind is ServiceKind.UNION
        assert ServiceSpec.relay().kind is ServiceKind.RELAY

    def test_selectivity_validation(self):
        with pytest.raises(ValueError):
            ServiceSpec.filter(0.0)
        with pytest.raises(ValueError):
            ServiceSpec.filter(1.5)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            ServiceSpec.join(window_seconds=0)

    def test_load_coefficient_override(self):
        spec = ServiceSpec.join(load_coefficient=0.5)
        assert spec.effective_load_coefficient == 0.5

    def test_default_coefficients_ordered(self):
        # Joins cost more than filters cost more than relays.
        join = ServiceSpec.join().effective_load_coefficient
        filt = ServiceSpec.filter(0.5).effective_load_coefficient
        relay = ServiceSpec.relay().effective_load_coefficient
        assert join > filt > relay


class TestProcessingLoad:
    def test_linear_in_rate(self):
        spec = ServiceSpec.join()
        assert processing_load(spec, 20.0) == pytest.approx(
            2 * processing_load(spec, 10.0)
        )

    def test_zero_rate_zero_load(self):
        assert processing_load(ServiceSpec.join(), 0.0) == 0.0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            processing_load(ServiceSpec.join(), -1.0)


class TestWeightingFunctions:
    def test_squared_shape(self):
        w = squared(scale=100.0)
        assert w(0.0) == 0.0
        assert w(0.5) == pytest.approx(25.0)
        assert w(1.0) == pytest.approx(100.0)

    def test_linear_shape(self):
        w = linear(scale=10.0)
        assert w(0.5) == pytest.approx(5.0)

    def test_exponential_monotone_and_bounded(self):
        w = exponential(steepness=4.0, scale=100.0)
        assert w(0.0) == pytest.approx(0.0)
        assert w(1.0) == pytest.approx(100.0)
        assert w(0.3) < w(0.7)

    def test_exponential_sharper_than_squared_near_one(self):
        # The exponential's knee is sharper: at mid-load it is cheaper
        # relative to its full-scale value than squared.
        e = exponential(steepness=6.0, scale=1.0)
        s = squared(scale=1.0)
        assert e(0.5) < s(0.5)

    def test_threshold_free_below_knee(self):
        w = threshold(knee=0.7, scale=100.0)
        assert w(0.5) == 0.0
        assert w(0.7) == 0.0
        assert w(1.0) == pytest.approx(100.0)

    def test_zero_function(self):
        w = zero()
        assert w(0.9) == 0.0

    def test_negative_input_rejected(self):
        with pytest.raises(ValueError):
            squared()(-0.1)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            exponential(steepness=0.0)
        with pytest.raises(ValueError):
            threshold(knee=1.0)

    def test_describe(self):
        assert "squared" in squared().describe()
