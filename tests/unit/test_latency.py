"""Unit tests for latency matrices and shortest paths."""

import numpy as np
import pytest

from repro.network.latency import (
    LatencyMatrix,
    dijkstra,
    shortest_path_latencies,
    shortest_path_latencies_scalar,
)
from repro.network.topology import (
    Topology,
    grid_topology,
    random_geometric_topology,
    ring_topology,
    star_topology,
)


class TestDijkstra:
    def test_line_graph_distances(self):
        topo = Topology(num_nodes=3)
        topo.add_link(0, 1, 2.0)
        topo.add_link(1, 2, 3.0)
        assert dijkstra(topo, 0) == [0.0, 2.0, 5.0]

    def test_prefers_cheaper_indirect_path(self):
        topo = Topology(num_nodes=3)
        topo.add_link(0, 2, 10.0)
        topo.add_link(0, 1, 1.0)
        topo.add_link(1, 2, 1.0)
        assert dijkstra(topo, 0)[2] == 2.0

    def test_unreachable_is_inf(self):
        topo = Topology(num_nodes=2)
        assert dijkstra(topo, 0)[1] == float("inf")

    def test_invalid_source(self):
        with pytest.raises(ValueError):
            dijkstra(star_topology(3), 99)


class TestShortestPathMatrix:
    def test_symmetry_and_zero_diagonal(self):
        matrix = shortest_path_latencies(ring_topology(5, link_latency_ms=1.0))
        assert np.allclose(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0)

    def test_ring_max_distance(self):
        matrix = shortest_path_latencies(ring_topology(6, link_latency_ms=1.0))
        assert matrix.max() == 3.0  # halfway around

    def test_disconnected_raises(self):
        with pytest.raises(ValueError):
            shortest_path_latencies(Topology(num_nodes=2))

    def test_disconnected_raises_scalar(self):
        with pytest.raises(ValueError):
            shortest_path_latencies(Topology(num_nodes=2), method="python")


class TestScipyBackend:
    """The csgraph backend must match the per-source loop exactly."""

    def test_matches_scalar_on_geometric(self):
        topo = random_geometric_topology(60, radius=0.3, seed=3)
        fast = shortest_path_latencies(topo, method="scipy")
        slow = shortest_path_latencies_scalar(topo)
        np.testing.assert_allclose(fast, slow, rtol=1e-9, atol=1e-9)

    def test_matches_scalar_on_grid(self):
        topo = grid_topology(5, 5, link_latency_ms=2.5)
        np.testing.assert_allclose(
            shortest_path_latencies(topo, method="scipy"),
            shortest_path_latencies(topo, method="python"),
            rtol=1e-9,
            atol=1e-9,
        )

    def test_parallel_links_take_minimum(self):
        # csr_matrix sums duplicate entries; the backend must min-reduce
        # parallel links instead, like the relaxation loop does.
        topo = Topology(num_nodes=2)
        topo.add_link(0, 1, 10.0)
        topo.add_link(0, 1, 3.0)
        fast = shortest_path_latencies(topo, method="scipy")
        assert fast[0, 1] == 3.0
        np.testing.assert_allclose(fast, shortest_path_latencies_scalar(topo))

    def test_single_node(self):
        matrix = shortest_path_latencies(Topology(num_nodes=1), method="scipy")
        assert matrix.shape == (1, 1) and matrix[0, 0] == 0.0

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            shortest_path_latencies(grid_topology(2, 2), method="fast")


class TestLatencyMatrix:
    def _simple(self) -> LatencyMatrix:
        return LatencyMatrix.from_topology(grid_topology(3, 3, link_latency_ms=1.0))

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError):
            LatencyMatrix(np.array([[0.0, 1.0], [2.0, 0.0]]))

    def test_rejects_nonzero_diagonal(self):
        with pytest.raises(ValueError):
            LatencyMatrix(np.array([[1.0, 2.0], [2.0, 1.0]]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            LatencyMatrix(np.array([[0.0, -1.0], [-1.0, 0.0]]))

    def test_mean_and_max(self):
        lm = self._simple()
        assert 0 < lm.mean_latency() <= lm.max_latency()
        assert lm.max_latency() == 4.0  # corner to corner of 3x3 grid

    def test_percentile_bounds(self):
        lm = self._simple()
        assert lm.percentile(0) <= lm.percentile(50) <= lm.percentile(100)
        assert lm.percentile(100) == lm.max_latency()

    def test_shortest_path_matrix_has_no_triangle_violations(self):
        lm = self._simple()
        assert lm.triangle_violation_fraction(sample_size=2000) == 0.0

    def test_injected_violations_are_detected(self):
        lm = self._simple().with_triangle_violations(fraction=0.3, inflation=3.0)
        assert lm.triangle_violation_fraction(sample_size=2000) > 0.0

    def test_perturbed_stays_valid_and_close(self):
        lm = self._simple()
        noisy = lm.perturbed(relative_sigma=0.05, seed=1)
        assert noisy.num_nodes == lm.num_nodes
        ratio = noisy.values[0, 1] / lm.values[0, 1]
        assert 0.5 < ratio < 2.0

    def test_perturbed_zero_sigma_is_identity(self):
        lm = self._simple()
        assert np.allclose(lm.perturbed(relative_sigma=0.0).values, lm.values)

    def test_submatrix_reindexes(self):
        lm = self._simple()
        sub = lm.submatrix([0, 4, 8])
        assert sub.num_nodes == 3
        assert sub.latency(0, 2) == lm.latency(0, 8)

    def test_latency_lookup(self):
        lm = self._simple()
        assert lm.latency(0, 1) == 1.0
        assert lm.latency(0, 0) == 0.0
