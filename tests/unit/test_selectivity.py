"""Unit tests for statistics and rate estimation."""

import pytest

from repro.query.selectivity import Statistics, rate_of_subset


def simple_stats() -> Statistics:
    return Statistics.build(
        rates={"A": 10.0, "B": 5.0, "C": 2.0},
        pair_selectivities={("A", "B"): 0.1, ("B", "C"): 0.2, ("A", "C"): 0.5},
    )


class TestStatistics:
    def test_rate_lookup(self):
        stats = simple_stats()
        assert stats.rate("A") == 10.0
        with pytest.raises(KeyError):
            stats.rate("Z")

    def test_selectivity_is_symmetric(self):
        stats = simple_stats()
        assert stats.selectivity("A", "B") == stats.selectivity("B", "A") == 0.1

    def test_selectivity_self_undefined(self):
        with pytest.raises(ValueError):
            simple_stats().selectivity("A", "A")

    def test_default_selectivity_for_unknown_pair(self):
        stats = Statistics.build({"A": 1.0, "B": 1.0}, default_selectivity=0.3)
        assert stats.selectivity("A", "B") == 0.3

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            Statistics({"A": -1.0})

    def test_rejects_bad_selectivity(self):
        with pytest.raises(ValueError):
            Statistics({"A": 1.0, "B": 1.0}, {frozenset(("A", "B")): 2.0})

    def test_rejects_non_pair_key(self):
        with pytest.raises(ValueError):
            Statistics({"A": 1.0}, {frozenset(("A",)): 0.5})

    def test_with_rate(self):
        stats = simple_stats().with_rate("A", 99.0)
        assert stats.rate("A") == 99.0
        assert simple_stats().rate("A") == 10.0  # original untouched

    def test_random_stats_valid(self):
        stats = Statistics.random(["X", "Y", "Z"], seed=5)
        for name in ("X", "Y", "Z"):
            assert stats.rate(name) > 0
        assert 0 < stats.selectivity("X", "Y") <= 1

    def test_random_deterministic(self):
        a = Statistics.random(["X", "Y"], seed=1)
        b = Statistics.random(["X", "Y"], seed=1)
        assert a.rates == b.rates and a.selectivities == b.selectivities

    def test_drifted_changes_values_but_stays_valid(self):
        stats = simple_stats()
        drifted = stats.drifted(relative_sigma=0.5, seed=2)
        assert drifted.rate("A") != stats.rate("A")
        for pair, sel in drifted.selectivities.items():
            assert 0 < sel <= 1


class TestRateOfSubset:
    def test_single_producer(self):
        assert rate_of_subset(simple_stats(), {"A"}) == 10.0

    def test_pair(self):
        # 10 * 5 * 0.1 = 5.
        assert rate_of_subset(simple_stats(), {"A", "B"}) == pytest.approx(5.0)

    def test_triple_includes_all_pairs(self):
        # 10*5*2 * 0.1*0.2*0.5 = 100 * 0.01 = 1.
        assert rate_of_subset(simple_stats(), {"A", "B", "C"}) == pytest.approx(1.0)

    def test_empty_subset_rejected(self):
        with pytest.raises(ValueError):
            rate_of_subset(simple_stats(), set())

    def test_order_invariance(self):
        stats = simple_stats()
        assert rate_of_subset(stats, {"A", "B", "C"}) == rate_of_subset(
            stats, {"C", "B", "A"}
        )
