"""Unit tests for the integrated / two-step / random optimizers."""

import numpy as np
import pytest

from repro.core.costs import GroundTruthEvaluator
from repro.core.optimizer import (
    IntegratedOptimizer,
    RandomOptimizer,
    TwoStepOptimizer,
)
from repro.query.generator import count_all_plans
from repro.workloads.queries import WorkloadParams, random_query
from repro.workloads.scenarios import figure1_scenario, perfect_cost_space, planted_latency_matrix


class TestIntegratedOptimizer:
    def test_fig1_integrated_beats_two_step(self):
        sc = figure1_scenario()
        gt = GroundTruthEvaluator(sc.latencies)
        ri = IntegratedOptimizer(sc.cost_space).optimize(sc.query, sc.stats)
        rt = TwoStepOptimizer(sc.cost_space).optimize(sc.query, sc.stats)
        true_i = gt.evaluate(ri.circuit).network_usage
        true_t = gt.evaluate(rt.circuit).network_usage
        assert true_i < true_t
        # The winning integrated plan pairs intra-cluster producers.
        internals = ri.plan.root.internal_nodes()
        first_joins = {frozenset(n.producers) for n in internals if len(n.producers) == 2}
        assert frozenset({"P1", "P2"}) in first_joins
        assert frozenset({"P3", "P4"}) in first_joins

    def test_all_candidates_evaluated(self):
        sc = figure1_scenario()
        result = IntegratedOptimizer(sc.cost_space).optimize(sc.query, sc.stats)
        assert result.placements_evaluated == count_all_plans(4) == 15
        assert len(result.candidates) == 15

    def test_winner_is_min_candidate(self):
        sc = figure1_scenario()
        result = IntegratedOptimizer(sc.cost_space).optimize(sc.query, sc.stats)
        best = min(c.cost.total for c in result.candidates)
        assert result.cost.total == pytest.approx(best)

    def test_circuit_fully_placed(self):
        sc = figure1_scenario()
        result = IntegratedOptimizer(sc.cost_space).optimize(sc.query, sc.stats)
        assert result.circuit.is_fully_placed()

    def test_large_query_uses_topk(self):
        positions = [(float(i), 0.0) for i in range(30)]
        space = perfect_cost_space(positions)
        query, stats = random_query(
            30, WorkloadParams(num_producers=7), seed=3
        )
        opt = IntegratedOptimizer(space, max_candidate_plans=6)
        result = opt.optimize(query, stats)
        assert 1 <= result.placements_evaluated <= 6
        assert result.circuit.is_fully_placed()

    def test_max_candidate_plans_validated(self):
        sc = figure1_scenario()
        with pytest.raises(ValueError):
            IntegratedOptimizer(sc.cost_space, max_candidate_plans=0)


class TestTwoStepOptimizer:
    def test_considers_exactly_one_plan(self):
        sc = figure1_scenario()
        result = TwoStepOptimizer(sc.cost_space).optimize(sc.query, sc.stats)
        assert result.placements_evaluated == 1
        assert len(result.candidates) == 1

    def test_plan_is_oblivious_optimum(self):
        sc = figure1_scenario()
        result = TwoStepOptimizer(sc.cost_space).optimize(sc.query, sc.stats)
        from repro.query.generator import best_plan

        assert result.plan.signature() == best_plan(
            sc.query.producer_names, sc.stats
        ).signature()


class TestRandomOptimizer:
    def test_produces_valid_circuit(self):
        sc = figure1_scenario()
        result = RandomOptimizer(sc.cost_space, seed=1).optimize(sc.query, sc.stats)
        assert result.circuit.is_fully_placed()

    def test_deterministic_given_seed(self):
        sc = figure1_scenario()
        a = RandomOptimizer(sc.cost_space, seed=5).optimize(sc.query, sc.stats)
        b = RandomOptimizer(sc.cost_space, seed=5).optimize(sc.query, sc.stats)
        assert a.circuit.placement == b.circuit.placement

    def test_random_not_better_than_integrated(self):
        sc = figure1_scenario()
        gt = GroundTruthEvaluator(sc.latencies)
        integ = IntegratedOptimizer(sc.cost_space).optimize(sc.query, sc.stats)
        rand_costs = [
            gt.evaluate(
                RandomOptimizer(sc.cost_space, seed=s).optimize(sc.query, sc.stats).circuit
            ).network_usage
            for s in range(5)
        ]
        integ_cost = gt.evaluate(integ.circuit).network_usage
        assert integ_cost <= min(rand_costs) + 1e-9


class TestInvariantAcrossRandomInstances:
    def test_integrated_never_worse_than_two_step_estimate(self):
        # Under the same evaluator the integrated optimizer considers a
        # superset of the two-step optimizer's candidates, so its chosen
        # estimated cost can never be higher.
        rng_positions = np.random.default_rng(0).uniform(0, 100, size=(25, 2))
        space = perfect_cost_space([tuple(p) for p in rng_positions])
        for seed in range(8):
            query, stats = random_query(25, seed=seed)
            ri = IntegratedOptimizer(space).optimize(query, stats)
            rt = TwoStepOptimizer(space).optimize(query, stats)
            assert ri.cost.total <= rt.cost.total + 1e-9


class TestPlacementRefinement:
    def test_refinement_never_increases_estimated_cost(self):
        sc = figure1_scenario()
        base = IntegratedOptimizer(sc.cost_space).optimize(sc.query, sc.stats)
        refined = IntegratedOptimizer(
            sc.cost_space, refinement_candidates=6
        ).optimize(sc.query, sc.stats)
        assert refined.cost.total <= base.cost.total + 1e-9

    def test_zero_refinement_is_default_behaviour(self):
        sc = figure1_scenario()
        a = IntegratedOptimizer(sc.cost_space).optimize(sc.query, sc.stats)
        b = IntegratedOptimizer(
            sc.cost_space, refinement_candidates=0
        ).optimize(sc.query, sc.stats)
        assert a.circuit.placement == b.circuit.placement

    def test_negative_refinement_rejected(self):
        sc = figure1_scenario()
        with pytest.raises(ValueError):
            IntegratedOptimizer(sc.cost_space, refinement_candidates=-1)

    def test_refinement_respects_mapper_exclusions(self):
        sc = figure1_scenario()
        from repro.core.physical_mapping import ExhaustiveMapper

        excluded = {5, 6, 7, 8}
        mapper = ExhaustiveMapper(sc.cost_space, excluded=excluded)
        result = IntegratedOptimizer(
            sc.cost_space, mapper=mapper, refinement_candidates=8
        ).optimize(sc.query, sc.stats)
        for sid in result.circuit.unpinned_ids():
            assert result.circuit.host_of(sid) not in excluded
