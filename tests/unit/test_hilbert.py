"""Unit tests for the Hilbert curve and coordinate quantization."""

import numpy as np
import pytest

from repro.dht.hilbert import (
    HilbertMapper,
    hilbert_decode,
    hilbert_encode,
    morton_decode,
    morton_encode,
)


class TestHilbertCurve:
    def test_2d_order1_visits_all_cells(self):
        seen = {hilbert_decode(i, bits=1, dims=2) for i in range(4)}
        assert seen == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_roundtrip_2d(self):
        for x in range(8):
            for y in range(8):
                idx = hilbert_encode((x, y), bits=3)
                assert hilbert_decode(idx, bits=3, dims=2) == (x, y)

    def test_roundtrip_3d(self):
        for x in range(4):
            for y in range(4):
                for z in range(4):
                    idx = hilbert_encode((x, y, z), bits=2)
                    assert hilbert_decode(idx, bits=2, dims=3) == (x, y, z)

    def test_curve_is_continuous(self):
        # Consecutive indices differ by exactly one grid step (the
        # defining property of the Hilbert curve).
        bits, dims = 4, 2
        previous = hilbert_decode(0, bits, dims)
        for i in range(1, 1 << (bits * dims)):
            current = hilbert_decode(i, bits, dims)
            manhattan = sum(abs(a - b) for a, b in zip(previous, current))
            assert manhattan == 1, f"jump at index {i}"
            previous = current

    def test_out_of_range_coordinate_rejected(self):
        with pytest.raises(ValueError):
            hilbert_encode((8, 0), bits=3)

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError):
            hilbert_decode(1 << 6, bits=3, dims=2)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            hilbert_encode((0,), bits=0)


class TestMorton:
    def test_roundtrip(self):
        for x in range(8):
            for y in range(8):
                idx = morton_encode((x, y), bits=3)
                assert morton_decode(idx, bits=3, dims=2) == (x, y)

    def test_morton_has_jumps_hilbert_does_not(self):
        # Z-order famously jumps across the space; verify our baseline
        # really is worse in worst-case step length.
        bits, dims = 3, 2

        def max_step(decode):
            worst = 0
            prev = decode(0, bits, dims)
            for i in range(1, 1 << (bits * dims)):
                cur = decode(i, bits, dims)
                worst = max(worst, sum(abs(a - b) for a, b in zip(prev, cur)))
                prev = cur
            return worst

        assert max_step(hilbert_decode) == 1
        assert max_step(morton_decode) > 1


class TestHilbertMapper:
    def _mapper(self) -> HilbertMapper:
        return HilbertMapper(lows=(0.0, 0.0), highs=(100.0, 100.0), bits=8)

    def test_quantize_corners(self):
        mapper = self._mapper()
        assert mapper.quantize([0.0, 0.0]) == (0, 0)
        assert mapper.quantize([100.0, 100.0]) == (255, 255)

    def test_quantize_clamps_outside_box(self):
        mapper = self._mapper()
        assert mapper.quantize([-5.0, 200.0]) == (0, 255)

    def test_dequantize_roundtrip_error_bounded(self):
        mapper = self._mapper()
        point = np.array([37.3, 81.9])
        cell = mapper.quantize(point)
        back = mapper.dequantize(cell)
        cell_size = 100.0 / 255
        assert np.all(np.abs(back - point) <= cell_size)

    def test_key_for_is_deterministic(self):
        mapper = self._mapper()
        assert mapper.key_for([10.0, 20.0]) == mapper.key_for([10.0, 20.0])

    def test_key_bits(self):
        assert self._mapper().key_bits == 16

    def test_fit_covers_points(self):
        pts = np.array([[1.0, 2.0], [5.0, -3.0], [9.0, 4.0]])
        mapper = HilbertMapper.fit(pts, bits=6)
        for p in pts:
            cell = mapper.quantize(p)
            assert all(0 < c < (1 << 6) - 1 for c in cell), "margin keeps points interior"

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError):
            HilbertMapper.fit(np.zeros((0, 2)))

    def test_nearby_points_nearby_keys(self):
        # Locality: two points in the same cell share a key.
        mapper = self._mapper()
        assert mapper.key_for([50.0, 50.0]) == mapper.key_for([50.05, 50.05])

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            HilbertMapper(lows=(0.0,), highs=(0.0,))
        with pytest.raises(ValueError):
            HilbertMapper(lows=(0.0, 0.0), highs=(1.0,))

    def test_wrong_dimensionality_rejected(self):
        with pytest.raises(ValueError):
            self._mapper().quantize([1.0, 2.0, 3.0])
