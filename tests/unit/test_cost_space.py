"""Unit tests for the cost-space snapshot."""

import numpy as np
import pytest

from repro.core.coordinates import CostCoordinate
from repro.core.cost_space import CostSpace, CostSpaceSpec, ScalarDimension
from repro.core.weighting import linear, squared


def load_space(loads=(0.0, 0.5, 1.0)) -> CostSpace:
    spec = CostSpaceSpec.latency_load(vector_dims=2, load_weighting=squared(100.0))
    embedding = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])[: len(loads)]
    return CostSpace.from_embedding(
        spec, embedding, {"cpu_load": np.array(loads)}
    )


class TestSpec:
    def test_requires_vector_dims(self):
        with pytest.raises(ValueError):
            CostSpaceSpec(vector_dims=0)

    def test_duplicate_metrics_rejected(self):
        with pytest.raises(ValueError):
            CostSpaceSpec(
                vector_dims=2,
                scalar_dimensions=(
                    ScalarDimension("cpu", linear()),
                    ScalarDimension("cpu", squared()),
                ),
            )

    def test_latency_only_factory(self):
        spec = CostSpaceSpec.latency_only(vector_dims=3)
        assert spec.dims == 3
        assert not spec.scalar_dimensions

    def test_latency_load_factory(self):
        spec = CostSpaceSpec.latency_load(vector_dims=2)
        assert spec.dims == 3
        assert spec.scalar_dimensions[0].metric == "cpu_load"


class TestConstruction:
    def test_from_embedding_shapes(self):
        space = load_space()
        assert space.num_nodes == 3
        assert space.coordinate(0).dims == 3

    def test_wrong_embedding_shape_rejected(self):
        spec = CostSpaceSpec.latency_only(vector_dims=2)
        with pytest.raises(ValueError):
            CostSpace.from_embedding(spec, np.zeros((3, 5)))

    def test_missing_metric_rejected(self):
        spec = CostSpaceSpec.latency_load(vector_dims=2)
        with pytest.raises(ValueError):
            CostSpace.from_embedding(spec, np.zeros((3, 2)), {})

    def test_wrong_metric_length_rejected(self):
        spec = CostSpaceSpec.latency_load(vector_dims=2)
        with pytest.raises(ValueError):
            CostSpace.from_embedding(
                spec, np.zeros((3, 2)), {"cpu_load": np.zeros(5)}
            )

    def test_weighting_applied(self):
        space = load_space(loads=(0.0, 0.5, 1.0))
        assert space.coordinate(0).scalar == (0.0,)
        assert space.coordinate(1).scalar[0] == pytest.approx(25.0)
        assert space.coordinate(2).scalar[0] == pytest.approx(100.0)


class TestDistances:
    def test_vector_distance_is_embedding_distance(self):
        space = load_space()
        assert space.vector_distance(0, 1) == pytest.approx(10.0)
        assert space.estimated_latency(0, 1) == pytest.approx(10.0)

    def test_full_distance_includes_load(self):
        space = load_space(loads=(0.0, 0.0, 1.0))
        # Nodes 0 and 2: vector distance 10, scalar delta 100.
        assert space.distance(0, 2) == pytest.approx(np.hypot(10.0, 100.0))


class TestUpdates:
    def test_update_metrics_changes_scalars_only(self):
        space = load_space(loads=(0.0, 0.0, 0.0))
        before_vec = space.coordinate(1).vector
        space.update_metrics({"cpu_load": np.array([1.0, 1.0, 1.0])})
        assert space.coordinate(1).vector == before_vec
        assert space.coordinate(1).scalar[0] == pytest.approx(100.0)

    def test_update_vector(self):
        space = load_space()
        space.update_vector(0, [5.0, 5.0])
        assert space.coordinate(0).vector == (5.0, 5.0)


class TestQueries:
    def test_nearest_node_pure_latency(self):
        space = load_space(loads=(0.0, 0.0, 0.0))
        target = CostCoordinate((9.0, 0.0), (0.0,))
        assert space.nearest_node(target) == 1

    def test_nearest_node_avoids_loaded(self):
        # Target next to node 1, but node 1 is saturated.
        space = load_space(loads=(0.0, 1.0, 0.0))
        target = CostCoordinate((9.0, 0.0), (0.0,))
        assert space.nearest_node(target) == 0

    def test_nearest_node_respects_exclusion(self):
        space = load_space(loads=(0.0, 0.0, 0.0))
        target = CostCoordinate((9.0, 0.0), (0.0,))
        assert space.nearest_node(target, exclude={1}) == 0

    def test_nearest_with_all_excluded_raises(self):
        space = load_space()
        target = CostCoordinate((0.0, 0.0), (0.0,))
        with pytest.raises(ValueError):
            space.nearest_node(target, exclude={0, 1, 2})

    def test_nodes_within_radius(self):
        space = load_space(loads=(0.0, 0.0, 0.0))
        target = CostCoordinate((0.0, 0.0), (0.0,))
        assert space.nodes_within(target, radius=10.5) == [0, 1, 2]
        assert space.nodes_within(target, radius=5.0) == [0]

    def test_wrong_shape_target_rejected(self):
        space = load_space()
        with pytest.raises(ValueError):
            space.nearest_node(CostCoordinate((1.0, 2.0)))  # missing scalar dim

    def test_bounding_box_covers_all(self):
        space = load_space()
        lows, highs = space.bounding_box()
        matrix = space.full_matrix()
        assert np.all(matrix >= np.array(lows) - 1e-9)
        assert np.all(matrix <= np.array(highs) + 1e-9)


class TestBatchedQueries:
    def test_distances_from_accepts_coordinate_and_array(self):
        space = load_space(loads=(0.0, 0.0, 0.0))
        target = CostCoordinate((0.0, 0.0), (0.0,))
        from_coord = space.distances_from(target)
        from_array = space.distances_from(np.zeros(3))
        assert np.allclose(from_coord, from_array)
        assert from_coord[1] == pytest.approx(10.0)

    def test_distances_from_rejects_bad_shape(self):
        space = load_space()
        with pytest.raises(ValueError):
            space.distances_from(np.zeros(5))

    def test_nearest_nodes_matches_singles(self):
        space = load_space(loads=(0.0, 0.3, 0.9))
        targets = [
            CostCoordinate((9.0, 0.0), (0.0,)),
            CostCoordinate((0.0, 9.0), (0.0,)),
            CostCoordinate((1.0, 1.0), (0.0,)),
        ]
        batched = space.nearest_nodes(targets)
        assert list(batched) == [space.nearest_node(t) for t in targets]

    def test_nearest_nodes_empty_targets(self):
        space = load_space()
        assert space.nearest_nodes([]).shape == (0,)

    def test_nearest_nodes_respects_exclusion(self):
        space = load_space(loads=(0.0, 0.0, 0.0))
        targets = np.array([[9.0, 0.0, 0.0]])
        assert list(space.nearest_nodes(targets, exclude={1})) == [0]
        with pytest.raises(ValueError):
            space.nearest_nodes(targets, exclude={0, 1, 2})

    def test_matrices_are_read_only_views(self):
        space = load_space()
        with pytest.raises(ValueError):
            space.full_matrix()[0, 0] = 1.0
        with pytest.raises(ValueError):
            space.vector_matrix()[0, 0] = 1.0

    def test_update_vectors_batched(self):
        space = load_space()
        fresh = np.arange(6, dtype=float).reshape(3, 2)
        space.update_vectors(fresh)
        assert space.coordinate(2).vector == (4.0, 5.0)
        with pytest.raises(ValueError):
            space.update_vectors(np.zeros((2, 2)))

    def test_scalar_penalties(self):
        space = load_space(loads=(0.0, 0.5, 1.0))
        penalties = space.scalar_penalties()
        assert penalties[0] == pytest.approx(0.0)
        assert penalties[1] == pytest.approx(25.0)
        assert space.scalar_penalty(2) == pytest.approx(100.0)

    def test_coordinate_views_refresh_after_update(self):
        space = load_space(loads=(0.0, 0.0, 0.0))
        before = space.coordinate(1)
        space.update_metrics({"cpu_load": np.array([0.0, 1.0, 0.0])})
        after = space.coordinate(1)
        assert before.scalar == (0.0,)
        assert after.scalar[0] == pytest.approx(100.0)
