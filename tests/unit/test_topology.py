"""Unit tests for topology generators."""

import pytest

from repro.network.topology import (
    Link,
    Topology,
    TransitStubParams,
    grid_topology,
    random_geometric_topology,
    ring_topology,
    star_topology,
    transit_stub_topology,
    uniform_delay_topology,
)


class TestLink:
    def test_other_endpoint(self):
        link = Link(1, 2, 5.0)
        assert link.other(1) == 2
        assert link.other(2) == 1

    def test_other_rejects_non_endpoint(self):
        with pytest.raises(ValueError):
            Link(1, 2, 5.0).other(3)


class TestTopologyValidation:
    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            Topology(num_nodes=0)

    def test_rejects_self_loop(self):
        topo = Topology(num_nodes=2)
        with pytest.raises(ValueError):
            topo.add_link(0, 0, 1.0)

    def test_rejects_out_of_range_link(self):
        topo = Topology(num_nodes=2)
        with pytest.raises(ValueError):
            topo.add_link(0, 5, 1.0)

    def test_rejects_non_positive_latency(self):
        topo = Topology(num_nodes=2)
        with pytest.raises(ValueError):
            topo.add_link(0, 1, 0.0)

    def test_adjacency_is_symmetric(self):
        topo = Topology(num_nodes=3)
        topo.add_link(0, 1, 2.0)
        adj = topo.adjacency()
        assert (1, 2.0) in adj[0]
        assert (0, 2.0) in adj[1]
        assert adj[2] == []

    def test_degree(self):
        topo = star_topology(4)
        assert topo.degree(0) == 4
        assert topo.degree(1) == 1

    def test_connectivity_detection(self):
        topo = Topology(num_nodes=3)
        topo.add_link(0, 1, 1.0)
        assert not topo.is_connected()
        topo.add_link(1, 2, 1.0)
        assert topo.is_connected()

    def test_single_node_is_connected(self):
        assert Topology(num_nodes=1).is_connected()


class TestTransitStub:
    def test_default_size_matches_paper(self):
        # 24 transit nodes + 24 x 4 stubs x 6 nodes = 600.
        assert TransitStubParams().total_nodes == 600

    def test_generated_topology_is_connected(self):
        topo = transit_stub_topology(seed=3)
        assert topo.num_nodes == 600
        assert topo.is_connected()

    def test_tags_partition_nodes(self):
        topo = transit_stub_topology(seed=1)
        transit = topo.nodes_tagged("transit")
        stub = topo.nodes_tagged("stub")
        assert len(transit) == 24
        assert len(stub) == 576
        assert set(transit) | set(stub) == set(range(600))

    def test_deterministic_given_seed(self):
        a = transit_stub_topology(seed=7)
        b = transit_stub_topology(seed=7)
        assert a.links == b.links

    def test_different_seeds_differ(self):
        a = transit_stub_topology(seed=1)
        b = transit_stub_topology(seed=2)
        assert a.links != b.links

    def test_small_custom_params(self):
        params = TransitStubParams(
            num_transit_domains=2,
            transit_nodes_per_domain=2,
            stub_domains_per_transit_node=1,
            nodes_per_stub_domain=3,
        )
        topo = transit_stub_topology(params, seed=0)
        assert topo.num_nodes == params.total_nodes == 4 + 4 * 3
        assert topo.is_connected()

    def test_stub_links_faster_than_transit_links(self):
        params = TransitStubParams()
        topo = transit_stub_topology(params, seed=5)
        tags = topo.node_tags
        intra_stub = [
            l.latency_ms
            for l in topo.links
            if tags[l.u] == "stub" and tags[l.v] == "stub"
        ]
        inter_transit = [
            l.latency_ms
            for l in topo.links
            if tags[l.u] == "transit" and tags[l.v] == "transit"
        ]
        assert max(intra_stub) <= params.intra_stub_latency[1]
        assert min(inter_transit) >= params.intra_transit_latency[0]


class TestGeometric:
    def test_connected_even_with_small_radius(self):
        topo = random_geometric_topology(50, radius=0.05, seed=2)
        assert topo.is_connected()

    def test_positions_recorded(self):
        topo = random_geometric_topology(10, seed=0)
        assert len(topo.positions) == 10
        for x, y in topo.positions:
            assert 0.0 <= x <= 1.0 and 0.0 <= y <= 1.0

    def test_rejects_non_positive_nodes(self):
        with pytest.raises(ValueError):
            random_geometric_topology(0)


class TestRegularTopologies:
    def test_grid_structure(self):
        topo = grid_topology(3, 4, link_latency_ms=2.0)
        assert topo.num_nodes == 12
        # 3 rows x 3 horizontal + 2 x 4 vertical = 9 + 8 = 17 links.
        assert len(topo.links) == 17
        assert topo.is_connected()

    def test_ring_structure(self):
        topo = ring_topology(6)
        assert len(topo.links) == 6
        assert all(topo.degree(i) == 2 for i in range(6))

    def test_ring_minimum_size(self):
        with pytest.raises(ValueError):
            ring_topology(2)

    def test_star_structure(self):
        topo = star_topology(5)
        assert topo.num_nodes == 6
        assert topo.degree(0) == 5

    def test_uniform_complete(self):
        topo = uniform_delay_topology(8, seed=0)
        assert len(topo.links) == 8 * 7 // 2
