"""Unit tests for circuit cost evaluation."""

import numpy as np
import pytest

from repro.core.circuit import Circuit
from repro.core.costs import (
    CostSpaceEvaluator,
    GroundTruthEvaluator,
    consumer_latency,
    network_usage,
)
from repro.core.cost_space import CostSpace, CostSpaceSpec
from repro.core.weighting import squared
from repro.network.latency import LatencyMatrix
from repro.query.model import Consumer, Producer, QuerySpec
from repro.query.plan import JoinNode, LeafNode, LogicalPlan
from repro.query.selectivity import Statistics
from repro.workloads.scenarios import planted_latency_matrix


def placed_circuit() -> tuple[Circuit, LatencyMatrix]:
    """Two producers at (0,0), (10,0); consumer at (5,5); join on node 3."""
    positions = [(0.0, 0.0), (10.0, 0.0), (5.0, 5.0), (5.0, 0.0)]
    latencies = planted_latency_matrix(positions)
    query = QuerySpec(
        name="q",
        producers=[Producer("A", node=0, rate=4.0), Producer("B", node=1, rate=4.0)],
        consumer=Consumer("C", node=2),
    )
    stats = Statistics.build(
        {"A": 4.0, "B": 4.0}, {("A", "B"): 0.25}
    )
    plan = LogicalPlan(JoinNode(LeafNode("A"), LeafNode("B")))
    circuit = Circuit.from_plan(plan, query, stats)
    circuit.assign("q/join0", 3)
    return circuit, latencies


class TestNetworkUsage:
    def test_hand_computed_usage(self):
        circuit, lm = placed_circuit()
        # A->join: rate 4 x 5ms; B->join: 4 x 5; join->C: 4 (=4*4*0.25) x 5.
        expected = 4 * 5.0 + 4 * 5.0 + 4.0 * 5.0
        assert network_usage(circuit, lm.latency) == pytest.approx(expected)

    def test_colocated_link_is_free(self):
        circuit, lm = placed_circuit()
        circuit.assign("q/join0", 0)  # join on producer A's node
        # A->join free; B->join 4x10; join->C 4 x sqrt(50).
        expected = 4 * 10.0 + 4.0 * lm.latency(0, 2)
        assert network_usage(circuit, lm.latency) == pytest.approx(expected)

    def test_requires_full_placement(self):
        circuit, lm = placed_circuit()
        del circuit.placement["q/join0"]
        with pytest.raises(ValueError):
            network_usage(circuit, lm.latency)


class TestConsumerLatency:
    def test_longest_path(self):
        circuit, lm = placed_circuit()
        # Both producer paths: 5 + 5 = 10.
        assert consumer_latency(circuit, lm.latency) == pytest.approx(10.0)

    def test_asymmetric_paths_take_max(self):
        circuit, lm = placed_circuit()
        circuit.assign("q/join0", 0)
        expected = max(
            0.0 + lm.latency(0, 2),          # A path: colocated then to C
            lm.latency(1, 0) + lm.latency(0, 2),  # B path
        )
        assert consumer_latency(circuit, lm.latency) == pytest.approx(expected)


class TestEvaluators:
    def test_ground_truth_evaluator_components(self):
        circuit, lm = placed_circuit()
        loads = np.array([0.0, 0.0, 0.0, 0.5])
        ev = GroundTruthEvaluator(lm, loads, load_weighting=squared(100.0))
        cost = ev.evaluate(circuit, load_weight=2.0)
        assert cost.network_usage == pytest.approx(60.0)
        assert cost.load_penalty == pytest.approx(25.0)  # squared(0.5)*100
        assert cost.total == pytest.approx(60.0 + 2.0 * 25.0)

    def test_load_penalty_counts_unpinned_hosts_only(self):
        circuit, lm = placed_circuit()
        loads = np.array([1.0, 1.0, 1.0, 0.0])  # endpoints loaded, host idle
        ev = GroundTruthEvaluator(lm, loads)
        assert ev.evaluate(circuit).load_penalty == 0.0

    def test_update_loads(self):
        circuit, lm = placed_circuit()
        ev = GroundTruthEvaluator(lm, np.zeros(4))
        ev.update_loads(np.array([0, 0, 0, 1.0]))
        assert ev.evaluate(circuit).load_penalty > 0

    def test_update_loads_shape_checked(self):
        _, lm = placed_circuit()
        ev = GroundTruthEvaluator(lm)
        with pytest.raises(ValueError):
            ev.update_loads(np.zeros(7))

    def test_cost_space_evaluator_matches_ground_truth_on_perfect_embedding(self):
        circuit, lm = placed_circuit()
        spec = CostSpaceSpec.latency_only(vector_dims=2)
        embedding = np.array([(0.0, 0.0), (10.0, 0.0), (5.0, 5.0), (5.0, 0.0)])
        space = CostSpace.from_embedding(spec, embedding)
        est = CostSpaceEvaluator(space).evaluate(circuit)
        true = GroundTruthEvaluator(lm).evaluate(circuit)
        assert est.network_usage == pytest.approx(true.network_usage)

    def test_cost_ordering(self):
        circuit, lm = placed_circuit()
        good = GroundTruthEvaluator(lm).evaluate(circuit)
        circuit.assign("q/join0", 0)
        bad = GroundTruthEvaluator(lm).evaluate(circuit)
        assert good < bad  # CircuitCost ordering by total
