"""Unit tests for the memory scalar dimension (§3.1)."""

import numpy as np
import pytest

from repro.core.cost_space import CostSpace, CostSpaceSpec
from repro.core.optimizer import IntegratedOptimizer
from repro.network.topology import grid_topology
from repro.query.operators import ServiceSpec
from repro.sbon.node import HostedService, SBONNode
from repro.sbon.overlay import Overlay
from repro.workloads.queries import random_query


class TestStateUnits:
    def test_join_state_scales_with_rate_and_window(self):
        small = HostedService("q", "q/j", ServiceSpec.join(window_seconds=10), 2.0)
        big = HostedService("q", "q/j2", ServiceSpec.join(window_seconds=100), 2.0)
        assert big.state_units == pytest.approx(10 * small.state_units)
        assert small.state_units == pytest.approx(20.0)

    def test_aggregate_state_is_compressed(self):
        join = HostedService("q", "j", ServiceSpec.join(window_seconds=60), 5.0)
        agg = HostedService("q", "a", ServiceSpec.aggregate(window_seconds=60), 5.0)
        assert agg.state_units == pytest.approx(0.1 * join.state_units)

    def test_stateless_services_hold_nothing(self):
        relay = HostedService("q", "r", ServiceSpec.relay(), 100.0)
        filt = HostedService("q", "f", ServiceSpec.filter(0.5), 100.0)
        assert relay.state_units == 0.0
        assert filt.state_units == 0.0


class TestNodeMemory:
    def test_memory_load_fraction(self):
        node = SBONNode(index=0, memory_capacity=1000.0)
        node.host(HostedService("q", "j", ServiceSpec.join(window_seconds=50), 4.0))
        assert node.memory_units == pytest.approx(200.0)
        assert node.memory_load == pytest.approx(0.2)

    def test_memory_load_clamped(self):
        node = SBONNode(index=0, memory_capacity=10.0)
        node.host(HostedService("q", "j", ServiceSpec.join(window_seconds=100), 5.0))
        assert node.memory_load == 1.0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SBONNode(index=0, memory_capacity=0.0)


class TestMemoryCostSpace:
    def test_spec_factory(self):
        spec = CostSpaceSpec.latency_load_memory(vector_dims=2)
        assert spec.dims == 4
        assert [d.metric for d in spec.scalar_dimensions] == ["cpu_load", "memory"]

    def test_overlay_refresh_feeds_memory_metric(self):
        overlay = Overlay.build(
            grid_topology(4, 4), vector_dims=2, embedding_rounds=15, seed=0
        )
        # Swap in a memory-aware space over the same embedding.
        vectors = overlay.cost_space.vector_matrix()
        spec = CostSpaceSpec.latency_load_memory(vector_dims=2)
        overlay.cost_space = CostSpace.from_embedding(
            spec,
            vectors,
            {"cpu_load": np.zeros(16), "memory": np.zeros(16)},
        )
        query, stats = random_query(16, seed=1)
        result = overlay.integrated_optimizer().optimize(query, stats)
        overlay.install(result)
        overlay.refresh_cost_space()
        hosts = {result.circuit.host_of(s) for s in result.circuit.unpinned_ids()}
        for host in hosts:
            # Joins hold window state -> memory scalar is nonzero.
            assert overlay.cost_space.coordinate(host).scalar[1] > 0

    def test_unknown_metric_provider_rejected(self):
        overlay = Overlay.build(
            grid_topology(3, 3), vector_dims=2, embedding_rounds=10, seed=0
        )
        vectors = overlay.cost_space.vector_matrix()
        from repro.core.cost_space import ScalarDimension
        from repro.core.weighting import linear

        spec = CostSpaceSpec(
            vector_dims=2,
            scalar_dimensions=(ScalarDimension("disk", linear()),),
        )
        overlay.cost_space = CostSpace.from_embedding(
            spec, vectors, {"disk": np.zeros(9)}
        )
        with pytest.raises(ValueError):
            overlay.refresh_cost_space()

    def test_memory_pressure_repels_placement(self):
        # A node saturated in memory should lose the mapping decision to
        # an equally-near node with free memory.
        positions = np.array([[0.0, 0.0], [10.0, 0.0], [10.1, 0.0]])
        spec = CostSpaceSpec.latency_load_memory(vector_dims=2)
        space = CostSpace.from_embedding(
            spec,
            positions,
            {
                "cpu_load": np.zeros(3),
                "memory": np.array([0.0, 1.0, 0.0]),
            },
        )
        from repro.core.coordinates import CostCoordinate

        target = CostCoordinate((10.0, 0.0), (0.0, 0.0))
        assert space.nearest_node(target) == 2
