"""Unit tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


BASE = ["--nodes", "40", "--topology", "geometric", "--rounds", "15", "--seed", "1"]


class TestCLI:
    def test_topology_command(self, capsys):
        assert main(BASE + ["topology"]) == 0
        out = capsys.readouterr().out
        assert "nodes" in out and "mean latency" in out

    def test_optimize_command(self, capsys):
        assert main(BASE + ["optimize", "--producers", "3"]) == 0
        out = capsys.readouterr().out
        assert "integrated:" in out and "two-step" in out

    def test_simulate_command(self, capsys):
        assert main(
            BASE + ["simulate", "--queries", "2", "--ticks", "6",
                    "--reopt-interval", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "mean_usage" in out

    def test_simulate_control_and_reliable_imply_data_plane(self, capsys):
        assert main(
            BASE + ["simulate", "--queries", "2", "--ticks", "12",
                    "--reopt-interval", "3", "--control", "--reliable"]
        ) == 0
        out = capsys.readouterr().out
        assert "control plane" in out
        assert "retransmission" in out
        assert "balanced" in out

    def test_execute_command(self, capsys):
        assert main(BASE + ["execute", "--producers", "2", "--ticks", "300"]) == 0
        out = capsys.readouterr().out
        assert "measured usage" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(BASE + ["nope"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main(BASE)
