"""Unit tests for the data-plane runtime (transport + coordinator)."""

import numpy as np
import pytest

from repro.core.circuit import Circuit, Service
from repro.network.topology import grid_topology
from repro.query.operators import ServiceSpec
from repro.runtime import jit as jit_kernels
from repro.runtime.dataplane import DataPlane, RuntimeConfig, _JOIN
from repro.runtime.transport import ArrayTransport, HeapTransport
from repro.sbon.overlay import Overlay
from repro.sbon.simulator import Simulation, SimulationConfig
from repro.workloads.queries import WorkloadParams, random_query
from repro.workloads.scenarios import planted_latency_matrix, perfect_cost_space

PARAMS = WorkloadParams(
    num_producers=3, rate_bounds=(3.0, 8.0), selectivity_bounds=(0.2, 0.6)
)


def arr(*values, dtype=np.int64):
    return np.asarray(values, dtype=dtype)


class TestArrayTransport:
    def test_send_due_roundtrip(self):
        t = ArrayTransport()
        t.send(arr(5, 3, 7), arr(1, 2, 3), arr(0, 0, 1), arr(10, 11, 12),
               arr(0, 0, 0), np.ones(3), arr(100, 101, 102))
        assert t.in_flight == 3 and t.sent == 3
        batch = t.due(4)
        assert batch is not None and list(batch["op"]) == [2]
        assert t.in_flight == 2 and t.delivered == 1
        batch = t.due(7)
        assert sorted(batch["seq"]) == [100, 102]
        assert t.due(100) is None
        assert t.sent == t.delivered + t.in_flight

    def test_growth_preserves_contents(self):
        t = ArrayTransport()
        n = 5000  # force several doublings
        seqs = np.arange(n)
        t.send(np.full(n, 9), seqs % 7, np.zeros(n, dtype=np.int64), seqs,
               np.zeros(n, dtype=np.int64), np.ones(n), seqs)
        batch = t.due(9)
        assert batch["seq"].size == n
        assert set(batch["seq"]) == set(range(n))

    def test_remap_drops_with_accounting(self):
        t = ArrayTransport()
        t.send(arr(5, 5), arr(0, 1), arr(0, 0), arr(1, 2), arr(0, 0),
               np.ones(2), arr(0, 1))
        mapping = np.array([7, -1])
        assert t.remap_ops(mapping) == 1
        assert t.dropped == 1
        assert t.sent == t.delivered + t.in_flight
        batch = t.due(5)
        assert list(batch["op"]) == [7]


class TestHeapTransport:
    def test_round_grouping(self):
        t = HeapTransport()
        t.send_one(5, 1, 0, 9, 0, 1, 0, 1.0)   # in-flight, round 1
        t.send_one(5, 2, 1, 9, 0, 2, 0, 1.0)   # cascade output, round 2
        first = t.due(5, 1)
        assert [e[5] for e in first] == [1]
        second = t.due(5, 2)
        assert [e[5] for e in second] == [2]
        assert t.sent == t.delivered + t.in_flight

    def test_remap_drops_with_accounting(self):
        t = HeapTransport()
        t.send_one(5, 1, 0, 0, 0, 1, 0, 1.0)
        t.send_one(5, 1, 1, 1, 0, 2, 0, 1.0)
        assert t.remap_ops(np.array([3, -1])) == 1
        assert t.in_flight == 1 and t.dropped == 1
        assert t.due(5, 1)[0][3] == 3


def small_overlay(seed=0, circuits=2):
    overlay = Overlay.build(
        grid_topology(4, 4), vector_dims=2, embedding_rounds=20, seed=seed
    )
    optimizer = overlay.integrated_optimizer()
    for i in range(circuits):
        query, stats = random_query(16, PARAMS, name=f"q{i}", seed=seed + i)
        overlay.install(optimizer.optimize(query, stats))
    return overlay


def planted_join_overlay(rate_a=5.0, rate_b=5.0, sel=0.4):
    """Two sources -> join -> sink on a planted 4-node latency matrix."""
    positions = [(0.0, 0.0), (8.0, 0.0), (4.0, 6.0), (4.0, 2.0)]
    latencies = planted_latency_matrix(positions, scale=10.0)
    space = perfect_cost_space([tuple(10.0 * c for c in p) for p in positions])
    overlay = Overlay(latencies, space)
    circuit = Circuit(name="q")
    circuit.add_service(Service("q/a", ServiceSpec.relay(), 0, frozenset(("A",))))
    circuit.add_service(Service("q/b", ServiceSpec.relay(), 1, frozenset(("B",))))
    circuit.add_service(Service("q/join", ServiceSpec.join(), None, frozenset(("A", "B"))))
    circuit.add_service(Service("q/sink", ServiceSpec.relay(), 2, frozenset(("A", "B"))))
    circuit.add_link("q/a", "q/join", rate_a)
    circuit.add_link("q/b", "q/join", rate_b)
    circuit.add_link("q/join", "q/sink", rate_a * rate_b * sel)
    circuit.assign("q/join", 3)
    overlay.install_circuit(circuit)
    return overlay, circuit


class TestRuntimeConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RuntimeConfig(window=-1)
        with pytest.raises(ValueError):
            RuntimeConfig(tick_ms=0.0)
        with pytest.raises(ValueError):
            RuntimeConfig(node_capacity=-1.0)
        with pytest.raises(ValueError):
            RuntimeConfig(eviction_slack=-2)

    def test_layout_and_tier_switches_validated(self):
        with pytest.raises(ValueError):
            RuntimeConfig(join_state="btree")
        with pytest.raises(ValueError):
            RuntimeConfig(admission="lottery")
        with pytest.raises(ValueError):
            RuntimeConfig(jit="cython")
        # Every retained variant still constructs.
        for join_state in ("epoch", "twolevel"):
            for admission in ("highwater", "frozen"):
                RuntimeConfig(join_state=join_state, admission=admission)

    def test_jit_resolution_contract(self):
        assert jit_kernels.resolve("numpy").tier == "numpy"
        auto = jit_kernels.resolve("auto")
        if jit_kernels.numba_available():
            assert auto.tier == "numba"
            assert jit_kernels.resolve("numba").tier == "numba"
        else:
            # auto degrades silently; an explicit demand must not.
            assert auto.tier == "numpy"
            with pytest.raises(RuntimeError):
                jit_kernels.resolve("numba")
        with pytest.raises(ValueError):
            jit_kernels.resolve_tier("cython")


class TestCompile:
    def test_structure_detected(self):
        overlay, circuit = planted_join_overlay()
        plane = DataPlane(overlay)
        assert plane._num_ops == 4
        assert plane._src_ops.size == 2
        assert int((plane._kind == _JOIN).sum()) == 1
        assert int(plane._is_sink.sum()) == 1
        # Source emission rates come from the circuit's link rates.
        np.testing.assert_allclose(sorted(plane._src_rate), [5.0, 5.0])

    def test_join_pmatch_realizes_estimated_rate(self):
        overlay, circuit = planted_join_overlay(sel=0.4)
        plane = DataPlane(overlay, RuntimeConfig(seed=1))
        for _ in range(600):
            plane.step()
        stats = plane.link_stats()
        measured = stats[("q", "q/join", "q/sink")]["rate"]
        estimated = next(
            l.rate for l in circuit.links if l.target == "q/sink"
        )
        assert measured == pytest.approx(estimated, rel=0.2)

    def test_source_rates_realized(self):
        overlay, circuit = planted_join_overlay()
        plane = DataPlane(overlay, RuntimeConfig(seed=2))
        for _ in range(400):
            plane.step()
        stats = plane.link_stats()
        assert stats[("q", "q/a", "q/join")]["rate"] == pytest.approx(5.0, rel=0.15)


class TestTraffic:
    def test_deliveries_and_latency_percentiles(self):
        overlay, _ = planted_join_overlay()
        plane = DataPlane(overlay, RuntimeConfig(seed=3))
        delivered = 0
        for _ in range(200):
            record = plane.step()
            delivered += record.delivered
            if record.delivered:
                assert record.latency_p50 <= record.latency_p95 <= record.latency_p99
                assert record.latency_p50 > 0  # the sink is remote
        assert delivered > 0
        assert plane.accounting()["balanced"]

    def test_backpressure_drops_are_counted(self):
        overlay, circuit = planted_join_overlay(rate_a=20.0, rate_b=20.0)
        plane = DataPlane(overlay, RuntimeConfig(seed=4, node_capacity=3.0))
        for _ in range(60):
            plane.step()
        assert plane.dropped_capacity > 0
        assert int(plane.dropped_by_node.sum()) == plane.dropped_capacity
        acct = plane.accounting()
        assert acct["balanced"]
        assert acct["transport_delivered"] == acct["processed"] + acct["dropped"]

    def test_dead_node_deliveries_dropped(self):
        overlay, circuit = planted_join_overlay()
        plane = DataPlane(overlay, RuntimeConfig(seed=5))
        for _ in range(20):
            plane.step()
        alive = np.ones(overlay.num_nodes, dtype=bool)
        alive[2] = False  # the sink's host dies; deliveries must drop
        overlay.apply_liveness(alive)
        before = plane.sink_delivered
        for _ in range(30):
            plane.step()
        assert plane.dropped_dead > 0
        assert plane.sink_delivered == before or plane.dropped_dead > 0
        assert plane.accounting()["balanced"]

    def test_dead_source_stops_emitting(self):
        overlay, _ = planted_join_overlay()
        plane = DataPlane(overlay, RuntimeConfig(seed=6))
        alive = np.ones(overlay.num_nodes, dtype=bool)
        alive[0] = False
        alive[1] = False
        overlay.apply_liveness(alive)
        record = plane.step()
        assert record.emitted == 0

    def test_migration_rehomes_in_flight_tuples(self):
        overlay, circuit = planted_join_overlay()
        plane = DataPlane(overlay, RuntimeConfig(seed=7))
        for _ in range(10):
            plane.step()
        in_flight = plane.accounting()["in_flight"]
        assert in_flight > 0
        # Move the join mid-stream; nothing may be lost.
        overlay.apply_migration("q", "q/join", 2)
        for _ in range(40):
            plane.step()
        acct = plane.accounting()
        assert acct["balanced"]
        assert acct["dropped"] == 0  # re-homed, not dropped

    def test_uninstall_drops_in_flight_with_accounting(self):
        overlay = small_overlay(seed=1)
        plane = DataPlane(overlay, RuntimeConfig(seed=8))
        for _ in range(10):
            plane.step()
        overlay.uninstall("q0")
        plane.step()
        assert plane.dropped_uninstalled > 0
        assert plane.accounting()["balanced"]

    def test_same_name_replacement_recompiles(self):
        # Regression: a replaced circuit under an unchanged name (and
        # unchanged dict order) must not keep executing the stale one.
        overlay, _ = planted_join_overlay(rate_a=5.0, rate_b=5.0)
        plane = DataPlane(overlay, RuntimeConfig(seed=13))
        plane.step()
        overlay.uninstall("q")
        replacement, _ = planted_join_overlay(rate_a=50.0, rate_b=50.0)
        overlay.install_circuit(replacement.circuits["q"])
        plane.step()
        np.testing.assert_allclose(sorted(plane._src_rate), [50.0, 50.0])
        assert plane.accounting()["balanced"]


class TestModeLocking:
    def test_mixed_paths_rejected(self):
        plane = DataPlane(small_overlay(seed=2), RuntimeConfig(seed=9))
        plane.step()
        with pytest.raises(RuntimeError):
            plane.step_scalar()

    def test_scalar_first_then_vector_rejected(self):
        plane = DataPlane(small_overlay(seed=2), RuntimeConfig(seed=9))
        plane.step_scalar()
        with pytest.raises(RuntimeError):
            plane.step()


class TestSimulationIntegration:
    def test_data_plane_true_builds_default(self):
        overlay = small_overlay(seed=3)
        sim = Simulation(overlay, config=SimulationConfig(reopt_interval=0), data_plane=True)
        series = sim.run(20)
        assert sim.data_plane is not None
        assert any(r.emitted > 0 for r in series.records)
        assert sim.data_plane.accounting()["balanced"]

    def test_traffic_fields_in_tick_records(self):
        overlay = small_overlay(seed=4)
        plane = DataPlane(overlay, RuntimeConfig(seed=11))
        sim = Simulation(
            overlay, config=SimulationConfig(reopt_interval=0), data_plane=plane
        )
        record = sim.step()
        assert record.emitted > 0
        assert record.data_usage > 0
        summary = sim.run(10).summary()
        assert "delivered" in summary and "mean_data_usage" in summary

    def test_without_data_plane_fields_stay_zero(self):
        overlay = small_overlay(seed=5)
        sim = Simulation(overlay, config=SimulationConfig(reopt_interval=0))
        record = sim.step()
        assert record.emitted == record.delivered == record.dropped == 0
        assert "delivered" not in sim.series.summary()

    def test_measured_usage_tracks_estimated(self):
        # With real traffic flowing, the measured rate x latency should
        # land in the ballpark of the estimator's prices (E14, live).
        overlay, _ = planted_join_overlay()
        plane = DataPlane(overlay, RuntimeConfig(seed=12))
        for _ in range(500):
            plane.step()
        estimated = overlay.total_network_usage()
        assert plane.measured_usage_rate() == pytest.approx(estimated, rel=0.25)
