"""Unit tests for the Vivaldi coordinate system."""

import numpy as np
import pytest

from repro.network.latency import LatencyMatrix
from repro.network.topology import grid_topology, ring_topology
from repro.network.vivaldi import (
    VivaldiConfig,
    VivaldiSystem,
    embed_latency_matrix,
)
from repro.workloads.scenarios import planted_latency_matrix


class TestConfig:
    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            VivaldiConfig(dimensions=0)

    def test_rejects_bad_gains(self):
        with pytest.raises(ValueError):
            VivaldiConfig(cc=0.0)
        with pytest.raises(ValueError):
            VivaldiConfig(ce=1.5)


class TestVivaldiSystem:
    def test_planted_euclidean_matrix_embeds_accurately(self):
        # Points on a plane: a 2-D embedding should nail it.
        positions = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0), (10.0, 10.0),
                     (5.0, 5.0), (2.0, 8.0)]
        lm = planted_latency_matrix(positions)
        result = embed_latency_matrix(lm, dimensions=2, rounds=120, seed=0)
        assert result.median_relative_error < 0.05

    def test_error_decreases_with_rounds(self):
        lm = LatencyMatrix.from_topology(grid_topology(4, 4))
        early = embed_latency_matrix(lm, rounds=2, seed=1)
        late = embed_latency_matrix(lm, rounds=80, seed=1)
        assert late.median_relative_error < early.median_relative_error

    def test_coordinates_shape(self):
        lm = LatencyMatrix.from_topology(ring_topology(8))
        result = embed_latency_matrix(lm, dimensions=3, rounds=10)
        assert result.coordinates.shape == (8, 3)
        assert result.dimensions == 3

    def test_deterministic_given_seed(self):
        lm = LatencyMatrix.from_topology(grid_topology(3, 3))
        a = embed_latency_matrix(lm, rounds=20, seed=9)
        b = embed_latency_matrix(lm, rounds=20, seed=9)
        assert np.allclose(a.coordinates, b.coordinates)

    def test_samples_counted(self):
        lm = LatencyMatrix.from_topology(grid_topology(3, 3))
        system = VivaldiSystem(lm, seed=0)
        system.run(rounds=5, neighbors_per_round=4)
        assert system.samples_used == 9 * 5 * 4

    def test_single_node_noop(self):
        lm = LatencyMatrix(np.zeros((1, 1)))
        system = VivaldiSystem(lm)
        system.run(rounds=10)
        assert system.samples_used == 0

    def test_invalid_run_args(self):
        lm = LatencyMatrix.from_topology(grid_topology(2, 2))
        system = VivaldiSystem(lm)
        with pytest.raises(ValueError):
            system.run(rounds=-1)
        with pytest.raises(ValueError):
            system.run(neighbors_per_round=0)

    def test_predicted_latency_is_symmetric(self):
        lm = LatencyMatrix.from_topology(grid_topology(3, 3))
        system = VivaldiSystem(lm, seed=0)
        system.run(rounds=20)
        assert system.predicted_latency(0, 5) == pytest.approx(
            system.predicted_latency(5, 0)
        )

    def test_node_update_rejects_negative_latency(self):
        lm = LatencyMatrix.from_topology(grid_topology(2, 2))
        system = VivaldiSystem(lm, seed=0)
        with pytest.raises(ValueError):
            system.nodes[0].update(system.nodes[1], -1.0, system._rng)

    def test_sequential_reference_also_embeds(self):
        lm = LatencyMatrix.from_topology(grid_topology(4, 4))
        system = VivaldiSystem(lm, seed=3)
        system.run_sequential(rounds=40, neighbors_per_round=4)
        assert system.samples_used == 16 * 40 * 4
        batched = VivaldiSystem(lm, seed=3)
        batched.run(rounds=40, neighbors_per_round=4)
        # Same algorithm, different sample schedule: both must converge
        # to comparable embedding quality.
        sequential_err = float(np.median(system.relative_errors()))
        batched_err = float(np.median(batched.relative_errors()))
        assert batched_err < max(2.0 * sequential_err, 0.3)

    def test_height_model_keeps_height_non_negative(self):
        lm = LatencyMatrix.from_topology(grid_topology(3, 3))
        config = VivaldiConfig(use_height=True)
        system = VivaldiSystem(lm, config=config, seed=0)
        system.run(rounds=30)
        assert all(node.height >= 0.0 for node in system.nodes)
