"""Unit tests for the reliable (retransmit-buffer) transports."""

import numpy as np
import pytest

from repro.runtime.transport import ReliableHeapTransport, ReliableTransport


def send_batch(tr, n, arrival=5, op=0):
    tr.send(
        np.full(n, arrival, dtype=np.int64),
        np.full(n, op, dtype=np.int64),
        np.zeros(n, dtype=np.int64),
        np.arange(n, dtype=np.int64),
        np.zeros(n, dtype=np.int64),
        np.ones(n),
        np.arange(n, dtype=np.int64),
    )


def balance(tr):
    return tr.sent == tr.delivered + tr.in_flight + tr.buffered


class TestReliableTransport:
    def test_buffer_holds_conservation(self):
        tr = ReliableTransport(max_buffer=100)
        send_batch(tr, 10)
        batch = tr.due(5)
        assert batch is not None and balance(tr)
        overflow = tr.buffer(
            batch["op"], batch["port"], batch["key"], batch["ts"],
            batch["size"], batch["seq"],
        )
        assert overflow == 0
        assert tr.buffered == 10
        assert tr.delivered == 0  # buffered tuples are back inside
        assert balance(tr)

    def test_bounded_buffer_rejects_overflow_deterministically(self):
        tr = ReliableTransport(max_buffer=4)
        send_batch(tr, 10)
        batch = tr.due(5)
        overflow = tr.buffer(
            batch["op"], batch["port"], batch["key"], batch["ts"],
            batch["size"], batch["seq"],
        )
        assert overflow == 6
        assert tr.buffered == 4
        # First-come-first-buffered: the first four keys were accepted.
        assert sorted(tr._b_key[:4]) == [0, 1, 2, 3]
        assert balance(tr)

    def test_redeliver_releases_only_alive_ops(self):
        tr = ReliableTransport(max_buffer=100)
        for op in (0, 1):
            tr.send(
                np.array([3], dtype=np.int64), np.array([op], dtype=np.int64),
                np.zeros(1, dtype=np.int64), np.zeros(1, dtype=np.int64),
                np.zeros(1, dtype=np.int64), np.ones(1),
                np.array([op], dtype=np.int64),
            )
        batch = tr.due(3)
        tr.buffer(batch["op"], batch["port"], batch["key"], batch["ts"],
                  batch["size"], batch["seq"])
        released = tr.redeliver(np.array([True, False]), now=7)
        assert released == 1
        assert tr.buffered == 1
        assert tr.redelivered == 1
        assert balance(tr)
        again = tr.due(7)
        assert again is not None and list(again["op"]) == [0]
        assert balance(tr)

    def test_remap_drops_buffered_orphans_with_accounting(self):
        tr = ReliableTransport(max_buffer=100)
        send_batch(tr, 6, op=1)
        batch = tr.due(5)
        tr.buffer(batch["op"], batch["port"], batch["key"], batch["ts"],
                  batch["size"], batch["seq"])
        dropped = tr.remap_ops(np.array([0, -1], dtype=np.int64))
        assert dropped == 6
        assert tr.buffered == 0
        assert tr.dropped == 6
        assert balance(tr)

    def test_zero_capacity_buffer_rejects_everything(self):
        tr = ReliableTransport(max_buffer=0)
        send_batch(tr, 3)
        batch = tr.due(5)
        overflow = tr.buffer(batch["op"], batch["port"], batch["key"],
                             batch["ts"], batch["size"], batch["seq"])
        assert overflow == 3 and tr.buffered == 0
        assert balance(tr)

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            ReliableTransport(max_buffer=-1)


class TestReliableHeapTransport:
    def test_buffer_and_redeliver_mirror_array_twin(self):
        hp = ReliableHeapTransport(max_buffer=2)
        for seq in range(4):
            hp.send_one(3, 1, seq, 0, 0, seq, 0, 1.0)
        batch = hp.due(3, 1)
        accepted = [hp.buffer_one(op, port, key, ts, size, seq)
                    for _, _, seq, op, port, key, ts, size in batch]
        assert accepted == [True, True, False, False]
        assert hp.buffered == 2
        assert balance(hp)
        assert hp.redeliver(np.array([True]), now=9) == 2
        assert hp.buffered == 0
        assert len(hp.due(9, 1)) == 2
        assert balance(hp)

    def test_remap_drops_buffered_orphans(self):
        hp = ReliableHeapTransport(max_buffer=10)
        hp.send_one(1, 1, 0, 1, 0, 7, 0, 1.0)
        batch = hp.due(1, 1)
        for _, _, seq, op, port, key, ts, size in batch:
            hp.buffer_one(op, port, key, ts, size, seq)
        assert hp.remap_ops(np.array([0, -1], dtype=np.int64)) == 1
        assert hp.buffered == 0 and hp.dropped == 1
        assert balance(hp)
