"""Unit tests for circuit compilation and structure."""

import pytest

from repro.core.circuit import Circuit, Service, effective_statistics
from repro.query.generator import enumerate_all_plans
from repro.query.model import Consumer, Producer, QuerySpec
from repro.query.operators import ServiceKind, ServiceSpec
from repro.query.plan import JoinNode, LeafNode, LogicalPlan
from repro.query.selectivity import Statistics


def query3() -> tuple[QuerySpec, Statistics]:
    producers = [
        Producer("A", node=0, rate=10.0),
        Producer("B", node=1, rate=5.0),
        Producer("C", node=2, rate=2.0),
    ]
    query = QuerySpec(name="q", producers=producers, consumer=Consumer("C0", node=3))
    stats = Statistics.build(
        rates={"A": 10.0, "B": 5.0, "C": 2.0},
        pair_selectivities={("A", "B"): 0.1, ("B", "C"): 0.2, ("A", "C"): 0.5},
    )
    return query, stats


def plan_abc() -> LogicalPlan:
    return LogicalPlan(JoinNode(JoinNode(LeafNode("A"), LeafNode("B")), LeafNode("C")))


class TestFromPlan:
    def test_service_inventory(self):
        query, stats = query3()
        circuit = Circuit.from_plan(plan_abc(), query, stats)
        assert len(circuit.pinned_ids()) == 4  # 3 sources + sink
        assert len(circuit.unpinned_ids()) == 2  # 2 joins

    def test_pinned_placement_prefilled(self):
        query, stats = query3()
        circuit = Circuit.from_plan(plan_abc(), query, stats)
        assert circuit.placement[f"q/src:A"] == 0
        assert circuit.placement[f"q/sink:C0"] == 3

    def test_link_rates_follow_rate_model(self):
        query, stats = query3()
        circuit = Circuit.from_plan(plan_abc(), query, stats)
        join0 = "q/join0"
        # join0 gets A (10) and B (5).
        assert circuit.input_rate(join0) == pytest.approx(15.0)
        # join0 -> join1 carries rate(AB) = 5.
        out = circuit.output_links(join0)
        assert len(out) == 1
        assert out[0].rate == pytest.approx(5.0)
        # join1 -> sink carries rate(ABC) = 1.
        sink_in = circuit.input_rate("q/sink:C0")
        assert sink_in == pytest.approx(1.0 + 0.0)

    def test_filters_shrink_rates(self):
        query, stats = query3()
        query.filters["A"] = 0.1
        circuit = Circuit.from_plan(plan_abc(), query, stats)
        assert circuit.input_rate("q/join0") == pytest.approx(1.0 + 5.0)

    def test_aggregate_appended(self):
        query, stats = query3()
        query.aggregate_factor = 0.5
        circuit = Circuit.from_plan(plan_abc(), query, stats)
        assert "q/agg" in circuit.services
        assert circuit.services["q/agg"].kind is ServiceKind.AGGREGATE
        assert circuit.input_rate("q/sink:C0") == pytest.approx(0.5)

    def test_plan_query_mismatch_rejected(self):
        query, stats = query3()
        other_plan = LogicalPlan(JoinNode(LeafNode("A"), LeafNode("B")))
        with pytest.raises(ValueError):
            Circuit.from_plan(other_plan, query, stats)

    def test_reuse_keys_reflect_producers(self):
        query, stats = query3()
        circuit = Circuit.from_plan(plan_abc(), query, stats)
        keys = {circuit.services[sid].reuse_key() for sid in circuit.unpinned_ids()}
        assert (ServiceKind.JOIN, frozenset({"A", "B"})) in keys
        assert (ServiceKind.JOIN, frozenset({"A", "B", "C"})) in keys

    def test_every_enumerated_plan_compiles(self):
        query, stats = query3()
        for plan in enumerate_all_plans(["A", "B", "C"]):
            circuit = Circuit.from_plan(plan, query, stats)
            assert len(circuit.unpinned_ids()) == 2


class TestStructureQueries:
    def _circuit(self) -> Circuit:
        query, stats = query3()
        return Circuit.from_plan(plan_abc(), query, stats)

    def test_sources_and_sinks(self):
        circuit = self._circuit()
        assert set(circuit.source_ids()) == {"q/src:A", "q/src:B", "q/src:C"}
        assert circuit.sink_ids() == ["q/sink:C0"]

    def test_neighbors_bidirectional(self):
        circuit = self._circuit()
        neighbor_ids = {n for n, _ in circuit.neighbors("q/join0")}
        assert neighbor_ids == {"q/src:A", "q/src:B", "q/join1"}

    def test_neighbors_unknown_service(self):
        with pytest.raises(KeyError):
            self._circuit().neighbors("nope")

    def test_total_rate(self):
        circuit = self._circuit()
        # Links: A->j0 (10), B->j0 (5), j0->j1 (5), C->j1 (2), j1->sink (1).
        assert circuit.total_rate() == pytest.approx(23.0)


class TestPlacement:
    def _circuit(self) -> Circuit:
        query, stats = query3()
        return Circuit.from_plan(plan_abc(), query, stats)

    def test_assign_and_full_placement(self):
        circuit = self._circuit()
        assert not circuit.is_fully_placed()
        circuit.assign("q/join0", 5)
        circuit.assign("q/join1", 6)
        assert circuit.is_fully_placed()
        assert circuit.hosts() == {0, 1, 2, 3, 5, 6}

    def test_cannot_move_pinned(self):
        circuit = self._circuit()
        with pytest.raises(ValueError):
            circuit.assign("q/src:A", 9)

    def test_assign_unknown_service(self):
        with pytest.raises(KeyError):
            self._circuit().assign("nope", 1)

    def test_host_of_unplaced_raises(self):
        with pytest.raises(KeyError):
            self._circuit().host_of("q/join0")

    def test_load_on_node(self):
        circuit = self._circuit()
        circuit.assign("q/join0", 5)
        circuit.assign("q/join1", 5)
        load = circuit.load_on(5)
        # join0 input 15, join1 input 7; coefficient 0.02.
        assert load == pytest.approx(0.02 * (15.0 + 7.0))

    def test_copy_isolates_placement(self):
        circuit = self._circuit()
        clone = circuit.copy()
        clone.assign("q/join0", 7)
        assert "q/join0" not in circuit.placement


class TestServiceAndHelpers:
    def test_duplicate_service_id_rejected(self):
        circuit = Circuit(name="x")
        svc = Service("x/a", ServiceSpec.relay(), 0, frozenset({"A"}))
        circuit.add_service(svc)
        with pytest.raises(ValueError):
            circuit.add_service(svc)

    def test_link_requires_existing_services(self):
        circuit = Circuit(name="x")
        with pytest.raises(ValueError):
            circuit.add_link("a", "b", 1.0)

    def test_effective_statistics(self):
        query, stats = query3()
        query.filters["A"] = 0.2
        eff = effective_statistics(query, stats)
        assert eff.rate("A") == pytest.approx(2.0)
        assert eff.rate("B") == 5.0
        assert eff.selectivity("A", "B") == stats.selectivity("A", "B")
