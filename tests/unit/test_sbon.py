"""Unit tests for SBON nodes, the overlay, and metrics."""

import numpy as np
import pytest

from repro.query.operators import ServiceSpec
from repro.sbon.metrics import TickRecord, TimeSeries
from repro.sbon.node import HostedService, SBONNode
from repro.sbon.overlay import Overlay
from repro.network.topology import grid_topology
from repro.workloads.queries import random_query


class TestSBONNode:
    def _service(self, name="q", sid="q/join0", rate=10.0) -> HostedService:
        return HostedService(name, sid, ServiceSpec.join(), rate)

    def test_effective_load_combines_background_and_induced(self):
        node = SBONNode(index=0, background_load=0.3)
        node.host(self._service(rate=10.0))  # join: 0.02 * 10 = 0.2
        assert node.effective_load == pytest.approx(0.5)

    def test_load_clamped_to_one(self):
        node = SBONNode(index=0, background_load=0.9)
        node.host(self._service(rate=100.0))
        assert node.effective_load == 1.0
        assert node.headroom == 0.0

    def test_capacity_scales_load(self):
        node = SBONNode(index=0, capacity=2.0, background_load=0.5)
        assert node.effective_load == 0.25

    def test_duplicate_hosting_rejected(self):
        node = SBONNode(index=0)
        node.host(self._service())
        with pytest.raises(ValueError):
            node.host(self._service())

    def test_evict_by_circuit(self):
        node = SBONNode(index=0)
        node.host(self._service(sid="q/join0"))
        node.host(self._service(sid="q/join1"))
        assert node.evict("q") == 2
        assert node.induced_load == 0.0

    def test_evict_specific_service(self):
        node = SBONNode(index=0)
        node.host(self._service(sid="q/join0"))
        node.host(self._service(sid="q/join1"))
        assert node.evict("q", "q/join0") == 1
        assert len(node.hosted) == 1

    def test_fail_evacuates(self):
        node = SBONNode(index=0)
        node.host(self._service())
        orphans = node.fail()
        assert len(orphans) == 1
        assert not node.alive
        with pytest.raises(RuntimeError):
            node.host(self._service())
        node.recover()
        assert node.alive

    def test_validation(self):
        with pytest.raises(ValueError):
            SBONNode(index=0, capacity=0.0)
        with pytest.raises(ValueError):
            SBONNode(index=0, background_load=-1.0)


class TestOverlay:
    def _overlay(self) -> Overlay:
        return Overlay.build(grid_topology(4, 4), vector_dims=2, embedding_rounds=20, seed=0)

    def test_build_wires_sizes(self):
        overlay = self._overlay()
        assert overlay.num_nodes == 16
        assert overlay.cost_space.num_nodes == 16

    def test_optimize_install_uninstall_cycle(self):
        overlay = self._overlay()
        query, stats = random_query(16, seed=1)
        result = overlay.integrated_optimizer().optimize(query, stats)
        overlay.install(result)
        assert result.circuit.name in overlay.circuits
        assert overlay.total_network_usage() > 0
        loads_with = overlay.loads().sum()
        overlay.uninstall(result.circuit.name)
        assert overlay.total_network_usage() == 0
        assert overlay.loads().sum() < loads_with

    def test_double_install_rejected(self):
        overlay = self._overlay()
        query, stats = random_query(16, seed=1)
        result = overlay.integrated_optimizer().optimize(query, stats)
        overlay.install(result)
        with pytest.raises(ValueError):
            overlay.install(result)

    def test_install_requires_placement(self):
        overlay = self._overlay()
        query, stats = random_query(16, seed=2)
        from repro.core.circuit import Circuit
        from repro.query.generator import best_plan

        circuit = Circuit.from_plan(
            best_plan(query.producer_names, stats), query, stats
        )
        with pytest.raises(ValueError):
            overlay.install_circuit(circuit)

    def test_refresh_cost_space_reflects_load(self):
        overlay = self._overlay()
        overlay.set_background_loads(np.full(16, 0.5))
        overlay.refresh_cost_space()
        assert overlay.cost_space.coordinate(0).scalar[0] > 0

    def test_apply_migration_moves_load(self):
        overlay = self._overlay()
        query, stats = random_query(16, seed=1)
        result = overlay.integrated_optimizer().optimize(query, stats)
        overlay.install(result)
        sid = result.circuit.unpinned_ids()[0]
        old = result.circuit.host_of(sid)
        new = (old + 1) % 16
        overlay.apply_migration(result.circuit.name, sid, new)
        assert result.circuit.host_of(sid) == new
        assert any(
            s.service_id == sid for s in overlay.nodes[new].hosted
        )
        assert not any(
            s.service_id == sid for s in overlay.nodes[old].hosted
        )

    def test_bad_load_vector_rejected(self):
        with pytest.raises(ValueError):
            self._overlay().set_background_loads(np.zeros(5))

    def test_set_node_capacity_propagates_to_vectorized_loads(self):
        # Regression: capacities were snapshot at construction, so a
        # post-build change was invisible to the array-backed loads().
        overlay = self._overlay()
        overlay.set_background_loads(np.full(16, 0.5))
        overlay.set_node_capacity(3, capacity=2.0)
        assert overlay.loads()[3] == pytest.approx(0.25)
        np.testing.assert_allclose(overlay.loads(), overlay.loads_scalar())

    def test_set_memory_capacity_propagates(self):
        overlay = self._overlay()
        query, stats = random_query(16, seed=1)
        overlay.install(overlay.integrated_optimizer().optimize(query, stats))
        hosts = [
            s for s in overlay.circuits[query.name].unpinned_ids()
        ]
        node = overlay.circuits[query.name].host_of(hosts[0])
        overlay.set_node_capacity(node, memory_capacity=1.0)
        memory = overlay.memory_loads()
        assert memory[node] == pytest.approx(
            min(1.0, overlay.nodes[node].memory_units / 1.0)
        )

    def test_sync_capacities_reads_direct_mutation(self):
        overlay = self._overlay()
        overlay.set_background_loads(np.full(16, 0.4))
        overlay.nodes[5].capacity = 4.0  # direct mutation, then sync
        overlay.sync_capacities()
        assert overlay.loads()[5] == pytest.approx(0.1)
        np.testing.assert_allclose(overlay.loads(), overlay.loads_scalar())

    def test_set_node_capacity_validation(self):
        overlay = self._overlay()
        with pytest.raises(ValueError):
            overlay.set_node_capacity(99, capacity=1.0)
        with pytest.raises(ValueError):
            overlay.set_node_capacity(0, capacity=0.0)
        with pytest.raises(ValueError):
            overlay.set_node_capacity(0, memory_capacity=-1.0)


class TestTimeSeries:
    def test_append_enforces_time_order(self):
        ts = TimeSeries()
        ts.append(TickRecord(1, 10.0, 0.1, 0.2))
        with pytest.raises(ValueError):
            ts.append(TickRecord(1, 11.0, 0.1, 0.2))

    def test_summaries(self):
        ts = TimeSeries()
        ts.append(TickRecord(1, 10.0, 0.1, 0.2, migrations=2))
        ts.append(TickRecord(2, 20.0, 0.1, 0.2, failures=1))
        assert ts.mean_usage() == 15.0
        assert ts.final_usage() == 20.0
        assert ts.peak_usage() == 20.0
        assert ts.total_migrations() == 2
        assert ts.total_failures() == 1
        assert ts.summary()["ticks"] == 2.0

    def test_empty_series(self):
        ts = TimeSeries()
        assert ts.mean_usage() == 0.0
        assert ts.final_usage() == 0.0
