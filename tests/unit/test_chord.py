"""Unit tests for the Chord ring simulation."""

import math

import pytest

from repro.dht.chord import ChordRing, hash_to_id


class TestHashToId:
    def test_within_range(self):
        for value in ("a", "b", 42, "node-7"):
            assert 0 <= hash_to_id(value, 16) < (1 << 16)

    def test_deterministic(self):
        assert hash_to_id("x", 32) == hash_to_id("x", 32)


class TestMembership:
    def test_join_by_explicit_id(self):
        ring = ChordRing(id_bits=8)
        ring.join(node_id=10)
        ring.join(node_id=200)
        assert ring.node_ids == [10, 200]

    def test_join_duplicate_rejected(self):
        ring = ChordRing(id_bits=8)
        ring.join(node_id=10)
        with pytest.raises(ValueError):
            ring.join(node_id=10)

    def test_join_requires_id_or_name(self):
        ring = ChordRing(id_bits=8)
        with pytest.raises(ValueError):
            ring.join()

    def test_single_node_points_to_itself(self):
        ring = ChordRing(id_bits=8)
        node = ring.join(node_id=5)
        assert node.successor == 5
        assert node.predecessor == 5

    def test_leave_transfers_keys(self):
        ring = ChordRing(id_bits=8)
        ring.join(node_id=10)
        ring.join(node_id=100)
        ring.put(50, "v")  # owner: 100
        ring.leave(100)
        assert ring.get(50)[0] == "v"

    def test_cannot_remove_last_node(self):
        ring = ChordRing(id_bits=8)
        ring.join(node_id=1)
        with pytest.raises(ValueError):
            ring.leave(1)

    def test_invariants_after_churn(self):
        ring = ChordRing(id_bits=16)
        for i in range(20):
            ring.join(name=f"n{i}")
        for node_id in ring.node_ids[:5]:
            ring.leave(node_id)
        for i in range(20, 30):
            ring.join(name=f"n{i}")
        ring.verify_invariants()


class TestLookup:
    def _ring(self, n=32) -> ChordRing:
        ring = ChordRing(id_bits=16)
        for i in range(n):
            ring.join(name=f"node-{i}")
        return ring

    def test_lookup_matches_ground_truth(self):
        ring = self._ring()
        for key in range(0, 1 << 16, 997):
            assert ring.lookup(key).owner == ring._owner_of(key)

    def test_lookup_from_any_origin(self):
        ring = self._ring()
        key = 12345
        owners = {ring.lookup(key, origin=o).owner for o in ring.node_ids}
        assert len(owners) == 1

    def test_hops_logarithmic(self):
        ring = self._ring(n=64)
        hops = [ring.lookup(key).hops for key in range(0, 1 << 16, 499)]
        mean_hops = sum(hops) / len(hops)
        # Chord theory: ~0.5*log2(n) = 3; allow generous slack.
        assert mean_hops <= 2 * math.log2(64)

    def test_lookup_on_empty_ring(self):
        with pytest.raises(ValueError):
            ChordRing(id_bits=8).lookup(1)

    def test_lookup_bad_origin(self):
        ring = self._ring(n=4)
        with pytest.raises(KeyError):
            ring.lookup(1, origin=999999)

    def test_path_starts_at_origin_ends_at_owner(self):
        ring = self._ring()
        origin = ring.node_ids[3]
        result = ring.lookup(777, origin=origin)
        assert result.path[0] == origin
        assert result.path[-1] == result.owner


class TestStorage:
    def test_put_get_roundtrip(self):
        ring = ChordRing(id_bits=12)
        for i in range(8):
            ring.join(name=i)
        ring.put(100, {"coord": (1, 2)})
        value, _ = ring.get(100)
        assert value == {"coord": (1, 2)}

    def test_get_missing_returns_none(self):
        ring = ChordRing(id_bits=12)
        ring.join(node_id=0)
        value, _ = ring.get(55)
        assert value is None

    def test_keys_stored_at_owner(self):
        ring = ChordRing(id_bits=12)
        for i in range(8):
            ring.join(name=i)
        for key in range(0, 1 << 12, 97):
            ring.put(key, key)
        ring.verify_invariants()

    def test_join_takes_over_keys(self):
        ring = ChordRing(id_bits=8)
        ring.join(node_id=200)
        ring.put(40, "v")  # owner: 200 (wraps)
        ring.join(node_id=100)  # 40 now owned by 100
        assert ring.node(100).store.get(40) == "v"
        ring.verify_invariants()
