"""Unit tests for the observability layer (repro.obs) and its exports."""

import json

import numpy as np
import pytest

from repro.__main__ import main
from repro.control import ControlConfig, Controller
from repro.core.circuit import Circuit, Service
from repro.core.cost_space import CostSpace, CostSpaceSpec
from repro.network.latency import LatencyMatrix
from repro.obs import LATENCY_EDGES_MS, Observability
from repro.obs.events import EventLog
from repro.obs.metrics import Histogram, KeyedMetric, MetricsRegistry, VectorMetric
from repro.obs.profiler import PhaseProfiler
from repro.obs.trace import EVENT_NAMES, TupleTracer
from repro.query.operators import ServiceSpec
from repro.runtime import DataPlane, RuntimeConfig
from repro.sbon.metrics import SCHEMA_VERSION, TickRecord, TimeSeries
from repro.sbon.overlay import Overlay


class TestMetricsRegistry:
    def test_create_or_get_returns_same_instance(self):
        reg = MetricsRegistry()
        c = reg.counter("ticks")
        assert reg.counter("ticks") is c
        c.inc()
        c.inc(2.0)
        assert c.value == 3.0
        g = reg.gauge("in_flight")
        g.set(7.0)
        assert g.value == 7.0
        assert set(reg.names()) == {"ticks", "in_flight"}
        assert "ticks" in reg and "nope" not in reg

    def test_vector_metric_grows_and_accumulates(self):
        v = VectorMetric("node_processed", "counter", size=2)
        v.add(np.array([1.0, 2.0]))
        v.add(np.array([1.0, 1.0, 5.0]))  # auto-grow preserves old values
        np.testing.assert_allclose(v.values, [2.0, 3.0, 5.0])
        v.set(np.array([9.0]))
        assert v.values[0] == 9.0 and v.values[2] == 5.0

    def test_keyed_metric_caches_by_list_identity(self):
        k = KeyedMetric("link_tuples", "counter", ("circuit", "src", "dst"))
        keys = [("q0", 1, 2), ("q0", 2, 3)]
        k.add(keys, np.array([4.0, 6.0]))
        cached = k._cached_cols
        k.add(keys, np.array([1.0, 1.0]))  # same list object: cached map
        assert k._cached_cols is cached
        assert dict(k.items()) == {("q0", 1, 2): 5.0, ("q0", 2, 3): 7.0}
        # A structurally new list rebuilds the map but keeps columns.
        keys2 = [("q0", 2, 3), ("q1", 0, 1)]
        k.add(keys2, np.array([3.0, 2.0]))
        assert dict(k.items()) == {
            ("q0", 1, 2): 5.0,
            ("q0", 2, 3): 10.0,
            ("q1", 0, 1): 2.0,
        }

    def test_keyed_metric_first_add_grows_storage(self):
        # Regression: np.add.at must scatter into the *grown* array.
        k = KeyedMetric("m", "counter", ("a",))
        k.add([("x",), ("y",)], np.array([1.0, 2.0]))
        assert dict(k.items()) == {("x",): 1.0, ("y",): 2.0}

    def test_histogram_buckets_and_prometheus(self):
        h = Histogram("latency_ms", edges=[1.0, 5.0, 10.0])
        h.observe(np.array([0.5, 1.0, 3.0, 7.0, 100.0]))
        # side="left": a value equal to an edge counts under that edge,
        # matching Prometheus ``le`` (inclusive upper bound) semantics.
        np.testing.assert_array_equal(h.counts, [2, 1, 1, 1])
        assert h.count == 5 and h.sum == pytest.approx(111.5)
        lines = h.prometheus_lines("repro")
        assert 'repro_latency_ms_bucket{le="1"} 2' in lines
        assert 'repro_latency_ms_bucket{le="10"} 4' in lines
        assert 'repro_latency_ms_bucket{le="+Inf"} 5' in lines
        assert "repro_latency_ms_count 5" in lines

    def test_histogram_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            Histogram("h", edges=[])
        with pytest.raises(ValueError):
            Histogram("h", edges=[2.0, 1.0])

    def test_prometheus_and_jsonl_export(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("ticks", help="simulation ticks").inc(3)
        reg.vector_counter("node_drops", size=3).add(np.array([0.0, 2.0, 0.0]))
        reg.histogram("lat", LATENCY_EDGES_MS).observe(np.array([4.0]))
        text = reg.to_prometheus()
        assert "# TYPE repro_ticks counter" in text
        assert "# HELP repro_ticks simulation ticks" in text
        assert "repro_ticks 3" in text
        assert 'repro_node_drops{node="1"} 2' in text  # zero rows elided
        assert 'node="0"' not in text
        path = tmp_path / "metrics.jsonl"
        reg.to_jsonl(path)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert {r["name"] for r in rows} == {"ticks", "node_drops", "lat"}


class TestPhaseProfiler:
    def test_nested_phases_join_paths(self):
        prof = PhaseProfiler()
        prof.begin("tick")
        prof.begin("data_plane")
        prof.begin("extract")
        prof.end()
        prof.end()
        prof.end()
        assert set(prof.totals) == {
            "tick",
            "tick/data_plane",
            "tick/data_plane/extract",
        }
        assert prof.counts["tick/data_plane/extract"] == 1
        # Outer phases include their children.
        assert prof.totals["tick"] >= prof.totals["tick/data_plane"]

    def test_context_manager_and_report(self):
        prof = PhaseProfiler()
        with prof.phase("a"):
            with prof.phase("b"):
                pass
        assert "a/b" in prof.totals
        assert "a/b" in prof.report()
        assert prof.summary()[0][0] == "a"

    def test_mark_tick_records_deltas(self):
        prof = PhaseProfiler()
        with prof.phase("x"):
            pass
        prof.mark_tick(1)
        prof.mark_tick(2)  # nothing happened: empty delta
        assert prof.per_tick[0]["tick"] == 1 and "x" in prof.per_tick[0]["phases"]
        assert prof.per_tick[1]["phases"] == {}

    def test_to_json(self, tmp_path):
        prof = PhaseProfiler()
        with prof.phase("x"):
            pass
        prof.mark_tick(1)
        path = tmp_path / "profile.json"
        prof.to_json(path)
        data = json.loads(path.read_text())
        assert set(data) == {"totals_s", "calls", "per_tick"}
        assert data["calls"]["x"] == 1


class TestTupleTracer:
    def test_sampling_twins_agree(self):
        tracer = TupleTracer(sample_rate=0.1, salt=0xB5)
        seqs = np.arange(5000, dtype=np.int64)
        mask = tracer.sampled(seqs)
        assert mask.mean() == pytest.approx(0.1, abs=0.02)
        for seq in range(0, 5000, 7):
            assert tracer.sample_one(seq) == bool(mask[seq])

    def test_full_rate_samples_everything(self):
        tracer = TupleTracer(sample_rate=1.0)
        assert tracer.sampled(np.arange(10, dtype=np.int64)) is None
        assert tracer.sample_one(123)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            TupleTracer(sample_rate=0.0)
        with pytest.raises(ValueError):
            TupleTracer(sample_rate=1.5)

    def test_record_and_record_one_agree(self):
        a, b = TupleTracer(1.0), TupleTracer(1.0)
        a.begin_tick(1)
        b.begin_tick(1)
        seqs = np.array([3, 1, 2], dtype=np.int64)
        ops = np.array([0, 1, 0], dtype=np.int64)
        nodes = np.array([5, 6, 5], dtype=np.int64)
        a.record(a.EMIT, seqs, ops, nodes)
        a.record(a.PROCESS, seqs, ops, nodes)
        for s, o, n in zip(seqs, ops, nodes):
            b.record_one(b.EMIT, int(s), int(o), int(n))
        for s, o, n in zip(seqs, ops, nodes):
            b.record_one(b.PROCESS, int(s), int(o), int(n))
        assert a.events_canonical() == b.events_canonical()
        # Canonical order sorts by (tick, seq, event).
        assert [e[1] for e in a.events_canonical()] == [1, 1, 2, 2, 3, 3]

    def test_spans_and_completeness_violation(self):
        tracer = TupleTracer(1.0)
        tracer.begin_tick(1)
        tracer.record_one(tracer.EMIT, 1, 0, 4)
        tracer.record_one(tracer.PROCESS, 1, 0, 5)
        tracer.record_one(tracer.EMIT, 2, 0, 4)  # never terminates
        empty = np.empty(0, dtype=np.int64)
        res = tracer.check_completeness(empty, empty)
        assert not res["ok"]
        assert res["closed"] == 1 and res["open"] == 1
        assert any("open span 2" in v for v in res["violations"])
        # Declaring seq 2 in flight satisfies the invariant.
        res = tracer.check_completeness(np.array([2], dtype=np.int64), empty)
        assert res["ok"]

    def test_jsonl_export_names_events(self, tmp_path):
        tracer = TupleTracer(1.0)
        tracer.begin_tick(3)
        tracer.record_one(tracer.EMIT, 7, 1, 2)
        path = tmp_path / "traces.jsonl"
        tracer.to_jsonl(path)
        row = json.loads(path.read_text().splitlines()[0])
        assert row["event"] == EVENT_NAMES[tracer.EMIT]
        assert row["tick"] == 3 and row["seq"] == 7

    def test_growth_past_initial_capacity(self):
        tracer = TupleTracer(1.0)
        tracer.begin_tick(1)
        n = TupleTracer._INITIAL * 2 + 17
        seqs = np.arange(n, dtype=np.int64)
        tracer.record(tracer.EMIT, seqs, seqs, seqs)
        assert tracer.num_events == n
        np.testing.assert_array_equal(tracer.events()["seq"], seqs)


class TestEventLog:
    def test_emit_filter_and_export(self, tmp_path):
        log = EventLog()
        log.emit(1, "calibration", links=3)
        log.emit(2, "shed_set", nodes=[4], limit=10.0)
        assert len(log) == 2
        assert log.of_kind("calibration")[0]["links"] == 3
        path = tmp_path / "events.jsonl"
        log.to_jsonl(path)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["kind"] for r in rows] == ["calibration", "shed_set"]


class TestTickRecordSchema:
    def test_to_dict_carries_schema_version(self):
        record = TickRecord(tick=1, network_usage=2.0, mean_load=0.5, max_load=1.0)
        d = record.to_dict()
        assert d["schema"] == SCHEMA_VERSION
        assert d["tick"] == 1 and d["network_usage"] == 2.0
        assert set(d) == {"schema"} | set(TickRecord.__dataclass_fields__)

    def test_timeseries_jsonl_roundtrip(self, tmp_path):
        series = TimeSeries()
        for t in (1, 2, 3):
            series.append(
                TickRecord(tick=t, network_usage=1.0, mean_load=0.1, max_load=0.2)
            )
        path = tmp_path / "series.jsonl"
        series.to_jsonl(path)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["tick"] for r in rows] == [1, 2, 3]
        assert all(r["schema"] == SCHEMA_VERSION for r in rows)


def _planted_plane(node_capacity=None, rate=6.0):
    rng = np.random.default_rng(0)
    points = rng.uniform(0.0, 100.0, size=(12, 2))
    diff = points[:, None, :] - points[None, :, :]
    latencies = LatencyMatrix(np.sqrt((diff**2).sum(axis=-1)))
    spec = CostSpaceSpec.latency_load(vector_dims=2)
    space = CostSpace.from_embedding(spec, points, {"cpu_load": np.zeros(12)})
    overlay = Overlay(latencies, space)
    circuit = Circuit(name="c0")
    circuit.add_service(Service("c0/src", ServiceSpec.relay(), 0, frozenset(("P",))))
    circuit.add_service(Service("c0/f", ServiceSpec.filter(0.5), None, frozenset(("P",))))
    circuit.add_service(Service("c0/sink", ServiceSpec.relay(), 2, frozenset(("P",))))
    circuit.add_link("c0/src", "c0/f", rate)
    circuit.add_link("c0/f", "c0/sink", rate * 0.5)
    circuit.assign("c0/f", 1)
    overlay.install_circuit(circuit)
    config = (
        RuntimeConfig(seed=2, node_capacity=node_capacity)
        if node_capacity is not None
        else RuntimeConfig(seed=2)
    )
    return overlay, DataPlane(overlay, config)


class TestControllerEvents:
    def test_trigger_event_names_reason_and_exclusions(self):
        _, plane = _planted_plane(node_capacity=0.0)
        controller = Controller(
            plane,
            ControlConfig(
                warmup=3, drop_threshold=0.2, trigger_cooldown=5,
                exclude_drop_rate=0.5, calibrate_interval=100,
            ),
        )
        controller.events = EventLog()
        for _ in range(12):
            controller.step(plane.step())
        triggers = controller.events.of_kind("replace_triggered")
        assert triggers, "drop breach never produced an event"
        assert triggers[0]["reason"] == "drop_ewma"
        assert triggers[0]["excluded_nodes"]
        assert triggers[0]["drop_ewma"] > 0.2
        assert controller.last_trigger_reason == "drop_ewma"

    def test_calibration_event_counts_links(self):
        _, plane = _planted_plane()
        controller = Controller(
            plane, ControlConfig(warmup=1, calibrate_interval=2)
        )
        controller.events = EventLog()
        for _ in range(10):
            controller.step(plane.step())
        cals = controller.events.of_kind("calibration")
        assert cals and all("links" in e and "cpu_nodes" in e for e in cals)

    def test_no_event_log_is_fine(self):
        _, plane = _planted_plane()
        controller = Controller(plane, ControlConfig(warmup=1))
        for _ in range(5):
            controller.step(plane.step())  # events=None: no crash


class TestObservabilityFacade:
    def test_disabled_components_are_none(self):
        obs = Observability()
        assert obs.tracer is None and obs.registry is None
        assert obs.profiler is None
        assert isinstance(obs.events, EventLog)

    def test_export_writes_only_enabled_components(self, tmp_path):
        obs = Observability(metrics=True)
        obs.registry.counter("ticks").inc()
        written = obs.export(tmp_path)
        assert set(written) == {"metrics_prom", "metrics", "events"}
        assert (tmp_path / "metrics.prom").exists()
        assert not (tmp_path / "traces.jsonl").exists()


BASE = ["--nodes", "40", "--topology", "geometric", "--rounds", "15", "--seed", "1"]


class TestCLIObservability:
    def test_simulate_trace_profile_metrics(self, tmp_path, capsys):
        out_dir = tmp_path / "telemetry"
        assert main(
            BASE
            + [
                "simulate", "--queries", "2", "--ticks", "8",
                "--reopt-interval", "3", "--trace", "--trace-rate", "1.0",
                "--profile", "--metrics-out", str(out_dir),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "trace" in out and "phase" in out
        for name in ("traces.jsonl", "metrics.prom", "metrics.jsonl",
                     "profile.json", "events.jsonl"):
            assert (out_dir / name).exists(), name
        prom = (out_dir / "metrics.prom").read_text()
        assert "# TYPE repro_emitted_total counter" in prom
