"""Unit tests for plan enumeration strategies."""

import pytest

from repro.query.generator import (
    best_plan,
    count_all_plans,
    enumerate_all_plans,
    enumerate_left_deep_plans,
    top_k_plans,
)
from repro.query.selectivity import Statistics


def stats(names, seed=0) -> Statistics:
    return Statistics.random(list(names), seed=seed)


class TestCounting:
    def test_double_factorial_counts(self):
        assert count_all_plans(1) == 1
        assert count_all_plans(2) == 1
        assert count_all_plans(3) == 3
        assert count_all_plans(4) == 15
        assert count_all_plans(5) == 105

    def test_enumeration_matches_count(self):
        for n in (1, 2, 3, 4, 5):
            names = [f"P{i}" for i in range(n)]
            assert len(enumerate_all_plans(names)) == count_all_plans(n)

    def test_enumeration_signatures_unique(self):
        plans = enumerate_all_plans(["A", "B", "C", "D"])
        signatures = {p.signature() for p in plans}
        assert len(signatures) == len(plans)

    def test_enumeration_covers_all_producers(self):
        names = ["A", "B", "C", "D"]
        for plan in enumerate_all_plans(names):
            assert plan.producers == frozenset(names)

    def test_enumeration_limit(self):
        with pytest.raises(ValueError):
            enumerate_all_plans([f"P{i}" for i in range(10)])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            enumerate_all_plans(["A", "A"])


class TestLeftDeep:
    def test_count(self):
        # n!/2 distinct left-deep trees (first join commutes): 4!/2 = 12.
        assert len(enumerate_left_deep_plans(["A", "B", "C", "D"])) == 12

    def test_all_left_deep(self):
        for plan in enumerate_left_deep_plans(["A", "B", "C"]):
            assert plan.is_left_deep()

    def test_single_producer(self):
        plans = enumerate_left_deep_plans(["A"])
        assert len(plans) == 1
        assert plans[0].num_services == 0


class TestTopK:
    def test_k1_is_global_optimum_small(self):
        names = ["A", "B", "C", "D"]
        st = stats(names, seed=3)
        dp_best = top_k_plans(names, st, k=1)[0]
        brute_best = min(
            enumerate_all_plans(names), key=lambda p: p.intermediate_rate_cost(st)
        )
        assert dp_best.intermediate_rate_cost(st) == pytest.approx(
            brute_best.intermediate_rate_cost(st)
        )

    def test_results_sorted_by_cost(self):
        names = ["A", "B", "C", "D", "E"]
        st = stats(names, seed=1)
        plans = top_k_plans(names, st, k=5)
        costs = [p.intermediate_rate_cost(st) for p in plans]
        assert costs == sorted(costs)

    def test_left_deep_restriction(self):
        names = ["A", "B", "C", "D"]
        st = stats(names, seed=2)
        for plan in top_k_plans(names, st, k=4, bushy=False):
            assert plan.is_left_deep()

    def test_left_deep_never_cheaper_than_bushy_best(self):
        names = ["A", "B", "C", "D", "E"]
        st = stats(names, seed=9)
        bushy = top_k_plans(names, st, k=1, bushy=True)[0]
        ld = top_k_plans(names, st, k=1, bushy=False)[0]
        assert bushy.intermediate_rate_cost(st) <= ld.intermediate_rate_cost(st) + 1e-9

    def test_scales_to_ten_producers(self):
        names = [f"P{i}" for i in range(10)]
        st = stats(names, seed=4)
        plans = top_k_plans(names, st, k=3)
        assert len(plans) == 3
        for plan in plans:
            assert plan.producers == frozenset(names)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            top_k_plans(["A", "B"], stats(["A", "B"]), k=0)

    def test_distinct_signatures(self):
        names = ["A", "B", "C", "D", "E"]
        st = stats(names, seed=7)
        plans = top_k_plans(names, st, k=8)
        sigs = [p.signature() for p in plans]
        assert len(sigs) == len(set(sigs))


class TestBestPlan:
    def test_best_plan_minimizes_oblivious_cost(self):
        names = ["A", "B", "C"]
        st = Statistics.build(
            rates={"A": 10.0, "B": 10.0, "C": 10.0},
            pair_selectivities={
                ("A", "B"): 0.01,
                ("B", "C"): 0.5,
                ("A", "C"): 0.5,
            },
        )
        plan = best_plan(names, st)
        # The cheapest first join is A-B (most selective).
        internals = plan.root.internal_nodes()
        assert internals[0].producers == frozenset({"A", "B"})
