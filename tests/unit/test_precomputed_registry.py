"""Unit tests for the precomputed-plans baseline and cost-space registry."""

import numpy as np
import pytest

from repro.core.cost_space import CostSpace, CostSpaceSpec
from repro.core.optimizer import IntegratedOptimizer
from repro.core.precomputed import (
    PlanBook,
    PrecomputedPlansOptimizer,
    perturbed_cost_space,
)
from repro.core.registry import CostSpaceRegistry
from repro.core.weighting import linear, squared
from repro.workloads.queries import random_query
from repro.workloads.scenarios import figure1_scenario, perfect_cost_space


class TestPerturbedCostSpace:
    def test_perturbation_changes_vectors_not_structure(self):
        sc = figure1_scenario()
        guessed = perturbed_cost_space(sc.cost_space, 0.05, 0.2, seed=1)
        assert guessed.num_nodes == sc.cost_space.num_nodes
        assert guessed.spec.name == sc.cost_space.spec.name
        assert not np.allclose(
            guessed.vector_matrix(), sc.cost_space.vector_matrix()
        )
        # The original is untouched.
        assert sc.cost_space.coordinate(0).vector == tuple(
            figure1_scenario().cost_space.coordinate(0).vector
        )

    def test_zero_sigma_is_identity_on_vectors(self):
        sc = figure1_scenario()
        guessed = perturbed_cost_space(sc.cost_space, 0.0, 0.0, seed=1)
        assert np.allclose(guessed.vector_matrix(), sc.cost_space.vector_matrix())


class TestPrecomputedPlansOptimizer:
    def test_compile_collects_distinct_plans(self):
        sc = figure1_scenario()
        pre = PrecomputedPlansOptimizer(sc.cost_space, num_assumptions=5, seed=3)
        book = pre.compile(sc.query, sc.stats)
        assert isinstance(book, PlanBook)
        assert 1 <= len(book) <= 5

    def test_optimize_requires_compilation(self):
        sc = figure1_scenario()
        pre = PrecomputedPlansOptimizer(sc.cost_space)
        with pytest.raises(KeyError):
            pre.optimize(sc.query, sc.stats)

    def test_optimize_returns_plan_from_book(self):
        sc = figure1_scenario()
        pre = PrecomputedPlansOptimizer(sc.cost_space, num_assumptions=4, seed=2)
        book = pre.compile(sc.query, sc.stats)
        result = pre.optimize(sc.query, sc.stats)
        assert result.plan.signature() in book.plans
        assert result.circuit.is_fully_placed()
        assert result.placements_evaluated == len(book)

    def test_never_better_than_fresh_integration(self):
        # The book is a subset of the integrated optimizer's candidates,
        # so its best estimated cost cannot be lower.
        sc = figure1_scenario()
        pre = PrecomputedPlansOptimizer(sc.cost_space, num_assumptions=3, seed=5)
        pre.compile(sc.query, sc.stats)
        stale = pre.optimize(sc.query, sc.stats)
        fresh = IntegratedOptimizer(sc.cost_space).optimize(sc.query, sc.stats)
        assert fresh.cost.total <= stale.cost.total + 1e-9

    def test_validates_num_assumptions(self):
        sc = figure1_scenario()
        with pytest.raises(ValueError):
            PrecomputedPlansOptimizer(sc.cost_space, num_assumptions=0)


class TestCostSpaceRegistry:
    def _space(self, name="latency", n=5, with_load=False):
        positions = [(float(i), 0.0) for i in range(n)]
        if with_load:
            spec = CostSpaceSpec.latency_load(vector_dims=2, name=name)
            return CostSpace.from_embedding(
                spec, np.asarray(positions), {"cpu_load": np.zeros(n)}
            )
        spec = CostSpaceSpec.latency_only(vector_dims=2, name=name)
        return CostSpace.from_embedding(spec, np.asarray(positions))

    def test_register_and_get(self):
        registry = CostSpaceRegistry(num_nodes=5)
        registry.register(self._space("latency"))
        registry.register(self._space("latency+load", with_load=True))
        assert registry.names == ["latency", "latency+load"]
        assert registry.get("latency").spec.vector_dims == 2
        assert "latency" in registry and len(registry) == 2

    def test_node_count_mismatch_rejected(self):
        registry = CostSpaceRegistry(num_nodes=9)
        with pytest.raises(ValueError):
            registry.register(self._space(n=5))

    def test_reregistration_same_semantics_allowed(self):
        registry = CostSpaceRegistry(num_nodes=5)
        registry.register(self._space("latency"))
        registry.register(self._space("latency"))  # refresh snapshot
        assert len(registry) == 1

    def test_conflicting_semantics_rejected(self):
        registry = CostSpaceRegistry(num_nodes=5)
        spec_a = CostSpaceSpec.latency_load(
            vector_dims=2, load_weighting=squared(), name="shared"
        )
        spec_b = CostSpaceSpec.latency_load(
            vector_dims=2, load_weighting=linear(), name="shared"
        )
        positions = np.asarray([(float(i), 0.0) for i in range(5)])
        registry.register(
            CostSpace.from_embedding(spec_a, positions, {"cpu_load": np.zeros(5)})
        )
        with pytest.raises(ValueError):
            registry.register(
                CostSpace.from_embedding(spec_b, positions, {"cpu_load": np.zeros(5)})
            )

    def test_unknown_name(self):
        registry = CostSpaceRegistry(num_nodes=5)
        with pytest.raises(KeyError):
            registry.get("nope")

    def test_update_all_metrics_routes_per_space(self):
        registry = CostSpaceRegistry(num_nodes=5)
        registry.register(self._space("latency"))
        registry.register(self._space("latency+load", with_load=True))
        registry.update_all_metrics({"cpu_load": np.full(5, 1.0)})
        loaded = registry.get("latency+load")
        assert loaded.coordinate(0).scalar[0] > 0
        # The pure-latency space is untouched (has no scalar dims).
        assert registry.get("latency").coordinate(0).scalar == ()

    def test_update_all_metrics_missing_metric(self):
        registry = CostSpaceRegistry(num_nodes=5)
        registry.register(self._space("latency+load", with_load=True))
        with pytest.raises(ValueError):
            registry.update_all_metrics({"memory": np.zeros(5)})


class TestQueryPerSpaceSelection:
    def test_different_spaces_can_give_different_placements(self):
        # A loaded nearest node: the latency-only space uses it, the
        # latency+load space avoids it (Figure 3 logic through the
        # registry API).
        from repro.workloads.scenarios import figure3_scenario

        sc = figure3_scenario()
        registry = CostSpaceRegistry(num_nodes=sc.cost_space.num_nodes)
        registry.register(sc.cost_space)  # "latency+load"
        vectors = sc.cost_space.vector_matrix()
        latency_only = CostSpace.from_embedding(
            CostSpaceSpec.latency_only(vector_dims=2, name="latency"), vectors
        )
        registry.register(latency_only)

        with_load = IntegratedOptimizer(registry.get("latency+load")).optimize(
            sc.query, sc.stats
        )
        without = IntegratedOptimizer(registry.get("latency")).optimize(
            sc.query, sc.stats
        )
        sid = with_load.circuit.unpinned_ids()[0]
        assert with_load.circuit.host_of(sid) == sc.n2
        assert without.circuit.host_of(without.circuit.unpinned_ids()[0]) == sc.n1
