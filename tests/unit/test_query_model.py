"""Unit tests for the stream query model."""

import pytest

from repro.query.model import Consumer, Producer, QuerySpec, StreamSchema


class TestStreamSchema:
    def test_of_constructor(self):
        schema = StreamSchema.of(ts="int", value="float")
        assert schema.names == ("ts", "value")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            StreamSchema((("a", "int"), ("a", "float")))

    def test_has(self):
        schema = StreamSchema.of(x="int")
        assert schema.has("x")
        assert not schema.has("y")

    def test_merge_unions_attributes(self):
        a = StreamSchema.of(ts="int", v="float")
        b = StreamSchema.of(ts="int", w="str")
        merged = a.merge(b)
        assert merged.names == ("ts", "v", "w")


class TestProducer:
    def test_valid(self):
        p = Producer("P1", node=3, rate=2.5)
        assert p.rate == 2.5

    def test_rejects_non_positive_rate(self):
        with pytest.raises(ValueError):
            Producer("P1", node=0, rate=0.0)

    def test_rejects_negative_node(self):
        with pytest.raises(ValueError):
            Producer("P1", node=-1, rate=1.0)


class TestQuerySpec:
    def _query(self, **kwargs) -> QuerySpec:
        producers = [
            Producer("A", node=0, rate=2.0),
            Producer("B", node=1, rate=3.0),
        ]
        defaults = dict(
            name="q", producers=producers, consumer=Consumer("C", node=2)
        )
        defaults.update(kwargs)
        return QuerySpec(**defaults)

    def test_producer_names(self):
        assert self._query().producer_names == ["A", "B"]

    def test_requires_producers(self):
        with pytest.raises(ValueError):
            self._query(producers=[])

    def test_duplicate_producer_names_rejected(self):
        producers = [
            Producer("A", node=0, rate=1.0),
            Producer("A", node=1, rate=1.0),
        ]
        with pytest.raises(ValueError):
            self._query(producers=producers)

    def test_filter_validation(self):
        with pytest.raises(ValueError):
            self._query(filters={"Z": 0.5})  # unknown producer
        with pytest.raises(ValueError):
            self._query(filters={"A": 1.5})  # selectivity out of range

    def test_effective_rate_applies_filter(self):
        q = self._query(filters={"A": 0.5})
        assert q.effective_rate("A") == 1.0
        assert q.effective_rate("B") == 3.0

    def test_aggregate_factor_validation(self):
        with pytest.raises(ValueError):
            self._query(aggregate_factor=0.0)
        assert self._query(aggregate_factor=0.2).aggregate_factor == 0.2

    def test_pinned_nodes(self):
        assert self._query().pinned_nodes == {0, 1, 2}

    def test_producer_lookup(self):
        q = self._query()
        assert q.producer("A").node == 0
        with pytest.raises(KeyError):
            q.producer("nope")
