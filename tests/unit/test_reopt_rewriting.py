"""Unit tests for rewrite_step integration in the re-optimizer."""

import pytest

from repro.core.optimizer import IntegratedOptimizer
from repro.core.reoptimizer import Reoptimizer
from repro.workloads.scenarios import perfect_cost_space
from tests.unit.test_rewriting import three_way_setup


def line_space(n=8):
    return perfect_cost_space([(10.0 * i, 0.0) for i in range(n)])


class TestRewriteStep:
    def test_colocated_joins_get_merged(self):
        space = line_space()
        circuit, query, stats = three_way_setup()
        circuit.assign("q/join0", 5)
        circuit.assign("q/join1", 5)
        reopt = Reoptimizer(space)
        rewritten, applied = reopt.rewrite_step(circuit, stats)
        assert applied  # something happened
        # After rewriting, at most one join remains on node 5 (either a
        # reorder then merge, or a straight merge).
        joins = [
            sid
            for sid, svc in rewritten.services.items()
            if svc.kind.value == "join"
        ]
        assert len(joins) == 1
        assert rewritten.is_fully_placed()

    def test_separated_joins_untouched(self):
        space = line_space()
        circuit, query, stats = three_way_setup()
        circuit.assign("q/join0", 4)
        circuit.assign("q/join1", 6)
        reopt = Reoptimizer(space)
        rewritten, applied = reopt.rewrite_step(circuit, stats)
        assert applied == []
        assert set(rewritten.services) == set(circuit.services)

    def test_input_circuit_not_mutated(self):
        space = line_space()
        circuit, query, stats = three_way_setup()
        circuit.assign("q/join0", 5)
        circuit.assign("q/join1", 5)
        before_services = set(circuit.services)
        Reoptimizer(space).rewrite_step(circuit, stats)
        assert set(circuit.services) == before_services

    def test_rewrite_never_increases_estimated_cost(self):
        space = line_space()
        circuit, query, stats = three_way_setup(sel_ab=0.9, sel_bc=0.01)
        circuit.assign("q/join0", 5)
        circuit.assign("q/join1", 5)
        reopt = Reoptimizer(space)
        before = reopt.evaluator.evaluate(circuit).total
        rewritten, _ = reopt.rewrite_step(circuit, stats)
        after = reopt.evaluator.evaluate(rewritten).total
        assert after <= before + 1e-9

    def test_rewritten_circuit_still_migratable(self):
        space = line_space()
        circuit, query, stats = three_way_setup()
        circuit.assign("q/join0", 0)
        circuit.assign("q/join1", 0)
        reopt = Reoptimizer(space)
        rewritten, _ = reopt.rewrite_step(circuit, stats)
        report = reopt.local_step(rewritten)
        # Merged service can still migrate toward the circuit's center.
        assert report.cost_after.total <= report.cost_before.total
