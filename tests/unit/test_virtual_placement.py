"""Unit tests for virtual placement algorithms."""

import numpy as np
import pytest

from repro.core.circuit import Circuit
from repro.core.optimizer import pinned_vector_positions
from repro.core.virtual_placement import (
    centroid_placement,
    gradient_descent_placement,
    placement_energy,
    placement_utilization,
    relaxation_placement,
)
from repro.query.model import Consumer, Producer, QuerySpec
from repro.query.plan import JoinNode, LeafNode, LogicalPlan
from repro.query.selectivity import Statistics


def one_join_circuit(rate_a=4.0, rate_b=4.0, sel=0.25):
    query = QuerySpec(
        name="q",
        producers=[
            Producer("A", node=0, rate=rate_a),
            Producer("B", node=1, rate=rate_b),
        ],
        consumer=Consumer("C", node=2),
    )
    stats = Statistics.build({"A": rate_a, "B": rate_b}, {("A", "B"): sel})
    plan = LogicalPlan(JoinNode(LeafNode("A"), LeafNode("B")))
    return Circuit.from_plan(plan, query, stats), stats


PINNED = {
    "q/src:A": np.array([0.0, 0.0]),
    "q/src:B": np.array([10.0, 0.0]),
    "q/sink:C": np.array([5.0, 10.0]),
}


class TestRelaxation:
    def test_single_join_equilibrium_is_weighted_centroid(self):
        circuit, _ = one_join_circuit(rate_a=4.0, rate_b=4.0, sel=0.25)
        # Link rates: A 4, B 4, out 4 -> equal weights -> plain centroid.
        vp = relaxation_placement(circuit, PINNED)
        expected = (PINNED["q/src:A"] + PINNED["q/src:B"] + PINNED["q/sink:C"]) / 3
        assert np.allclose(vp.position_of("q/join0"), expected, atol=1e-3)
        assert vp.converged

    def test_rates_pull_service_toward_heavy_stream(self):
        heavy, _ = one_join_circuit(rate_a=40.0, rate_b=4.0, sel=0.025)
        vp_heavy = relaxation_placement(heavy, PINNED)
        balanced, _ = one_join_circuit(rate_a=4.0, rate_b=4.0, sel=0.25)
        vp_balanced = relaxation_placement(balanced, PINNED)
        # Heavier A stream drags the join toward A's position (x=0).
        assert (
            vp_heavy.position_of("q/join0")[0]
            < vp_balanced.position_of("q/join0")[0]
        )

    def test_missing_pinned_position_rejected(self):
        circuit, _ = one_join_circuit()
        with pytest.raises(ValueError):
            relaxation_placement(circuit, {"q/src:A": np.zeros(2)})

    def test_inconsistent_dimensionality_rejected(self):
        circuit, _ = one_join_circuit()
        bad = dict(PINNED)
        bad["q/sink:C"] = np.array([1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            relaxation_placement(circuit, bad)

    def test_no_unpinned_services_is_noop(self):
        query = QuerySpec(
            name="q1",
            producers=[Producer("A", node=0, rate=1.0)],
            consumer=Consumer("C", node=1),
        )
        stats = Statistics.build({"A": 1.0})
        circuit = Circuit.from_plan(LogicalPlan(LeafNode("A")), query, stats)
        vp = relaxation_placement(
            circuit,
            {"q1/src:A": np.zeros(2), "q1/sink:C": np.ones(2)},
        )
        assert vp.positions == {}
        assert vp.converged

    def test_energy_not_above_center_start(self):
        # The fixed point must have energy <= the initial all-at-center
        # configuration (relaxation descends the convex energy).
        circuit, _ = one_join_circuit(rate_a=20.0, rate_b=1.0, sel=0.05)
        vp = relaxation_placement(circuit, PINNED)
        center = np.mean(list(PINNED.values()), axis=0)
        positions = dict(PINNED)
        positions["q/join0"] = center
        start_energy = placement_energy(circuit, positions)
        assert vp.objective <= start_energy + 1e-9


class TestCentroidAndGradient:
    def test_centroid_ignores_rates(self):
        balanced, _ = one_join_circuit(rate_a=4.0, rate_b=4.0, sel=0.25)
        skewed, _ = one_join_circuit(rate_a=40.0, rate_b=4.0, sel=0.025)
        vp_b = centroid_placement(balanced, PINNED)
        vp_s = centroid_placement(skewed, PINNED)
        assert np.allclose(
            vp_b.position_of("q/join0"), vp_s.position_of("q/join0"), atol=1e-6
        )

    def test_gradient_descent_beats_relaxation_on_true_objective(self):
        # Weiszfeld minimizes sum rate*dist, relaxation minimizes
        # sum rate*dist^2; on skewed rates the geometric-median answer
        # must be at least as good on the linear objective.
        circuit, _ = one_join_circuit(rate_a=30.0, rate_b=2.0, sel=0.05)
        vp_grad = gradient_descent_placement(circuit, PINNED)
        vp_relax = relaxation_placement(circuit, PINNED)

        def utilization(vp):
            positions = dict(PINNED)
            positions.update(vp.positions)
            return placement_utilization(circuit, positions)

        assert utilization(vp_grad) <= utilization(vp_relax) + 1e-6

    def test_gradient_converges(self):
        circuit, _ = one_join_circuit()
        vp = gradient_descent_placement(circuit, PINNED)
        assert vp.converged


class TestMultiServicePlacement:
    def test_chain_of_joins_orders_spatially(self):
        # 4 producers on a line; the join chain should settle in
        # between, monotone along the line.
        producers = [
            Producer("P1", node=0, rate=5.0),
            Producer("P2", node=1, rate=5.0),
            Producer("P3", node=2, rate=5.0),
            Producer("P4", node=3, rate=5.0),
        ]
        query = QuerySpec(name="q", producers=producers, consumer=Consumer("C", node=4))
        stats = Statistics.build(
            {p.name: 5.0 for p in producers}, default_selectivity=0.1
        )
        plan = LogicalPlan(
            JoinNode(
                JoinNode(JoinNode(LeafNode("P1"), LeafNode("P2")), LeafNode("P3")),
                LeafNode("P4"),
            )
        )
        circuit = Circuit.from_plan(plan, query, stats)
        pinned = {
            "q/src:P1": np.array([0.0, 0.0]),
            "q/src:P2": np.array([1.0, 0.0]),
            "q/src:P3": np.array([2.0, 0.0]),
            "q/src:P4": np.array([3.0, 0.0]),
            "q/sink:C": np.array([4.0, 0.0]),
        }
        vp = relaxation_placement(circuit, pinned)
        xs = [vp.position_of(f"q/join{i}")[0] for i in range(3)]
        assert xs[0] < xs[1] < xs[2]
        assert all(0.0 < x < 4.0 for x in xs)

    def test_position_of_unknown_service(self):
        circuit, _ = one_join_circuit()
        vp = relaxation_placement(circuit, PINNED)
        with pytest.raises(KeyError):
            vp.position_of("nope")
