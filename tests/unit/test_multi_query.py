"""Unit tests for multi-query optimization with radius pruning."""

import pytest

from repro.core.multi_query import MultiQueryOptimizer
from repro.core.optimizer import IntegratedOptimizer
from repro.workloads.scenarios import figure4_scenario


def deployed_scenario(radius=None):
    sc = figure4_scenario()
    r = sc.radius if radius is None else radius
    mq = MultiQueryOptimizer(sc.cost_space, radius=r)
    integ = IntegratedOptimizer(sc.cost_space)
    for query, stats in sc.existing:
        mq.deploy(integ.optimize(query, stats))
    return sc, mq


class TestRegistry:
    def test_deploy_registers_unpinned_services(self):
        _, mq = deployed_scenario()
        assert len(mq.deployed) == 3  # one join per 2-producer circuit
        names = {d.circuit_name for d in mq.deployed}
        assert names == {"C1", "C2", "C3"}

    def test_undeploy(self):
        _, mq = deployed_scenario()
        mq.undeploy("C1")
        assert {d.circuit_name for d in mq.deployed} == {"C2", "C3"}

    def test_radius_validation(self):
        sc = figure4_scenario()
        with pytest.raises(ValueError):
            MultiQueryOptimizer(sc.cost_space, radius=-1.0)


class TestReuse:
    def test_fig4_reuses_only_nearby_circuit(self):
        sc, mq = deployed_scenario()
        result = mq.optimize(sc.new_query, sc.new_stats)
        assert result.reuse_happened
        assert [d.circuit_name for d in result.reused] == ["C3"]
        assert result.candidates_examined == 1  # C1/C2 pruned away
        assert result.total_deployed == 3
        assert result.savings > 0

    def test_zero_radius_prunes_everything(self):
        sc, mq = deployed_scenario(radius=0.0)
        result = mq.optimize(sc.new_query, sc.new_stats)
        assert not result.reuse_happened
        assert result.candidates_examined == 0
        assert result.savings == 0.0

    def test_infinite_radius_examines_all(self):
        sc, mq = deployed_scenario(radius=float("inf"))
        result = mq.optimize(sc.new_query, sc.new_stats)
        assert result.candidates_examined == result.total_deployed == 3
        assert result.reuse_happened

    def test_empty_registry_falls_back_to_standalone(self):
        sc = figure4_scenario()
        mq = MultiQueryOptimizer(sc.cost_space, radius=sc.radius)
        result = mq.optimize(sc.new_query, sc.new_stats)
        assert not result.reuse_happened
        assert result.cost.total == pytest.approx(result.standalone.cost.total)

    def test_reused_circuit_has_tap_pinned_to_existing_host(self):
        sc, mq = deployed_scenario()
        result = mq.optimize(sc.new_query, sc.new_stats)
        tap_ids = [
            sid for sid in result.circuit.services if "/tap" in sid
        ]
        assert len(tap_ids) == 1
        tap_host = result.circuit.host_of(tap_ids[0])
        assert tap_host == result.reused[0].node

    def test_reused_circuit_cheaper_than_standalone(self):
        sc, mq = deployed_scenario()
        result = mq.optimize(sc.new_query, sc.new_stats)
        assert result.cost.total < result.standalone.cost.total

    def test_tap_skips_upstream_sources(self):
        # The rewritten circuit should not re-stream producer data that
        # the tapped service already consumes.
        sc, mq = deployed_scenario()
        result = mq.optimize(sc.new_query, sc.new_stats)
        source_ids = [sid for sid in result.circuit.services if "/src:" in sid]
        assert source_ids == []  # whole join tree was tapped

    def test_result_reports_fully_placed_circuit(self):
        sc, mq = deployed_scenario()
        result = mq.optimize(sc.new_query, sc.new_stats)
        assert result.circuit.is_fully_placed()
