"""Unit tests for the unified CPU-cost model (the one load currency).

Covers the :class:`LoadModel` itself, the data plane's cost measurement
and cost-based admission, the overlay's measured-load feed, the
load-process cost units, and the controller's CPU write-back and
quantile calibration.
"""

import numpy as np
import pytest

from repro.control import ControlConfig, Controller
from repro.core.circuit import Circuit, Service
from repro.core.cost_space import CostSpace, CostSpaceSpec
from repro.core.load_model import (
    KIND_AGGREGATE,
    KIND_FILTER,
    KIND_JOIN,
    KIND_RELAY,
    LoadModel,
)
from repro.network.dynamics import HotspotEvent, LoadProcess
from repro.network.latency import LatencyMatrix
from repro.query.operators import ServiceSpec
from repro.runtime import DataPlane, RuntimeConfig
from repro.sbon.overlay import Overlay


def planted_overlay(n=12, seed=0):
    rng = np.random.default_rng(seed)
    points = rng.uniform(0.0, 100.0, size=(n, 2))
    diff = points[:, None, :] - points[None, :, :]
    latencies = LatencyMatrix(np.sqrt((diff ** 2).sum(axis=-1)))
    spec = CostSpaceSpec.latency_load(vector_dims=2)
    space = CostSpace.from_embedding(spec, points, {"cpu_load": np.zeros(n)})
    return Overlay(latencies, space)


def chain_circuit(name="c0", producer=0, middle=1, sink=2, rate=6.0, sel=0.5):
    circuit = Circuit(name=name)
    circuit.add_service(Service(f"{name}/src", ServiceSpec.relay(), producer, frozenset(("P",))))
    circuit.add_service(Service(f"{name}/f", ServiceSpec.filter(sel), None, frozenset(("P",))))
    circuit.add_service(Service(f"{name}/sink", ServiceSpec.relay(), sink, frozenset(("P",))))
    circuit.add_link(f"{name}/src", f"{name}/f", rate)
    circuit.add_link(f"{name}/f", f"{name}/sink", rate * sel)
    circuit.assign(f"{name}/f", middle)
    return circuit


class TestLoadModel:
    def test_defaults_are_positive_and_join_heavy(self):
        model = LoadModel()
        assert model.join_cost > model.relay_cost
        assert model.probe_cost > 0
        assert not model.is_unit

    def test_unit_model_is_counting(self):
        unit = LoadModel.unit()
        assert unit.is_unit
        np.testing.assert_array_equal(unit.kind_costs(), np.ones(4))
        for kind in (KIND_RELAY, KIND_FILTER, KIND_AGGREGATE, KIND_JOIN):
            assert unit.cost_of(kind, probes=7, batch=9) == 1.0

    def test_kind_costs_order(self):
        model = LoadModel(
            relay_cost=1.0, filter_cost=2.0, aggregate_cost=3.0, join_cost=4.0
        )
        np.testing.assert_array_equal(
            model.kind_costs(), [1.0, 2.0, 3.0, 4.0]
        )

    def test_cost_of_terms(self):
        model = LoadModel(
            join_cost=2.0, probe_cost=0.5, aggregate_cost=1.5,
            aggregate_batch_cost=0.25,
        )
        assert model.cost_of(KIND_JOIN, probes=4) == 4.0
        assert model.cost_of(KIND_AGGREGATE, batch=8) == 3.5
        assert model.cost_of(KIND_RELAY) == model.relay_cost

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadModel(relay_cost=0.0)
        with pytest.raises(ValueError):
            LoadModel(probe_cost=-0.1)
        with pytest.raises(ValueError):
            LoadModel(aggregate_batch_cost=-1.0)


class TestDataPlaneCostAccounting:
    def test_unit_model_cost_equals_count(self):
        overlay = planted_overlay()
        overlay.install_circuit(chain_circuit())
        plane = DataPlane(overlay, RuntimeConfig(seed=1))
        for _ in range(15):
            record = plane.step()
            assert record.cpu_cost == record.processed
            np.testing.assert_array_equal(
                plane.tick_node_cpu, plane.tick_node_processed.astype(float)
            )
        assert plane.cpu_cost_total == plane.processed

    def test_per_kind_costs_attributed_to_hosts(self):
        overlay = planted_overlay()
        overlay.install_circuit(chain_circuit(producer=0, middle=1, sink=2))
        model = LoadModel(relay_cost=1.0, filter_cost=2.0)
        plane = DataPlane(overlay, RuntimeConfig(seed=2, load_model=model))
        for _ in range(25):
            plane.step()
        # Filter tuples cost 2 on node 1, sink tuples cost 1 on node 2.
        assert plane.cpu_by_node[1] == 2.0 * plane.processed_by_node[1]
        assert plane.cpu_by_node[2] == 1.0 * plane.processed_by_node[2]
        assert plane.cpu_by_node[0] == 0.0  # sources are never delivered to
        assert plane.cpu_cost_total == plane.cpu_by_node.sum()

    def test_tick_cpu_sums_match_record(self):
        overlay = planted_overlay()
        overlay.install_circuit(chain_circuit())
        plane = DataPlane(overlay, RuntimeConfig(seed=3, load_model=LoadModel()))
        for _ in range(10):
            record = plane.step()
            assert record.cpu_cost == pytest.approx(plane.tick_node_cpu.sum())

    def test_cost_based_admission_admits_fewer_expensive_tuples(self):
        # Capacity 10 cost units with filter cost 2: at most 5 filter
        # tuples per tick are admitted, where counting would admit 10.
        overlay = planted_overlay()
        overlay.install_circuit(chain_circuit(rate=20.0, sel=0.5))
        model = LoadModel(relay_cost=1.0, filter_cost=2.0)
        plane = DataPlane(
            overlay, RuntimeConfig(seed=4, node_capacity=10.0, load_model=model)
        )
        before = 0
        for _ in range(20):
            plane.step()
            admitted = int(plane.processed_by_node[1]) - before
            before = int(plane.processed_by_node[1])
            assert admitted <= 5
        assert plane.dropped_capacity > 0
        # Rejected demand is accounted at its admission price.
        assert plane.cpu_dropped_total == 2.0 * plane.dropped_capacity
        assert plane.accounting()["balanced"]

    def test_unit_model_admission_matches_count_gate(self):
        a_overlay = planted_overlay(seed=7)
        b_overlay = planted_overlay(seed=7)
        a_overlay.install_circuit(chain_circuit(rate=20.0))
        b_overlay.install_circuit(chain_circuit(rate=20.0))
        unit = DataPlane(
            a_overlay,
            RuntimeConfig(seed=5, node_capacity=7.0, load_model=LoadModel.unit()),
        )
        default = DataPlane(b_overlay, RuntimeConfig(seed=5, node_capacity=7.0))
        for _ in range(15):
            assert unit.step() == default.step()
        assert unit.accounting() == default.accounting()

    def test_accounting_exports_cpu_totals(self):
        overlay = planted_overlay()
        overlay.install_circuit(chain_circuit())
        plane = DataPlane(overlay, RuntimeConfig(seed=6, load_model=LoadModel()))
        for _ in range(10):
            plane.step()
        acct = plane.accounting()
        assert acct["cpu_cost"] == plane.cpu_cost_total > 0
        assert acct["cpu_dropped"] == plane.cpu_dropped_total

    def test_buffered_backlog_names_services(self):
        overlay = planted_overlay()
        overlay.install_circuit(chain_circuit(middle=1))
        plane = DataPlane(overlay, RuntimeConfig(seed=7, reliable=True))
        assert plane.buffered_backlog() == {}
        mask = np.ones(overlay.num_nodes, dtype=bool)
        mask[1] = False
        overlay.apply_liveness(mask)
        for _ in range(8):
            plane.step()
        backlog = plane.buffered_backlog()
        assert backlog.get(("c0", "c0/f"), 0) > 0
        assert set(backlog) == {("c0", "c0/f")}


class TestOverlayMeasuredCpu:
    def test_measured_feed_raises_loads_on_both_paths(self):
        overlay = planted_overlay(n=6)
        base_v = overlay.loads().copy()
        base_s = overlay.loads_scalar().copy()
        np.testing.assert_allclose(base_v, base_s)
        measured = np.linspace(0.0, 0.9, 6)
        overlay.set_measured_cpu(measured)
        np.testing.assert_allclose(overlay.loads(), np.clip(base_v + measured, 0, 1))
        np.testing.assert_allclose(overlay.loads(), overlay.loads_scalar())
        overlay.clear_measured_cpu()
        np.testing.assert_allclose(overlay.loads(), base_v)

    def test_measured_feed_reaches_cost_space(self):
        overlay = planted_overlay(n=6)
        overlay.set_measured_cpu(np.array([0.0, 1.0, 0.0, 0.0, 0.0, 0.0]))
        overlay.refresh_cost_space()
        penalties = overlay.cost_space.scalar_penalties()
        assert penalties[1] > penalties[0]

    def test_validation(self):
        overlay = planted_overlay(n=4)
        with pytest.raises(ValueError):
            overlay.set_measured_cpu(np.zeros(3))
        with pytest.raises(ValueError):
            overlay.set_measured_cpu(np.array([0.0, 0.5, 2.0, 0.0]))
        with pytest.raises(ValueError):
            overlay.set_measured_cpu(np.array([0.0, -0.5, 0.2, 0.0]))


class TestLoadProcessCostUnits:
    def test_cost_units_normalize_to_fractions(self):
        process = LoadProcess(
            8, mean_load=50.0, sigma=5.0, seed=1, cpu_capacity=200.0
        )
        cost = process.loads_cost()
        np.testing.assert_allclose(process.loads(), cost / 200.0)
        assert process.max_load == 200.0  # default 1.0 promoted
        assert np.all(process.loads() <= 1.0)

    def test_hotspot_expressed_in_cost_units(self):
        process = LoadProcess(
            4, mean_load=10.0, sigma=0.0, theta=0.0, seed=2, cpu_capacity=100.0
        )
        process.add_hotspot(HotspotEvent(0, 10, (1,), extra_load=80.0))
        cost = process.loads_cost()
        assert cost[1] == pytest.approx(cost[0] + 80.0)
        assert process.loads()[1] == pytest.approx(cost[1] / 100.0)
        np.testing.assert_allclose(process.loads(), process.loads_scalar())

    def test_fraction_mode_unchanged(self):
        a = LoadProcess(6, seed=3)
        b = LoadProcess(6, seed=3, cpu_capacity=None)
        np.testing.assert_array_equal(a.step(3), b.step(3))

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadProcess(4, cpu_capacity=0.0)


class TestCostWiredBackground:
    """The fraction-typed background plumbing is retired end to end.

    A cost-typed load process (``cpu_capacity`` set) feeds the overlay
    raw cost units through :meth:`Overlay.set_background_cost`; with
    aligned capacities the run must match a fraction-typed twin tick
    for tick, and the overlay must share its ``cpu_ref`` with the
    controller.
    """

    def make_sim(self, cpu_capacity, mean, sigma=0.05, seed=4):
        from repro.sbon.simulator import Simulation, SimulationConfig

        overlay = planted_overlay(n=12, seed=7)
        overlay.install_circuit(chain_circuit())
        plane = DataPlane(overlay, RuntimeConfig(seed=seed))
        load = LoadProcess(
            12, mean_load=mean, sigma=sigma, seed=11, cpu_capacity=cpu_capacity
        )
        sim = Simulation(
            overlay,
            load_process=load,
            config=SimulationConfig(reopt_interval=0),
            data_plane=plane,
        )
        return overlay, sim

    def test_cost_wired_run_matches_fraction_twin(self):
        # Same walk in two currencies: cost units against capacity C
        # normalize to exactly the fraction twin's background.
        C = 80.0
        ov_cost, sim_cost = self.make_sim(cpu_capacity=C, mean=0.15 * C, sigma=0.05 * C)
        ov_frac, sim_frac = self.make_sim(cpu_capacity=None, mean=0.15, sigma=0.05)
        for _ in range(15):
            rc, rf = sim_cost.step(), sim_frac.step()
            assert rc.mean_load == pytest.approx(rf.mean_load, rel=1e-12)
            assert rc.max_load == pytest.approx(rf.max_load, rel=1e-12)
            assert (rc.emitted, rc.delivered, rc.dropped) == (
                rf.emitted,
                rf.delivered,
                rf.dropped,
            )
            np.testing.assert_allclose(
                ov_cost.loads(), ov_frac.loads(), rtol=1e-12
            )
        assert ov_cost.cpu_reference() == C
        assert ov_frac.cpu_reference() is None

    def test_overlay_ref_reaches_controller(self):
        C = 64.0
        _, sim = self.make_sim(cpu_capacity=C, mean=0.1 * C)
        sim.step()
        ctl = Controller(sim.data_plane, ControlConfig())
        # No cfg.cpu_ref, no node_capacity: the overlay's shared ref wins.
        assert ctl.cpu_reference() == C

    def test_set_background_cost_validation(self):
        overlay = planted_overlay(n=4)
        with pytest.raises(ValueError):
            overlay.set_background_cost(np.zeros(4), cpu_ref=0.0)
        with pytest.raises(ValueError):
            overlay.set_background_cost(np.zeros(3), cpu_ref=10.0)
        overlay.set_background_cost(np.array([5.0, 10.0, 0.0, 20.0]), cpu_ref=10.0)
        np.testing.assert_allclose(
            overlay.loads(), np.clip([0.5, 1.0, 0.0, 2.0], 0, 1), atol=1e-12
        )
        assert overlay.cpu_reference() == 10.0


def join_circuit(name="j0", a=0, b=1, host=2, sink=3, rate=6.0):
    circuit = Circuit(name=name)
    circuit.add_service(Service(f"{name}/pa", ServiceSpec.relay(), a, frozenset(("A",))))
    circuit.add_service(Service(f"{name}/pb", ServiceSpec.relay(), b, frozenset(("B",))))
    circuit.add_service(Service(f"{name}/j", ServiceSpec.join(), None, frozenset(("A", "B"))))
    circuit.add_service(Service(f"{name}/sink", ServiceSpec.relay(), sink, frozenset(("ALL",))))
    circuit.add_link(f"{name}/pa", f"{name}/j", rate)
    circuit.add_link(f"{name}/pb", f"{name}/j", rate)
    circuit.add_link(f"{name}/j", f"{name}/sink", rate * 0.5)
    circuit.assign(f"{name}/j", host)
    return circuit


class TestDriftCalibration:
    """The cost-drift feedback loop: fitted costs reprice admission."""

    def make_join_plane(self, seed=3):
        overlay = planted_overlay()
        overlay.install_circuit(join_circuit())
        model = LoadModel()  # probe_cost = 0.5: joins under-priced at base
        plane = DataPlane(overlay, RuntimeConfig(seed=seed, load_model=model))
        return plane, model

    def test_admission_prices_track_measured_drift(self):
        plane, model = self.make_join_plane()
        ctl = Controller(
            plane,
            ControlConfig(
                warmup=4, calibrate_interval=5, drift_calibrate=True,
                drop_threshold=None, cpu_calibrate=False,
            ),
        )
        for _ in range(30):
            ctl.step(plane.step())
        live = plane.load_model
        # The fit folded the measured probe term into the join base and
        # retired the dynamic coefficient; relays were priced right all
        # along, so their coefficient survives re-quantization exactly.
        assert live is not model
        assert live.probe_cost == 0.0
        assert live.join_cost > model.join_cost
        assert live.relay_cost == model.relay_cost
        # Unseen kinds keep their priced coefficients and dynamic terms.
        assert live.filter_cost == model.filter_cost
        assert live.aggregate_cost == model.aggregate_cost
        assert live.aggregate_batch_cost == model.aggregate_batch_cost
        # Dyadic re-quantization preserved: every coefficient on the
        # 1/256 grid, so cost accumulation stays exact.
        for c in live.kind_costs():
            assert c * 256.0 == round(c * 256.0)
        # Admission now prices joins at the flat effective cost.
        adm = plane._admission_costs()
        np.testing.assert_array_equal(
            adm[plane._kind == KIND_JOIN], live.join_cost
        )
        # Post-push fits see priced == fitted: the drift ratio settles
        # at 1 (prices track the measured cost) and a further apply is
        # a no-op rather than a ratchet.
        assert ctl.cost_drift[KIND_JOIN] == pytest.approx(1.0, abs=1e-9)
        assert ctl.cost_drift[KIND_RELAY] == pytest.approx(1.0, abs=1e-9)
        assert ctl.apply_cost_drift() is None
        assert plane.accounting()["balanced"]

    def test_drift_calibrate_defaults_off(self):
        plane, model = self.make_join_plane()
        ctl = Controller(
            plane,
            ControlConfig(
                warmup=4, calibrate_interval=5,
                drop_threshold=None, cpu_calibrate=False,
            ),
        )
        for _ in range(30):
            ctl.step(plane.step())
        assert plane.load_model is model
        assert ctl.cost_drift is not None
        assert ctl.cost_drift[KIND_JOIN] > 1.0  # drift measured, not applied

    def test_scalar_twin_applies_identical_model(self):
        plane_v, _ = self.make_join_plane()
        plane_s, _ = self.make_join_plane()
        cfg = ControlConfig(
            warmup=4, calibrate_interval=5, drift_calibrate=True,
            drop_threshold=None, cpu_calibrate=False,
        )
        vec = Controller(plane_v, cfg)
        scal = Controller(plane_s, cfg)
        for _ in range(25):
            rv = vec.step(plane_v.step())
            rs = scal.step_scalar(plane_s.step())
            assert rv == rs
        assert plane_v.load_model == plane_s.load_model
        assert plane_v.load_model.probe_cost == 0.0


class TestControllerCpuLoop:
    def make_plane(self, rate=6.0, model=None, capacity=None, seed=2):
        overlay = planted_overlay()
        overlay.install_circuit(chain_circuit(rate=rate))
        plane = DataPlane(
            overlay,
            RuntimeConfig(seed=seed, load_model=model, node_capacity=capacity),
        )
        return overlay, plane

    def test_cpu_reference_priority(self):
        overlay, plane = self.make_plane(capacity=40.0)
        ctl = Controller(plane, ControlConfig(cpu_ref=7.0))
        assert ctl.cpu_reference() == 7.0
        ctl = Controller(plane)
        assert ctl.cpu_reference() == 40.0
        _, bare = self.make_plane()
        ctl = Controller(bare, ControlConfig(shed_limit=11.0))
        assert ctl.cpu_reference() == 11.0
        ctl = Controller(bare)
        assert ctl.cpu_reference() is None
        assert ctl.calibrate_cpu() == 0  # no reference: write-back skipped

    def test_calibrate_cpu_writes_load_dimension(self):
        overlay, plane = self.make_plane(model=LoadModel(filter_cost=2.0))
        ctl = Controller(
            plane,
            ControlConfig(warmup=2, calibrate_interval=3, cpu_ref=5.0,
                          drop_threshold=None),
        )
        for _ in range(12):
            ctl.step(plane.step())
        assert ctl.cpu_calibrations > 0
        penalties = overlay.cost_space.scalar_penalties()
        # The filter host runs hot in cost units; its load coordinate
        # now reflects the measured pressure.
        assert penalties[1] > 0
        assert penalties[1] == penalties.max()

    def test_cpu_calibrate_false_keeps_load_dimension_cold(self):
        overlay, plane = self.make_plane(model=LoadModel(filter_cost=2.0))
        ctl = Controller(
            plane,
            ControlConfig(warmup=2, calibrate_interval=3, cpu_ref=5.0,
                          cpu_calibrate=False, drop_threshold=None),
        )
        for _ in range(12):
            ctl.step(plane.step())
        assert ctl.cpu_calibrations == 0
        assert overlay.cost_space.scalar_penalties().max() == 0.0

    def test_shed_policy_gates_on_cpu_cost(self):
        # 6 tuples/tick at filter cost 4 = 24 cost units: a cost shed
        # limit of 12 trips even though the tuple count stays under 12.
        overlay, plane = self.make_plane(model=LoadModel(filter_cost=4.0))
        ctl = Controller(
            plane,
            ControlConfig(warmup=3, shed_limit=12.0, drop_threshold=None,
                          calibrate_interval=1000, cpu_calibrate=False),
        )
        shed = False
        for _ in range(20):
            record = ctl.step(plane.step())
            shed = shed or bool(record.shed_nodes)
        assert shed, "cost-unit shed limit never tripped"
        assert plane.dropped_shed > 0
        assert plane.accounting()["balanced"]

    def test_calibrate_quantile_provisions_above_the_mean(self):
        # Bursty λ: the p95-calibrated rate sits above the EWMA mean.
        ov_q, plane_q = self.make_plane(seed=9)
        ov_m, plane_m = self.make_plane(seed=9)
        cfg = ControlConfig(
            warmup=4, calibrate_interval=5, min_observations=3,
            drop_threshold=None,
        )
        quantile = Controller(plane_q, cfg, calibrate_quantile=0.95)
        assert quantile.config.calibrate_quantile == 0.95
        mean = Controller(plane_m, cfg)
        for _ in range(40):
            quantile.step(plane_q.step())
            mean.step(plane_m.step())
        key = ("c0", "c0/src", "c0/f")
        rate_q = ov_q.circuits["c0"].links[0].rate
        rate_m = ov_m.circuits["c0"].links[0].rate
        assert quantile.calibrations > 0 and mean.calibrations > 0
        assert rate_q > rate_m * 1.2, (rate_q, rate_m)
        assert rate_q > quantile.link_rates.rate(key)

    def test_calibrate_quantile_validation(self):
        with pytest.raises(ValueError):
            ControlConfig(calibrate_quantile=1.5)
        with pytest.raises(ValueError):
            ControlConfig(cpu_ref=0.0)
        with pytest.raises(ValueError):
            ControlConfig(buffer_evacuate_backlog=0)
