"""Unit tests for workload generation and figure scenarios."""

import numpy as np
import pytest

from repro.workloads.queries import WorkloadParams, random_query, random_workload
from repro.workloads.scenarios import (
    figure1_scenario,
    figure2_scenario,
    figure3_scenario,
    figure4_scenario,
    planted_latency_matrix,
)


class TestRandomQuery:
    def test_nodes_distinct(self):
        query, _ = random_query(20, seed=4)
        nodes = [p.node for p in query.producers] + [query.consumer.node]
        assert len(nodes) == len(set(nodes))

    def test_rates_match_stats(self):
        query, stats = random_query(20, seed=2)
        for p in query.producers:
            assert p.rate == pytest.approx(stats.rate(p.name))

    def test_deterministic(self):
        a, sa = random_query(20, seed=9)
        b, sb = random_query(20, seed=9)
        assert [p.node for p in a.producers] == [p.node for p in b.producers]
        assert sa.rates == sb.rates

    def test_clustered_producers_nearby_indices(self):
        params = WorkloadParams(num_producers=4, clustered=True, cluster_span=10)
        query, _ = random_query(200, params, seed=0)
        nodes = [p.node for p in query.producers]
        assert max(nodes) - min(nodes) < 10

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ValueError):
            random_query(3, WorkloadParams(num_producers=4))

    def test_workload_size_and_names(self):
        workload = random_workload(30, 5, seed=1)
        assert len(workload) == 5
        names = {q.name for q, _ in workload}
        assert len(names) == 5


class TestScenarios:
    def test_figure1_geometry(self):
        sc = figure1_scenario()
        assert sc.latencies.num_nodes == len(sc.positions)
        assert sc.cost_space.num_nodes == len(sc.positions)
        # West producers far from east producers.
        assert sc.latencies.latency(0, 2) > 5 * sc.latencies.latency(0, 1)

    def test_figure1_oblivious_prefers_cross_pairs(self):
        from repro.query.generator import best_plan

        sc = figure1_scenario()
        plan = best_plan(sc.query.producer_names, sc.stats)
        pairs = {
            frozenset(n.producers)
            for n in plan.root.internal_nodes()
            if len(n.producers) == 2
        }
        # The bait worked: at least one cross-cluster pair chosen.
        assert pairs & {
            frozenset({"P1", "P3"}),
            frozenset({"P2", "P4"}),
            frozenset({"P1", "P4"}),
            frozenset({"P2", "P3"}),
        }

    def test_figure2_population(self):
        topo, lm, loads = figure2_scenario(seed=0)
        assert topo.num_nodes == 600
        assert lm.num_nodes == 600
        assert loads[0] > 0.9  # node a overloaded
        assert np.all((loads >= 0) & (loads <= 1))

    def test_figure3_star_between_endpoints(self):
        sc = figure3_scenario()
        # The star must sit strictly between the pinned endpoints.
        xs = [0.0, 80.0, 40.0]
        assert min(xs) < sc.star[0] < max(xs)

    def test_figure3_n1_closer_in_latency(self):
        sc = figure3_scenario()
        n1 = sc.cost_space.coordinate(sc.n1)
        n2 = sc.cost_space.coordinate(sc.n2)
        from repro.core.coordinates import CostCoordinate

        target = CostCoordinate(tuple(sc.star), (0.0,))
        assert target.vector_distance_to(n1) < target.vector_distance_to(n2)
        assert target.distance_to(n1) > target.distance_to(n2)

    def test_figure4_shared_producers(self):
        sc = figure4_scenario()
        c3_query, _ = sc.existing[2]
        assert c3_query.producer_names == sc.new_query.producer_names

    def test_planted_matrix_is_euclidean(self):
        lm = planted_latency_matrix([(0.0, 0.0), (3.0, 4.0)], scale=2.0)
        assert lm.latency(0, 1) == pytest.approx(10.0)
