"""Unit tests for logical plan trees."""

import pytest

from repro.query.plan import JoinNode, LeafNode, LogicalPlan
from repro.query.selectivity import Statistics


def stats3() -> Statistics:
    return Statistics.build(
        rates={"A": 10.0, "B": 5.0, "C": 2.0},
        pair_selectivities={("A", "B"): 0.1, ("B", "C"): 0.2, ("A", "C"): 0.5},
    )


def left_deep_abc() -> LogicalPlan:
    return LogicalPlan(JoinNode(JoinNode(LeafNode("A"), LeafNode("B")), LeafNode("C")))


class TestPlanNodes:
    def test_leaf_producers(self):
        assert LeafNode("A").producers == frozenset({"A"})

    def test_join_producers_union(self):
        node = JoinNode(LeafNode("A"), LeafNode("B"))
        assert node.producers == frozenset({"A", "B"})

    def test_join_rejects_overlapping_children(self):
        with pytest.raises(ValueError):
            JoinNode(LeafNode("A"), JoinNode(LeafNode("A"), LeafNode("B")))

    def test_output_rates(self):
        stats = stats3()
        ab = JoinNode(LeafNode("A"), LeafNode("B"))
        assert ab.output_rate(stats) == pytest.approx(5.0)
        abc = JoinNode(ab, LeafNode("C"))
        assert abc.output_rate(stats) == pytest.approx(1.0)

    def test_input_rate_sums_children(self):
        stats = stats3()
        ab = JoinNode(LeafNode("A"), LeafNode("B"))
        assert ab.input_rate(stats) == pytest.approx(15.0)

    def test_internal_nodes_bottom_up(self):
        plan = left_deep_abc()
        internals = plan.root.internal_nodes()
        assert len(internals) == 2
        assert internals[0].producers == frozenset({"A", "B"})
        assert internals[1].producers == frozenset({"A", "B", "C"})

    def test_leaves_in_order(self):
        plan = left_deep_abc()
        assert [l.producer for l in plan.root.leaves()] == ["A", "B", "C"]


class TestSignatures:
    def test_commutative_joins_share_signature(self):
        ab = JoinNode(LeafNode("A"), LeafNode("B"))
        ba = JoinNode(LeafNode("B"), LeafNode("A"))
        assert ab.signature() == ba.signature()

    def test_different_shapes_differ(self):
        left_deep = left_deep_abc()
        other = LogicalPlan(
            JoinNode(JoinNode(LeafNode("A"), LeafNode("C")), LeafNode("B"))
        )
        assert left_deep.signature() != other.signature()


class TestLogicalPlan:
    def test_num_services(self):
        assert left_deep_abc().num_services == 2
        assert LogicalPlan(LeafNode("A")).num_services == 0

    def test_is_left_deep(self):
        assert left_deep_abc().is_left_deep()
        bushy = LogicalPlan(
            JoinNode(
                JoinNode(LeafNode("A"), LeafNode("B")),
                JoinNode(LeafNode("C"), LeafNode("D")),
            )
        )
        assert not bushy.is_left_deep()

    def test_intermediate_rate_cost(self):
        stats = stats3()
        plan = left_deep_abc()
        # (A join B) rate 5 + (AB join C) rate 1 = 6.
        assert plan.intermediate_rate_cost(stats) == pytest.approx(6.0)

    def test_cost_depends_on_order(self):
        stats = stats3()
        good = left_deep_abc()  # AB first: 5 + 1
        bad = LogicalPlan(
            JoinNode(JoinNode(LeafNode("A"), LeafNode("C")), LeafNode("B"))
        )  # AC first: 10*2*0.5=10, + 1 -> 11
        assert good.intermediate_rate_cost(stats) < bad.intermediate_rate_cost(stats)

    def test_str_rendering(self):
        assert "⋈" in str(left_deep_abc())
