"""Unit tests for cost-space coordinates."""

import math

import numpy as np
import pytest

from repro.core.coordinates import CostCoordinate


class TestConstruction:
    def test_needs_vector_part(self):
        with pytest.raises(ValueError):
            CostCoordinate(vector=())

    def test_scalar_must_be_non_negative(self):
        with pytest.raises(ValueError):
            CostCoordinate(vector=(1.0,), scalar=(-0.5,))

    def test_from_arrays(self):
        c = CostCoordinate.from_arrays(np.array([1.0, 2.0]), np.array([3.0]))
        assert c.vector == (1.0, 2.0)
        assert c.scalar == (3.0,)

    def test_dims(self):
        c = CostCoordinate((1.0, 2.0), (3.0,))
        assert c.vector_dims == 2
        assert c.scalar_dims == 1
        assert c.dims == 3


class TestDistances:
    def test_full_distance_includes_scalars(self):
        a = CostCoordinate((0.0, 0.0), (3.0,))
        b = CostCoordinate((0.0, 4.0), (0.0,))
        assert a.distance_to(b) == pytest.approx(5.0)

    def test_vector_distance_ignores_scalars(self):
        a = CostCoordinate((0.0, 0.0), (100.0,))
        b = CostCoordinate((3.0, 4.0), (0.0,))
        assert a.vector_distance_to(b) == pytest.approx(5.0)

    def test_distance_symmetry(self):
        a = CostCoordinate((1.0, 2.0), (0.5,))
        b = CostCoordinate((4.0, 6.0), (0.1,))
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_distance_to_self_zero(self):
        a = CostCoordinate((1.0, 2.0), (0.5,))
        assert a.distance_to(a) == 0.0

    def test_incompatible_shapes_rejected(self):
        a = CostCoordinate((1.0,))
        b = CostCoordinate((1.0, 2.0))
        with pytest.raises(ValueError):
            a.distance_to(b)
        with pytest.raises(ValueError):
            a.vector_distance_to(b)

    def test_loaded_node_seems_far(self):
        # The Figure 3 effect: N1 is nearer in latency but its load
        # pushes it away in the full space.
        target = CostCoordinate((0.0, 0.0), (0.0,))
        n1 = CostCoordinate((1.0, 0.0), (10.0,))   # close, loaded
        n2 = CostCoordinate((3.0, 0.0), (0.0,))    # farther, idle
        assert target.vector_distance_to(n1) < target.vector_distance_to(n2)
        assert target.distance_to(n1) > target.distance_to(n2)


class TestHelpers:
    def test_with_ideal_scalars(self):
        c = CostCoordinate((1.0, 2.0), (5.0, 6.0))
        ideal = c.with_ideal_scalars()
        assert ideal.vector == c.vector
        assert ideal.scalar == (0.0, 0.0)

    def test_scalar_penalty(self):
        c = CostCoordinate((0.0,), (3.0, 4.0))
        assert c.scalar_penalty() == pytest.approx(5.0)
        assert CostCoordinate((0.0,)).scalar_penalty() == 0.0

    def test_full_array_concatenates(self):
        c = CostCoordinate((1.0, 2.0), (3.0,))
        assert list(c.full_array()) == [1.0, 2.0, 3.0]

    def test_str(self):
        assert "|" in str(CostCoordinate((1.0,), (2.0,)))
        assert "|" not in str(CostCoordinate((1.0,)))

    def test_immutability(self):
        c = CostCoordinate((1.0,), (2.0,))
        with pytest.raises(AttributeError):
            c.vector = (9.0,)
