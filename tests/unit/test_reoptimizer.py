"""Unit tests for local and full re-optimization."""

import numpy as np
import pytest

from repro.core.circuit import Circuit
from repro.core.optimizer import IntegratedOptimizer
from repro.core.reoptimizer import Reoptimizer
from repro.query.model import Consumer, Producer, QuerySpec
from repro.query.plan import JoinNode, LeafNode, LogicalPlan
from repro.query.selectivity import Statistics
from repro.workloads.scenarios import perfect_cost_space


def line_setup():
    """Nodes on a line at x = 0..10 (scaled by 10); 2-producer join."""
    positions = [(10.0 * x, 0.0) for x in range(11)]
    space = perfect_cost_space(positions)
    query = QuerySpec(
        name="q",
        producers=[
            Producer("A", node=0, rate=5.0),
            Producer("B", node=10, rate=5.0),
        ],
        consumer=Consumer("C", node=5),
    )
    stats = Statistics.build({"A": 5.0, "B": 5.0}, {("A", "B"): 0.2})
    plan = LogicalPlan(JoinNode(LeafNode("A"), LeafNode("B")))
    circuit = Circuit.from_plan(plan, query, stats)
    return space, query, stats, circuit


class TestLocalStep:
    def test_migrates_badly_placed_service(self):
        space, _, _, circuit = line_setup()
        circuit.assign("q/join0", 0)  # far from optimum (~x=50)
        reopt = Reoptimizer(space)
        report = reopt.local_step(circuit)
        assert report.migrated
        new_host = circuit.host_of("q/join0")
        assert 3 <= new_host <= 7
        assert report.improvement > 0

    def test_stable_placement_does_not_migrate(self):
        space, _, _, circuit = line_setup()
        circuit.assign("q/join0", 5)  # already at the optimum
        report = Reoptimizer(space).local_step(circuit)
        assert not report.migrated
        assert report.improvement == 0.0

    def test_threshold_blocks_marginal_migration(self):
        space, _, _, circuit = line_setup()
        circuit.assign("q/join0", 4)  # one hop from optimal
        strict = Reoptimizer(space, migration_threshold=0.9)
        report = strict.local_step(circuit)
        assert not report.migrated
        assert circuit.host_of("q/join0") == 4  # reverted

    def test_requires_placed_circuit(self):
        space, _, _, circuit = line_setup()
        with pytest.raises(ValueError):
            Reoptimizer(space).local_step(circuit)

    def test_run_until_stable_terminates(self):
        space, _, _, circuit = line_setup()
        circuit.assign("q/join0", 0)
        report = Reoptimizer(space).run_until_stable(circuit)
        follow_up = Reoptimizer(space).local_step(circuit)
        assert not follow_up.migrated
        assert report.cost_after.total <= report.cost_before.total

    def test_negative_threshold_rejected(self):
        space, _, _, _ = line_setup()
        with pytest.raises(ValueError):
            Reoptimizer(space, migration_threshold=-0.1)


class TestFullReoptimize:
    def test_keeps_circuit_when_still_good(self):
        space, query, stats, circuit = line_setup()
        result = IntegratedOptimizer(space).optimize(query, stats)
        reopt = Reoptimizer(space)
        report, fresh = reopt.full_reoptimize(result.circuit, query, stats)
        assert fresh is None
        assert not report.replaced_plan

    def test_replaces_circuit_after_drift(self):
        space, query, stats, circuit = line_setup()
        circuit.assign("q/join0", 0)  # a stale, bad placement
        reopt = Reoptimizer(space)
        report, fresh = reopt.full_reoptimize(circuit, query, stats)
        assert report.replaced_plan
        assert fresh is not None
        assert fresh.cost.total < report.cost_before.total

    def test_replace_threshold_validation(self):
        space, query, stats, circuit = line_setup()
        circuit.assign("q/join0", 5)
        with pytest.raises(ValueError):
            Reoptimizer(space).full_reoptimize(
                circuit, query, stats, replace_threshold=-1.0
            )


class TestEvacuate:
    def test_moves_services_off_failed_node(self):
        space, _, _, circuit = line_setup()
        circuit.assign("q/join0", 5)
        reopt = Reoptimizer(space)
        migrations = reopt.evacuate(circuit, failed_node=5)
        assert len(migrations) == 1
        assert circuit.host_of("q/join0") != 5

    def test_noop_if_nothing_hosted_there(self):
        space, _, _, circuit = line_setup()
        circuit.assign("q/join0", 5)
        migrations = Reoptimizer(space).evacuate(circuit, failed_node=2)
        assert migrations == []

    def test_preserves_preexisting_exclusions(self):
        space, _, _, circuit = line_setup()
        circuit.assign("q/join0", 5)
        reopt = Reoptimizer(space)
        reopt.mapper.exclude(9)
        reopt.evacuate(circuit, failed_node=5)
        assert 9 in reopt.mapper.excluded
        assert 5 not in reopt.mapper.excluded  # temporary exclusion undone
