"""Unit tests for the landmark (GNP-style) embedding."""

import pytest

from repro.network.landmark import LandmarkEmbedding, embed_with_landmarks
from repro.network.latency import LatencyMatrix
from repro.network.topology import grid_topology
from repro.workloads.scenarios import planted_latency_matrix


class TestLandmarkEmbedding:
    def test_planted_matrix_embeds_accurately(self):
        positions = [
            (0.0, 0.0), (10.0, 0.0), (0.0, 10.0), (10.0, 10.0),
            (5.0, 5.0), (3.0, 7.0), (8.0, 2.0), (1.0, 4.0),
        ]
        lm = planted_latency_matrix(positions)
        result = embed_with_landmarks(lm, dimensions=2, iterations=120, seed=0)
        assert result.median_relative_error < 0.15

    def test_landmark_count_validation(self):
        lm = LatencyMatrix.from_topology(grid_topology(3, 3))
        with pytest.raises(ValueError):
            LandmarkEmbedding(lm, dimensions=2, num_landmarks=2)  # < d+1
        with pytest.raises(ValueError):
            LandmarkEmbedding(lm, dimensions=2, num_landmarks=10)  # > n

    def test_default_landmark_count(self):
        lm = LatencyMatrix.from_topology(grid_topology(4, 4))
        emb = LandmarkEmbedding(lm, dimensions=2)
        assert 3 <= emb.num_landmarks <= 16

    def test_coordinates_cover_all_nodes(self):
        lm = LatencyMatrix.from_topology(grid_topology(3, 3))
        result = embed_with_landmarks(lm, dimensions=2, iterations=30, seed=1)
        assert result.coordinates.shape == (9, 2)

    def test_rejects_bad_dimensions(self):
        lm = LatencyMatrix.from_topology(grid_topology(3, 3))
        with pytest.raises(ValueError):
            LandmarkEmbedding(lm, dimensions=0)

    def test_samples_reflect_two_phase_cost(self):
        lm = LatencyMatrix.from_topology(grid_topology(3, 3))
        emb = LandmarkEmbedding(lm, dimensions=2, num_landmarks=4, seed=0)
        result = emb.embed(iterations=10)
        assert result.samples_used == 4 * 9
