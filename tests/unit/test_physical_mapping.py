"""Unit tests for physical mapping (exhaustive and catalog backends)."""

import numpy as np
import pytest

from repro.core.circuit import Circuit
from repro.core.coordinates import CostCoordinate
from repro.core.cost_space import CostSpace, CostSpaceSpec
from repro.core.physical_mapping import (
    CatalogMapper,
    ExhaustiveMapper,
    build_catalog,
    map_circuit,
)
from repro.core.virtual_placement import relaxation_placement
from repro.core.weighting import squared
from repro.query.model import Consumer, Producer, QuerySpec
from repro.query.plan import JoinNode, LeafNode, LogicalPlan
from repro.query.selectivity import Statistics


def grid_space(loads=None) -> CostSpace:
    """A 5x5 grid of nodes at integer coordinates scaled by 10."""
    points = np.array(
        [[10.0 * x, 10.0 * y] for x in range(5) for y in range(5)]
    )
    if loads is None:
        spec = CostSpaceSpec.latency_only(vector_dims=2)
        return CostSpace.from_embedding(spec, points)
    spec = CostSpaceSpec.latency_load(vector_dims=2, load_weighting=squared(100.0))
    return CostSpace.from_embedding(spec, points, {"cpu_load": np.asarray(loads)})


class TestExhaustiveMapper:
    def test_maps_to_nearest_node(self):
        space = grid_space()
        mapper = ExhaustiveMapper(space)
        node, hops = mapper.map_coordinate(CostCoordinate((11.0, 9.0)))
        assert node == 5 * 1 + 1  # grid node (1, 1)
        assert hops == 0

    def test_exclusion(self):
        space = grid_space()
        mapper = ExhaustiveMapper(space, excluded={6})
        node, _ = mapper.map_coordinate(CostCoordinate((11.0, 9.0)))
        assert node != 6

    def test_include_reverses_exclusion(self):
        space = grid_space()
        mapper = ExhaustiveMapper(space)
        mapper.exclude(6)
        mapper.include(6)
        node, _ = mapper.map_coordinate(CostCoordinate((11.0, 9.0)))
        assert node == 6

    def test_load_changes_choice(self):
        loads = [0.0] * 25
        loads[6] = 1.0  # saturate grid node (1,1)
        space = grid_space(loads)
        mapper = ExhaustiveMapper(space)
        node, _ = mapper.map_coordinate(CostCoordinate((11.0, 9.0), (0.0,)))
        assert node != 6


class TestCatalogMapper:
    def test_catalog_agrees_with_exhaustive_mostly(self):
        space = grid_space()
        catalog = build_catalog(space, bits=8, ring_size=32)
        cat_mapper = CatalogMapper(space, catalog, scan_width=12)
        ex_mapper = ExhaustiveMapper(space)
        rng = np.random.default_rng(1)
        agreements = 0
        for _ in range(20):
            target = CostCoordinate(tuple(rng.uniform(0, 40, size=2)))
            cat_node, _ = cat_mapper.map_coordinate(target)
            ex_node, _ = ex_mapper.map_coordinate(target)
            if cat_node == ex_node:
                agreements += 1
        assert agreements >= 16

    def test_alive_filter_in_build(self):
        space = grid_space()
        alive = [True] * 25
        alive[0] = False
        catalog = build_catalog(space, alive=alive)
        assert 0 not in catalog.published_nodes

    def test_mapper_exclusion(self):
        space = grid_space()
        catalog = build_catalog(space)
        mapper = CatalogMapper(space, catalog)
        mapper.exclude(6)
        node, _ = mapper.map_coordinate(CostCoordinate((11.0, 9.0)))
        assert node != 6

    def test_empty_catalog_raises(self):
        space = grid_space()
        catalog = build_catalog(space, alive=[False] * 25)
        mapper = CatalogMapper(space, catalog)
        with pytest.raises(RuntimeError):
            mapper.map_coordinate(CostCoordinate((1.0, 1.0)))

    def test_batched_matches_per_key_mapping(self):
        # map_coordinates (shared-neighborhood batch) must reproduce a
        # loop of map_coordinate exactly: same nodes, same hop counts.
        space = grid_space()
        catalog = build_catalog(space, bits=8, ring_size=32)
        mapper = CatalogMapper(space, catalog, scan_width=6, excluded={3})
        rng = np.random.default_rng(7)
        targets = rng.uniform(0, 40, size=(12, 2))
        nodes, hops = mapper.map_coordinates(targets)
        for i, row in enumerate(targets):
            node, hop = mapper.map_coordinate(CostCoordinate(tuple(row)))
            assert int(nodes[i]) == node
            assert int(hops[i]) == hop

    def test_batched_empty_catalog_raises(self):
        space = grid_space()
        catalog = build_catalog(space, alive=[False] * 25)
        mapper = CatalogMapper(space, catalog)
        with pytest.raises(RuntimeError):
            mapper.map_coordinates(np.zeros((2, 2)))

    def test_batched_validates_dimensionality(self):
        space = grid_space()
        catalog = build_catalog(space)
        mapper = CatalogMapper(space, catalog)
        with pytest.raises(ValueError):
            mapper.map_coordinates(np.zeros((2, 5)))

    def test_batched_empty_targets(self):
        space = grid_space()
        catalog = build_catalog(space)
        mapper = CatalogMapper(space, catalog)
        nodes, hops = mapper.map_coordinates(np.zeros((0, 2)))
        assert len(nodes) == 0 and len(hops) == 0


class TestMapCircuit:
    def _setup(self):
        space = grid_space()
        query = QuerySpec(
            name="q",
            producers=[
                Producer("A", node=0, rate=4.0),
                Producer("B", node=20, rate=4.0),
            ],
            consumer=Consumer("C", node=24),
        )
        stats = Statistics.build({"A": 4.0, "B": 4.0}, {("A", "B"): 0.25})
        plan = LogicalPlan(JoinNode(LeafNode("A"), LeafNode("B")))
        circuit = Circuit.from_plan(plan, query, stats)
        pinned = {
            sid: space.coordinate(circuit.services[sid].pinned_node).vector_array()
            for sid in circuit.pinned_ids()
        }
        placement = relaxation_placement(circuit, pinned)
        return space, circuit, placement

    def test_assigns_all_unpinned(self):
        space, circuit, placement = self._setup()
        result = map_circuit(circuit, placement, space, ExhaustiveMapper(space))
        assert circuit.is_fully_placed()
        assert len(result.mappings) == 1

    def test_mapping_error_is_distance_to_chosen_node(self):
        space, circuit, placement = self._setup()
        result = map_circuit(circuit, placement, space, ExhaustiveMapper(space))
        m = result.mappings[0]
        expected = m.target.distance_to(space.coordinate(m.node))
        assert m.mapping_error == pytest.approx(expected)

    def test_result_accessors(self):
        space, circuit, placement = self._setup()
        result = map_circuit(circuit, placement, space, ExhaustiveMapper(space))
        assert result.node_of("q/join0") == result.mappings[0].node
        with pytest.raises(KeyError):
            result.node_of("nope")
        assert result.max_error == result.total_error  # single service
        assert result.total_dht_hops == 0

    def test_exhaustive_error_lower_bound_for_catalog(self):
        space, circuit, placement = self._setup()
        ex_result = map_circuit(
            circuit.copy(), placement, space, ExhaustiveMapper(space)
        )
        catalog = build_catalog(space)
        cat_result = map_circuit(
            circuit.copy(), placement, space, CatalogMapper(space, catalog)
        )
        assert ex_result.total_error <= cat_result.total_error + 1e-9
