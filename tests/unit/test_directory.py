"""Unit tests for the decentralized service directory."""

import numpy as np
import pytest

from repro.core.multi_query import MultiQueryOptimizer
from repro.core.optimizer import IntegratedOptimizer
from repro.dht.directory import ServiceAdvertisement, ServiceDirectory
from repro.dht.hilbert import HilbertMapper
from repro.query.operators import ServiceKind
from repro.workloads.scenarios import figure4_scenario


def make_directory(bits=8) -> ServiceDirectory:
    mapper = HilbertMapper(lows=(0.0, 0.0), highs=(100.0, 100.0), bits=bits)
    return ServiceDirectory(mapper, ring_size=32)


def ad(name, sid, node, coord, key=("join", frozenset({"A", "B"})), rate=5.0):
    return ServiceAdvertisement(
        circuit_name=name,
        service_id=sid,
        node=node,
        reuse_key=key,
        coordinate=coord,
        output_rate=rate,
    )


class TestPublishWithdraw:
    def test_publish_search_roundtrip(self):
        directory = make_directory()
        directory.publish(ad("c1", "c1/j0", 3, (20.0, 20.0)))
        matches, examined = directory.search(
            [20.0, 20.0], ("join", frozenset({"A", "B"})), radius=10.0
        )
        assert len(matches) == 1
        assert matches[0].node == 3
        assert examined >= 1

    def test_republish_replaces(self):
        directory = make_directory()
        directory.publish(ad("c1", "c1/j0", 3, (20.0, 20.0)))
        directory.publish(ad("c1", "c1/j0", 4, (80.0, 80.0)))
        assert len(directory) == 1
        matches, _ = directory.search(
            [80.0, 80.0], ("join", frozenset({"A", "B"})), radius=5.0
        )
        assert matches[0].node == 4

    def test_withdraw_by_circuit(self):
        directory = make_directory()
        directory.publish(ad("c1", "c1/j0", 1, (10.0, 10.0)))
        directory.publish(ad("c1", "c1/j1", 2, (12.0, 12.0)))
        directory.publish(ad("c2", "c2/j0", 3, (14.0, 14.0)))
        assert directory.withdraw("c1") == 2
        assert len(directory) == 1

    def test_withdraw_specific_service(self):
        directory = make_directory()
        directory.publish(ad("c1", "c1/j0", 1, (10.0, 10.0)))
        directory.publish(ad("c1", "c1/j1", 2, (12.0, 12.0)))
        assert directory.withdraw("c1", "c1/j0") == 1
        assert len(directory) == 1


class TestSearchSemantics:
    def test_radius_filters(self):
        directory = make_directory()
        directory.publish(ad("near", "n/j0", 1, (10.0, 10.0)))
        directory.publish(ad("far", "f/j0", 2, (90.0, 90.0)))
        matches, examined = directory.search(
            [10.0, 10.0], ("join", frozenset({"A", "B"})), radius=20.0
        )
        assert [m.circuit_name for m in matches] == ["near"]

    def test_key_filters(self):
        directory = make_directory()
        directory.publish(ad("c1", "c1/j0", 1, (10.0, 10.0)))
        directory.publish(
            ad("c2", "c2/j0", 2, (11.0, 11.0), key=("join", frozenset({"X"})))
        )
        matches, examined = directory.search(
            [10.0, 10.0], ("join", frozenset({"A", "B"})), radius=50.0
        )
        assert [m.circuit_name for m in matches] == ["c1"]
        assert examined == 2  # both were in-radius and inspected

    def test_matches_sorted_by_distance(self):
        directory = make_directory()
        directory.publish(ad("b", "b/j0", 2, (15.0, 10.0)))
        directory.publish(ad("a", "a/j0", 1, (11.0, 10.0)))
        matches, _ = directory.search(
            [10.0, 10.0], ("join", frozenset({"A", "B"})), radius=50.0
        )
        assert [m.circuit_name for m in matches] == ["a", "b"]

    def test_lookup_stats_accumulate(self):
        directory = make_directory()
        directory.publish(ad("c1", "c1/j0", 1, (10.0, 10.0)))
        directory.search([10.0, 10.0], ("join", frozenset({"A", "B"})), radius=5.0)
        directory.search([20.0, 20.0], ("join", frozenset({"A", "B"})), radius=5.0)
        assert directory.lookups == 2
        assert directory.lookup_hops >= 0

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            make_directory().search([0.0, 0.0], ("join", frozenset()), radius=-1)


class TestDirectoryBackedMultiQuery:
    def test_figure4_through_the_dht(self):
        sc = figure4_scenario()
        lows, highs = sc.cost_space.bounding_box()
        directory = ServiceDirectory(HilbertMapper(lows, highs, bits=8), ring_size=32)
        mq = MultiQueryOptimizer(
            sc.cost_space, radius=sc.radius, directory=directory
        )
        integ = IntegratedOptimizer(sc.cost_space)
        for query, stats in sc.existing:
            mq.deploy(integ.optimize(query, stats))
        assert len(directory) == 3
        result = mq.optimize(sc.new_query, sc.new_stats)
        assert result.reuse_happened
        assert [d.circuit_name for d in result.reused] == ["C3"]
        assert result.savings > 0
        assert directory.lookups >= 1

    def test_undeploy_withdraws_ads(self):
        sc = figure4_scenario()
        lows, highs = sc.cost_space.bounding_box()
        directory = ServiceDirectory(HilbertMapper(lows, highs, bits=8), ring_size=32)
        mq = MultiQueryOptimizer(
            sc.cost_space, radius=sc.radius, directory=directory
        )
        integ = IntegratedOptimizer(sc.cost_space)
        for query, stats in sc.existing:
            mq.deploy(integ.optimize(query, stats))
        mq.undeploy("C3")
        assert len(directory) == 2
        result = mq.optimize(sc.new_query, sc.new_stats)
        assert not result.reuse_happened
