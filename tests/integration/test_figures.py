"""Integration tests: each paper figure's claim holds end to end."""

import numpy as np
import pytest

from repro.core.cost_space import CostSpace, CostSpaceSpec
from repro.core.costs import GroundTruthEvaluator
from repro.core.multi_query import MultiQueryOptimizer
from repro.core.optimizer import IntegratedOptimizer, TwoStepOptimizer
from repro.core.weighting import squared
from repro.network.vivaldi import embed_latency_matrix
from repro.workloads.scenarios import (
    figure1_scenario,
    figure2_scenario,
    figure3_scenario,
    figure4_scenario,
)


class TestFigure1:
    """Two-step plan choice loses to integrated optimization."""

    def test_integrated_picks_intra_cluster_pairing_and_wins(self):
        sc = figure1_scenario()
        gt = GroundTruthEvaluator(sc.latencies)
        integrated = IntegratedOptimizer(sc.cost_space).optimize(sc.query, sc.stats)
        two_step = TwoStepOptimizer(sc.cost_space).optimize(sc.query, sc.stats)

        usage_i = gt.evaluate(integrated.circuit).network_usage
        usage_t = gt.evaluate(two_step.circuit).network_usage
        assert usage_i < usage_t
        # The paper's headline: the decomposition itself differs.
        assert integrated.plan.signature() != two_step.plan.signature()

    def test_gap_is_substantial(self):
        sc = figure1_scenario()
        gt = GroundTruthEvaluator(sc.latencies)
        usage_i = gt.evaluate(
            IntegratedOptimizer(sc.cost_space).optimize(sc.query, sc.stats).circuit
        ).network_usage
        usage_t = gt.evaluate(
            TwoStepOptimizer(sc.cost_space).optimize(sc.query, sc.stats).circuit
        ).network_usage
        assert usage_t / usage_i > 1.2  # >20% worse


class TestFigure2:
    """600 nodes embed into a low-error 3-D cost space."""

    def test_cost_space_construction_at_paper_scale(self):
        topo, latencies, loads = figure2_scenario(seed=0)
        embedding = embed_latency_matrix(
            latencies, dimensions=2, rounds=30, neighbors_per_round=4, seed=0
        )
        # Transit-stub latencies embed with modest error (the paper's
        # "slight error" claim [16]).
        assert embedding.median_relative_error < 0.35

        spec = CostSpaceSpec.latency_load(vector_dims=2, load_weighting=squared(100.0))
        space = CostSpace.from_embedding(
            spec, embedding.coordinates, {"cpu_load": loads}
        )
        assert space.num_nodes == 600
        # The overloaded "node a" towers over the rest in the load dim.
        scalars = np.array([space.coordinate(i).scalar[0] for i in range(600)])
        assert scalars[0] > np.percentile(scalars, 99)


class TestFigure3:
    """Physical mapping prefers idle N2 over loaded-but-closer N1."""

    def test_mapping_picks_n2(self):
        sc = figure3_scenario()
        result = IntegratedOptimizer(sc.cost_space).optimize(sc.query, sc.stats)
        join_sid = result.circuit.unpinned_ids()[0]
        assert result.circuit.host_of(join_sid) == sc.n2

    def test_virtual_position_matches_analytic_star(self):
        sc = figure3_scenario()
        result = IntegratedOptimizer(sc.cost_space).optimize(sc.query, sc.stats)
        join_sid = result.circuit.unpinned_ids()[0]
        pos = result.virtual_placement.position_of(join_sid)
        assert np.allclose(pos, sc.star, atol=0.5)

    def test_without_load_dimension_n1_would_win(self):
        sc = figure3_scenario()
        # Rebuild the same geometry as a pure latency space.
        vectors = np.array(
            [sc.cost_space.coordinate(i).vector for i in range(sc.cost_space.num_nodes)]
        )
        latency_space = CostSpace.from_embedding(
            CostSpaceSpec.latency_only(vector_dims=2), vectors
        )
        result = IntegratedOptimizer(latency_space).optimize(sc.query, sc.stats)
        join_sid = result.circuit.unpinned_ids()[0]
        assert result.circuit.host_of(join_sid) == sc.n1


class TestFigure4:
    """Radius pruning: only nearby circuits are examined; reuse wins."""

    def test_pruned_optimizer_examines_one_of_three(self):
        sc = figure4_scenario()
        mq = MultiQueryOptimizer(sc.cost_space, radius=sc.radius)
        integ = IntegratedOptimizer(sc.cost_space)
        for query, stats in sc.existing:
            mq.deploy(integ.optimize(query, stats))
        result = mq.optimize(sc.new_query, sc.new_stats)
        assert result.total_deployed == 3
        assert result.candidates_examined == 1
        assert result.reuse_happened
        assert result.savings > 0

    def test_pruning_matches_unpruned_answer_here(self):
        # In this scenario the far circuits are useless, so pruning
        # loses nothing: pruned and unpruned reach the same cost.
        sc = figure4_scenario()

        def run(radius):
            mq = MultiQueryOptimizer(sc.cost_space, radius=radius)
            integ = IntegratedOptimizer(sc.cost_space)
            for query, stats in sc.existing:
                mq.deploy(integ.optimize(query, stats))
            return mq.optimize(sc.new_query, sc.new_stats)

        pruned = run(sc.radius)
        unpruned = run(float("inf"))
        assert pruned.cost.total == pytest.approx(unpruned.cost.total)
        assert pruned.candidates_examined < unpruned.candidates_examined
