"""Closed-loop integration for the unified load currency (PR 5).

Two acceptance demos:

* **CPU-aware placement** — in the join-heavy CPU-hotspot scenario the
  cost-gated loop (measured per-node CPU cost written into the cost
  space's load dimension) re-places joins off the CPU-hot node and
  lowers measured p95 CPU overload, while the count-gated baseline —
  blind to per-tuple cost asymmetry — never moves.
* **Buffer-pressure evacuation** — services whose reliable-transport
  retransmit backlog breaches the controller's bound are forcibly
  re-placed, so buffered tuples re-home and redeliver instead of
  waiting out a dead host (the ROADMAP open item, closed).
"""

import numpy as np
import pytest

from repro.control import ControlConfig, Controller
from repro.core.circuit import Circuit, Service
from repro.core.cost_space import CostSpace, CostSpaceSpec
from repro.network.latency import LatencyMatrix
from repro.query.operators import ServiceSpec
from repro.runtime import DataPlane, RuntimeConfig
from repro.sbon.overlay import Overlay
from repro.sbon.simulator import Simulation, SimulationConfig
from repro.workloads.scenarios import cpu_hotspot_scenario, cpu_overload_comparison

TICKS = 80
EVAL_WINDOW = 30


class TestCpuAwarePlacement:
    @pytest.fixture(scope="class")
    def overload(self):
        return cpu_overload_comparison(ticks=TICKS, eval_window=EVAL_WINDOW, seed=0)

    def test_count_gating_is_blind_to_cpu_overload(self, overload):
        """Counts look fine, yet measured CPU cost runs past the limit."""
        assert overload["count"] > 0, overload

    def test_cost_loop_lowers_p95_cpu_overload(self, overload):
        assert overload["cost"] < overload["count"], overload
        assert overload["improvement"] >= 0.5, overload

    def test_cost_mode_migrates_joins_off_the_hot_node(self):
        scenario = cpu_hotspot_scenario(mode="cost", seed=0)
        scenario.simulation.run(TICKS)
        hosts = {
            scenario.overlay.circuits[c].host_of(s) for c, s in scenario.joins
        }
        assert scenario.hot_node not in hosts
        # Herd-free escape: each join found its own ring node.
        assert hosts <= set(scenario.ring_nodes)
        assert len(hosts) == len(scenario.joins)

    def test_count_mode_never_moves(self):
        scenario = cpu_hotspot_scenario(mode="count", seed=0)
        scenario.simulation.run(TICKS)
        for circuit_name, sid in scenario.joins:
            host = scenario.overlay.circuits[circuit_name].host_of(sid)
            assert host == scenario.hot_node

    def test_identical_tuple_streams_across_modes(self):
        """The comparison is placement signal, not noise."""
        a = cpu_hotspot_scenario(mode="count", seed=1)
        b = cpu_hotspot_scenario(mode="cost", seed=1)
        emitted_a = [a.simulation.step().emitted for _ in range(20)]
        emitted_b = [b.simulation.step().emitted for _ in range(20)]
        assert emitted_a == emitted_b


def evacuation_fixture(backlog_bound=None, seed=0, n=10):
    """A chain whose middle service's host dies with no churn process.

    Without a wired churn process the simulator never auto-evacuates,
    so the reliable transport's backlog grows until (with the policy
    armed) the controller forces the re-placement.
    """
    rng = np.random.default_rng(seed)
    points = rng.uniform(0.0, 100.0, size=(n, 2))
    diff = points[:, None, :] - points[None, :, :]
    latencies = LatencyMatrix(np.sqrt((diff ** 2).sum(axis=-1)))
    spec = CostSpaceSpec.latency_load(vector_dims=2)
    space = CostSpace.from_embedding(spec, points, {"cpu_load": np.zeros(n)})
    overlay = Overlay(latencies, space)
    circuit = Circuit(name="c0")
    circuit.add_service(Service("c0/src", ServiceSpec.relay(), 0, frozenset(("P",))))
    circuit.add_service(Service("c0/f", ServiceSpec.filter(0.5), None, frozenset(("P",))))
    circuit.add_service(Service("c0/sink", ServiceSpec.relay(), 2, frozenset(("P",))))
    circuit.add_link("c0/src", "c0/f", 8.0)
    circuit.add_link("c0/f", "c0/sink", 4.0)
    circuit.assign("c0/f", 1)
    overlay.install_circuit(circuit)
    plane = DataPlane(overlay, RuntimeConfig(seed=seed + 1, reliable=True))
    controller = Controller(
        plane,
        ControlConfig(
            warmup=2, drop_threshold=None, calibrate_interval=1000,
            buffer_evacuate_backlog=backlog_bound,
        ),
    )
    simulation = Simulation(
        overlay,
        config=SimulationConfig(reopt_interval=0),
        data_plane=plane,
        control=controller,
    )
    # Node 1 (the filter's host) goes dark, and stays dark.
    mask = np.ones(n, dtype=bool)
    mask[1] = False
    overlay.apply_liveness(mask)
    return overlay, plane, controller, simulation


class TestBufferPressureEvacuation:
    def test_backlog_breach_forces_replacement_and_drains(self):
        overlay, plane, controller, sim = evacuation_fixture(backlog_bound=10)
        moved_at = None
        for tick in range(30):
            record = sim.step()
            if moved_at is None and overlay.circuits["c0"].host_of("c0/f") != 1:
                moved_at = tick
                assert record.migrations > 0
        circuit = overlay.circuits["c0"]
        assert moved_at is not None, "backlog never forced a re-placement"
        assert circuit.host_of("c0/f") != 1
        assert controller.buffer_evacuations > 0
        # The buffered tuples re-homed to the new host and redelivered.
        assert plane.redelivered > 0
        assert plane.buffered_backlog().get(("c0", "c0/f"), 0) == 0
        assert plane.accounting()["balanced"]

    def test_without_policy_the_backlog_persists(self):
        overlay, plane, controller, sim = evacuation_fixture(backlog_bound=None)
        for _ in range(30):
            sim.step()
        assert overlay.circuits["c0"].host_of("c0/f") == 1  # never moved
        assert controller.buffer_evacuations == 0
        assert plane.redelivered == 0
        assert plane.buffered_backlog().get(("c0", "c0/f"), 0) > 0
        assert plane.accounting()["balanced"]

    def test_twin_paths_agree_on_evacuation(self):
        a = evacuation_fixture(backlog_bound=10, seed=3)
        b = evacuation_fixture(backlog_bound=10, seed=3)
        for _ in range(25):
            rv = a[3].step()
            rs = b[3].step_scalar()
            assert (rv.migrations, rv.redelivered, rv.buffered) == (
                rs.migrations, rs.redelivered, rs.buffered
            )
        assert (
            a[0].circuits["c0"].host_of("c0/f")
            == b[0].circuits["c0"].host_of("c0/f")
            != 1
        )
        assert a[1].accounting() == b[1].accounting()
