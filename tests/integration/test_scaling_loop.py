"""Closed-loop integration: elastic scaling relieves what moves cannot.

The PR-9 acceptance demo: under the flash-crowd (``lambda_spike``)
variant of the CPU-hotspot scenario a single join's measured CPU cost
outgrows any one node's budget, so the move-only controller can only
shuffle the overload between hosts.  The autoscaled loop splits hot
joins into key-partitioned replicas, spreads them over the least-CPU
alive nodes, and folds them back once the crowd passes — it must
eliminate at least 50% of the move-only run's p95 measured CPU
overload.  Both runs ride identical tuple streams (the spike drifts
*realized* source λ, independent of placement and replication), so the
comparison is scaling signal, not noise.
"""

import pytest

from repro.workloads.scenarios import scaling_overload_comparison

TICKS = 80
EVAL_WINDOW = 35


class TestElasticScalingLoop:
    @pytest.fixture(scope="class")
    def comparison(self):
        return scaling_overload_comparison(
            ticks=TICKS, eval_window=EVAL_WINDOW, seed=0
        )

    def test_spike_overloads_the_move_only_loop(self, comparison):
        """The flash crowd produces real overload placement can't fix."""
        assert comparison["move_only"] > 0

    def test_autoscaler_halves_p95_overload(self, comparison):
        assert comparison["improvement"] >= 0.5, comparison

    def test_scales_up_and_back_down(self, comparison):
        """The crowd passes: the loop both splits and folds families."""
        assert comparison["scale_ups"] > 0
        assert comparison["scale_downs"] > 0
