"""Closed-loop integration: elastic scaling relieves what moves cannot.

The PR-9 acceptance demo: under the flash-crowd (``lambda_spike``)
variant of the CPU-hotspot scenario a single join's measured CPU cost
outgrows any one node's budget, so the move-only controller can only
shuffle the overload between hosts.  The autoscaled loop splits hot
joins into key-partitioned replicas, spreads them over the least-CPU
alive nodes, and folds them back once the crowd passes — it must
eliminate at least 50% of the move-only run's p95 measured CPU
overload.  Both runs ride identical tuple streams (the spike drifts
*realized* source λ, independent of placement and replication), so the
comparison is scaling signal, not noise.
"""

import numpy as np
import pytest

from repro.core.circuit import Circuit, Service
from repro.core.cost_space import CostSpace, CostSpaceSpec
from repro.core.reoptimizer import Reoptimizer
from repro.core.rewriting import replicate_operator
from repro.network.latency import LatencyMatrix
from repro.query.model import Consumer, Producer, QuerySpec
from repro.query.operators import ServiceSpec
from repro.query.plan import JoinNode, LeafNode, LogicalPlan
from repro.query.selectivity import Statistics
from repro.runtime import DataPlane, RuntimeConfig
from repro.sbon.overlay import Overlay
from repro.scaling import AutoScaler, AutoScalerConfig
from repro.workloads.scenarios import (
    cpu_hotspot_scenario,
    perfect_cost_space,
    scaling_overload_comparison,
)

TICKS = 80
EVAL_WINDOW = 35


class TestElasticScalingLoop:
    @pytest.fixture(scope="class")
    def comparison(self):
        return scaling_overload_comparison(
            ticks=TICKS, eval_window=EVAL_WINDOW, seed=0
        )

    def test_spike_overloads_the_move_only_loop(self, comparison):
        """The flash crowd produces real overload placement can't fix."""
        assert comparison["move_only"] > 0

    def test_autoscaler_halves_p95_overload(self, comparison):
        assert comparison["improvement"] >= 0.5, comparison

    def test_scales_up_and_back_down(self, comparison):
        """The crowd passes: the loop both splits and folds families."""
        assert comparison["scale_ups"] > 0
        assert comparison["scale_downs"] > 0


def _line_circuit():
    """A 2-producer join on a line of nodes, placed far off its optimum."""
    positions = [(10.0 * x, 0.0) for x in range(11)]
    space = perfect_cost_space(positions)
    query = QuerySpec(
        name="q",
        producers=[
            Producer("A", node=0, rate=5.0),
            Producer("B", node=10, rate=5.0),
        ],
        consumer=Consumer("C", node=5),
    )
    stats = Statistics.build({"A": 5.0, "B": 5.0}, {("A", "B"): 0.2})
    plan = LogicalPlan(JoinNode(LeafNode("A"), LeafNode("B")))
    circuit = Circuit.from_plan(plan, query, stats)
    circuit.assign("q/join0", 0)
    return space, circuit


def _join_overlay(n=10):
    rng = np.random.default_rng(0)
    points = rng.uniform(0.0, 100.0, size=(n, 2))
    diff = points[:, None, :] - points[None, :, :]
    latencies = LatencyMatrix(np.sqrt((diff ** 2).sum(axis=-1)))
    spec = CostSpaceSpec.latency_load(vector_dims=2)
    space = CostSpace.from_embedding(spec, points, {"cpu_load": np.zeros(n)})
    overlay = Overlay(latencies, space)
    circuit = Circuit(name="c0")
    circuit.add_service(Service("c0/pa", ServiceSpec.relay(), 0, frozenset(("A",))))
    circuit.add_service(Service("c0/pb", ServiceSpec.relay(), 1, frozenset(("B",))))
    circuit.add_service(Service("c0/j", ServiceSpec.join(), None, frozenset(("A", "B"))))
    circuit.add_service(Service("c0/sink", ServiceSpec.relay(), 3, frozenset(("ALL",))))
    circuit.add_link("c0/pa", "c0/j", 5.0)
    circuit.add_link("c0/pb", "c0/j", 5.0)
    circuit.add_link("c0/j", "c0/sink", 2.0)
    circuit.assign("c0/j", 2)
    overlay.install_circuit(circuit)
    return overlay


class TestScalerReoptHoldDown:
    """Freshly re-split families hold their homes through placement passes.

    A scale event spreads new replicas onto the least-CPU nodes; while
    the (opt-in) ``reopt_hold`` window is open, the re-optimizer must
    not herd those operators back toward the latency optimum (the two
    control loops would fight, churning state migrations every
    interval).  The hold defaults off because the CPU-aware placement
    pass is itself an overload-relief mechanism — see the
    ``AutoScalerConfig.reopt_hold`` docstring.
    """

    def test_frozen_blocks_the_accept_sweep(self):
        space, circuit = _line_circuit()
        reopt = Reoptimizer(space)
        reopt.frozen = {("q", "q/join0")}
        report = reopt.local_step(circuit)
        assert not report.migrated
        assert circuit.host_of("q/join0") == 0
        # Hold released: the same pass now migrates toward the optimum.
        reopt.frozen = set()
        assert reopt.local_step(circuit).migrated
        assert 3 <= circuit.host_of("q/join0") <= 7

    def test_frozen_blocks_the_scalar_reference_too(self):
        space, circuit = _line_circuit()
        reopt = Reoptimizer(space)
        reopt.frozen = {("q", "q/join0")}
        assert not reopt.local_step_scalar(circuit).migrated
        assert circuit.host_of("q/join0") == 0
        reopt.frozen = set()
        assert reopt.local_step_scalar(circuit).migrated

    def test_frozen_services_follows_the_hold_clock(self):
        overlay = _join_overlay()
        plane = DataPlane(overlay, RuntimeConfig(seed=1))
        scaler = AutoScaler(
            overlay, plane, AutoScalerConfig(cooldown=6, reopt_hold=6)
        )
        assert scaler.frozen_services() == set()
        result = replicate_operator(overlay.circuits["c0"], "c0/j", 2)
        assert result.applied
        overlay.replace_circuit(result.circuit)
        # As if the split above happened at tick 4 with reopt_hold 6.
        scaler.tick = 4
        scaler._reopt_hold_until[("c0", "c0/j")] = 10
        frozen = scaler.frozen_services()
        members = {
            ("c0", sid)
            for _circuit, base, _k, mem in scaler._candidates()
            if base == "c0/j"
            for sid in mem
        }
        assert frozen == members
        assert len(frozen) >= 3  # both replicas plus the merge relay
        scaler.tick = 10
        assert scaler.frozen_services() == set()
        # Default config (reopt_hold=0) never freezes, even mid-cooldown.
        plain = AutoScaler(overlay, plane, AutoScalerConfig(cooldown=6))
        plain.tick = 4
        plain._hold_until[("c0", "c0/j")] = 10
        assert plain.frozen_services() == set()

    def test_closed_loop_reopt_respects_scaler_cooldown(self):
        scenario = cpu_hotspot_scenario(
            mode="cost",
            num_chains=4,
            lambda_spike=5.0,
            autoscale=AutoScalerConfig(
                budget=200.0,
                breach_ticks=2,
                cold_ticks=4,
                cooldown=8,
                reopt_hold=8,
            ),
            seed=0,
        )
        sim = scenario.simulation
        scaler = scenario.autoscaler
        for _ in range(TICKS):
            sim.step()
            if scaler.scale_ups > 0:
                break
        assert scaler.scale_ups > 0, "spike never triggered a scale-up"
        frozen = scaler.frozen_services()
        assert frozen, "family not frozen right after its scale event"
        hosts = {
            (c, s): sim.overlay.circuits[c].host_of(s) for (c, s) in frozen
        }
        sim._reoptimize_all()
        for (c, s), node in hosts.items():
            assert sim.overlay.circuits[c].host_of(s) == node, (c, s)
