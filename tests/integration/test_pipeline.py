"""End-to-end pipeline integration tests.

Exercises the full stack: topology → latency matrix → Vivaldi embedding
→ cost space → plan generation → virtual placement → physical mapping
(both backends) → installation → simulation with dynamics →
re-optimization.
"""

import numpy as np
import pytest

from repro.core.costs import GroundTruthEvaluator
from repro.core.multi_query import MultiQueryOptimizer
from repro.network.dynamics import HotspotEvent, LoadProcess
from repro.network.topology import TransitStubParams, transit_stub_topology
from repro.sbon.overlay import Overlay
from repro.sbon.simulator import Simulation, SimulationConfig
from repro.workloads.queries import WorkloadParams, random_query, random_workload


SMALL_TS = TransitStubParams(
    num_transit_domains=2,
    transit_nodes_per_domain=3,
    stub_domains_per_transit_node=2,
    nodes_per_stub_domain=4,
)  # 6 + 6*2*4 = 54 nodes


@pytest.fixture(scope="module")
def overlay() -> Overlay:
    topo = transit_stub_topology(SMALL_TS, seed=11)
    return Overlay.build(topo, vector_dims=2, embedding_rounds=40, seed=11)


class TestOptimizeAndInstall:
    def test_integrated_beats_random_on_ground_truth(self, overlay):
        gt = GroundTruthEvaluator(overlay.latencies)
        wins = 0
        for seed in range(6):
            query, stats = random_query(overlay.num_nodes, seed=seed)
            integ = overlay.integrated_optimizer().optimize(query, stats)
            rand = overlay.random_optimizer(seed=seed).optimize(query, stats)
            if (
                gt.evaluate(integ.circuit).network_usage
                <= gt.evaluate(rand.circuit).network_usage
            ):
                wins += 1
        assert wins >= 5

    def test_catalog_mapper_end_to_end(self, overlay):
        query, stats = random_query(overlay.num_nodes, seed=42)
        mapper = overlay.catalog_mapper(bits=8, ring_size=32)
        result = overlay.integrated_optimizer(mapper=mapper).optimize(query, stats)
        assert result.circuit.is_fully_placed()
        assert result.mapping.total_dht_hops >= 0

    def test_catalog_vs_exhaustive_cost_gap_small(self, overlay):
        gt = GroundTruthEvaluator(overlay.latencies)
        gaps = []
        for seed in range(5):
            query, stats = random_query(overlay.num_nodes, seed=100 + seed)
            ex = overlay.integrated_optimizer().optimize(query, stats)
            cat = overlay.integrated_optimizer(
                mapper=overlay.catalog_mapper(bits=8, ring_size=32)
            ).optimize(query, stats)
            ex_cost = gt.evaluate(ex.circuit).network_usage
            cat_cost = gt.evaluate(cat.circuit).network_usage
            if ex_cost > 0:
                gaps.append(cat_cost / ex_cost)
        assert np.median(gaps) < 1.5


class TestMultiQueryPipeline:
    def test_shared_workload_reuse_reduces_total_usage(self, overlay):
        # Deploy one query, then a second identical-producer query from
        # a different consumer: reuse should kick in with a wide radius.
        params = WorkloadParams(num_producers=3)
        query1, stats = random_query(overlay.num_nodes, params, name="qa", seed=7)
        # Same producers, different consumer node.
        import dataclasses

        consumer2 = dataclasses.replace(
            query1.consumer, name="qb.C",
            node=(query1.consumer.node + 1) % overlay.num_nodes,
        )
        query2 = dataclasses.replace(query1, name="qb", consumer=consumer2)

        mq = overlay.multi_query_optimizer(radius=float("inf"))
        integ = overlay.integrated_optimizer()
        first = integ.optimize(query1, stats)
        mq.deploy(first)
        second = mq.optimize(query2, stats)
        assert second.reuse_happened
        assert second.savings > 0


class TestSimulationPipeline:
    def test_reoptimization_recovers_from_hotspot(self):
        topo = transit_stub_topology(SMALL_TS, seed=5)
        overlay = Overlay.build(topo, vector_dims=2, embedding_rounds=40, seed=5)
        workload = random_workload(overlay.num_nodes, 3, seed=5)
        integ = overlay.integrated_optimizer()
        for query, stats in workload:
            overlay.install(integ.optimize(query, stats))

        hosts = sorted(
            {
                c.host_of(sid)
                for c in overlay.circuits.values()
                for sid in c.unpinned_ids()
            }
        )
        load = LoadProcess(overlay.num_nodes, mean_load=0.1, sigma=0.01, seed=5)
        load.add_hotspot(
            HotspotEvent(start_tick=3, duration=10_000, nodes=tuple(hosts), extra_load=0.9)
        )
        sim = Simulation(
            overlay,
            load_process=load,
            config=SimulationConfig(reopt_interval=2, migration_threshold=0.0),
        )
        series = sim.run(20)
        assert series.total_migrations() >= 1
        # Services have left the hotspotted nodes.
        remaining = {
            c.host_of(sid)
            for c in overlay.circuits.values()
            for sid in c.unpinned_ids()
        }
        assert remaining != set(hosts)

    def test_static_system_has_flat_usage_without_dynamics(self):
        topo = transit_stub_topology(SMALL_TS, seed=9)
        overlay = Overlay.build(topo, vector_dims=2, embedding_rounds=30, seed=9)
        query, stats = random_query(overlay.num_nodes, seed=9)
        overlay.install(overlay.integrated_optimizer().optimize(query, stats))
        sim = Simulation(overlay, config=SimulationConfig(reopt_interval=0))
        series = sim.run(5)
        usages = series.usage_series()
        assert np.allclose(usages, usages[0])
