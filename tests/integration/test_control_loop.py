"""Closed-loop integration: the control plane recovers the stale gap.

The PR-4 acceptance demo: under the selectivity-drift scenario the
realized filter selectivities walk far from the estimates the optimizer
priced, so the estimate-optimal placements become measurably wrong.
``Simulation(data_plane=True, control=True)`` must recover at least 30%
of the measured-network-usage gap between the stale-estimate baseline
and an oracle given the true rates.  The three runs ride identical RNG
streams (the data plane's source draws depend on neither placement nor
mode), so the comparison is placement signal, not noise.
"""

import pytest

from repro.workloads.scenarios import closed_loop_recovery, selectivity_drift_scenario

TICKS = 90
EVAL_WINDOW = 25


class TestClosedLoopRecovery:
    @pytest.fixture(scope="class")
    def recovery(self):
        return closed_loop_recovery(ticks=TICKS, eval_window=EVAL_WINDOW, seed=0)

    def test_drift_opens_a_real_gap(self, recovery):
        """The stale-estimate baseline is measurably worse than oracle."""
        assert recovery["baseline"] > recovery["oracle"] * 1.1

    def test_controller_recovers_at_least_30_percent(self, recovery):
        assert recovery["recovery"] >= 0.3, recovery

    def test_controller_tracks_oracle_closely(self, recovery):
        """In practice the measured-rate loop closes most of the gap."""
        assert recovery["recovery"] >= 0.6, recovery


class TestClosedLoopMechanism:
    def test_baseline_never_moves_the_filters(self):
        scenario = selectivity_drift_scenario(mode="baseline", seed=0)
        start = {f: scenario.overlay.circuits[c].host_of(f) for c, f in scenario.filters}
        scenario.simulation.run(TICKS)
        for circuit, filter_id in scenario.filters:
            assert scenario.overlay.circuits[circuit].host_of(filter_id) == start[filter_id]

    def test_control_migrates_filters_on_measured_rates(self):
        scenario = selectivity_drift_scenario(mode="control", seed=0)
        start = {f: scenario.overlay.circuits[c].host_of(f) for c, f in scenario.filters}
        scenario.simulation.run(TICKS)
        moved = sum(
            scenario.overlay.circuits[c].host_of(f) != start[f]
            for c, f in scenario.filters
        )
        assert moved >= len(scenario.filters) - 1
        assert scenario.simulation.series.total_calibrated_links() > 0
        # Calibration rewrote the stale output-rate estimates upward.
        for circuit_name, _ in scenario.filters:
            links = scenario.overlay.circuits[circuit_name].links
            assert links[1].rate > 2.0  # estimated 0.8, realized 7.2

    def test_no_migrations_before_drift_begins(self):
        scenario = selectivity_drift_scenario(mode="control", seed=0)
        records = [scenario.simulation.step() for _ in range(scenario.drift[0].begin)]
        assert sum(r.migrations for r in records) == 0

    def test_conservation_holds_throughout(self):
        scenario = selectivity_drift_scenario(mode="control", seed=1)
        for _ in range(40):
            scenario.simulation.step()
            assert scenario.data_plane.accounting()["balanced"]
