"""Synthetic network topologies for SBON simulation.

The paper evaluates cost spaces on a *transit-stub* topology with 600
nodes (Figure 2).  Transit-stub topologies, introduced by the GT-ITM
topology generator, model the two-level structure of the Internet: a
small core of well-connected *transit* domains (backbone ASes) with many
*stub* domains (edge networks) hanging off transit nodes.  Link latencies
differ by class: intra-stub links are fast, stub-to-transit links are
moderate, and inter-transit links are slow (long-haul).

This module builds such topologies from scratch (no GT-ITM dependency),
plus several simpler families used in tests and ablation benchmarks.
All generators are deterministic given a seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

__all__ = [
    "Link",
    "Topology",
    "TransitStubParams",
    "transit_stub_topology",
    "random_geometric_topology",
    "grid_topology",
    "ring_topology",
    "star_topology",
    "uniform_delay_topology",
]


@dataclass(frozen=True)
class Link:
    """An undirected network link between two node indices.

    Attributes:
        u: first endpoint (node index).
        v: second endpoint (node index).
        latency_ms: one-way propagation latency of the link.
    """

    u: int
    v: int
    latency_ms: float

    def other(self, node: int) -> int:
        """Return the endpoint of this link that is not ``node``."""
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise ValueError(f"node {node} is not an endpoint of {self}")


@dataclass
class Topology:
    """An undirected weighted graph of physical network nodes.

    Node identifiers are dense integers ``0..num_nodes-1``.  Optional
    per-node 2-D positions (used by geometric generators and for
    visual-style experiments) are stored in ``positions``.  ``node_tags``
    records the role of a node in structured topologies (``"transit"`` /
    ``"stub"``).
    """

    num_nodes: int
    links: list[Link] = field(default_factory=list)
    positions: list[tuple[float, float]] | None = None
    node_tags: list[str] | None = None
    name: str = "topology"

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("topology must have at least one node")
        for link in self.links:
            self._check_link(link)

    def _check_link(self, link: Link) -> None:
        if not (0 <= link.u < self.num_nodes and 0 <= link.v < self.num_nodes):
            raise ValueError(f"link {link} references a node outside the topology")
        if link.u == link.v:
            raise ValueError(f"self-loop link {link} is not allowed")
        if link.latency_ms <= 0:
            raise ValueError(f"link {link} must have positive latency")

    def add_link(self, u: int, v: int, latency_ms: float) -> None:
        """Add an undirected link, validating endpoints and latency."""
        link = Link(u, v, latency_ms)
        self._check_link(link)
        self.links.append(link)

    def adjacency(self) -> list[list[tuple[int, float]]]:
        """Return an adjacency list of ``(neighbor, latency_ms)`` pairs."""
        adj: list[list[tuple[int, float]]] = [[] for _ in range(self.num_nodes)]
        for link in self.links:
            adj[link.u].append((link.v, link.latency_ms))
            adj[link.v].append((link.u, link.latency_ms))
        return adj

    def degree(self, node: int) -> int:
        """Return the number of links incident to ``node``."""
        return sum(1 for link in self.links if node in (link.u, link.v))

    def is_connected(self) -> bool:
        """Return True if every node is reachable from node 0."""
        if self.num_nodes == 1:
            return True
        adj = self.adjacency()
        seen = {0}
        stack = [0]
        while stack:
            current = stack.pop()
            for neighbor, _ in adj[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return len(seen) == self.num_nodes

    def nodes_tagged(self, tag: str) -> list[int]:
        """Return node indices whose tag equals ``tag``."""
        if self.node_tags is None:
            return []
        return [i for i, t in enumerate(self.node_tags) if t == tag]


@dataclass(frozen=True)
class TransitStubParams:
    """Parameters of the transit-stub generator.

    The defaults produce exactly the 600-node scale of the paper's
    Figure 2: 4 transit domains of 6 nodes each (24 transit nodes), 4
    stub domains per transit node, 6 nodes per stub domain
    (24 + 24*4*6 = 600).

    Latency classes follow the usual GT-ITM convention that long-haul
    transit links are an order of magnitude slower than edge links.
    """

    num_transit_domains: int = 4
    transit_nodes_per_domain: int = 6
    stub_domains_per_transit_node: int = 4
    nodes_per_stub_domain: int = 6
    intra_transit_latency: tuple[float, float] = (20.0, 50.0)
    inter_transit_latency: tuple[float, float] = (50.0, 120.0)
    transit_stub_latency: tuple[float, float] = (5.0, 20.0)
    intra_stub_latency: tuple[float, float] = (1.0, 5.0)
    extra_stub_edge_prob: float = 0.3

    @property
    def total_nodes(self) -> int:
        """Total node count implied by the domain structure."""
        transit = self.num_transit_domains * self.transit_nodes_per_domain
        stubs = transit * self.stub_domains_per_transit_node * self.nodes_per_stub_domain
        return transit + stubs


def _uniform(rng: random.Random, bounds: tuple[float, float]) -> float:
    low, high = bounds
    if low > high:
        raise ValueError(f"invalid latency bounds {bounds}")
    return rng.uniform(low, high)


def transit_stub_topology(
    params: TransitStubParams | None = None,
    seed: int = 0,
) -> Topology:
    """Generate a GT-ITM-style transit-stub topology.

    Construction:

    1. Each transit domain is a connected random mesh of transit nodes
       (a random spanning tree plus extra edges).
    2. Transit domains are connected pairwise through randomly chosen
       border nodes (inter-transit links), forming a connected core.
    3. Every transit node anchors several stub domains; each stub domain
       is a small connected mesh attached to its transit node.

    Args:
        params: structural and latency parameters; defaults approximate
            the paper's 600-node topology.
        seed: RNG seed for deterministic generation.

    Returns:
        A connected :class:`Topology` with ``node_tags`` distinguishing
        ``"transit"`` and ``"stub"`` nodes.
    """
    params = params or TransitStubParams()
    rng = random.Random(seed)
    topo = Topology(num_nodes=params.total_nodes, name="transit-stub")
    tags: list[str] = []

    next_node = 0
    transit_domains: list[list[int]] = []
    for _ in range(params.num_transit_domains):
        domain = list(range(next_node, next_node + params.transit_nodes_per_domain))
        next_node += params.transit_nodes_per_domain
        transit_domains.append(domain)
        tags.extend("transit" for _ in domain)
        _connect_mesh(topo, domain, rng, params.intra_transit_latency, extra_edge_prob=0.5)

    # Connect transit domains into a connected core: chain plus random
    # extra inter-domain links for redundancy.
    for i in range(1, len(transit_domains)):
        u = rng.choice(transit_domains[i - 1])
        v = rng.choice(transit_domains[i])
        topo.add_link(u, v, _uniform(rng, params.inter_transit_latency))
    for i in range(len(transit_domains)):
        for j in range(i + 2, len(transit_domains)):
            if rng.random() < 0.5:
                u = rng.choice(transit_domains[i])
                v = rng.choice(transit_domains[j])
                topo.add_link(u, v, _uniform(rng, params.inter_transit_latency))

    # Attach stub domains.
    all_transit = [n for domain in transit_domains for n in domain]
    for transit_node in all_transit:
        for _ in range(params.stub_domains_per_transit_node):
            stub = list(range(next_node, next_node + params.nodes_per_stub_domain))
            next_node += params.nodes_per_stub_domain
            tags.extend("stub" for _ in stub)
            _connect_mesh(
                topo, stub, rng, params.intra_stub_latency,
                extra_edge_prob=params.extra_stub_edge_prob,
            )
            gateway = rng.choice(stub)
            topo.add_link(
                transit_node, gateway, _uniform(rng, params.transit_stub_latency)
            )

    topo.node_tags = tags
    assert next_node == params.total_nodes
    assert topo.is_connected()
    return topo


def _connect_mesh(
    topo: Topology,
    nodes: list[int],
    rng: random.Random,
    latency_bounds: tuple[float, float],
    extra_edge_prob: float,
) -> None:
    """Connect ``nodes`` with a random spanning tree plus random extra edges."""
    if len(nodes) <= 1:
        return
    shuffled = nodes[:]
    rng.shuffle(shuffled)
    for i in range(1, len(shuffled)):
        parent = shuffled[rng.randrange(i)]
        topo.add_link(parent, shuffled[i], _uniform(rng, latency_bounds))
    for i, u in enumerate(nodes):
        for v in nodes[i + 1 :]:
            if rng.random() < extra_edge_prob:
                topo.add_link(u, v, _uniform(rng, latency_bounds))


def random_geometric_topology(
    num_nodes: int,
    radius: float = 0.18,
    world_latency_ms: float = 100.0,
    seed: int = 0,
) -> Topology:
    """Generate a random geometric graph in the unit square.

    Nodes are placed uniformly at random; nodes within ``radius`` are
    linked with latency proportional to Euclidean distance (scaled so the
    unit-square diagonal corresponds to ``world_latency_ms``).  If the
    radius graph is disconnected, each stranded component is bridged to
    its nearest neighbor so the result is always connected.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    rng = random.Random(seed)
    positions = [(rng.random(), rng.random()) for _ in range(num_nodes)]
    scale = world_latency_ms / math.sqrt(2.0)
    topo = Topology(num_nodes=num_nodes, positions=positions, name="geometric")

    def dist(i: int, j: int) -> float:
        (x1, y1), (x2, y2) = positions[i], positions[j]
        return math.hypot(x1 - x2, y1 - y2)

    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            d = dist(i, j)
            if d <= radius:
                topo.add_link(i, j, max(0.1, d * scale))

    _bridge_components(topo, dist, scale)
    return topo


def _bridge_components(topo: Topology, dist, scale: float) -> None:
    """Connect disconnected components via their closest node pairs."""
    while not topo.is_connected():
        adj = topo.adjacency()
        seen = {0}
        stack = [0]
        while stack:
            current = stack.pop()
            for neighbor, _ in adj[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        outside = [n for n in range(topo.num_nodes) if n not in seen]
        best = min(
            ((dist(u, v), u, v) for u in seen for v in outside),
            key=lambda t: t[0],
        )
        d, u, v = best
        topo.add_link(u, v, max(0.1, d * scale))


def grid_topology(rows: int, cols: int, link_latency_ms: float = 10.0) -> Topology:
    """Generate a ``rows x cols`` 2-D grid with uniform link latency."""
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    num_nodes = rows * cols
    positions = [
        (c / max(cols - 1, 1), r / max(rows - 1, 1))
        for r in range(rows)
        for c in range(cols)
    ]
    topo = Topology(num_nodes=num_nodes, positions=positions, name="grid")
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                topo.add_link(node, node + 1, link_latency_ms)
            if r + 1 < rows:
                topo.add_link(node, node + cols, link_latency_ms)
    return topo


def ring_topology(num_nodes: int, link_latency_ms: float = 10.0) -> Topology:
    """Generate a ring of ``num_nodes`` nodes with uniform link latency."""
    if num_nodes < 3:
        raise ValueError("a ring needs at least 3 nodes")
    topo = Topology(num_nodes=num_nodes, name="ring")
    for i in range(num_nodes):
        topo.add_link(i, (i + 1) % num_nodes, link_latency_ms)
    return topo


def star_topology(num_leaves: int, link_latency_ms: float = 10.0) -> Topology:
    """Generate a star: node 0 is the hub, nodes 1..n are leaves."""
    if num_leaves < 1:
        raise ValueError("a star needs at least one leaf")
    topo = Topology(num_nodes=num_leaves + 1, name="star")
    for leaf in range(1, num_leaves + 1):
        topo.add_link(0, leaf, link_latency_ms)
    return topo


def uniform_delay_topology(
    num_nodes: int,
    latency_bounds: tuple[float, float] = (5.0, 100.0),
    seed: int = 0,
) -> Topology:
    """Generate a complete graph with i.i.d. uniform link latencies.

    This is the "unstructured" worst case for coordinate embeddings: with
    no underlying geometry, latencies violate the triangle inequality
    frequently, which stresses Vivaldi (experiment E9).
    """
    if num_nodes < 2:
        raise ValueError("need at least 2 nodes")
    rng = random.Random(seed)
    topo = Topology(num_nodes=num_nodes, name="uniform")
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            topo.add_link(i, j, _uniform(rng, latency_bounds))
    return topo
