"""Network substrate: topologies, latency matrices, coordinate embeddings,
and dynamic behaviour models.

This package provides everything "below" the overlay: synthetic
Internet-like topologies (transit-stub, geometric, grid, ...), the
all-pairs latency ground truth derived from them, the decentralized
(Vivaldi) and centralized (landmark) latency embeddings that yield the
vector dimensions of a cost space, and the load/latency/churn processes
that drive re-optimization experiments.
"""

from repro.network.bandwidth import (
    BandwidthMatrix,
    assign_link_capacities,
    widest_paths,
)
from repro.network.dynamics import (
    ChurnProcess,
    HotspotEvent,
    LatencyDriftProcess,
    LoadProcess,
)
from repro.network.landmark import LandmarkEmbedding, embed_with_landmarks
from repro.network.latency import LatencyMatrix, dijkstra, shortest_path_latencies
from repro.network.topology import (
    Link,
    Topology,
    TransitStubParams,
    grid_topology,
    random_geometric_topology,
    ring_topology,
    star_topology,
    transit_stub_topology,
    uniform_delay_topology,
)
from repro.network.vivaldi import (
    EmbeddingResult,
    VivaldiConfig,
    VivaldiNode,
    VivaldiSystem,
    embed_latency_matrix,
)

__all__ = [
    "BandwidthMatrix",
    "assign_link_capacities",
    "widest_paths",
    "ChurnProcess",
    "HotspotEvent",
    "LatencyDriftProcess",
    "LoadProcess",
    "LandmarkEmbedding",
    "embed_with_landmarks",
    "LatencyMatrix",
    "dijkstra",
    "shortest_path_latencies",
    "Link",
    "Topology",
    "TransitStubParams",
    "grid_topology",
    "random_geometric_topology",
    "ring_topology",
    "star_topology",
    "transit_stub_topology",
    "uniform_delay_topology",
    "EmbeddingResult",
    "VivaldiConfig",
    "VivaldiNode",
    "VivaldiSystem",
    "embed_latency_matrix",
]
