"""Vivaldi decentralized network coordinates.

The paper's latency cost-space dimensions are produced by a network
coordinate system such as Vivaldi [Dabek et al., SIGCOMM'04]: every node
maintains a synthetic coordinate such that Euclidean distance between
coordinates predicts round-trip latency.  Coordinates are refined by a
distributed spring-relaxation process driven only by pairwise latency
samples, so the system needs no central infrastructure — the property
that makes cost spaces deployable in a wide-area SBON.

This implementation follows the adaptive-timestep Vivaldi algorithm with
confidence weights (the ``c_c``/``c_e`` constants of the paper) and
supports an optional *height* component modelling access-link delay.

Performance architecture (struct-of-arrays)
-------------------------------------------

:meth:`VivaldiSystem.run` applies a whole round of samples with array
math: per probe slot, every node draws a random neighbor from one
``np.random.Generator`` call and all n spring updates execute as a
handful of (n, d) matrix expressions against the slot-start snapshot.
Node state is gathered into contiguous arrays for the run and scattered
back to the :class:`VivaldiNode` objects afterwards, so the per-node
scalar API (``nodes[i].update``) stays available; the per-sample
sequential loop is retained as :meth:`VivaldiSystem.run_sequential` for
reference and comparison benchmarks.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

import numpy as np

from repro.network.latency import LatencyMatrix

__all__ = [
    "VivaldiConfig",
    "VivaldiNode",
    "VivaldiSystem",
    "EmbeddingResult",
    "embed_latency_matrix",
]


@dataclass(frozen=True)
class VivaldiConfig:
    """Tuning constants of the Vivaldi algorithm.

    Attributes:
        dimensions: number of Euclidean coordinate dimensions.
        cc: adaptive timestep gain (fraction of the sampled error moved).
        ce: weight of the moving-average local error update.
        use_height: include a non-Euclidean height term (access latency).
        initial_error: starting local error estimate for new nodes.
    """

    dimensions: int = 2
    cc: float = 0.25
    ce: float = 0.25
    use_height: bool = False
    initial_error: float = 1.0

    def __post_init__(self) -> None:
        if self.dimensions < 1:
            raise ValueError("dimensions must be >= 1")
        if not 0 < self.cc <= 1 or not 0 < self.ce <= 1:
            raise ValueError("cc and ce must be in (0, 1]")


class VivaldiNode:
    """A single node's Vivaldi state: coordinate, height, local error."""

    def __init__(self, config: VivaldiConfig, rng: random.Random):
        self.config = config
        # Start near the origin with a tiny random offset so that two
        # coincident nodes have a well-defined repulsion direction.
        self.position = np.array(
            [rng.uniform(-0.1, 0.1) for _ in range(config.dimensions)], dtype=float
        )
        self.height = 0.0
        self.error = config.initial_error

    def distance_to(self, other: "VivaldiNode") -> float:
        """Predicted latency to ``other`` (Euclidean + heights)."""
        euclidean = float(np.linalg.norm(self.position - other.position))
        if self.config.use_height:
            return euclidean + self.height + other.height
        return euclidean

    def update(self, other: "VivaldiNode", measured_latency: float, rng: random.Random) -> None:
        """Apply one Vivaldi sample: spring force toward/away from ``other``.

        Args:
            other: the remote node whose coordinate was piggybacked on
                the latency probe.
            measured_latency: the sampled RTT-like latency (ms).
            rng: RNG for breaking ties when nodes coincide.
        """
        if measured_latency < 0:
            raise ValueError("latency must be non-negative")
        predicted = self.distance_to(other)
        sample_error = abs(predicted - measured_latency) / max(measured_latency, 1e-9)

        # Confidence-weighted adaptive timestep.
        total_error = self.error + other.error
        weight = self.error / total_error if total_error > 0 else 0.5
        self.error = sample_error * self.config.ce * weight + self.error * (
            1 - self.config.ce * weight
        )
        delta = self.config.cc * weight

        direction = self.position - other.position
        norm = float(np.linalg.norm(direction))
        if norm < 1e-12:
            direction = np.array(
                [rng.gauss(0, 1) for _ in range(self.config.dimensions)], dtype=float
            )
            norm = float(np.linalg.norm(direction))
        unit = direction / norm

        force = measured_latency - predicted
        self.position = self.position + delta * force * unit
        if self.config.use_height:
            self.height = max(0.0, self.height + delta * force * 0.5)


@dataclass
class EmbeddingResult:
    """Outcome of embedding a latency matrix into coordinates.

    Attributes:
        coordinates: ``(n, d)`` array of node coordinates.
        median_relative_error: median of ``|pred - actual| / actual``
            over all node pairs.
        mean_relative_error: mean of the same ratio.
        samples_used: number of pairwise latency samples consumed.
    """

    coordinates: np.ndarray
    median_relative_error: float
    mean_relative_error: float
    samples_used: int

    @property
    def dimensions(self) -> int:
        return self.coordinates.shape[1]


class VivaldiSystem:
    """Simulates a population of Vivaldi nodes refining coordinates.

    Each round, every node samples a few random neighbors from the
    ground-truth latency matrix and applies the spring update, mimicking
    the gossip-style measurement exchange of a deployed system.
    """

    def __init__(
        self,
        latencies: LatencyMatrix,
        config: VivaldiConfig | None = None,
        seed: int = 0,
    ):
        self.latencies = latencies
        self.config = config or VivaldiConfig()
        self._rng = random.Random(seed)
        self._np_rng = np.random.default_rng(seed)
        self.nodes = [
            VivaldiNode(self.config, self._rng) for _ in range(latencies.num_nodes)
        ]
        self.samples_used = 0

    def run(self, rounds: int = 50, neighbors_per_round: int = 8) -> None:
        """Run ``rounds`` of gossip; each node probes random neighbors.

        The whole round is applied with array math: per probe slot,
        every node's neighbor draw, error update, and spring step
        execute as batched (n, d) expressions against the slot-start
        snapshot (a synchronous variant of the per-sample update;
        Vivaldi is robust to sample ordering by design).
        """
        if rounds < 0 or neighbors_per_round < 1:
            raise ValueError("rounds must be >= 0 and neighbors_per_round >= 1")
        n = self.latencies.num_nodes
        if n < 2:
            return
        config = self.config
        rng = self._np_rng
        positions = np.array([node.position for node in self.nodes], dtype=float)
        errors = np.array([node.error for node in self.nodes], dtype=float)
        heights = np.array([node.height for node in self.nodes], dtype=float)
        latency_matrix = self.latencies.values
        rows = np.arange(n)

        for _ in range(rounds * neighbors_per_round):
            # Each node draws one neighbor j != i.
            j = rng.integers(0, n - 1, size=n)
            j += j >= rows
            measured = latency_matrix[rows, j]

            direction = positions - positions[j]
            norm = np.sqrt(np.einsum("nd,nd->n", direction, direction))
            predicted = norm + (heights + heights[j] if config.use_height else 0.0)
            sample_error = np.abs(predicted - measured) / np.maximum(measured, 1e-9)

            # Confidence-weighted adaptive timestep.
            total_error = errors + errors[j]
            weight = np.where(total_error > 0, errors / np.where(total_error > 0, total_error, 1.0), 0.5)
            errors = sample_error * config.ce * weight + errors * (1 - config.ce * weight)
            delta = config.cc * weight

            # Coincident nodes repel in a random direction.
            degenerate = norm < 1e-12
            if np.any(degenerate):
                direction[degenerate] = rng.standard_normal(
                    (int(degenerate.sum()), config.dimensions)
                )
                norm[degenerate] = np.sqrt(
                    np.einsum("nd,nd->n", direction[degenerate], direction[degenerate])
                )
            unit = direction / norm[:, None]

            force = measured - predicted
            positions = positions + (delta * force)[:, None] * unit
            if config.use_height:
                heights = np.maximum(0.0, heights + delta * force * 0.5)
            self.samples_used += n

        for i, node in enumerate(self.nodes):
            node.position = positions[i]
            node.error = float(errors[i])
            node.height = float(heights[i])

    def run_sequential(self, rounds: int = 50, neighbors_per_round: int = 8) -> None:
        """Per-sample sequential gossip (reference implementation).

        The pre-batching update loop, retained for equivalence studies
        and before/after benchmarks; :meth:`run` is the production path.
        """
        if rounds < 0 or neighbors_per_round < 1:
            raise ValueError("rounds must be >= 0 and neighbors_per_round >= 1")
        n = self.latencies.num_nodes
        if n < 2:
            return
        population = range(n)
        for _ in range(rounds):
            for i in population:
                for _ in range(neighbors_per_round):
                    j = self._rng.randrange(n - 1)
                    if j >= i:
                        j += 1
                    self.nodes[i].update(
                        self.nodes[j], self.latencies.latency(i, j), self._rng
                    )
                    self.samples_used += 1

    def coordinates(self) -> np.ndarray:
        """Current ``(n, d)`` coordinate matrix."""
        return np.array([node.position for node in self.nodes])

    def predicted_latency(self, u: int, v: int) -> float:
        """Latency predicted by current coordinates between ``u`` and ``v``."""
        return self.nodes[u].distance_to(self.nodes[v])

    def relative_errors(self) -> np.ndarray:
        """Per-pair relative prediction errors (flattened upper triangle)."""
        n = self.latencies.num_nodes
        if n < 2:
            return np.zeros(0)
        positions = self.coordinates()
        diff = positions[:, None, :] - positions[None, :, :]
        predicted = np.sqrt(np.einsum("uvd,uvd->uv", diff, diff))
        if self.config.use_height:
            heights = np.array([node.height for node in self.nodes])
            predicted = predicted + heights[:, None] + heights[None, :]
        upper = np.triu_indices(n, k=1)
        actual = self.latencies.values[upper]
        return np.abs(predicted[upper] - actual) / np.maximum(actual, 1e-9)

    def result(self) -> EmbeddingResult:
        """Summarize the embedding as an :class:`EmbeddingResult`."""
        errors = self.relative_errors()
        return EmbeddingResult(
            coordinates=self.coordinates(),
            median_relative_error=float(np.median(errors)) if errors.size else 0.0,
            mean_relative_error=float(np.mean(errors)) if errors.size else 0.0,
            samples_used=self.samples_used,
        )


def embed_latency_matrix(
    latencies: LatencyMatrix,
    dimensions: int = 2,
    rounds: int = 50,
    neighbors_per_round: int = 8,
    seed: int = 0,
) -> EmbeddingResult:
    """Convenience wrapper: run Vivaldi to convergence-ish and summarize.

    This is the standard way the rest of the library obtains the vector
    (latency) dimensions of a cost space from a ground-truth matrix.
    """
    system = VivaldiSystem(
        latencies, VivaldiConfig(dimensions=dimensions), seed=seed
    )
    system.run(rounds=rounds, neighbors_per_round=neighbors_per_round)
    return system.result()
