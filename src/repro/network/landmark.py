"""Centralized landmark (GNP/Lighthouse-style) latency embedding.

An alternative to Vivaldi for producing the vector dimensions of a cost
space: a small set of *landmark* nodes first embeds itself by minimizing
pairwise prediction error, then every other node positions itself using
only its latencies to the landmarks.  This mirrors GNP [Ng & Zhang,
INFOCOM'02] and Lighthouses [Pias et al., IPTPS'03], both cited by the
paper as cost-space constructions.

The optimizer is a simple coordinate-descent / random-restart downhill
search implemented from scratch (no scipy dependency is required,
keeping the substrate self-contained), which is plenty for the modest
dimensionalities (2-8) the paper considers.
"""

from __future__ import annotations

import random

import numpy as np

from repro.network.latency import LatencyMatrix
from repro.network.vivaldi import EmbeddingResult

__all__ = ["LandmarkEmbedding", "embed_with_landmarks"]


def _pairwise_error(coords: np.ndarray, target: np.ndarray) -> float:
    """Sum of squared relative errors between embedded and target distances."""
    n = coords.shape[0]
    total = 0.0
    for i in range(n):
        diffs = coords[i + 1 :] - coords[i]
        predicted = np.sqrt((diffs * diffs).sum(axis=1))
        actual = target[i, i + 1 :]
        denom = np.maximum(actual, 1e-9)
        rel = (predicted - actual) / denom
        total += float((rel * rel).sum())
    return total


def _downhill_refine(
    coords: np.ndarray,
    objective,
    rng: random.Random,
    iterations: int,
    initial_step: float,
) -> np.ndarray:
    """Greedy per-point random-direction descent with shrinking step."""
    best = coords.copy()
    best_score = objective(best)
    step = initial_step
    n, d = best.shape
    for it in range(iterations):
        improved = False
        for i in range(n):
            direction = np.array([rng.gauss(0, 1) for _ in range(d)])
            norm = np.linalg.norm(direction)
            if norm < 1e-12:
                continue
            direction /= norm
            for sign in (1.0, -1.0):
                candidate = best.copy()
                candidate[i] += sign * step * direction
                score = objective(candidate)
                if score < best_score:
                    best, best_score = candidate, score
                    improved = True
                    break
        if not improved:
            step *= 0.5
            if step < 1e-3:
                break
    return best


class LandmarkEmbedding:
    """Two-phase GNP-style embedding of a latency matrix.

    Phase 1 embeds ``num_landmarks`` randomly chosen landmarks against
    each other; phase 2 independently embeds every remaining node
    against the fixed landmark coordinates.  Phase 2 is embarrassingly
    parallel in a real deployment, which is why this design scales.
    """

    def __init__(
        self,
        latencies: LatencyMatrix,
        dimensions: int = 2,
        num_landmarks: int | None = None,
        seed: int = 0,
    ):
        if dimensions < 1:
            raise ValueError("dimensions must be >= 1")
        n = latencies.num_nodes
        if num_landmarks is None:
            num_landmarks = min(max(dimensions + 1, 8), n)
        if not dimensions + 1 <= num_landmarks <= n:
            raise ValueError(
                f"need between {dimensions + 1} and {n} landmarks, got {num_landmarks}"
            )
        self.latencies = latencies
        self.dimensions = dimensions
        self.num_landmarks = num_landmarks
        self._rng = random.Random(seed)
        self.landmarks: list[int] = sorted(
            self._rng.sample(range(n), num_landmarks)
        )
        self._coords: np.ndarray | None = None

    def embed(self, iterations: int = 60) -> EmbeddingResult:
        """Run both phases and return coordinates plus error summary."""
        n = self.latencies.num_nodes
        scale = max(self.latencies.max_latency(), 1.0)

        landmark_target = self.latencies.values[np.ix_(self.landmarks, self.landmarks)]
        init = np.array(
            [
                [self._rng.uniform(-scale / 2, scale / 2) for _ in range(self.dimensions)]
                for _ in range(self.num_landmarks)
            ]
        )
        landmark_coords = _downhill_refine(
            init,
            lambda c: _pairwise_error(c, landmark_target),
            self._rng,
            iterations=iterations,
            initial_step=scale / 4,
        )

        coords = np.zeros((n, self.dimensions))
        for rank, landmark in enumerate(self.landmarks):
            coords[landmark] = landmark_coords[rank]

        landmark_set = set(self.landmarks)
        for node in range(n):
            if node in landmark_set:
                continue
            coords[node] = self._embed_single(
                node, landmark_coords, scale, iterations
            )

        self._coords = coords
        errors = self._relative_errors(coords)
        return EmbeddingResult(
            coordinates=coords,
            median_relative_error=float(np.median(errors)) if errors.size else 0.0,
            mean_relative_error=float(np.mean(errors)) if errors.size else 0.0,
            samples_used=self.num_landmarks * n,
        )

    def _embed_single(
        self,
        node: int,
        landmark_coords: np.ndarray,
        scale: float,
        iterations: int,
    ) -> np.ndarray:
        """Position one ordinary node against the fixed landmarks."""
        targets = np.array(
            [self.latencies.latency(node, lm) for lm in self.landmarks]
        )

        def objective(point: np.ndarray) -> float:
            diffs = landmark_coords - point
            predicted = np.sqrt((diffs * diffs).sum(axis=1))
            denom = np.maximum(targets, 1e-9)
            rel = (predicted - targets) / denom
            return float((rel * rel).sum())

        # Initialize at the latency-weighted centroid of the landmarks.
        weights = 1.0 / np.maximum(targets, 1e-9)
        start = (landmark_coords * weights[:, None]).sum(axis=0) / weights.sum()

        best = start
        best_score = objective(best)
        step = scale / 4
        for _ in range(iterations):
            improved = False
            direction = np.array(
                [self._rng.gauss(0, 1) for _ in range(self.dimensions)]
            )
            norm = np.linalg.norm(direction)
            if norm < 1e-12:
                continue
            direction /= norm
            for sign in (1.0, -1.0):
                candidate = best + sign * step * direction
                score = objective(candidate)
                if score < best_score:
                    best, best_score = candidate, score
                    improved = True
                    break
            if not improved:
                step *= 0.7
                if step < 1e-3:
                    break
        return best

    def _relative_errors(self, coords: np.ndarray) -> np.ndarray:
        n = self.latencies.num_nodes
        errors = []
        for i in range(n):
            for j in range(i + 1, n):
                actual = self.latencies.latency(i, j)
                predicted = float(np.linalg.norm(coords[i] - coords[j]))
                errors.append(abs(predicted - actual) / max(actual, 1e-9))
        return np.array(errors)


def embed_with_landmarks(
    latencies: LatencyMatrix,
    dimensions: int = 2,
    num_landmarks: int | None = None,
    iterations: int = 60,
    seed: int = 0,
) -> EmbeddingResult:
    """Convenience wrapper mirroring :func:`embed_latency_matrix`."""
    embedding = LandmarkEmbedding(
        latencies, dimensions=dimensions, num_landmarks=num_landmarks, seed=seed
    )
    return embedding.embed(iterations=iterations)
