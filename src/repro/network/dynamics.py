"""Dynamic node and network behaviour models.

The paper's "time challenge" (§1): SBON queries run continuously while
node load and network latency drift, so an initially optimal circuit
becomes stale.  This module provides the stochastic processes the
re-optimization experiments (E7) use to drive that drift:

* :class:`LoadProcess` — mean-reverting (Ornstein-Uhlenbeck-style) CPU
  load per node, with optional hotspot events that overload a region.
* :class:`LatencyDriftProcess` — slow multiplicative random walk on the
  pairwise latency matrix.
* :class:`ChurnProcess` — nodes fail and recover, forcing migrations.

All processes are deterministic given their seed and advance in integer
*ticks*, matching the discrete-event simulator.

Performance architecture (struct-of-arrays)
-------------------------------------------

Every process owns a single seeded ``np.random.Generator`` and steps its
whole state vector (or ``(n, n)`` matrix) with **one draw per tick**
followed by vectorized updates; hotspots are applied as masked adds.
The pre-vectorization per-node / per-pair Python loops are retained as
``step_scalar`` / ``loads_scalar`` references that consume the *same*
draw, so equivalence tests can pin the kernels element-for-element
(see ``tests/property/test_vectorized_equivalence.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.network.latency import LatencyMatrix

__all__ = ["LoadProcess", "LatencyDriftProcess", "ChurnProcess", "HotspotEvent"]


@dataclass(frozen=True)
class HotspotEvent:
    """A transient load spike applied to a set of nodes.

    Attributes:
        start_tick: first tick the hotspot is active.
        duration: number of ticks it lasts.
        nodes: affected node indices.
        extra_load: additive load applied while active, in the owning
            process's units (CPU cost units per tick when its
            ``cpu_capacity`` is set, load fraction otherwise).
    """

    start_tick: int
    duration: int
    nodes: tuple[int, ...]
    extra_load: float

    def active_at(self, tick: int) -> bool:
        return self.start_tick <= tick < self.start_tick + self.duration


@dataclass
class LoadProcess:
    """Mean-reverting per-node CPU load in ``[0, max_load]``.

    Each tick: ``load += theta * (mean - load) + sigma * noise``, clamped.
    Hotspot events add ``extra_load`` to their nodes while active, which
    the re-optimizer must route around (the "overloaded node a" of the
    paper's Figure 2).

    With ``cpu_capacity`` set, the process walks in the runtime's
    unified load currency: ``mean_load``, ``sigma``, ``max_load`` and
    hotspot ``extra_load`` are **CPU cost units per tick** (the same
    units :class:`~repro.core.load_model.LoadModel` charges at the
    operator kernels and the controller's write-back normalizes by),
    :meth:`loads_cost` exposes them raw, and :meth:`loads` divides by
    the capacity so downstream consumers keep seeing [0, 1] fractions.
    A ``max_load`` left unset defaults to ``cpu_capacity`` (a fully
    loaded node) in cost-unit mode and to 1.0 otherwise; an explicit
    value is honored in either mode.
    """

    num_nodes: int
    mean_load: float = 0.3
    theta: float = 0.1
    sigma: float = 0.05
    max_load: float | None = None
    seed: int = 0
    hotspots: list[HotspotEvent] = field(default_factory=list)
    cpu_capacity: float | None = None

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if self.cpu_capacity is not None and self.cpu_capacity <= 0:
            raise ValueError("cpu_capacity must be positive")
        if self.max_load is None:
            self.max_load = self.cpu_capacity if self.cpu_capacity is not None else 1.0
        if not 0 <= self.mean_load <= self.max_load:
            raise ValueError("mean_load must be within [0, max_load]")
        self._norm = self.cpu_capacity if self.cpu_capacity is not None else 1.0
        self._rng = np.random.default_rng(self.seed)
        self.tick = 0
        base = self._rng.normal(self.mean_load, self.sigma, size=self.num_nodes)
        self._loads = np.clip(base, 0.0, self.max_load)

    def loads_cost(self) -> np.ndarray:
        """Current effective loads in the process's native units.

        CPU cost units per tick when ``cpu_capacity`` is set, load
        fractions otherwise (the two coincide at capacity 1).
        """
        effective = self._loads.copy()
        for hotspot in self.hotspots:
            if hotspot.active_at(self.tick):
                idx = np.asarray(hotspot.nodes, dtype=int)
                effective[idx] = np.minimum(
                    self.max_load, effective[idx] + hotspot.extra_load
                )
        return effective

    def loads(self) -> np.ndarray:
        """Current effective loads as [0, 1] fractions (vectorized)."""
        return self.loads_cost() / self._norm

    def loads_scalar(self) -> np.ndarray:
        """Per-node hotspot loop (retained scalar reference)."""
        effective = self._loads.copy()
        for hotspot in self.hotspots:
            if hotspot.active_at(self.tick):
                for node in hotspot.nodes:
                    effective[node] = min(
                        self.max_load, effective[node] + hotspot.extra_load
                    )
        return effective / self._norm

    def load_of(self, node: int) -> float:
        """Current effective load of one node."""
        return float(self.loads()[node])

    def _draw(self) -> np.ndarray:
        """The one per-tick noise draw (shared by both step variants)."""
        return self._rng.normal(0.0, self.sigma, size=self.num_nodes)

    def step(self, ticks: int = 1) -> np.ndarray:
        """Advance the process and return the new effective loads."""
        if ticks < 0:
            raise ValueError("ticks must be non-negative")
        for _ in range(ticks):
            noise = self._draw()
            self._loads = self._loads + self.theta * (self.mean_load - self._loads) + noise
            self._loads = np.clip(self._loads, 0.0, self.max_load)
            self.tick += 1
        return self.loads()

    def step_scalar(self, ticks: int = 1) -> np.ndarray:
        """Per-node Python-loop step over the same draw (scalar reference)."""
        if ticks < 0:
            raise ValueError("ticks must be non-negative")
        for _ in range(ticks):
            noise = self._draw()
            loads = self._loads
            for node in range(self.num_nodes):
                value = loads[node] + self.theta * (self.mean_load - loads[node]) + noise[node]
                loads[node] = min(max(value, 0.0), self.max_load)
            self.tick += 1
        return self.loads_scalar()

    def add_hotspot(self, hotspot: HotspotEvent) -> None:
        """Schedule a hotspot event."""
        if hotspot.duration <= 0 or hotspot.extra_load < 0:
            raise ValueError("hotspot must have positive duration and load")
        self.hotspots.append(hotspot)


class LatencyDriftProcess:
    """Slow multiplicative random walk over a latency matrix.

    Each tick every pair latency is multiplied by a log-normal factor
    and pulled gently back toward its base value, so latencies wander
    but do not diverge.  Symmetry and positivity are preserved.

    One ``(n*(n-1)/2,)`` normal draw per tick covers the strict upper
    triangle; the update is applied to the full matrix with vectorized
    scatter + transpose.
    """

    def __init__(
        self,
        base: LatencyMatrix,
        drift_sigma: float = 0.02,
        reversion: float = 0.05,
        seed: int = 0,
    ):
        if drift_sigma < 0 or not 0 <= reversion <= 1:
            raise ValueError("invalid drift parameters")
        self._base = base.values.copy()
        self._current = base.values.copy()
        self._drift_sigma = drift_sigma
        self._reversion = reversion
        self._rng = np.random.default_rng(seed)
        self.tick = 0
        n = self._base.shape[0]
        self._triu = np.triu_indices(n, k=1)
        # Flat upper-triangle state plus the constant reversion pull,
        # so a step is pure elementwise math + two scatters.
        self._flat = self._current[self._triu].copy()
        self._rev_base = self._reversion * self._base[self._triu]

    def current(self) -> LatencyMatrix:
        """The latency matrix as of the current tick."""
        # The walk preserves symmetry / zero diagonal / positivity by
        # construction, so skip the O(n^2) re-validation every tick.
        return LatencyMatrix._wrap(self._current)

    def _draw(self) -> np.ndarray:
        """The one per-tick upper-triangle noise draw."""
        return self._rng.normal(0.0, self._drift_sigma, size=self._triu[0].shape[0])

    def step(self, ticks: int = 1) -> LatencyMatrix:
        """Advance the walk and return the new matrix."""
        if ticks < 0:
            raise ValueError("ticks must be non-negative")
        rows, cols = self._triu
        for _ in range(ticks):
            noise = self._draw()
            np.exp(noise, out=noise)
            np.multiply(self._flat, noise, out=noise)  # drifted
            np.multiply(noise, 1 - self._reversion, out=noise)
            np.add(noise, self._rev_base, out=noise)
            self._flat = noise
            # Rebind to a fresh matrix so previously returned snapshots
            # stay frozen (callers may record the drift trajectory).
            current = np.empty_like(self._current)
            current[rows, cols] = noise
            current[cols, rows] = noise
            np.fill_diagonal(current, 0.0)
            self._current = current
            self.tick += 1
        return self.current()

    def step_scalar(self, ticks: int = 1) -> LatencyMatrix:
        """Per-pair Python-loop step over the same draw (scalar reference)."""
        if ticks < 0:
            raise ValueError("ticks must be non-negative")
        rows, cols = self._triu
        for _ in range(ticks):
            noise = self._draw()
            current = self._current.copy()  # freeze prior snapshots
            for k in range(noise.shape[0]):
                i = rows[k]
                j = cols[k]
                drifted = current[i, j] * math.exp(noise[k])
                updated = (
                    self._reversion * self._base[i, j]
                    + (1 - self._reversion) * drifted
                )
                current[i, j] = updated
                current[j, i] = updated
            self._current = current
            self.tick += 1
        self._flat = self._current[rows, cols]  # keep the fast path in sync
        return LatencyMatrix._wrap(self._current)


class ChurnProcess:
    """Node failure and recovery as independent per-tick probabilities.

    A failed node cannot host services and must be evacuated; the
    re-optimizer treats its coordinate as unavailable.  ``protected``
    nodes (typically producers/consumers, which are pinned) never fail.

    The process owns one seeded ``np.random.Generator`` and consumes a
    single uniform draw over all nodes per tick; failures and
    recoveries are resolved with boolean masks.
    """

    def __init__(
        self,
        num_nodes: int,
        fail_prob: float = 0.002,
        recover_prob: float = 0.05,
        protected: set[int] | None = None,
        seed: int = 0,
    ):
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if not 0 <= fail_prob <= 1 or not 0 <= recover_prob <= 1:
            raise ValueError("probabilities must be in [0, 1]")
        self.num_nodes = num_nodes
        self.fail_prob = fail_prob
        self.recover_prob = recover_prob
        self.protected = protected or set()
        self._rng = np.random.default_rng(seed)
        self._alive = np.ones(num_nodes, dtype=bool)
        self._protected_mask = np.zeros(num_nodes, dtype=bool)
        if self.protected:
            self._protected_mask[np.asarray(sorted(self.protected), dtype=int)] = True
        self.tick = 0

    def alive(self) -> list[bool]:
        """Per-node liveness flags."""
        return [bool(v) for v in self._alive]

    def alive_mask(self) -> np.ndarray:
        """Per-node liveness as a boolean array (copy)."""
        return self._alive.copy()

    def alive_nodes(self) -> list[int]:
        """Indices of currently-alive nodes."""
        return [int(i) for i in np.flatnonzero(self._alive)]

    def is_alive(self, node: int) -> bool:
        return bool(self._alive[node])

    def _draw(self) -> np.ndarray:
        """The one per-tick uniform draw (shared by both step variants)."""
        return self._rng.random(self.num_nodes)

    def step(self, ticks: int = 1) -> list[int]:
        """Advance churn; return nodes that *failed* during these ticks."""
        if ticks < 0:
            raise ValueError("ticks must be non-negative")
        newly_failed: list[int] = []
        for _ in range(ticks):
            draws = self._draw()
            fails = self._alive & ~self._protected_mask & (draws < self.fail_prob)
            recovers = ~self._alive & (draws < self.recover_prob)
            self._alive[fails] = False
            self._alive[recovers] = True
            newly_failed.extend(int(i) for i in np.flatnonzero(fails))
            self.tick += 1
        return newly_failed

    def step_scalar(self, ticks: int = 1) -> list[int]:
        """Per-node Python-loop step over the same draw (scalar reference)."""
        if ticks < 0:
            raise ValueError("ticks must be non-negative")
        newly_failed: list[int] = []
        for _ in range(ticks):
            draws = self._draw()
            for node in range(self.num_nodes):
                if self._alive[node]:
                    if node in self.protected:
                        continue
                    if draws[node] < self.fail_prob:
                        self._alive[node] = False
                        newly_failed.append(node)
                else:
                    if draws[node] < self.recover_prob:
                        self._alive[node] = True
            self.tick += 1
        return newly_failed
