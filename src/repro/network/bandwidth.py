"""Bandwidth substrate: link capacities and bottleneck-bandwidth paths.

§3.1 lists *available bandwidth* among the costs a cost space can
carry.  This module provides the ground truth that bandwidth-aware
optimization needs:

* per-link capacities assigned by topology class (stub links thin,
  transit links fat — the usual Internet shape);
* the all-pairs **bottleneck bandwidth** matrix: the widest-path
  (max-min) capacity between every node pair, computed with a
  Dijkstra-style widest-path search;
The matching circuit evaluator lives in
:mod:`repro.core.bandwidth_costs` (avoiding a core<->network import
cycle): it prices a circuit like the ground-truth evaluator but adds a
congestion penalty for links whose stream rate exceeds a fraction of
the path's bottleneck capacity.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.network.topology import Topology

__all__ = [
    "assign_link_capacities",
    "widest_paths",
    "BandwidthMatrix",
]


def assign_link_capacities(
    topology: Topology,
    transit_capacity: float = 1000.0,
    stub_capacity: float = 100.0,
    edge_capacity: float = 20.0,
    seed: int = 0,
) -> dict[tuple[int, int], float]:
    """Per-link capacities keyed by sorted endpoint pair.

    Tagged topologies (transit-stub) get class-based capacities with
    ±25% jitter: transit-transit links are fat, transit-stub moderate,
    stub-stub thin.  Untagged topologies get ``edge_capacity`` with the
    same jitter on every link.
    """
    rng = np.random.default_rng(seed)
    tags = topology.node_tags
    capacities: dict[tuple[int, int], float] = {}
    for link in topology.links:
        if tags is not None:
            classes = {tags[link.u], tags[link.v]}
            if classes == {"transit"}:
                base = transit_capacity
            elif classes == {"transit", "stub"}:
                base = stub_capacity
            else:
                base = edge_capacity
        else:
            base = edge_capacity
        jitter = float(rng.uniform(0.75, 1.25))
        key = (min(link.u, link.v), max(link.u, link.v))
        # Parallel links: keep the fattest.
        capacities[key] = max(capacities.get(key, 0.0), base * jitter)
    return capacities


def widest_paths(
    topology: Topology,
    capacities: dict[tuple[int, int], float],
    source: int,
) -> list[float]:
    """Max-min (bottleneck) bandwidth from ``source`` to every node.

    Dijkstra variant: grow the node with the currently widest path;
    path width through a link is ``min(width so far, link capacity)``.
    """
    if not (0 <= source < topology.num_nodes):
        raise ValueError("source outside topology")
    width = [0.0] * topology.num_nodes
    width[source] = math.inf
    heap = [(-math.inf, source)]
    adj = topology.adjacency()
    done = [False] * topology.num_nodes
    while heap:
        neg_w, node = heapq.heappop(heap)
        if done[node]:
            continue
        done[node] = True
        for neighbor, _ in adj[node]:
            key = (min(node, neighbor), max(node, neighbor))
            candidate = min(width[node], capacities[key])
            if candidate > width[neighbor]:
                width[neighbor] = candidate
                heapq.heappush(heap, (-candidate, neighbor))
    return width


class BandwidthMatrix:
    """All-pairs bottleneck bandwidth over a capacitated topology."""

    def __init__(self, matrix: np.ndarray):
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("bandwidth matrix must be square")
        if not np.allclose(matrix, matrix.T):
            raise ValueError("bandwidth matrix must be symmetric")
        self._matrix = matrix

    @classmethod
    def from_topology(
        cls,
        topology: Topology,
        capacities: dict[tuple[int, int], float] | None = None,
        seed: int = 0,
    ) -> "BandwidthMatrix":
        if capacities is None:
            capacities = assign_link_capacities(topology, seed=seed)
        n = topology.num_nodes
        matrix = np.zeros((n, n))
        for source in range(n):
            matrix[source, :] = widest_paths(topology, capacities, source)
        np.fill_diagonal(matrix, math.inf)
        return cls(matrix)

    @property
    def num_nodes(self) -> int:
        return self._matrix.shape[0]

    def bottleneck(self, u: int, v: int) -> float:
        """Widest-path capacity between ``u`` and ``v``."""
        if u == v:
            return math.inf
        return float(self._matrix[u, v])

    def percentile(self, q: float) -> float:
        n = self.num_nodes
        off = self._matrix[~np.eye(n, dtype=bool)]
        finite = off[np.isfinite(off)]
        return float(np.percentile(finite, q)) if finite.size else 0.0
