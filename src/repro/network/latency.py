"""Latency matrices: all-pairs shortest-path delays over a topology.

The SBON treats end-to-end latency between overlay nodes as the routing
latency of the underlying network, i.e. the shortest-path delay through
the topology graph.  This module computes dense all-pairs latency
matrices with Dijkstra's algorithm and provides utilities used by the
embedding experiments: triangle-inequality-violation (TIV) statistics,
synthetic TIV injection, and matrix perturbation for churn experiments.

All-pairs construction runs through ``scipy.sparse.csgraph.dijkstra``
when scipy is available (one C-level pass over a CSR adjacency — what
makes 1000+-node topology builds instant); the per-source Python loop
is retained as :func:`shortest_path_latencies_scalar`, the equivalence
reference and the no-scipy fallback.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.network.topology import Topology

try:  # pragma: no cover - exercised via both backends in tests
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra
except ImportError:  # pragma: no cover
    _csr_matrix = None
    _csgraph_dijkstra = None

__all__ = [
    "LatencyMatrix",
    "shortest_path_latencies",
    "shortest_path_latencies_scalar",
    "dijkstra",
]


def dijkstra(topology: Topology, source: int) -> list[float]:
    """Single-source shortest path delays from ``source``.

    Returns:
        A list of length ``num_nodes`` where entry ``i`` is the minimum
        path latency from ``source`` to ``i`` (``inf`` if unreachable).
    """
    if not (0 <= source < topology.num_nodes):
        raise ValueError(f"source {source} outside topology")
    adj = topology.adjacency()
    dist = [math.inf] * topology.num_nodes
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, node = heapq.heappop(heap)
        if d > dist[node]:
            continue
        for neighbor, latency in adj[node]:
            candidate = d + latency
            if candidate < dist[neighbor]:
                dist[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))
    return dist


def shortest_path_latencies_scalar(topology: Topology) -> np.ndarray:
    """All-pairs latencies via the per-source Python Dijkstra loop.

    Retained as the scalar reference for the scipy backend (and the
    fallback when scipy is absent).
    """
    n = topology.num_nodes
    matrix = np.zeros((n, n), dtype=float)
    for source in range(n):
        matrix[source, :] = dijkstra(topology, source)
    if not np.all(np.isfinite(matrix)):
        raise ValueError("topology is disconnected; latency matrix undefined")
    return matrix


def _scipy_all_pairs(topology: Topology) -> np.ndarray:
    """All-pairs latencies via one ``scipy.sparse.csgraph`` pass.

    Parallel links between the same pair are min-reduced before the CSR
    build (``csr_matrix`` *sums* duplicate entries, which would be
    wrong), matching the relaxation the scalar loop performs.
    """
    n = topology.num_nodes
    if not topology.links:
        if n > 1:
            raise ValueError("topology is disconnected; latency matrix undefined")
        return np.zeros((n, n), dtype=float)
    u = np.fromiter((l.u for l in topology.links), dtype=np.int64)
    v = np.fromiter((l.v for l in topology.links), dtype=np.int64)
    w = np.fromiter((l.latency_ms for l in topology.links), dtype=np.float64)
    rows = np.concatenate([u, v])
    cols = np.concatenate([v, u])
    wts = np.concatenate([w, w])
    flat = rows * n + cols
    order = np.argsort(flat, kind="stable")
    flat, wts = flat[order], wts[order]
    uniq, starts = np.unique(flat, return_index=True)
    min_w = np.minimum.reduceat(wts, starts)
    graph = _csr_matrix((min_w, (uniq // n, uniq % n)), shape=(n, n))
    matrix = _csgraph_dijkstra(graph, directed=False)
    if not np.all(np.isfinite(matrix)):
        raise ValueError("topology is disconnected; latency matrix undefined")
    return matrix


def shortest_path_latencies(topology: Topology, method: str = "auto") -> np.ndarray:
    """All-pairs shortest-path latency matrix of a connected topology.

    Args:
        topology: the physical network.
        method: ``"scipy"`` forces the ``scipy.sparse.csgraph`` backend,
            ``"python"`` forces the per-source loop, ``"auto"`` (the
            default) uses scipy when available.
    """
    if method not in ("auto", "scipy", "python"):
        raise ValueError(f"unknown method {method!r}")
    if method == "scipy" and _csgraph_dijkstra is None:
        raise RuntimeError("scipy is not available")
    if method != "python" and _csgraph_dijkstra is not None:
        return _scipy_all_pairs(topology)
    return shortest_path_latencies_scalar(topology)


class LatencyMatrix:
    """A symmetric all-pairs latency matrix with analysis helpers.

    The matrix is the ground truth that network-coordinate embeddings
    approximate, and the oracle that placement-quality benchmarks
    measure against.
    """

    def __init__(self, matrix: np.ndarray):
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("latency matrix must be square")
        if not np.allclose(matrix, matrix.T, rtol=1e-9, atol=1e-9):
            raise ValueError("latency matrix must be symmetric")
        if np.any(np.diag(matrix) != 0):
            raise ValueError("latency matrix diagonal must be zero")
        if np.any(matrix < 0):
            raise ValueError("latencies must be non-negative")
        self._matrix = matrix

    @classmethod
    def from_topology(cls, topology: Topology) -> "LatencyMatrix":
        """Build the matrix from shortest paths over a topology."""
        return cls(shortest_path_latencies(topology))

    @classmethod
    def _wrap(cls, matrix: np.ndarray) -> "LatencyMatrix":
        """Internal: wrap a matrix already known to satisfy the invariants.

        Skips the O(n^2) validation pass; callers (e.g. the latency
        drift process) must preserve symmetry, zero diagonal, and
        non-negativity by construction.
        """
        wrapped = cls.__new__(cls)
        wrapped._matrix = matrix
        return wrapped

    @property
    def num_nodes(self) -> int:
        return self._matrix.shape[0]

    @property
    def values(self) -> np.ndarray:
        """The underlying (num_nodes x num_nodes) array (do not mutate)."""
        return self._matrix

    def latency(self, u: int, v: int) -> float:
        """Latency between nodes ``u`` and ``v`` in milliseconds."""
        return float(self._matrix[u, v])

    def mean_latency(self) -> float:
        """Mean off-diagonal latency."""
        n = self.num_nodes
        if n < 2:
            return 0.0
        total = float(self._matrix.sum())
        return total / (n * (n - 1))

    def max_latency(self) -> float:
        """Maximum pairwise latency (network diameter in delay terms)."""
        return float(self._matrix.max())

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of off-diagonal latencies."""
        n = self.num_nodes
        off_diag = self._matrix[~np.eye(n, dtype=bool)]
        return float(np.percentile(off_diag, q))

    def triangle_violation_fraction(self, sample_size: int = 20000, seed: int = 0) -> float:
        """Fraction of sampled node triples violating the triangle inequality.

        Internet latencies are known to violate the triangle inequality
        [Ng & Zhang]; shortest-path matrices never do, so this is only
        nonzero after :meth:`with_triangle_violations` perturbation.
        """
        n = self.num_nodes
        if n < 3:
            return 0.0
        rng = np.random.default_rng(seed)
        a = rng.integers(0, n, size=sample_size)
        b = rng.integers(0, n, size=sample_size)
        c = rng.integers(0, n, size=sample_size)
        distinct = (a != b) & (b != c) & (a != c)
        if not np.any(distinct):
            return 0.0
        a, b, c = a[distinct], b[distinct], c[distinct]
        violations = (
            self._matrix[a, c] > self._matrix[a, b] + self._matrix[b, c] + 1e-9
        )
        return float(violations.mean())

    def with_triangle_violations(
        self, fraction: float = 0.05, inflation: float = 2.0, seed: int = 0
    ) -> "LatencyMatrix":
        """Return a copy where a random fraction of pairs is inflated.

        Inflating direct pair latencies past their shortest-path value
        creates triangle-inequality violations, modelling real Internet
        routing inefficiency.  Used by embedding benchmarks (E9).
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if inflation < 1.0:
            raise ValueError("inflation must be >= 1")
        rng = np.random.default_rng(seed)
        matrix = self._matrix.copy()
        n = self.num_nodes
        rows, cols = np.triu_indices(n, k=1)
        inflate = rng.random(rows.shape[0]) < fraction
        matrix[rows[inflate], cols[inflate]] *= inflation
        matrix[cols[inflate], rows[inflate]] = matrix[rows[inflate], cols[inflate]]
        return LatencyMatrix(matrix)

    def perturbed(self, relative_sigma: float = 0.1, seed: int = 0) -> "LatencyMatrix":
        """Return a copy with multiplicative log-normal noise on each pair.

        Models slow latency drift for the re-optimization experiments
        (E7).  Noise is symmetric and keeps latencies positive.
        """
        if relative_sigma < 0:
            raise ValueError("relative_sigma must be non-negative")
        rng = np.random.default_rng(seed)
        n = self.num_nodes
        noise = rng.lognormal(mean=0.0, sigma=relative_sigma, size=(n, n))
        noise = np.triu(noise, k=1)
        noise = noise + noise.T + np.eye(n)
        return LatencyMatrix(self._matrix * noise)

    def submatrix(self, nodes: list[int]) -> "LatencyMatrix":
        """Restrict the matrix to a subset of nodes (reindexed densely)."""
        idx = np.asarray(nodes, dtype=int)
        return LatencyMatrix(self._matrix[np.ix_(idx, idx)])
