"""Data-plane runtime: execute installed circuits on the live overlay.

The optimizer and simulator price circuits from *estimated* link rates;
this package moves actual tuple batches through every installed circuit
inside the simulation tick loop, so heavy-traffic experiments measure
what the network really carries under churn, hotspots, and migration.

* :mod:`repro.runtime.transport` — in-flight tuple storage: a
  struct-of-arrays pool delivered by one vectorized arrival-tick
  comparison, plus the per-tuple heapq reference twin.
* :mod:`repro.runtime.dataplane` — the :class:`DataPlane` coordinator:
  compiles installed circuits into flat CSR kernels, steps sources and
  operators in batch per tick, applies per-node capacity backpressure
  with explicit drop accounting, and re-homes in-flight tuples when the
  re-optimizer migrates a service.
"""

from repro.runtime.dataplane import DataPlane, RuntimeConfig, TrafficRecord
from repro.runtime.transport import ArrayTransport, HeapTransport

__all__ = [
    "DataPlane",
    "RuntimeConfig",
    "TrafficRecord",
    "ArrayTransport",
    "HeapTransport",
]
