"""Data-plane runtime: execute installed circuits on the live overlay.

The optimizer and simulator price circuits from *estimated* link rates;
this package moves actual tuple batches through every installed circuit
inside the simulation tick loop, so heavy-traffic experiments measure
what the network really carries under churn, hotspots, and migration.

* :mod:`repro.runtime.transport` — in-flight tuple storage: a
  struct-of-arrays pool delivered by one vectorized arrival-tick
  comparison, plus the per-tuple heapq reference twin.  The reliable
  variants add a bounded retransmit buffer for tuples bound to failed
  nodes, extending conservation to
  ``sent == delivered + in_flight + buffered``.
* :mod:`repro.runtime.dataplane` — the :class:`DataPlane` coordinator:
  compiles *all* installed circuits into one global CSR arena (flat op
  and link arrays with per-circuit segments), steps sources and
  operators in batch per tick, applies per-node capacity backpressure
  (and controller shed limits) with explicit drop accounting, re-homes
  in-flight tuples when the re-optimizer migrates a service, exports
  per-tick measured link/node statistics for the control plane, and
  can drift the realized operator parameters away from the compiled
  estimates (:class:`ParameterDrift`).
* :mod:`repro.runtime.arena` — the arena building blocks:
  :class:`CircuitArena` segment bookkeeping (append on install,
  tombstone on uninstall, compact past a dead-row threshold — tenant
  churn never forces a full recompile) and :class:`ScratchArena`
  reusable per-tick scratch buffers (preallocated, grown
  geometrically; never hold a view across ticks).
"""

from repro.core.load_model import LoadModel
from repro.runtime.arena import ArenaSegment, CircuitArena, ScratchArena
from repro.runtime.dataplane import (
    DataPlane,
    ParameterDrift,
    RuntimeConfig,
    TrafficRecord,
)
from repro.runtime.transport import (
    ArrayTransport,
    HeapTransport,
    ReliableHeapTransport,
    ReliableTransport,
)

__all__ = [
    "LoadModel",
    "ArenaSegment",
    "CircuitArena",
    "ScratchArena",
    "DataPlane",
    "ParameterDrift",
    "RuntimeConfig",
    "TrafficRecord",
    "ArrayTransport",
    "HeapTransport",
    "ReliableHeapTransport",
    "ReliableTransport",
]
