"""Global circuit arena: shared segment bookkeeping + reusable scratch.

Two small, dependency-free building blocks behind the arena runtime
path (PR 7):

:class:`ScratchArena`
    A pool of named, geometrically grown numpy buffers reused across
    ticks.  Hot per-tick kernels (transport batch extraction, per-op
    cost accumulators, admission bookkeeping) ask for a view of the
    size they need this tick instead of allocating fresh arrays.

    **Buffer-reuse contract**: a view handed out by :meth:`array` /
    :meth:`zeros` is valid only until the *next* request for the same
    name — in practice, within the current tick.  Never hold a view
    into a scratch buffer across ticks; copy if a value must survive.

:class:`CircuitArena`
    Segment bookkeeping for the one global CSR op/link table the data
    plane compiles every installed circuit into.  Each circuit owns a
    contiguous *segment* of op rows and link rows; installs append a
    new segment at the end, uninstalls *tombstone* the segment (rows
    stay allocated, marked dead), and once the dead fraction crosses
    ``compact_threshold`` the owner gathers the live rows (order
    preserved) using the mapping this class computes.

    Segment-boundary invariant: live segments appear in arrays in
    circuit-install order, each occupying contiguous ``[op_base,
    op_base + num_ops)`` / ``[link_base, link_base + num_links)`` row
    ranges; link rows are grouped by source op in op-row order.
    Compaction preserves this invariant (it only removes dead holes).

The actual column arrays (operator kinds/parameters, CSR link table,
join state) live with their owner — :class:`~repro.runtime.dataplane.
DataPlane` — which consults this bookkeeping for append offsets,
liveness masks, and compaction gathers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ScratchArena", "ArenaSegment", "CircuitArena"]


class ScratchArena:
    """Named reusable scratch buffers with geometric growth.

    Example::

        scratch = ScratchArena()
        buf = scratch.zeros("op_cost", num_ops)   # zeroed view, len num_ops
        idx = scratch.array("due_idx", m, np.int64)  # uninitialized view

    Views are only valid until the same name is requested again (never
    hold one across ticks).  Buffers never shrink; growth doubles, so
    total allocation work is O(max size ever requested).
    """

    def __init__(self) -> None:
        self._pool: dict[str, np.ndarray] = {}

    def array(self, name: str, size: int, dtype=np.float64) -> np.ndarray:
        """An *uninitialized* length-``size`` view of the named buffer."""
        buf = self._pool.get(name)
        if buf is None or buf.size < size or buf.dtype != np.dtype(dtype):
            cap = max(16, int(size))
            if buf is not None and buf.dtype == np.dtype(dtype):
                cap = max(cap, 2 * buf.size)
            buf = np.empty(cap, dtype=dtype)
            self._pool[name] = buf
        return buf[:size]

    def zeros(self, name: str, size: int, dtype=np.float64) -> np.ndarray:
        """A zero-filled length-``size`` view of the named buffer."""
        out = self.array(name, size, dtype)
        out.fill(0)
        return out

    @property
    def allocated_bytes(self) -> int:
        """Total bytes currently held by the pool (observability)."""
        return sum(buf.nbytes for buf in self._pool.values())


@dataclass
class ArenaSegment:
    """One circuit's contiguous row ranges in the global arena.

    Attributes:
        name: circuit name owning the segment.
        op_base: first op row of the segment.
        num_ops: op-row count.
        link_base: first link row of the segment.
        num_links: link-row count.
        host_version: the circuit ``_placement_version`` the cached
            host column was last refreshed at (-1 = never).
    """

    name: str
    op_base: int
    num_ops: int
    link_base: int
    num_links: int
    host_version: int = -1


class CircuitArena:
    """Segment bookkeeping of the global circuit arena (see module doc)."""

    def __init__(self, compact_threshold: float = 0.25) -> None:
        if not 0.0 < compact_threshold <= 1.0:
            raise ValueError("compact_threshold must be in (0, 1]")
        self.compact_threshold = compact_threshold
        self.segments: dict[str, ArenaSegment] = {}
        self.num_ops = 0  # total op rows, live + tombstoned
        self.num_links = 0
        self.dead_ops = 0
        self.dead_links = 0
        self.op_alive = np.zeros(0, dtype=bool)
        self.link_alive = np.zeros(0, dtype=bool)

    # -- structural changes -------------------------------------------------

    def reset(self, segments: list[tuple[str, int, int]]) -> None:
        """Rebuild bookkeeping from scratch (after a full recompile).

        ``segments`` is ``[(name, num_ops, num_links), ...]`` in
        install order; every row is live.
        """
        self.segments = {}
        op_base = link_base = 0
        for name, n_ops, n_links in segments:
            self.segments[name] = ArenaSegment(
                name, op_base, n_ops, link_base, n_links
            )
            op_base += n_ops
            link_base += n_links
        self.num_ops = op_base
        self.num_links = link_base
        self.dead_ops = self.dead_links = 0
        self.op_alive = np.ones(op_base, dtype=bool)
        self.link_alive = np.ones(link_base, dtype=bool)

    def append(self, name: str, n_ops: int, n_links: int) -> ArenaSegment:
        """Claim a new segment at the end of the arena; returns it."""
        if name in self.segments:
            raise ValueError(f"circuit {name!r} already has a segment")
        seg = ArenaSegment(name, self.num_ops, n_ops, self.num_links, n_links)
        self.segments[name] = seg
        self.num_ops += n_ops
        self.num_links += n_links
        self.op_alive = np.concatenate(
            (self.op_alive, np.ones(n_ops, dtype=bool))
        )
        self.link_alive = np.concatenate(
            (self.link_alive, np.ones(n_links, dtype=bool))
        )
        return seg

    def tombstone(self, name: str) -> ArenaSegment:
        """Mark a segment's rows dead; returns the (removed) segment."""
        seg = self.segments.pop(name)
        self.op_alive[seg.op_base : seg.op_base + seg.num_ops] = False
        self.link_alive[seg.link_base : seg.link_base + seg.num_links] = False
        self.dead_ops += seg.num_ops
        self.dead_links += seg.num_links
        return seg

    # -- queries ------------------------------------------------------------

    @property
    def tombstone_fraction(self) -> float:
        """Dead-row fraction (ops + links pooled)."""
        total = self.num_ops + self.num_links
        return (self.dead_ops + self.dead_links) / total if total else 0.0

    @property
    def needs_compaction(self) -> bool:
        return self.tombstone_fraction > self.compact_threshold

    def live_op_rows(self) -> np.ndarray:
        """Live op-row indices, ascending (== install order)."""
        return np.flatnonzero(self.op_alive)

    def live_link_rows(self) -> np.ndarray:
        """Live link-row indices, ascending (grouped by live op)."""
        return np.flatnonzero(self.link_alive)

    def op_mapping(self) -> np.ndarray:
        """Identity-except-dead op mapping (dead rows -> -1).

        The shape the transport/state remap helpers expect: in-flight
        tuples of live ops keep their row, dead ops' tuples drop.
        """
        mapping = np.full(max(self.num_ops, 1), -1, dtype=np.int64)
        live = self.live_op_rows()
        mapping[live] = live
        return mapping

    # -- compaction ---------------------------------------------------------

    def compaction(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Compute the live-row gather and old->new mappings.

        Returns ``(op_gather, link_gather, op_map, link_map)`` where
        the gathers are ascending live-row indices and the maps send
        old rows to new compact rows (-1 for dead).  The caller gathers
        every column with these, then calls :meth:`apply_compaction`.
        """
        op_gather = self.live_op_rows()
        link_gather = self.live_link_rows()
        op_map = np.full(max(self.num_ops, 1), -1, dtype=np.int64)
        op_map[op_gather] = np.arange(op_gather.size)
        link_map = np.full(max(self.num_links, 1), -1, dtype=np.int64)
        link_map[link_gather] = np.arange(link_gather.size)
        return op_gather, link_gather, op_map, link_map

    def apply_compaction(self) -> None:
        """Rewrite segment bases assuming live rows were gathered."""
        op_base = link_base = 0
        # Dict order is install order, which equals row order.
        for seg in self.segments.values():
            seg.op_base = op_base
            seg.link_base = link_base
            op_base += seg.num_ops
            link_base += seg.num_links
        self.num_ops = op_base
        self.num_links = link_base
        self.dead_ops = self.dead_links = 0
        self.op_alive = np.ones(op_base, dtype=bool)
        self.link_alive = np.ones(link_base, dtype=bool)
