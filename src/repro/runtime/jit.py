"""Optional numba tier for the data plane's three irreducible kernels.

Profiling the batched tick leaves three hot spots that no amount of
NumPy batching removes — each is a single pass whose per-element work
is trivial but whose NumPy expression pays several intermediate
allocations:

* the composite-key ``searchsorted`` join probe (two binary-search
  sweeps per probe batch),
* the segment-cumsum admission gate (first-come-first-served per-node
  capacity in canonical order), and
* the transport arrival-compaction pass (partition the in-flight pool
  into due rows and survivors).

This module puts all three behind a tier switch
(:attr:`~repro.runtime.dataplane.RuntimeConfig.jit`):

* ``"numpy"`` — the reference implementations below, always available.
* ``"numba"`` — ``@njit`` loop kernels, compiled lazily on first use;
  raises :class:`RuntimeError` when numba is not importable.
* ``"auto"`` — numba when importable, silently NumPy otherwise.

The contract is strict: **NumPy is always the reference and numba may
never change results.**  Every kernel's numba variant computes the
same function bit-for-bit (binary search replicates ``searchsorted``
side semantics; the admission loop admits the identical canonical-
order prefix per node; the partition returns the identical stable
index split), which the property suite pins by running twin data
planes through both tiers.  Nothing here draws randomness or reads
global state, so the tier choice is invisible to every
:class:`~repro.runtime.dataplane.TrafficRecord`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Kernels", "numba_available", "resolve", "resolve_tier"]


# -- numpy reference implementations ------------------------------------


def probe_ranges_numpy(
    sorted_comp: np.ndarray, queries: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """(lo, hi) slice bounds of every query key in a sorted array."""
    lo = np.searchsorted(sorted_comp, queries, side="left")
    hi = np.searchsorted(sorted_comp, queries, side="right")
    return lo, hi


def capacity_gate_numpy(
    nodes: np.ndarray,
    node_used: np.ndarray,
    cap: np.ndarray,
    costs: np.ndarray,
) -> np.ndarray:
    """First-come-first-served per-node admission in canonical order.

    A tuple is admitted while its node's admitted *cost* so far this
    tick is below the cap, so the admitted set per node is a prefix in
    canonical order (costs are positive, the running total only
    grows).  With unit costs the condition degenerates to the
    historical count rule ``rank + used < cap``.  Mutates
    ``node_used`` with the admitted costs; returns the keep mask.
    """
    order = np.argsort(nodes, kind="stable")
    sn = nodes[order]
    sc = costs[order]
    _, starts, cnts = np.unique(sn, return_index=True, return_counts=True)
    cum = np.cumsum(sc)
    group_base = np.repeat(cum[starts] - sc[starts], cnts)
    # Group-local running cost before self; once it crosses the cap
    # every later tuple's total is larger too, so the admitted set is
    # a prefix and "before" equals the admitted cost within it.
    before = cum - group_base - sc
    keep_sorted = before + node_used[sn] < cap[sn]
    keep = np.empty(nodes.size, dtype=bool)
    keep[order] = keep_sorted
    np.add.at(node_used, nodes[keep], costs[keep])
    return keep


def due_partition_numpy(
    arrival: np.ndarray, now: int
) -> tuple[np.ndarray, np.ndarray]:
    """Stable (due indices, survivor indices) split of the pool."""
    mask = arrival <= now
    return np.flatnonzero(mask), np.flatnonzero(~mask)


# -- optional numba tier ------------------------------------------------

_NUMBA_KERNELS: dict | None = None
_NUMBA_FAILED = False


def numba_available() -> bool:
    """True when the numba tier can be built in this environment."""
    return _build_numba() is not None


def _build_numba() -> dict | None:
    """Compile (once) and return the numba kernel trio, or None."""
    global _NUMBA_KERNELS, _NUMBA_FAILED
    if _NUMBA_KERNELS is not None:
        return _NUMBA_KERNELS
    if _NUMBA_FAILED:
        return None
    try:
        from numba import njit
    except Exception:  # pragma: no cover - exercised only without numba
        _NUMBA_FAILED = True
        return None

    @njit(nogil=True)
    def _probe_ranges(sorted_comp, queries):  # pragma: no cover - needs numba
        n = sorted_comp.size
        m = queries.size
        lo = np.empty(m, dtype=np.int64)
        hi = np.empty(m, dtype=np.int64)
        for i in range(m):
            target = queries[i]
            a, b = 0, n
            while a < b:  # side="left"
                mid = (a + b) >> 1
                if sorted_comp[mid] < target:
                    a = mid + 1
                else:
                    b = mid
            lo[i] = a
            b = n
            while a < b:  # side="right", resuming from lo
                mid = (a + b) >> 1
                if sorted_comp[mid] <= target:
                    a = mid + 1
                else:
                    b = mid
            hi[i] = a
        return lo, hi

    @njit(nogil=True)
    def _capacity_gate(nodes, node_used, cap, costs):  # pragma: no cover
        # Sequential accumulation admits exactly the canonical-order
        # prefix per node that the vectorized reference admits: a
        # rejected tuple adds nothing, so once the running total
        # crosses the cap it stays crossed.
        m = nodes.size
        keep = np.empty(m, dtype=np.bool_)
        for i in range(m):
            node = nodes[i]
            if node_used[node] < cap[node]:
                keep[i] = True
                node_used[node] += costs[i]
            else:
                keep[i] = False
        return keep

    @njit(nogil=True)
    def _due_partition(arrival, now):  # pragma: no cover - needs numba
        c = arrival.size
        hits = 0
        for i in range(c):
            if arrival[i] <= now:
                hits += 1
        due = np.empty(hits, dtype=np.int64)
        keep = np.empty(c - hits, dtype=np.int64)
        a = 0
        b = 0
        for i in range(c):
            if arrival[i] <= now:
                due[a] = i
                a += 1
            else:
                keep[b] = i
                b += 1
        return due, keep

    _NUMBA_KERNELS = {
        "probe_ranges": _probe_ranges,
        "capacity_gate": _capacity_gate,
        "due_partition": _due_partition,
    }
    return _NUMBA_KERNELS


class Kernels:
    """The resolved kernel trio of one data plane / transport.

    Attributes:
        tier: ``"numpy"`` or ``"numba"`` — the tier actually bound.
        probe_ranges / capacity_gate / due_partition: the kernels.
    """

    __slots__ = ("tier", "probe_ranges", "capacity_gate", "due_partition")

    def __init__(self, tier: str) -> None:
        self.tier = tier
        if tier == "numba":
            kernels = _build_numba()
            assert kernels is not None
            self.probe_ranges = kernels["probe_ranges"]
            self.capacity_gate = kernels["capacity_gate"]
            self.due_partition = kernels["due_partition"]
        else:
            self.probe_ranges = probe_ranges_numpy
            self.capacity_gate = capacity_gate_numpy
            self.due_partition = due_partition_numpy


def resolve_tier(mode: str) -> str:
    """Map a ``jit`` config value onto the tier that will run.

    ``"numba"`` demands the numba tier and raises when it cannot be
    built; ``"auto"`` degrades to NumPy silently (the container may
    simply not ship numba); ``"numpy"`` always means the reference.
    """
    if mode == "numpy":
        return "numpy"
    if mode == "numba":
        if not numba_available():
            raise RuntimeError(
                "RuntimeConfig.jit='numba' but numba is not importable; "
                "use jit='auto' for silent NumPy fallback"
            )
        return "numba"
    if mode == "auto":
        return "numba" if numba_available() else "numpy"
    raise ValueError(f"unknown jit mode {mode!r}")


def resolve(mode: str) -> Kernels:
    """Build the kernel trio for a ``jit`` config value."""
    return Kernels(resolve_tier(mode))
