"""SplitMix64 hashing shared by the data plane and the transports.

All non-source randomness in the runtime is a deterministic hash of
tuple content (the randomness discipline: the only RNG draws are the
per-tick source draws).  The primitives live here so the data plane's
operator kernels and the transports' scale-event re-routing consume the
*same* finalizer — in particular the key-partition routing rule::

    bucket(key, g) = SplitMix64(key * M1) mod g

is defined once (:func:`route_bucket` / :func:`route_bucket_int`) and
used identically by the vectorized fan-out, the per-tuple scalar
reference, and the in-flight/state re-routing on scale events, so a
tuple's home replica is a pure function of its key and the family size.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "MASK64",
    "M1",
    "M2",
    "M3",
    "U64",
    "mix64",
    "mix64_int",
    "route_bucket",
    "route_bucket_int",
]

MASK64 = (1 << 64) - 1
M1 = 0x9E3779B97F4A7C15
M2 = 0xBF58476D1CE4E5B9
M3 = 0x94D049BB133111EB
U64 = np.uint64


def mix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer over a uint64 array (wrapping arithmetic)."""
    x = x ^ (x >> U64(30))
    x = x * U64(M2)
    x = x ^ (x >> U64(27))
    x = x * U64(M3)
    return x ^ (x >> U64(31))


def mix64_int(x: int) -> int:
    """SplitMix64 finalizer for one Python int (must match :func:`mix64`)."""
    x &= MASK64
    x ^= x >> 30
    x = (x * M2) & MASK64
    x ^= x >> 27
    x = (x * M3) & MASK64
    return x ^ (x >> 31)


def route_bucket(key: np.ndarray, group: np.ndarray | int) -> np.ndarray:
    """Key-partition bucket of each key within a replica group of
    ``group`` members — the deterministic routing rule (zero RNG)."""
    h = mix64(key.astype(U64) * U64(M1))
    return (h % np.asarray(group, dtype=U64)).astype(np.int64)


def route_bucket_int(key: int, group: int) -> int:
    """Scalar twin of :func:`route_bucket` (must agree bit-for-bit)."""
    return mix64_int((key * M1) & MASK64) % group
