"""In-flight tuple storage for the data-plane runtime.

Two interchangeable transports move tuples between circuit services:

* :class:`ArrayTransport` — the production path.  In-flight tuples live
  in one struct-of-arrays pool (one contiguous column per attribute);
  delivery extracts every due entry with a single vectorized
  arrival-tick comparison and compacts the survivors in place.
* :class:`HeapTransport` — the retained per-tuple reference.  Tuples
  are individual heap entries popped one at a time, exactly the
  pre-vectorization shape (`CircuitExecutor`-style heapq), and the
  "before" side of the E18 benchmark.

Both transports implement identical delivery semantics — the data plane
steps one through batched kernels and the other through per-tuple
loops, and the equivalence properties pin them to each other tick for
tick.  Delivery is grouped into *rounds*: round 1 of a tick delivers
everything in flight that is due, and each later round delivers the
zero-delay outputs of the previous round (colocated services cascade
within a tick, like the executor's drain loop).  Conservation holds at
all times::

    sent == delivered + in_flight

and is exposed by :meth:`in_flight` / the counters so the data plane
can prove that no tuple is ever silently lost.
"""

from __future__ import annotations

import heapq

import numpy as np

__all__ = ["ArrayTransport", "HeapTransport"]


class ArrayTransport:
    """Struct-of-arrays in-flight pool with vectorized delivery.

    Columns (``arrival``, ``op``, ``port``, ``key``, ``ts``, ``size``,
    ``seq``) are preallocated contiguous arrays, grown by doubling; the
    live region is ``[0, count)``.  :meth:`due` masks
    ``arrival <= now`` in one comparison, returns the extracted columns,
    and compacts the remainder — no per-tuple work anywhere.
    """

    _INITIAL = 1024

    def __init__(self) -> None:
        self._cap = self._INITIAL
        self._arrival = np.empty(self._cap, dtype=np.int64)
        self._op = np.empty(self._cap, dtype=np.int64)
        self._port = np.empty(self._cap, dtype=np.int64)
        self._key = np.empty(self._cap, dtype=np.int64)
        self._ts = np.empty(self._cap, dtype=np.int64)
        self._size = np.empty(self._cap, dtype=np.float64)
        self._seq = np.empty(self._cap, dtype=np.int64)
        self._count = 0
        self.sent = 0
        self.delivered = 0
        self.dropped = 0

    @property
    def in_flight(self) -> int:
        return self._count

    def _grow(self, needed: int) -> None:
        cap = self._cap
        while cap < needed:
            cap *= 2
        for name in ("_arrival", "_op", "_port", "_key", "_ts", "_size", "_seq"):
            old = getattr(self, name)
            fresh = np.empty(cap, dtype=old.dtype)
            fresh[: self._count] = old[: self._count]
            setattr(self, name, fresh)
        self._cap = cap

    def send(
        self,
        arrival: np.ndarray,
        op: np.ndarray,
        port: np.ndarray,
        key: np.ndarray,
        ts: np.ndarray,
        size: np.ndarray,
        seq: np.ndarray,
    ) -> None:
        """Append a batch of in-flight tuples (one array per column)."""
        n = arrival.shape[0]
        if n == 0:
            return
        if self._count + n > self._cap:
            self._grow(self._count + n)
        lo, hi = self._count, self._count + n
        self._arrival[lo:hi] = arrival
        self._op[lo:hi] = op
        self._port[lo:hi] = port
        self._key[lo:hi] = key
        self._ts[lo:hi] = ts
        self._size[lo:hi] = size
        self._seq[lo:hi] = seq
        self._count = hi
        self.sent += n

    def due(self, now: int) -> dict[str, np.ndarray] | None:
        """Extract every tuple with ``arrival <= now`` (one comparison).

        Returns the extracted columns (unordered — callers sort
        canonically), or None when nothing is due.  Survivors are
        compacted to the front of the pool.
        """
        c = self._count
        if c == 0:
            return None
        mask = self._arrival[:c] <= now
        hits = int(mask.sum())
        if hits == 0:
            return None
        batch = {
            "op": self._op[:c][mask].copy(),
            "port": self._port[:c][mask].copy(),
            "key": self._key[:c][mask].copy(),
            "ts": self._ts[:c][mask].copy(),
            "size": self._size[:c][mask].copy(),
            "seq": self._seq[:c][mask].copy(),
        }
        keep = ~mask
        survivors = int(keep.sum())
        for name in ("_arrival", "_op", "_port", "_key", "_ts", "_size", "_seq"):
            col = getattr(self, name)
            col[:survivors] = col[:c][keep]
        self._count = survivors
        self.delivered += hits
        return batch

    def remap_ops(self, mapping: np.ndarray) -> int:
        """Re-address in-flight tuples after a recompile.

        ``mapping[old_op]`` is the new operator index, or -1 when the
        operator's circuit was uninstalled.  Tuples bound for removed
        operators are dropped *with accounting* (they count as both
        delivered-out-of-the-pool and dropped); everything else is
        re-homed in place.  Returns the number dropped.
        """
        c = self._count
        if c == 0:
            return 0
        new_op = mapping[self._op[:c]]
        keep = new_op >= 0
        dropped = int(c - keep.sum())
        if dropped:
            survivors = int(keep.sum())
            for name in ("_arrival", "_op", "_port", "_key", "_ts", "_size", "_seq"):
                col = getattr(self, name)
                col[:survivors] = col[:c][keep]
            self._op[:survivors] = new_op[keep]
            self._count = survivors
            self.delivered += dropped
            self.dropped += dropped
        else:
            self._op[:c] = new_op
        return dropped


class HeapTransport:
    """Per-tuple heapq transport (the retained scalar reference).

    Entries are ``(arrival, round, seq, op, port, key, ts, size)``
    tuples; the heap order ``(arrival, round, seq)`` reproduces exactly
    the delivery grouping of :class:`ArrayTransport` — all in-flight
    due tuples form round 1 of a tick, zero-delay cascade outputs of
    round *r* form round *r + 1*.
    """

    def __init__(self) -> None:
        self._heap: list[tuple] = []
        self.sent = 0
        self.delivered = 0
        self.dropped = 0

    @property
    def in_flight(self) -> int:
        return len(self._heap)

    def send_one(
        self,
        arrival: int,
        round_: int,
        seq: int,
        op: int,
        port: int,
        key: int,
        ts: int,
        size: float,
    ) -> None:
        heapq.heappush(self._heap, (arrival, round_, seq, op, port, key, ts, size))
        self.sent += 1

    def due(self, now: int, round_: int) -> list[tuple]:
        """Pop every tuple due at ``now`` for this delivery round."""
        out = []
        heap = self._heap
        while heap and heap[0][0] <= now and heap[0][1] <= round_:
            out.append(heapq.heappop(heap))
        self.delivered += len(out)
        return out

    def remap_ops(self, mapping: np.ndarray) -> int:
        """Re-address in-flight tuples after a recompile (see twin)."""
        kept = []
        dropped = 0
        for arrival, round_, seq, op, port, key, ts, size in self._heap:
            new = int(mapping[op])
            if new < 0:
                dropped += 1
                continue
            kept.append((arrival, round_, seq, new, port, key, ts, size))
        if dropped:
            heapq.heapify(kept)
            self._heap = kept
            self.delivered += dropped
            self.dropped += dropped
        elif kept != self._heap:
            heapq.heapify(kept)
            self._heap = kept
        return dropped
