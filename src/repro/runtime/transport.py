"""In-flight tuple storage for the data-plane runtime.

Two interchangeable transports move tuples between circuit services:

* :class:`ArrayTransport` — the production path.  In-flight tuples live
  in one struct-of-arrays pool (one contiguous column per attribute);
  delivery extracts every due entry with a single vectorized
  arrival-tick comparison and compacts the survivors in place.
* :class:`HeapTransport` — the retained per-tuple reference.  Tuples
  are individual heap entries popped one at a time, exactly the
  pre-vectorization shape (`CircuitExecutor`-style heapq), and the
  "before" side of the E18 benchmark.

Both transports implement identical delivery semantics — the data plane
steps one through batched kernels and the other through per-tuple
loops, and the equivalence properties pin them to each other tick for
tick.  Delivery is grouped into *rounds*: round 1 of a tick delivers
everything in flight that is due, and each later round delivers the
zero-delay outputs of the previous round (colocated services cascade
within a tick, like the executor's drain loop).  Conservation holds at
all times::

    sent == delivered + in_flight + buffered

(``buffered`` is zero for the base transports) and is exposed by
:meth:`in_flight` / the counters so the data plane can prove that no
tuple is ever silently lost.

Reliable delivery
-----------------

:class:`ReliableTransport` / :class:`ReliableHeapTransport` extend the
pair with a *bounded retransmit buffer*: a tuple delivered to a failed
node is handed back via :meth:`buffer` instead of being dropped, parked
until its target service's host is alive again, and then re-injected
into the in-flight pool by a single vectorized :meth:`redeliver` pass
at the start of a tick (the heap twin loops per tuple over the same
buffer order).  The buffer is bounded by ``max_buffer``; overflow is
*rejected* deterministically (first-come-first-buffered in canonical
delivery order) so the data plane can drop the excess with explicit
accounting.  A buffered tuple is subtracted from ``delivered`` — it is
back inside the transport — which is what extends the conservation
balance to ``sent == delivered + in_flight + buffered``.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.runtime import jit as jit_kernels
from repro.runtime.arena import ScratchArena
from repro.runtime.hashing import route_bucket, route_bucket_int

__all__ = [
    "ArrayTransport",
    "HeapTransport",
    "ReliableTransport",
    "ReliableHeapTransport",
]


class ArrayTransport:
    """Struct-of-arrays in-flight pool with vectorized delivery.

    Columns (``arrival``, ``op``, ``port``, ``key``, ``ts``, ``size``,
    ``seq``) are preallocated contiguous arrays, grown by doubling; the
    live region is ``[0, count)``.  :meth:`due` masks
    ``arrival <= now`` in one comparison, returns the extracted columns,
    and compacts the remainder — no per-tuple work anywhere.

    Extraction writes into reusable :class:`~repro.runtime.arena.
    ScratchArena` buffers (shared with the owning data plane when one
    is passed) instead of allocating six fresh arrays per delivery
    round.  Buffer-reuse contract: the batch returned by :meth:`due` is
    only valid until the next :meth:`due` call — consume (or copy) it
    within the round, never hold it across ticks.
    """

    _INITIAL = 1024

    def __init__(
        self,
        scratch: ScratchArena | None = None,
        kernels: jit_kernels.Kernels | None = None,
    ) -> None:
        self._scratch = scratch or ScratchArena()
        # Arrival-compaction kernel tier (see repro.runtime.jit); the
        # owning data plane passes its resolved trio, standalone use
        # defaults to the NumPy reference.
        self._jit = kernels or jit_kernels.Kernels("numpy")
        self._cap = self._INITIAL
        self._arrival = np.empty(self._cap, dtype=np.int64)
        self._op = np.empty(self._cap, dtype=np.int64)
        self._port = np.empty(self._cap, dtype=np.int64)
        self._key = np.empty(self._cap, dtype=np.int64)
        self._ts = np.empty(self._cap, dtype=np.int64)
        self._size = np.empty(self._cap, dtype=np.float64)
        self._seq = np.empty(self._cap, dtype=np.int64)
        self._count = 0
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        # Duck-typed tracer handle (see repro.obs.trace); None means no
        # tracing and every hook is a single attribute check.
        self.trace = None

    @property
    def in_flight(self) -> int:
        return self._count

    @property
    def buffered(self) -> int:
        """Tuples parked in the retransmit buffer (0 without one)."""
        return 0

    def buffered_by_op(self, num_ops: int) -> np.ndarray:
        """Retransmit-buffer backlog per target op (all zero here)."""
        return np.zeros(num_ops, dtype=np.int64)

    def inflight_seqs(self) -> np.ndarray:
        """Sequence numbers currently in the in-flight pool (copy)."""
        return self._seq[: self._count].copy()

    def buffered_seqs(self) -> np.ndarray:
        """Sequence numbers parked in the retransmit buffer (none here)."""
        return np.empty(0, dtype=np.int64)

    def _grow(self, needed: int) -> None:
        cap = self._cap
        while cap < needed:
            cap *= 2
        for name in ("_arrival", "_op", "_port", "_key", "_ts", "_size", "_seq"):
            old = getattr(self, name)
            fresh = np.empty(cap, dtype=old.dtype)
            fresh[: self._count] = old[: self._count]
            setattr(self, name, fresh)
        self._cap = cap

    def _append(
        self,
        arrival: np.ndarray,
        op: np.ndarray,
        port: np.ndarray,
        key: np.ndarray,
        ts: np.ndarray,
        size: np.ndarray,
        seq: np.ndarray,
    ) -> int:
        """Append columns to the in-flight pool; returns the batch size."""
        n = arrival.shape[0]
        if n == 0:
            return 0
        if self._count + n > self._cap:
            self._grow(self._count + n)
        lo, hi = self._count, self._count + n
        self._arrival[lo:hi] = arrival
        self._op[lo:hi] = op
        self._port[lo:hi] = port
        self._key[lo:hi] = key
        self._ts[lo:hi] = ts
        self._size[lo:hi] = size
        self._seq[lo:hi] = seq
        self._count = hi
        return n

    def send(
        self,
        arrival: np.ndarray,
        op: np.ndarray,
        port: np.ndarray,
        key: np.ndarray,
        ts: np.ndarray,
        size: np.ndarray,
        seq: np.ndarray,
    ) -> None:
        """Append a batch of in-flight tuples (one array per column)."""
        self.sent += self._append(arrival, op, port, key, ts, size, seq)

    def due(self, now: int) -> dict[str, np.ndarray] | None:
        """Extract every tuple with ``arrival <= now`` (one comparison).

        Returns the extracted columns (unordered — callers sort
        canonically), or None when nothing is due.  Survivors are
        compacted to the front of the pool.
        """
        c = self._count
        if c == 0:
            return None
        # One partition pass over the arrival column (the configured
        # kernel tier; the NumPy reference is a mask + two flatnonzero
        # sweeps) yields the stable due / survivor index split.
        idx, keep = self._jit.due_partition(self._arrival[:c], now)
        hits = idx.size
        if hits == 0:
            return None
        # Extract the due rows into reusable scratch views (valid until
        # the next due() call) — one gather per column, no allocation
        # on the steady-state path.
        scratch = self._scratch
        batch = {}
        for name in ("op", "port", "key", "ts", "size", "seq"):
            col = getattr(self, "_" + name)
            out = scratch.array("due_" + name, hits, col.dtype)
            np.take(col[:c], idx, out=out)
            batch[name] = out
        survivors = keep.size
        for name in ("_arrival", "_op", "_port", "_key", "_ts", "_size", "_seq"):
            col = getattr(self, name)
            col[:survivors] = col[:c][keep]
        self._count = survivors
        self.delivered += hits
        return batch

    def remap_ops(self, mapping: np.ndarray, key_split: dict | None = None) -> int:
        """Re-address in-flight tuples after a recompile.

        ``mapping[old_op]`` is the new operator index, or -1 when the
        operator's circuit was uninstalled.  Tuples bound for removed
        operators are dropped *with accounting* (they count as both
        delivered-out-of-the-pool and dropped); everything else is
        re-homed in place.  Returns the number dropped.

        ``key_split`` handles scale events: ``key_split[old_op] =
        (targets, port)`` re-routes that op's tuples by key bucket to
        ``targets[bucket(key, len(targets))]`` (overriding ``mapping``),
        overwriting the port when one is given — the same rule the
        hash-router applies at send time, so re-homed in-flight tuples
        land on the replica that owns their key.
        """
        c = self._count
        if c == 0:
            return 0
        ops = self._op[:c]
        new_op = mapping[ops]
        if key_split:
            keys = self._key[:c]
            for old, (targets, port) in key_split.items():
                mask = ops == old
                if not mask.any():
                    continue
                new_op[mask] = targets[route_bucket(keys[mask], len(targets))]
                if port is not None:
                    self._port[:c][mask] = port
        keep = new_op >= 0
        dropped = int(c - keep.sum())
        if dropped:
            if self.trace is not None:
                self.trace.record_drop_uninstall(
                    self._seq[:c][~keep], self._op[:c][~keep]
                )
            survivors = int(keep.sum())
            for name in ("_arrival", "_op", "_port", "_key", "_ts", "_size", "_seq"):
                col = getattr(self, name)
                col[:survivors] = col[:c][keep]
            self._op[:survivors] = new_op[keep]
            self._count = survivors
            self.delivered += dropped
            self.dropped += dropped
        else:
            self._op[:c] = new_op
        return dropped


class HeapTransport:
    """Per-tuple heapq transport (the retained scalar reference).

    Entries are ``(arrival, round, seq, op, port, key, ts, size)``
    tuples; the heap order ``(arrival, round, seq)`` reproduces exactly
    the delivery grouping of :class:`ArrayTransport` — all in-flight
    due tuples form round 1 of a tick, zero-delay cascade outputs of
    round *r* form round *r + 1*.
    """

    def __init__(self) -> None:
        self._heap: list[tuple] = []
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        # Duck-typed tracer handle (see repro.obs.trace); None means no
        # tracing and every hook is a single attribute check.
        self.trace = None

    @property
    def in_flight(self) -> int:
        return len(self._heap)

    @property
    def buffered(self) -> int:
        """Tuples parked in the retransmit buffer (0 without one)."""
        return 0

    def buffered_by_op(self, num_ops: int) -> np.ndarray:
        """Retransmit-buffer backlog per target op (all zero here)."""
        return np.zeros(num_ops, dtype=np.int64)

    def inflight_seqs(self) -> np.ndarray:
        """Sequence numbers currently in the in-flight heap."""
        return np.array([entry[2] for entry in self._heap], dtype=np.int64)

    def buffered_seqs(self) -> np.ndarray:
        """Sequence numbers parked in the retransmit buffer (none here)."""
        return np.empty(0, dtype=np.int64)

    def send_one(
        self,
        arrival: int,
        round_: int,
        seq: int,
        op: int,
        port: int,
        key: int,
        ts: int,
        size: float,
    ) -> None:
        heapq.heappush(self._heap, (arrival, round_, seq, op, port, key, ts, size))
        self.sent += 1

    def due(self, now: int, round_: int) -> list[tuple]:
        """Pop every tuple due at ``now`` for this delivery round."""
        out = []
        heap = self._heap
        while heap and heap[0][0] <= now and heap[0][1] <= round_:
            out.append(heapq.heappop(heap))
        self.delivered += len(out)
        return out

    def remap_ops(self, mapping: np.ndarray, key_split: dict | None = None) -> int:
        """Re-address in-flight tuples after a recompile (see twin)."""
        kept = []
        dropped = 0
        split = key_split or {}
        for arrival, round_, seq, op, port, key, ts, size in self._heap:
            route = split.get(op)
            if route is not None:
                targets, new_port = route
                new = int(targets[route_bucket_int(key, len(targets))])
                if new_port is not None:
                    port = new_port
            else:
                new = int(mapping[op])
                if new < 0:
                    dropped += 1
                    if self.trace is not None:
                        self.trace.record_drop_uninstall_one(seq, op)
                    continue
            kept.append((arrival, round_, seq, new, port, key, ts, size))
        if dropped:
            heapq.heapify(kept)
            self._heap = kept
            self.delivered += dropped
            self.dropped += dropped
        elif kept != self._heap:
            heapq.heapify(kept)
            self._heap = kept
        return dropped


class ReliableTransport(ArrayTransport):
    """Array transport with a bounded struct-of-arrays retransmit buffer.

    Tuples bound for a failed node are parked via :meth:`buffer` (the
    data plane hands back the dead-bound slice of a delivery batch, in
    canonical order) and moved back into the in-flight pool by one
    vectorized :meth:`redeliver` mask pass once the target service's
    host is alive again.  The buffer holds at most ``max_buffer``
    tuples; excess tuples are rejected (returned as an overflow count)
    so the caller can drop them with explicit accounting.  Conservation
    extends to ``sent == delivered + in_flight + buffered``.
    """

    _BUF_INITIAL = 256

    def __init__(
        self,
        max_buffer: int = 4096,
        scratch: ScratchArena | None = None,
        kernels: jit_kernels.Kernels | None = None,
    ) -> None:
        super().__init__(scratch, kernels)
        if max_buffer < 0:
            raise ValueError("max_buffer must be non-negative")
        self.max_buffer = max_buffer
        self._b_cap = min(self._BUF_INITIAL, max(1, max_buffer))
        for name in ("_b_op", "_b_port", "_b_key", "_b_ts", "_b_seq"):
            setattr(self, name, np.empty(self._b_cap, dtype=np.int64))
        self._b_size = np.empty(self._b_cap, dtype=np.float64)
        self._b_count = 0
        self.redelivered = 0
        self.buffered_total = 0

    @property
    def buffered(self) -> int:
        return self._b_count

    def buffered_by_op(self, num_ops: int) -> np.ndarray:
        """Retransmit-buffer backlog per target op (one bincount)."""
        return np.bincount(self._b_op[: self._b_count], minlength=num_ops)

    def buffered_seqs(self) -> np.ndarray:
        """Sequence numbers parked in the retransmit buffer (copy)."""
        return self._b_seq[: self._b_count].copy()

    def _grow_buffer(self, needed: int) -> None:
        cap = self._b_cap
        while cap < needed:
            cap *= 2
        cap = min(cap, max(1, self.max_buffer))
        for name in ("_b_op", "_b_port", "_b_key", "_b_ts", "_b_size", "_b_seq"):
            old = getattr(self, name)
            fresh = np.empty(cap, dtype=old.dtype)
            fresh[: self._b_count] = old[: self._b_count]
            setattr(self, name, fresh)
        self._b_cap = cap

    def buffer(
        self,
        op: np.ndarray,
        port: np.ndarray,
        key: np.ndarray,
        ts: np.ndarray,
        size: np.ndarray,
        seq: np.ndarray,
    ) -> int:
        """Park dead-bound tuples; returns how many overflowed the bound.

        The first ``max_buffer - buffered`` tuples (in the caller's
        canonical order) are accepted and subtracted from ``delivered``
        (they are back inside the transport); the rest are rejected and
        stay counted as delivered so the caller can account the drop.
        """
        n = op.shape[0]
        if n == 0:
            return 0
        accept = min(n, self.max_buffer - self._b_count)
        if accept > 0:
            if self._b_count + accept > self._b_cap:
                self._grow_buffer(self._b_count + accept)
            lo, hi = self._b_count, self._b_count + accept
            self._b_op[lo:hi] = op[:accept]
            self._b_port[lo:hi] = port[:accept]
            self._b_key[lo:hi] = key[:accept]
            self._b_ts[lo:hi] = ts[:accept]
            self._b_size[lo:hi] = size[:accept]
            self._b_seq[lo:hi] = seq[:accept]
            self._b_count = hi
            self.delivered -= accept
            self.buffered_total += accept
        return n - max(accept, 0)

    def redeliver(self, alive_of_op: np.ndarray, now: int) -> int:
        """Re-inject buffered tuples whose target op is alive again.

        One boolean mask over the buffer; the released tuples enter the
        in-flight pool due *now* (they join the tick's first delivery
        round with their original sequence numbers, so canonical
        ordering is preserved).  Returns the number released.
        """
        c = self._b_count
        if c == 0:
            return 0
        mask = alive_of_op[self._b_op[:c]]
        hits = int(mask.sum())
        if hits == 0:
            return 0
        if self.trace is not None:
            self.trace.record_redeliver(self._b_seq[:c][mask], self._b_op[:c][mask])
        self._append(
            np.full(hits, now, dtype=np.int64),
            self._b_op[:c][mask],
            self._b_port[:c][mask],
            self._b_key[:c][mask],
            self._b_ts[:c][mask],
            self._b_size[:c][mask],
            self._b_seq[:c][mask],
        )
        keep = ~mask
        survivors = int(keep.sum())
        for name in ("_b_op", "_b_port", "_b_key", "_b_ts", "_b_size", "_b_seq"):
            col = getattr(self, name)
            col[:survivors] = col[:c][keep]
        self._b_count = survivors
        self.redelivered += hits
        return hits

    def remap_ops(self, mapping: np.ndarray, key_split: dict | None = None) -> int:
        """Re-address pool *and* buffer; buffered orphans drop too."""
        dropped = super().remap_ops(mapping, key_split)
        c = self._b_count
        if c == 0:
            return dropped
        ops = self._b_op[:c]
        new_op = mapping[ops]
        if key_split:
            keys = self._b_key[:c]
            for old, (targets, port) in key_split.items():
                mask = ops == old
                if not mask.any():
                    continue
                new_op[mask] = targets[route_bucket(keys[mask], len(targets))]
                if port is not None:
                    self._b_port[:c][mask] = port
        keep = new_op >= 0
        b_dropped = int(c - keep.sum())
        if b_dropped:
            if self.trace is not None:
                self.trace.record_drop_uninstall(
                    self._b_seq[:c][~keep], self._b_op[:c][~keep]
                )
            survivors = int(keep.sum())
            for name in ("_b_op", "_b_port", "_b_key", "_b_ts", "_b_size", "_b_seq"):
                col = getattr(self, name)
                col[:survivors] = col[:c][keep]
            self._b_op[:survivors] = new_op[keep]
            self._b_count = survivors
            # Dropped buffered tuples exit the transport: they count as
            # delivered again (restoring the balance) and as dropped.
            self.delivered += b_dropped
            self.dropped += b_dropped
        else:
            self._b_op[:c] = new_op
        return dropped + b_dropped


class ReliableHeapTransport(HeapTransport):
    """Per-tuple retransmit-buffer twin of :class:`ReliableTransport`.

    The buffer is a plain list in insertion order; :meth:`buffer_one`
    accepts until the bound is hit (same first-come-first-buffered
    policy) and :meth:`redeliver` walks the list pushing released
    tuples back onto the heap as round-1 arrivals at ``now``.
    """

    def __init__(self, max_buffer: int = 4096) -> None:
        super().__init__()
        if max_buffer < 0:
            raise ValueError("max_buffer must be non-negative")
        self.max_buffer = max_buffer
        self._buffer: list[tuple] = []
        self.redelivered = 0
        self.buffered_total = 0

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    def buffered_by_op(self, num_ops: int) -> np.ndarray:
        """Per-op backlog (per-tuple twin of the bincount version)."""
        counts = np.zeros(num_ops, dtype=np.int64)
        for entry in self._buffer:
            counts[entry[0]] += 1
        return counts

    def buffered_seqs(self) -> np.ndarray:
        """Sequence numbers parked in the retransmit buffer."""
        return np.array([entry[5] for entry in self._buffer], dtype=np.int64)

    def buffer_one(
        self, op: int, port: int, key: int, ts: int, size: float, seq: int
    ) -> bool:
        """Park one dead-bound tuple; False when the bound rejects it."""
        if len(self._buffer) >= self.max_buffer:
            return False
        self._buffer.append((op, port, key, ts, size, seq))
        self.delivered -= 1
        self.buffered_total += 1
        return True

    def redeliver(self, alive_of_op: np.ndarray, now: int) -> int:
        kept = []
        hits = 0
        for entry in self._buffer:
            op, port, key, ts, size, seq = entry
            if alive_of_op[op]:
                if self.trace is not None:
                    self.trace.record_redeliver_one(seq, op)
                heapq.heappush(self._heap, (now, 1, seq, op, port, key, ts, size))
                hits += 1
            else:
                kept.append(entry)
        self._buffer = kept
        self.redelivered += hits
        return hits

    def remap_ops(self, mapping: np.ndarray, key_split: dict | None = None) -> int:
        dropped = super().remap_ops(mapping, key_split)
        kept = []
        b_dropped = 0
        split = key_split or {}
        for entry in self._buffer:
            op, port, key, ts, size, seq = entry
            route = split.get(op)
            if route is not None:
                targets, new_port = route
                new = int(targets[route_bucket_int(key, len(targets))])
                if new_port is not None:
                    port = new_port
            else:
                new = int(mapping[op])
                if new < 0:
                    b_dropped += 1
                    if self.trace is not None:
                        self.trace.record_drop_uninstall_one(seq, op)
                    continue
            kept.append((new, port, key, ts, size, seq))
        self._buffer = kept
        if b_dropped:
            self.delivered += b_dropped
            self.dropped += b_dropped
        return dropped + b_dropped
