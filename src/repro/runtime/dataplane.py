"""The data-plane coordinator: all installed circuits, executed per tick.

:class:`DataPlane` compiles every circuit installed on an
:class:`~repro.sbon.overlay.Overlay` into flat arrays (CSR outgoing-link
index, per-operator kind/parameter columns) and then, each simulation
tick, moves actual tuple batches through all of them concurrently:

1. **Sources emit** — one Poisson draw across every source of every
   circuit, one uniform draw for all join keys.
2. **Delivery rounds** — the transport hands back every due batch;
   round 1 is everything in flight, later rounds are the zero-delay
   cascade outputs of the previous round (colocated services).
3. **Backpressure** — each node accepts at most
   ``RuntimeConfig.node_capacity`` **CPU cost units** per tick (further
   capped by controller shed limits, attributed separately); the excess
   is dropped *with accounting* (per-node counters).  Tuples delivered
   to a failed node are dropped the same way — or, with
   ``RuntimeConfig.reliable``, parked in the transport's bounded
   retransmit buffer and redelivered once the host returns.
4. **Operators run in batch** — relays forward, filters hash-thin,
   aggregates decimate with per-operator credit, joins match arrivals
   against windowed struct-of-arrays state via one composite-key
   ``searchsorted`` pass over all joins at once.  Join state is
   two-level — a sorted base plus an append buffer merged every
   ``_state_merge_limit`` rows — so inserts cost O(batch), not
   O(state).
5. **Results are measured** — sink deliveries, end-to-end tuple
   latencies, per-link carried traffic, and Σ latency over every tuple
   actually sent (the *measured* network usage).  Per-tick per-link
   and per-node statistics (``tick_link_tuples``, ``tick_node_drops``,
   ``tick_node_processed``) are exported for the control plane, and
   :meth:`DataPlane.true_link_rates` propagates the *realized*
   parameters analytically for oracle experiments.  Realized operator
   parameters can drift away from the compiled estimates on a
   deterministic schedule (:class:`ParameterDrift`) — the fixture
   behind the closed-loop control experiments.

The cost-unit convention
------------------------

All "load" in the runtime is expressed in the CPU cost units of
:class:`~repro.core.load_model.LoadModel` (one currency from the
operator kernels to placement):

* Every *processed* tuple is charged to the node that hosted its
  target operator: relays/filters/sinks cost their flat base, each
  tuple of an aggregate's delivery-round batch of ``m`` costs
  ``c₀ + c₁·m``, and each join arrival costs ``c₀ + c₂·probes`` where
  *probes* counts the windowed state entries it was matched against.
  The per-tick vector is exported as :attr:`tick_node_cpu` (and the
  tick totals as ``TrafficRecord.cpu_cost``).
* **Admission** prices each delivery at the target operator's
  *expected* per-tuple cost for this tick (state-dependent probe
  expectations are frozen at tick start, so both step paths price
  identically): a node admits deliveries, in canonical order, while
  its admitted cost this tick is below ``node_capacity`` (∧ shed
  limits).  With ``LoadModel.unit()`` — the default — every tuple
  costs 1 and this reproduces the historical count-based gate exactly.
* Rejected admission demand is accounted in cost units too
  (``TrafficRecord.cpu_dropped``: capacity + shed rejections at their
  admission price).

The default coefficients are dyadic rationals, so the batched kernels
and the per-tuple scalar reference accumulate bit-identical cost
columns (twin discipline holds for the cost currency).

Churn and migration safety: in-flight tuples address their target
*service*, and the hosting node is resolved at delivery time from the
circuit's current placement — when the re-optimizer migrates a service
(or churn forces an evacuation), tuples already on the wire re-home
automatically.  Uninstalling a circuit drops its in-flight tuples with
explicit accounting.  The conservation invariant, checkable at any
tick via :meth:`DataPlane.accounting`::

    sent == transport-delivered + in_flight + buffered
    transport-delivered == processed + dropped

(``buffered`` is 0 without the reliable transport) so no tuple is ever
silently lost.

The global circuit arena (PR 7)
-------------------------------

All circuits compile into **one** contiguous set of flat arrays (the
global CSR arena): op columns and link rows span every installed
circuit, and each circuit owns a contiguous *segment* of them
(:class:`~repro.runtime.arena.CircuitArena` keeps the bookkeeping).
Each tick therefore runs a constant number of array kernels over all
circuits at once — there is no per-circuit Python dispatch in the hot
path.  With ``RuntimeConfig.incremental`` (the default), installs
append a new segment, uninstalls tombstone the old one (in-flight /
state / estimator columns survive untouched), and the arena compacts
in one gather pass when the dead fraction crosses
``RuntimeConfig.compact_threshold`` — tenant churn never triggers a
full recompile.  ``incremental=False`` retains the legacy
rebuild-everything sync as the reference; both modes are pinned
tick-for-tick equivalent (compaction included) by
``tests/property/test_arena_properties.py``, and full recompiles are
observable via ``TrafficRecord.recompiles``.  Per-tick scratch
(transport extraction, cost accumulators, admission bookkeeping) comes
from a :class:`~repro.runtime.arena.ScratchArena` — preallocated,
grown geometrically, reused across ticks; never hold a view into a
scratch buffer across ticks.

Scalar reference
----------------

:meth:`DataPlane.step_scalar` implements the *same* tick semantics with
per-tuple Python loops over a heapq transport and per-key join tables,
consuming the *same* RNG draws (the per-tick source draw is shared), so
twin data planes stepped through either path agree exactly — tuple for
tuple — and the pair is the before/after of the E18 benchmark.  A
single instance commits to one path on first use (the two paths keep
different state layouts); build a twin to compare.

Randomness discipline: the only RNG draws are the per-tick source
draws.  Filter predicates and join match thinning are deterministic
hashes of tuple content (SplitMix64 buckets), which keeps the batched
and per-tuple paths exactly equivalent without coupling their
per-candidate draw order.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass

import numpy as np

from repro.core.load_model import (
    KIND_AGGREGATE,
    KIND_FILTER,
    KIND_JOIN,
    KIND_RELAY,
    LoadModel,
)
from repro.query.operators import ServiceKind
from repro.runtime import jit as jit_kernels
from repro.runtime.arena import CircuitArena, ScratchArena
from repro.runtime.hashing import (
    M1,
    M2,
    M3,
    MASK64,
    U64,
    mix64,
    mix64_int,
    route_bucket,
    route_bucket_int,
)
from repro.runtime.transport import (
    ArrayTransport,
    HeapTransport,
    ReliableHeapTransport,
    ReliableTransport,
)

_LOG = logging.getLogger(__name__)

__all__ = ["ParameterDrift", "RuntimeConfig", "TrafficRecord", "DataPlane"]

# Operator behavior codes (what an op does with a delivered tuple);
# shared with the LoadModel's kind-cost convention.
_RELAY, _FILTER, _AGG, _JOIN = KIND_RELAY, KIND_FILTER, KIND_AGGREGATE, KIND_JOIN

# SplitMix64 primitives live in repro.runtime.hashing (shared with the
# transports' scale-event re-routing); the historical aliases remain.
_MASK64 = MASK64
_M1 = M1
_M2 = M2
_M3 = M3
_U = U64
_mix64 = mix64
_mix64_int = mix64_int


def _filter_bucket(key: np.ndarray, salt: np.ndarray) -> np.ndarray:
    """Deterministic uniform-[0,1) bucket of (key, operator) pairs."""
    x = key.astype(_U) * _U(_M1) + salt.astype(_U) * _U(_M3)
    return (_mix64(x) >> _U(11)).astype(np.float64) * 2.0 ** -53


def _filter_bucket_int(key: int, salt: int) -> float:
    x = (key * _M1 + salt * _M3) & _MASK64
    return (_mix64_int(x) >> 11) * 2.0 ** -53


def _pair_bucket(
    key: np.ndarray, ts_a: np.ndarray, ts_b: np.ndarray, salt: np.ndarray
) -> np.ndarray:
    """Symmetric match bucket of a candidate join pair (order-free)."""
    lo = np.minimum(ts_a, ts_b).astype(_U)
    hi = np.maximum(ts_a, ts_b).astype(_U)
    x = key.astype(_U) * _U(_M1) + lo * _U(_M2) + hi * _U(_M3) + salt.astype(_U)
    return (_mix64(x) >> _U(11)).astype(np.float64) * 2.0 ** -53


def _pair_bucket_int(key: int, ts_a: int, ts_b: int, salt: int) -> float:
    lo, hi = (ts_a, ts_b) if ts_a <= ts_b else (ts_b, ts_a)
    x = (key * _M1 + lo * _M2 + hi * _M3 + salt) & _MASK64
    return (_mix64_int(x) >> 11) * 2.0 ** -53


@dataclass(frozen=True)
class ParameterDrift:
    """A deterministic drift of one *realized* operator parameter.

    The data plane compiles its operator parameters from the circuits'
    *estimated* link rates; a drift spec makes the realized behavior
    walk away from those estimates over time — the fixture behind the
    control plane's estimate→measure gap.  The trajectory is a linear
    ramp from ``start`` to ``end`` over ``[begin, begin + duration]``
    ticks (clamped outside), fully deterministic so twin data planes
    stay tick-for-tick equivalent.

    Attributes:
        circuit: circuit name the drifting service belongs to.
        service: service id whose parameter drifts.
        param: one of ``"selectivity"`` (filters),
            ``"match_probability"`` (joins), ``"aggregate_factor"``
            (aggregates), or ``"source_rate"`` (source emission λ).
        start: realized value before ``begin``.
        end: realized value after ``begin + duration``.
        begin: first tick of the ramp.
        duration: ramp length in ticks (0 = step change at ``begin``).
        gated: when True the spec is inert until its ramp begins
            (``tick <= begin`` applies *no* value instead of ``start``).
            Lets two specs share one parameter sequentially — e.g. a
            flash-crowd ramp-up followed by a gated ramp-down — without
            the later spec's pre-``begin`` plateau clobbering the
            earlier one's trajectory.
    """

    circuit: str
    service: str
    param: str
    start: float
    end: float
    begin: int = 0
    duration: int = 1
    gated: bool = False

    _PARAMS = ("selectivity", "match_probability", "aggregate_factor", "source_rate")

    def __post_init__(self) -> None:
        if self.param not in self._PARAMS:
            raise ValueError(f"param must be one of {self._PARAMS}")
        if self.begin < 0 or self.duration < 0:
            raise ValueError("begin and duration must be non-negative")
        if self.start < 0 or self.end < 0:
            raise ValueError("drift values must be non-negative")

    def value(self, tick: int) -> float:
        """The realized parameter value at ``tick`` (linear ramp)."""
        if tick <= self.begin or self.duration == 0:
            return self.start if tick <= self.begin else self.end
        frac = min(1.0, (tick - self.begin) / self.duration)
        return self.start + (self.end - self.start) * frac


@dataclass(frozen=True)
class RuntimeConfig:
    """Knobs of the data-plane runtime.

    Attributes:
        window: join window in ticks (state retention and match bound).
        tick_ms: milliseconds per tick (converts latency to delay).
        node_capacity: CPU cost units one node may accept per tick
            (admission prices each delivery via ``load_model``); None
            disables backpressure.  Under the default unit model a
            tuple costs 1, so this is the historical tuples-per-tick
            bound.
        eviction_slack: extra ticks of join-state retention beyond the
            window; None derives each join's path staleness from the
            placement at compile time (like the executor).
        seed: RNG seed of the per-tick source draws.
        reliable: buffer tuples bound to failed nodes in a bounded
            retransmit buffer (redelivered when the host recovers or
            the service migrates) instead of dropping them.
        retransmit_buffer: retransmit-buffer bound (tuples); overflow
            is dropped with explicit accounting.
        drift: deterministic :class:`ParameterDrift` specs applied to
            the realized operator parameters each tick.
        load_model: per-tuple CPU cost of each operator kind — the
            unified load currency measured per node every tick and
            priced at admission.  None uses :meth:`LoadModel.unit`
            (every tuple costs 1: cost == count).
        incremental: maintain the global circuit arena incrementally
            (installs append a segment, uninstalls tombstone one,
            compaction past :class:`~repro.runtime.arena.CircuitArena`'s
            threshold) — the primary path.  False retains the legacy
            reference: a full recompile of every flat array on any
            change of the installed set.  Both paths are tick-for-tick
            equivalent (operator hashes are salted by a stable global
            op id, not the physical row).
        compact_threshold: tombstone fraction above which the
            incremental arena compacts its dead rows.
        join_state: vectorized join-state layout.  ``"epoch"`` (the
            primary path) buckets state rows into a ring of sorted
            epoch chunks: inserts append to a small buffer, flushes
            sort only the batch, adjacent chunks merge geometrically
            (each row is copied O(log state) times over its life, not
            once per merge), and window eviction drops whole expired
            chunks — probes mask per-candidate liveness so probe
            order, match ranks, and probe-cost charges stay
            bit-identical.  ``"twolevel"`` retains the PR-7 sorted
            base + append buffer reference layout.  The scalar
            per-key tables are untouched by this knob.
        admission: how the tick-start admission prices obtain their
            per-(op, side) state counts.  ``"highwater"`` (primary)
            maintains an exact incremental ledger — O(batch) on
            insert, O(ops) at the tick boundary — that equals the
            full scan at every tick start, so prices stay bit-exact.
            ``"frozen"`` retains the O(state) full-scan reference.
        jit: kernel tier for the three irreducible hot kernels (join
            probe binary search, admission gate, transport
            arrival-compaction).  ``"auto"`` uses numba when
            importable and silently falls back to NumPy; ``"numba"``
            demands numba (raises when absent); ``"numpy"`` always
            runs the reference.  The tier may never change results
            (see :mod:`repro.runtime.jit`).
    """

    window: int = 20
    tick_ms: float = 10.0
    node_capacity: float | None = None
    eviction_slack: int | None = None
    seed: int = 0
    reliable: bool = False
    retransmit_buffer: int = 4096
    drift: tuple[ParameterDrift, ...] = ()
    load_model: LoadModel | None = None
    incremental: bool = True
    compact_threshold: float = 0.25
    join_state: str = "epoch"
    admission: str = "highwater"
    jit: str = "auto"

    def __post_init__(self) -> None:
        if self.window < 0:
            raise ValueError("window must be non-negative")
        if self.tick_ms <= 0:
            raise ValueError("tick_ms must be positive")
        if self.node_capacity is not None and self.node_capacity < 0:
            raise ValueError("node_capacity must be non-negative")
        if self.eviction_slack is not None and self.eviction_slack < 0:
            raise ValueError("eviction_slack must be non-negative")
        if self.retransmit_buffer < 0:
            raise ValueError("retransmit_buffer must be non-negative")
        if self.join_state not in ("epoch", "twolevel"):
            raise ValueError("join_state must be 'epoch' or 'twolevel'")
        if self.admission not in ("highwater", "frozen"):
            raise ValueError("admission must be 'highwater' or 'frozen'")
        if self.jit not in ("auto", "numba", "numpy"):
            raise ValueError("jit must be 'auto', 'numba', or 'numpy'")


@dataclass(frozen=True)
class TrafficRecord:
    """What the data plane carried during one tick.

    Attributes:
        tick: data-plane tick counter.
        emitted: tuples produced by sources this tick.
        delivered: tuples that reached a consumer sink this tick.
        dropped: tuples dropped this tick (capacity + dead nodes +
            uninstalls), never silently lost.
        processed: tuples accepted and processed by services.
        in_flight: tuples still on the wire after the tick.
        usage: measured network usage this tick — Σ link latency over
            every tuple actually sent (rate × latency, realized).
        latency_p50: median end-to-end latency (ms) of this tick's
            deliveries (0 when none).
        latency_p95: 95th percentile of the same.
        latency_p99: 99th percentile of the same.
        shed: tuples dropped this tick by a controller-set shed limit
            (subset of ``dropped``).
        redelivered: buffered tuples re-injected this tick by the
            reliable transport.
        buffered: tuples parked in the retransmit buffer after the
            tick (0 without ``reliable``).
        cpu_cost: measured CPU cost units consumed this tick, summed
            over all nodes (Σ of :attr:`DataPlane.tick_node_cpu`).
        cpu_dropped: CPU cost units of admission demand rejected this
            tick (capacity + shed rejections at their admission price).
        recompiles: full kernel recompiles triggered by this tick's
            sync (0 on the incremental arena path except for same-name
            circuit replacement; 1 per changed set on the legacy path)
            — the observable for compile churn.
    """

    tick: int
    emitted: int = 0
    delivered: int = 0
    dropped: int = 0
    processed: int = 0
    in_flight: int = 0
    usage: float = 0.0
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_p99: float = 0.0
    shed: int = 0
    redelivered: int = 0
    buffered: int = 0
    cpu_cost: float = 0.0
    cpu_dropped: float = 0.0
    recompiles: int = 0


class _EpochChunk:
    """One sorted generation of the epoch-ring join state.

    Rows are sorted by composite key; within equal keys they sit in
    insertion order, and every row of an older chunk was inserted
    before every equal-key row of a younger one — the invariant that
    lets cross-chunk rank offsets reproduce the reference's
    insertion-order match enumeration exactly.  ``e`` is the stored
    expiry tick (``ts + window + slack``, clamped up to the insert
    tick so dead-on-arrival rows stay probe-visible for the remainder
    of their insert tick, exactly like the reference, which only
    evicts at tick starts); a row is live at tick ``now`` iff
    ``e >= now``.  ``max_e`` gates the O(1) whole-chunk drop;
    ``min_e`` gates the probe fast path (a chunk with ``min_e >= now``
    holds no dead rows, so probes skip the liveness mask entirely).

    Because a chunk is immutable between merges, probes amortise a
    run-index over its lifetime: the distinct composite keys plus the
    row offset of every run (:meth:`index`).  One binary-search sweep
    over the distinct keys then replaces the reference's two sweeps
    over all rows — the dominant probe cost at scale.
    """

    __slots__ = ("comp", "ts", "size", "e", "max_e", "min_e", "_runs")

    def __init__(
        self,
        comp: np.ndarray,
        ts: np.ndarray,
        size: np.ndarray,
        e: np.ndarray,
    ) -> None:
        self.comp = comp
        self.ts = ts
        self.size = size
        self.e = e
        self.max_e = int(e.max()) if e.size else -1
        self.min_e = int(e.min()) if e.size else -1
        self._runs: tuple[np.ndarray, np.ndarray] | None = None

    def index(self) -> tuple[np.ndarray, np.ndarray]:
        """(distinct comps, run starts + end sentinel), cached.

        ``starts`` has one more entry than ``uniq``: run ``i`` spans
        rows ``starts[i]:starts[i + 1]``.
        """
        if self._runs is None:
            comp = self.comp
            if comp.size:
                head = np.flatnonzero(comp[1:] != comp[:-1]) + 1
                starts = np.concatenate(([0], head, [comp.size]))
                self._runs = (comp[starts[:-1]], starts)
            else:
                self._runs = (comp, np.zeros(1, dtype=np.int64))
        return self._runs


class DataPlane:
    """Executes every installed circuit on the overlay, tick for tick."""

    def __init__(self, overlay, config: RuntimeConfig | None = None):
        self.overlay = overlay
        self.config = config or RuntimeConfig()
        self._model = self.config.load_model or LoadModel.unit()
        self.tick = 0
        self._rng = np.random.default_rng(self.config.seed)
        self._mode: str | None = None
        self._transport = None
        self._next_seq = 0
        # Cumulative accounting.
        self.emitted = 0
        self.sink_delivered = 0
        self.processed = 0
        self.dropped_capacity = 0
        self.dropped_dead = 0
        self.dropped_uninstalled = 0
        self.dropped_shed = 0
        self.dropped_overflow = 0
        self.redelivered = 0
        self._usage_total = 0.0
        n = overlay.num_nodes
        self.dropped_by_node = np.zeros(n, dtype=np.int64)
        self.processed_by_node = np.zeros(n, dtype=np.int64)
        # Per-(node, kind) processed counts, flat (node * 4 + kind) —
        # the regressors of the controller's cost-drift fit.
        self.processed_node_kind = np.zeros(n * 4, dtype=np.int64)
        # Measured CPU cost, in the load model's cost units.
        self.cpu_cost_total = 0.0
        self.cpu_dropped_total = 0.0
        self.cpu_by_node = np.zeros(n)
        # Per-tick measured statistics (diffed snapshots; see
        # _begin_tick_stats / _end_tick_stats).
        self.tick_link_tuples = np.zeros(0, dtype=np.int64)
        self.tick_node_drops = np.zeros(n, dtype=np.int64)
        self.tick_node_processed = np.zeros(n, dtype=np.int64)
        self.tick_node_cpu = np.zeros(n)
        self.tick_node_kind_processed = np.zeros((n, 4), dtype=np.int64)
        # Per-op measured CPU cost of the last finished tick (a copy;
        # the underlying scratch is reused).  The autoscaler's signal.
        self.tick_op_cpu = np.zeros(0)
        if self.config.node_capacity is None:
            self._cap = None
        else:
            self._cap = np.full(n, float(self.config.node_capacity))
        # Controller-set per-node shed limits (inf = inactive).
        self._shed = np.full(n, np.inf)
        self._shed_active = 0
        # Join-state batch bound: the append-buffer size at which the
        # two-level base absorbs it / the epoch ring flushes a chunk;
        # overridable for layout tests (small values force many epoch
        # boundaries).
        self._state_merge_limit = 1024
        # Epoch-ring layout flag (array path only; the scalar per-key
        # tables ignore it).
        self._epoch = self.config.join_state == "epoch"
        # Epoch append-buffer seal bound.  Separate from the two-level
        # merge limit on purpose: the reference layout keeps PR 9's
        # exact batching, while the ring amortises better with larger
        # seals (the buffer is probed through a cached sort either
        # way).  Layout tests shrink both to force epoch churn.
        self._epoch_flush_limit = 2048
        # Two-generation rebalance ratio: the young generation folds
        # into the old one once old <= young * ratio.  None switches to
        # the binary-counter ladder (more levels, rarer big merges) —
        # kept for layout experiments.
        self._epoch_gen_ratio: int | None = 4
        # High-water admission ledger: exact per-(op, side) live-state
        # counts plus a circular death histogram indexed by expiry tick
        # modulo the horizon.  Rebuilt lazily (dirty flag) after any
        # structural remap.
        self._hw_counts = np.zeros(0, dtype=np.int64)
        self._hw_deaths = np.zeros((0, 0), dtype=np.int64)
        self._hw_h = 1
        self._hw_clock = 0
        self._hw_dirty = True
        # Kernel tier (numba or the NumPy reference; see runtime.jit).
        self._jit = jit_kernels.resolve(self.config.jit)
        # Per-(circuit, link) stats survive recompiles in this fold.
        self._link_stats_folded: dict[tuple[str, str, str], list] = {}
        # Global circuit arena: segment bookkeeping, stable global op
        # ids (hash salts that survive row moves), reusable scratch.
        self._arena = CircuitArena(self.config.compact_threshold)
        self._scratch = ScratchArena()
        self._next_gid = 0
        # Persistent gid registry: (circuit, service-family) -> salt;
        # replica siblings share their base's entry (see _resolve_gid).
        self._gid_by_key: dict[tuple[str, str], int] = {}
        self._host_cache: np.ndarray | None = None
        # Optional sink capture for exactness tests: set to a list and
        # every sink delivery appends (service, key, ts, size).  None
        # keeps the hot loop at a single attribute check.
        self.sink_log: list | None = None
        # Full-recompile observability (satellite: compile churn).
        self.recompiles = 0
        self._tick_recompiles = 0
        # Attached observability layer (repro.obs.Observability), or
        # None.  Handles are resolved once per tick; with no layer the
        # hot loop pays a single attribute check.
        self._obs = None
        self._compile(remap_from=None, reason="initial")

    # -- compilation -------------------------------------------------------

    def _derive_circuit(self, circuit) -> dict:
        """Compile one circuit into segment-local flat columns.

        Shared by the full recompile (which assembles every segment)
        and the incremental install path (which appends one), so both
        derive identical operator parameters.  All op/link indices in
        the returned columns are segment-local; callers shift them by
        the segment base.
        """
        sids = list(circuit.services.keys())
        local = {(circuit.name, sid): i for i, sid in enumerate(sids)}
        n = len(sids)
        kind = np.zeros(n, dtype=np.int8)
        in_deg = np.zeros(n, dtype=np.int64)
        out_lists: list[list[tuple[int, int]]] = [[] for _ in range(n)]
        op_sel = np.ones(n, dtype=np.float64)
        op_factor = np.full(n, 0.5, dtype=np.float64)
        op_pmatch = np.ones(n, dtype=np.float64)
        op_domain = np.ones(n, dtype=np.float64)
        slack = np.zeros(n, dtype=np.int64)
        src_ops: list[int] = []
        src_rate: list[float] = []
        src_domain: list[int] = []

        incoming: dict[str, list] = {sid: [] for sid in circuit.services}
        outgoing: dict[str, list] = {sid: [] for sid in circuit.services}
        port_of: dict[int, int] = {}
        for link in circuit.links:
            port_of[id(link)] = len(incoming[link.target])
            incoming[link.target].append(link)
            outgoing[link.source].append(link)

        def family_rates(sid, service):
            """(in-rates tuple, out-rate) a service derives params from.

            Replicas use the *family* rates stored on their
            :class:`ReplicaInfo` — not their split in-links — so every
            compiled operator parameter (domain, pmatch, factor) is
            bitwise-identical to the unreplicated circuit's.
            """
            info = getattr(service, "replica", None)
            if info is not None and not info.is_merge:
                return info.in_rates, info.out_rate
            outs = outgoing[sid]
            return (
                tuple(l.rate for l in incoming[sid]),
                outs[0].rate if outs else 0.0,
            )

        # Key domain realizing the largest implied join selectivity,
        # as in CircuitExecutor.from_query: the binding join matches
        # on key equality alone, the others thin further via the
        # deterministic match bucket.
        w = self.config.window
        needs = []
        for sid, service in circuit.services.items():
            if service.kind is not ServiceKind.JOIN:
                continue
            rin, ro = family_rates(sid, service)
            if len(rin) != 2:
                continue
            r0, r1 = rin
            if r0 > 0 and r1 > 0 and ro > 0:
                needs.append(r0 * r1 * (2 * w + 1) / ro)
        domain = int(np.clip(int(min(needs)), 1, 1 << 31)) if needs else 2 * w + 1

        op_replicas = np.ones(n, dtype=np.int64)
        tgt_group = np.ones(n, dtype=np.int64)
        tgt_index = np.zeros(n, dtype=np.int64)
        gid_keys: list[tuple[str, str]] = []
        for sid, service in circuit.services.items():
            op = local[(circuit.name, sid)]
            info = getattr(service, "replica", None)
            if info is not None and not info.is_merge:
                op_replicas[op] = info.count
                tgt_group[op] = info.count
                tgt_index[op] = info.index
                # Siblings share the base's gid, so their hash salts —
                # and thus per-key match decisions — equal the
                # unreplicated op's (key-partition exactness).
                gid_keys.append((circuit.name, info.base))
            else:
                gid_keys.append((circuit.name, sid))
            op_domain[op] = domain
            in_deg[op] = len(incoming[sid])
            for port, link in enumerate(incoming[sid]):
                src = local[(circuit.name, link.source)]
                out_lists[src].append((op, port))
            rin, ro = family_rates(sid, service)
            if service.kind is ServiceKind.JOIN and len(rin) == 2:
                kind[op] = _JOIN
                r0, r1 = rin
                if r0 > 0 and r1 > 0:
                    p = ro * domain / (r0 * r1 * (2 * w + 1))
                    op_pmatch[op] = min(1.0, p)
            elif service.kind is ServiceKind.FILTER:
                kind[op] = _FILTER
                inr = sum(rin)
                if service.spec.selectivity is not None:
                    op_sel[op] = service.spec.selectivity
                elif outgoing[sid] and inr > 0:
                    op_sel[op] = min(1.0, ro / inr)
            elif service.kind is ServiceKind.AGGREGATE:
                kind[op] = _AGG
                inr = sum(rin)
                if outgoing[sid] and inr > 0:
                    op_factor[op] = min(1.0, ro / inr)
            else:
                kind[op] = _RELAY
            if not incoming[sid] and outgoing[sid]:
                first = outgoing[sid][0]
                rate = first.rate
                tgt = circuit.services[first.target]
                tgt_info = getattr(tgt, "replica", None)
                if tgt_info is not None and not tgt_info.is_merge:
                    # Out-links were expanded into k split links; the
                    # source's emission rate is the family in-rate of
                    # the port this link lands on, not the /k share.
                    rate = tgt_info.in_rates[port_of[id(first)]]
                src_ops.append(op)
                src_rate.append(rate)
                src_domain.append(domain)

        self._assign_slack(circuit, incoming, local, slack)

        # Segment-local CSR: link rows grouped by source op in op order.
        out_deg = np.array([len(lst) for lst in out_lists], dtype=np.int64)
        out_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(out_deg, out=out_offsets[1:])
        num_links = int(out_offsets[-1])
        link_dst = np.zeros(num_links, dtype=np.int64)
        link_port = np.zeros(num_links, dtype=np.int64)
        link_src = np.zeros(num_links, dtype=np.int64)
        link_names: list[tuple[str, str, str]] = []
        for op, lst in enumerate(out_lists):
            base = out_offsets[op]
            for i, (dst, port) in enumerate(lst):
                link_dst[base + i] = dst
                link_port[base + i] = port
                link_src[base + i] = op
                link_names.append((circuit.name, sids[op], sids[dst]))
        # Hash-router columns: a link into replica i of a k-family only
        # accepts tuples whose key bucket is i (group 1 links accept
        # everything).
        link_group = tgt_group[link_dst]
        link_index = tgt_index[link_dst]
        return {
            "sids": sids,
            "kind": kind,
            "in_deg": in_deg,
            "op_sel": op_sel,
            "op_factor": op_factor,
            "op_pmatch": op_pmatch,
            "op_domain": op_domain,
            "op_replicas": op_replicas,
            "slack": slack,
            "out_deg": out_deg,
            "out_offsets": out_offsets,
            "link_dst": link_dst,
            "link_port": link_port,
            "link_src": link_src,
            "link_group": link_group,
            "link_index": link_index,
            "link_names": link_names,
            "src_ops": src_ops,
            "src_rate": src_rate,
            "src_domain": src_domain,
            "gid_keys": gid_keys,
        }

    def _compile(self, remap_from: dict | None, reason: str = "replaced") -> int:
        """Full (re)build of the arena from the overlay's circuit set.

        ``remap_from`` is the previous ``(circuit, sid) -> op`` index
        when recompiling; surviving state (in-flight tuples, join
        state, aggregate credit, compiled parameters, global op ids)
        is carried over, and tuples of uninstalled circuits are
        dropped with accounting.  Returns the number dropped.

        Compiled parameters of identity-surviving circuits are
        *preserved* (not re-derived), matching the incremental path:
        an executing data plane keeps its compiled realized behavior
        across structural changes of *other* circuits.
        """
        old_credit = getattr(self, "_agg_credit", None)
        old_num_ops = getattr(self, "_num_ops", 0)
        survivors: dict[tuple[str, str], int] = {}
        old_cols = old_src = None
        old_services: dict[tuple[str, str], object] = {}
        if remap_from is not None:
            self._fold_link_stats()
            self.recompiles += 1
            self._tick_recompiles += 1
            _LOG.debug(
                "data-plane full recompile (%s): %d circuits installed",
                reason,
                len(self.overlay.circuits),
            )
            # Service snapshot of the outgoing compile — scale-event
            # detection diffs replica families old vs new.
            for c in self._compiled_circuits:
                for sid, svc in c.services.items():
                    old_services[(c.name, sid)] = svc
            old_by_name = {c.name: c for c in self._compiled_circuits}
            for key, old_i in remap_from.items():
                if old_by_name.get(key[0]) is self.overlay.circuits.get(key[0]):
                    survivors[key] = old_i
            old_cols = (
                self._op_sel,
                self._op_factor,
                self._op_pmatch,
                self._op_domain,
                self._slack,
                self._gid,
            )
            old_src = (self._src_pos, self._src_rate, self._src_domain)

        circuits = list(self.overlay.circuits.values())
        segs = [self._derive_circuit(c) for c in circuits]
        op_index: dict[tuple[str, str], int] = {}
        rows: list[tuple[object, list[str], int]] = []
        names_of_op: list[tuple[str, str]] = []
        for circuit, seg in zip(circuits, segs):
            rows.append((circuit, seg["sids"], len(op_index)))
            for sid in seg["sids"]:
                op_index[(circuit.name, sid)] = len(op_index)
                names_of_op.append((circuit.name, sid))
        num_ops = len(op_index)

        def cat(key: str, dtype) -> np.ndarray:
            if not segs:
                return np.zeros(0, dtype=dtype)
            return np.concatenate([s[key] for s in segs])

        kind = cat("kind", np.int8)
        in_deg = cat("in_deg", np.int64)
        op_sel = cat("op_sel", np.float64)
        op_factor = cat("op_factor", np.float64)
        op_pmatch = cat("op_pmatch", np.float64)
        op_domain = cat("op_domain", np.float64)
        op_replicas = cat("op_replicas", np.int64)
        slack = cat("slack", np.int64)
        out_deg = cat("out_deg", np.int64)
        link_group = cat("link_group", np.int64)
        link_index = cat("link_index", np.int64)

        # Global CSR assembly: each segment's link rows shift by its
        # bases; grouping by source op in row order is preserved.
        op_bases = np.zeros(len(segs), dtype=np.int64)
        link_bases = np.zeros(len(segs), dtype=np.int64)
        ob = lb = 0
        for i, seg in enumerate(segs):
            op_bases[i] = ob
            link_bases[i] = lb
            ob += len(seg["sids"])
            lb += int(seg["out_offsets"][-1])
        num_links = lb
        if segs:
            link_dst = np.concatenate(
                [s["link_dst"] + b for s, b in zip(segs, op_bases)]
            )
            link_src_op = np.concatenate(
                [s["link_src"] + b for s, b in zip(segs, op_bases)]
            )
            link_port = cat("link_port", np.int64)
            out_offsets = np.concatenate(
                [s["out_offsets"][:-1] + b for s, b in zip(segs, link_bases)]
            )
            src_ops = np.concatenate(
                [
                    np.asarray(s["src_ops"], dtype=np.int64) + b
                    for s, b in zip(segs, op_bases)
                ]
            )
            src_rate = np.concatenate(
                [np.asarray(s["src_rate"], dtype=np.float64) for s in segs]
            )
            src_domain = np.concatenate(
                [np.asarray(s["src_domain"], dtype=np.float64) for s in segs]
            )
        else:
            link_dst = np.zeros(0, dtype=np.int64)
            link_src_op = np.zeros(0, dtype=np.int64)
            link_port = np.zeros(0, dtype=np.int64)
            out_offsets = np.zeros(0, dtype=np.int64)
            src_ops = np.zeros(0, dtype=np.int64)
            src_rate = np.zeros(0, dtype=np.float64)
            src_domain = np.zeros(0, dtype=np.float64)
        link_names: list[tuple[str, str, str]] = []
        for seg in segs:
            link_names.extend(seg["link_names"])
        src_pos = {int(op): i for i, op in enumerate(src_ops)}

        # Stable global op ids: survivors keep theirs (the hash salt
        # must not change when rows move), fresh ops resolve through
        # the persistent gid-key registry — identically on the
        # full-rebuild and incremental paths, so twin planes agree.
        # Replica siblings share their base's gid key, so a family's
        # salts equal the unreplicated op's across every scale event.
        gid_keys_all: list[tuple[str, str]] = []
        for seg in segs:
            gid_keys_all.extend(seg["gid_keys"])
        gid = np.zeros(num_ops, dtype=np.int64)
        for key, new_i in op_index.items():
            old_i = survivors.get(key)
            if old_i is None:
                gid[new_i] = self._resolve_gid(gid_keys_all[new_i])
                continue
            gid[new_i] = old_cols[5][old_i]
            op_sel[new_i] = old_cols[0][old_i]
            op_factor[new_i] = old_cols[1][old_i]
            op_pmatch[new_i] = old_cols[2][old_i]
            op_domain[new_i] = old_cols[3][old_i]
            slack[new_i] = old_cols[4][old_i]
            old_pos = old_src[0].get(old_i)
            if old_pos is not None:
                new_pos = src_pos.get(new_i)
                if new_pos is not None:
                    src_rate[new_pos] = old_src[1][old_pos]
                    src_domain[new_pos] = old_src[2][old_pos]

        self._op_index = op_index
        self._circuit_rows = rows
        self._num_ops = num_ops
        self._kind = kind
        self._kind_cost = self._model.kind_costs()[kind]
        self._op_names = names_of_op
        self._is_sink = (out_deg == 0) & (in_deg > 0)
        self._out_deg = out_deg
        self._out_offsets = out_offsets
        self._link_dst = link_dst
        self._link_port = link_port
        self._link_src_op = link_src_op
        self._link_names = link_names
        self._link_tuples = np.zeros(num_links, dtype=np.int64)
        self._link_size = np.zeros(num_links, dtype=np.float64)
        self._op_sel = op_sel
        self._op_factor = op_factor
        self._op_pmatch = op_pmatch
        self._op_domain = op_domain
        self._op_replicas = op_replicas
        self._in_deg = in_deg
        self._slack = slack
        self._gid = gid
        self._link_group = link_group
        self._link_index = link_index
        self._has_partitioned = bool((link_group > 1).any())
        self._src_ops = src_ops
        self._src_rate = src_rate
        self._src_domain = src_domain
        self._src_pos = src_pos
        self._agg_credit = np.zeros(num_ops, dtype=np.float64)
        self.tick_link_tuples = np.zeros(num_links, dtype=np.int64)
        self._compiled_names = tuple(self.overlay.circuits.keys())
        # Held by identity: replacing a circuit under the same name is
        # still a different object and must trigger a recompile.
        self._compiled_circuits = tuple(circuits)

        # Reset arena bookkeeping: everything compact and live.
        self._arena.reset(
            [
                (c.name, len(seg["sids"]), int(seg["out_offsets"][-1]))
                for c, seg in zip(circuits, segs)
            ]
        )
        self._arena_rows = [
            (c, seg["sids"], self._arena.segments[c.name])
            for c, seg in zip(circuits, segs)
        ]
        self._host_cache = None
        self._live_links: np.ndarray | None = None
        self._live_link_names: list[tuple[str, str, str]] = link_names

        dropped = 0
        if remap_from is not None:
            key_split, credit_moves = self._scale_transitions(
                old_services, remap_from, op_index
            )
            mapping = np.full(max(old_num_ops, 1), -1, dtype=np.int64)
            for key, old_i in remap_from.items():
                new_i = op_index.get(key)
                if new_i is not None:
                    mapping[old_i] = new_i
                    # Members of a changed replica family re-home by key
                    # bucket instead (a rescale keeps low-index sids in
                    # both compiles — the plain copy would leave their
                    # state on a stale key range).
                    if old_credit is not None and old_i not in key_split:
                        self._agg_credit[new_i] = old_credit[old_i]
            if old_credit is not None:
                for old_i, dest in credit_moves:
                    self._agg_credit[dest] = (
                        self._agg_credit[dest] + old_credit[old_i]
                    ) % 1.0
            if self._transport is not None:
                dropped = self._transport.remap_ops(mapping, key_split or None)
                self.dropped_uninstalled += dropped
            self._remap_state(mapping, key_split or None)
        return dropped

    def _resolve_gid(self, gid_key: tuple[str, str]) -> int:
        """Persistent gid of a (circuit, service-family) key.

        First appearance draws from the monotone counter and registers;
        later compiles — including replaced circuits and scale events —
        get the same salt back, keeping hash decisions stable across
        the topology change.
        """
        g = self._gid_by_key.get(gid_key)
        if g is None:
            g = self._next_gid
            self._next_gid += 1
            self._gid_by_key[gid_key] = g
        return g

    def _scale_transitions(
        self,
        old_services: dict,
        remap_from: dict,
        op_index: dict,
    ) -> tuple[dict, list]:
        """Diff replica families across a recompile into key routes.

        Returns ``(key_split, credit_moves)``: ``key_split[old_op] =
        (targets, port)`` re-homes that op's in-flight tuples and join
        state by key bucket (the same routing rule the hash-router
        applies at send time), covering scale-up (base splits to the
        family), rescale (every old member re-buckets into the new
        family), and merge-down (members fold into the restored base;
        the old merge relay's in-flight output forwards to the base's
        downstream target).  ``credit_moves`` carries aggregate credit
        of split ops into the first target.  Called from the remap
        block of :meth:`_compile` once the new arrays are assigned.
        """
        new_fams: dict[tuple[str, str], list[int]] = {}
        for circuit in self._compiled_circuits:
            for sid, svc in circuit.services.items():
                info = getattr(svc, "replica", None)
                if info is None or info.is_merge:
                    continue
                fam = new_fams.setdefault(
                    (circuit.name, info.base), [-1] * info.count
                )
                fam[info.index] = op_index[(circuit.name, sid)]
        complete = {k for k, rows in new_fams.items() if all(r >= 0 for r in rows)}

        key_split: dict[int, tuple[np.ndarray, int | None]] = {}
        credit_moves: list[tuple[int, int]] = []
        for key, old_i in remap_from.items():
            svc = old_services.get(key)
            if svc is None:
                continue
            info = getattr(svc, "replica", None)
            if info is None:
                if key in complete and key not in op_index:
                    # Scale-up: the unreplicated base became a family.
                    targets = np.asarray(new_fams[key], dtype=np.int64)
                    key_split[old_i] = (targets, None)
                    credit_moves.append((old_i, int(targets[0])))
                continue
            fam_key = (key[0], info.base)
            if info.is_merge:
                if fam_key in complete:
                    continue  # rescale: the merge relay survives by sid
                base_row = op_index.get(fam_key)
                if base_row is not None and int(self._out_deg[base_row]) > 0:
                    # Merge-down: relay output in flight forwards past
                    # the restored base to its downstream target (it is
                    # base *output*, not join input).
                    li = int(self._out_offsets[base_row])
                    key_split[old_i] = (
                        np.asarray([int(self._link_dst[li])], dtype=np.int64),
                        int(self._link_port[li]),
                    )
                continue
            if fam_key in complete:
                rows = new_fams[fam_key]
                if len(rows) == info.count and key in op_index:
                    continue  # family unchanged; plain mapping applies
                targets = np.asarray(rows, dtype=np.int64)
                key_split[old_i] = (targets, None)
                credit_moves.append((old_i, int(targets[0])))
            else:
                base_row = op_index.get(fam_key)
                if base_row is not None:
                    key_split[old_i] = (
                        np.asarray([base_row], dtype=np.int64),
                        None,
                    )
                    credit_moves.append((old_i, base_row))
        return key_split, credit_moves

    def _assign_slack(self, circuit, incoming, op_index, slack) -> None:
        """Per-join state-retention slack = path staleness at compile.

        A tuple can arrive at a join delayed by its whole upstream path,
        so join state must outlive the window by that delay (mirrors
        ``CircuitExecutor``).  Uses the placement current at compile
        time; ``RuntimeConfig.eviction_slack`` overrides with a flat
        value.
        """
        if self.config.eviction_slack is not None:
            for sid, service in circuit.services.items():
                if service.kind is ServiceKind.JOIN:
                    slack[op_index[(circuit.name, sid)]] = self.config.eviction_slack
            return
        lat = self.overlay.latencies
        tick_ms = self.config.tick_ms
        memo: dict[str, int] = {}

        def delay(link) -> int:
            u = circuit.host_of(link.source)
            v = circuit.host_of(link.target)
            if u == v:
                return 0
            return max(0, int(np.rint(lat.latency(u, v) / tick_ms)))

        def staleness(sid: str) -> int:
            if sid in memo:
                return memo[sid]
            worst = 0
            for link in incoming[sid]:
                worst = max(worst, staleness(link.source) + delay(link))
            memo[sid] = worst
            return worst

        for sid, service in circuit.services.items():
            if service.kind is ServiceKind.JOIN:
                slack[op_index[(circuit.name, sid)]] = staleness(sid)

    def _fold_link_stats(self) -> None:
        for i, name in enumerate(self._link_names):
            if self._link_tuples[i] or self._link_size[i]:
                entry = self._link_stats_folded.setdefault(name, [0, 0.0])
                entry[0] += int(self._link_tuples[i])
                entry[1] += float(self._link_size[i])

    def _sync(self) -> int:
        current = tuple(self.overlay.circuits.values())
        if (
            tuple(self.overlay.circuits.keys()) == self._compiled_names
            and len(current) == len(self._compiled_circuits)
            and all(a is b for a, b in zip(current, self._compiled_circuits))
        ):
            return 0
        old_by_name = dict(zip(self._compiled_names, self._compiled_circuits))
        if not self.config.incremental:
            new = {c.name for c in current}
            old = set(self._compiled_names)
            parts = []
            if new - old:
                parts.append(f"installed {len(new - old)}")
            if old - new:
                parts.append(f"uninstalled {len(old - new)}")
            if any(
                old_by_name.get(c.name) is not None
                and old_by_name[c.name] is not c
                for c in current
            ):
                parts.append("replaced")
            return self._compile(
                remap_from=self._op_index, reason=", ".join(parts) or "changed"
            )
        for circuit in current:
            old = old_by_name.get(circuit.name)
            if old is not None and old is not circuit:
                # Same-name replacement: the new object's structure may
                # differ arbitrarily, so rebuild the arena — counted and
                # logged as a recompile (the churn observable).
                return self._compile(remap_from=self._op_index, reason="replaced")
        dropped = 0
        installed = self.overlay.circuits
        for name in self._compiled_names:
            if name not in installed:
                dropped += self._uninstall_segment(name)
        for circuit in current:
            if circuit.name not in old_by_name:
                self._install_segment(circuit)
        if self._arena.needs_compaction:
            self._compact_arena()
        self._compiled_names = tuple(installed.keys())
        self._compiled_circuits = current
        return dropped

    # -- incremental arena maintenance -------------------------------------

    def _refresh_live_links(self) -> None:
        """Recompute the live-link index + published key list.

        Called after any incremental structural change; the fresh list
        identity signals estimator column caches to rebuild.
        """
        self._live_links = self._arena.live_link_rows()
        self._live_link_names = [self._link_names[i] for i in self._live_links]

    def _install_segment(self, circuit) -> None:
        """Append one circuit as a new live segment at the arena end."""
        seg_cols = self._derive_circuit(circuit)
        sids = seg_cols["sids"]
        n = len(sids)
        n_links = int(seg_cols["out_offsets"][-1])
        seg = self._arena.append(circuit.name, n, n_links)
        base, link_base = seg.op_base, seg.link_base
        cat = np.concatenate
        self._kind = cat((self._kind, seg_cols["kind"]))
        self._in_deg = cat((self._in_deg, seg_cols["in_deg"]))
        self._op_sel = cat((self._op_sel, seg_cols["op_sel"]))
        self._op_factor = cat((self._op_factor, seg_cols["op_factor"]))
        self._op_pmatch = cat((self._op_pmatch, seg_cols["op_pmatch"]))
        self._op_domain = cat((self._op_domain, seg_cols["op_domain"]))
        self._op_replicas = cat((self._op_replicas, seg_cols["op_replicas"]))
        self._slack = cat((self._slack, seg_cols["slack"]))
        self._out_deg = cat((self._out_deg, seg_cols["out_deg"]))
        self._out_offsets = cat(
            (self._out_offsets, seg_cols["out_offsets"][:-1] + link_base)
        )
        self._is_sink = cat(
            (
                self._is_sink,
                (seg_cols["out_deg"] == 0) & (seg_cols["in_deg"] > 0),
            )
        )
        self._kind_cost = self._model.kind_costs()[self._kind]
        self._gid = cat(
            (
                self._gid,
                np.asarray(
                    [self._resolve_gid(k) for k in seg_cols["gid_keys"]],
                    dtype=np.int64,
                ).reshape(n),
            )
        )
        self._agg_credit = cat((self._agg_credit, np.zeros(n)))
        self._link_dst = cat((self._link_dst, seg_cols["link_dst"] + base))
        self._link_port = cat((self._link_port, seg_cols["link_port"]))
        self._link_src_op = cat((self._link_src_op, seg_cols["link_src"] + base))
        self._link_group = cat((self._link_group, seg_cols["link_group"]))
        self._link_index = cat((self._link_index, seg_cols["link_index"]))
        self._has_partitioned = bool((self._link_group > 1).any())
        self._link_names.extend(seg_cols["link_names"])
        self._link_tuples = cat(
            (self._link_tuples, np.zeros(n_links, dtype=np.int64))
        )
        self._link_size = cat((self._link_size, np.zeros(n_links)))
        for i, sid in enumerate(sids):
            self._op_index[(circuit.name, sid)] = base + i
            self._op_names.append((circuit.name, sid))
        if seg_cols["src_ops"]:
            self._src_ops = cat(
                (
                    self._src_ops,
                    np.asarray(seg_cols["src_ops"], dtype=np.int64) + base,
                )
            )
            self._src_rate = cat(
                (
                    self._src_rate,
                    np.asarray(seg_cols["src_rate"], dtype=np.float64),
                )
            )
            self._src_domain = cat(
                (
                    self._src_domain,
                    np.asarray(seg_cols["src_domain"], dtype=np.float64),
                )
            )
            self._src_pos = {int(op): i for i, op in enumerate(self._src_ops)}
        self._num_ops = self._arena.num_ops
        if self._host_cache is not None:
            self._host_cache = cat(
                (self._host_cache, np.zeros(n, dtype=np.int64))
            )
        self._arena_rows.append((circuit, sids, seg))
        self._refresh_live_links()

    def _uninstall_segment(self, name: str) -> int:
        """Tombstone one circuit's segment; returns in-flight drops."""
        seg = self._arena.tombstone(name)
        op_end = seg.op_base + seg.num_ops
        link_end = seg.link_base + seg.num_links
        # Fold the segment's measured per-link stats before zeroing.
        for i in range(seg.link_base, link_end):
            if self._link_tuples[i] or self._link_size[i]:
                entry = self._link_stats_folded.setdefault(
                    self._link_names[i], [0, 0.0]
                )
                entry[0] += int(self._link_tuples[i])
                entry[1] += float(self._link_size[i])
        self._link_tuples[seg.link_base : link_end] = 0
        self._link_size[seg.link_base : link_end] = 0.0
        self._agg_credit[seg.op_base : op_end] = 0.0
        for row in range(seg.op_base, op_end):
            self._op_index.pop(self._op_names[row], None)
        # Sources stay *compact* (not tombstoned): the per-tick Poisson
        # draw consumes the source-rate vector in row order, which must
        # match the legacy rebuild's install-order vector exactly.
        src_dead = (self._src_ops >= seg.op_base) & (self._src_ops < op_end)
        if src_dead.any():
            keep = ~src_dead
            self._src_ops = self._src_ops[keep]
            self._src_rate = self._src_rate[keep]
            self._src_domain = self._src_domain[keep]
            self._src_pos = {int(op): i for i, op in enumerate(self._src_ops)}
        dropped = 0
        if self._transport is not None:
            dropped = self._transport.remap_ops(self._arena.op_mapping())
            self.dropped_uninstalled += dropped
        self._drop_dead_state()
        self._arena_rows = [r for r in self._arena_rows if r[2] is not seg]
        self._refresh_live_links()
        return dropped

    def _drop_dead_state(self) -> None:
        """Drop join state owned by tombstoned ops.

        Survivor rows keep their composite keys and relative order (the
        mapping is the identity on live ops), so a mask is enough — no
        comp rewrite, no re-sort.
        """
        alive = self._arena.op_alive
        if self._mode == "array":
            self._hw_dirty = True
            if self._st_comp.size:
                keep = alive[(self._st_comp >> _U(33)).astype(np.int64)]
                if not keep.all():
                    self._st_comp = self._st_comp[keep]
                    self._st_ts = self._st_ts[keep]
                    self._st_size = self._st_size[keep]
            if self._stb_comp.size:
                keep = alive[(self._stb_comp >> _U(33)).astype(np.int64)]
                if not keep.all():
                    self._stb_comp = self._stb_comp[keep]
                    self._stb_ts = self._stb_ts[keep]
                    self._stb_size = self._stb_size[keep]
                    self._stb_sorted = None
            if self._epoch:
                ring = []
                for ch in self._ring:
                    keep = alive[(ch.comp >> _U(33)).astype(np.int64)]
                    if keep.all():
                        ring.append(ch)
                    elif keep.any():
                        ring.append(
                            _EpochChunk(
                                ch.comp[keep], ch.ts[keep],
                                ch.size[keep], ch.e[keep],
                            )
                        )
                self._ring = ring
                if self._epb_comp.size:
                    keep = alive[(self._epb_comp >> _U(33)).astype(np.int64)]
                    if not keep.all():
                        self._epb_comp = self._epb_comp[keep]
                        self._epb_ts = self._epb_ts[keep]
                        self._epb_size = self._epb_size[keep]
                        self._epb_e = self._epb_e[keep]
                        self._epb_sorted = None
                        self._epb_runs = None
        elif self._mode == "heap" and self._tables:
            self._tables = {
                key: entries
                for key, entries in self._tables.items()
                if alive[key[0]]
            }

    def _compact_arena(self) -> None:
        """Gather live rows over every column; unobservable in records.

        Global op ids (the hash salts) move with their rows, state and
        in-flight tuples are remapped with the order-preserving
        old->new mapping, and the published live-link key list keeps
        its identity (contents are unchanged), so estimator caches and
        every subsequent :class:`TrafficRecord` are unaffected.
        """
        op_gather, link_gather, op_map, _link_map = self._arena.compaction()
        for attr in (
            "_kind",
            "_in_deg",
            "_op_sel",
            "_op_factor",
            "_op_pmatch",
            "_op_domain",
            "_op_replicas",
            "_slack",
            "_out_deg",
            "_is_sink",
            "_kind_cost",
            "_gid",
            "_agg_credit",
        ):
            setattr(self, attr, getattr(self, attr)[op_gather])
        self._link_dst = op_map[self._link_dst[link_gather]]
        self._link_src_op = op_map[self._link_src_op[link_gather]]
        self._link_port = self._link_port[link_gather]
        self._link_group = self._link_group[link_gather]
        self._link_index = self._link_index[link_gather]
        self._has_partitioned = bool((self._link_group > 1).any())
        self._link_names = [self._link_names[i] for i in link_gather]
        self._link_tuples = self._link_tuples[link_gather]
        self._link_size = self._link_size[link_gather]
        # Live link rows stay grouped by (live) source op in row order,
        # so offsets rebuild from the gathered out-degrees.
        offsets = np.zeros(op_gather.size + 1, dtype=np.int64)
        np.cumsum(self._out_deg, out=offsets[1:])
        self._out_offsets = offsets[:-1]
        self._op_names = [self._op_names[i] for i in op_gather]
        self._op_index = {name: i for i, name in enumerate(self._op_names)}
        self._src_ops = op_map[self._src_ops]
        self._src_pos = {int(op): i for i, op in enumerate(self._src_ops)}
        if self._transport is not None:
            self._transport.remap_ops(op_map)  # all live: drops nothing
        self._remap_state(op_map)
        if self._host_cache is not None:
            self._host_cache = self._host_cache[op_gather]
        live_names = self._live_link_names
        self._arena.apply_compaction()
        self._num_ops = self._arena.num_ops
        self._live_links = self._arena.live_link_rows()
        # Contents and order of the live links are unchanged by
        # compaction; keeping the published list identity keeps
        # estimator column caches valid (compaction is unobservable).
        self._live_link_names = live_names
        _LOG.debug(
            "arena compacted: %d ops / %d links live",
            self._num_ops,
            len(self._link_names),
        )

    def _remap_state(
        self, mapping: np.ndarray, key_split: dict | None = None
    ) -> None:
        """Re-address join state after a recompile (both layouts).

        ``key_split`` (see the transports) re-homes split ops' state by
        key bucket — the partition each key's state lands on is the
        replica the router will deliver that key's future tuples to,
        which is what keeps replicated join results exact across scale
        events.
        """
        if self._mode == "array" and self._epoch:
            self._hw_dirty = True
            self._flush_epoch(merge=False)
            if not self._ring:
                return
            # Chunks concatenated in ring order preserve global
            # insertion order within equal composite keys, so one
            # stable re-sort by the rewritten keys rebuilds a single
            # chunk with the exact reference enumeration order (split
            # siblings own disjoint key ranges, so no two old sources
            # collide under one new key).
            comp0 = np.concatenate([ch.comp for ch in self._ring])
            ts0 = np.concatenate([ch.ts for ch in self._ring])
            size0 = np.concatenate([ch.size for ch in self._ring])
            self._ring = []
            ops = (comp0 >> _U(33)).astype(np.int64)
            rest = comp0 & _U((1 << 33) - 1)
            new_ops = mapping[ops]
            if key_split:
                keys = (comp0 & _U((1 << 32) - 1)).astype(np.int64)
                for old, (targets, _port) in key_split.items():
                    mask = ops == old
                    if not mask.any():
                        continue
                    new_ops[mask] = targets[
                        route_bucket(keys[mask], len(targets))
                    ]
            keep = new_ops >= 0
            # Stored expiries are recomputed against the *new* slack
            # column (placement-dependent, refreshed by the compile);
            # the reference derives its eviction threshold from the
            # live slack every tick, so the remapped ring must too.
            new_ops = new_ops[keep]
            ts0 = ts0[keep]
            e = ts0 + self.config.window + self._slack[new_ops]
            live = e >= self.tick
            if not live.all():
                new_ops, ts0, e = new_ops[live], ts0[live], e[live]
                keep = np.flatnonzero(keep)[live]
            comp = (new_ops.astype(_U) << _U(33)) | rest[keep]
            if comp.size:
                order = np.argsort(comp, kind="stable")
                self._ring = [
                    _EpochChunk(
                        comp[order], ts0[order],
                        size0[keep][order],
                        e[order].astype(np.int32),
                    )
                ]
        elif self._mode == "array":
            self._hw_dirty = True
            self._merge_state()
            if not self._st_comp.size:
                return
            ops = (self._st_comp >> _U(33)).astype(np.int64)
            rest = self._st_comp & _U((1 << 33) - 1)
            new_ops = mapping[ops]
            if key_split:
                keys = (self._st_comp & _U((1 << 32) - 1)).astype(np.int64)
                for old, (targets, _port) in key_split.items():
                    mask = ops == old
                    if not mask.any():
                        continue
                    new_ops[mask] = targets[
                        route_bucket(keys[mask], len(targets))
                    ]
            keep = new_ops >= 0
            comp = (new_ops[keep].astype(_U) << _U(33)) | rest[keep]
            order = np.argsort(comp, kind="stable")
            self._st_comp = comp[order]
            self._st_ts = self._st_ts[keep][order]
            self._st_size = self._st_size[keep][order]
        elif self._mode == "heap" and self._tables:
            split = key_split or {}
            tables: dict = {}
            for (op, side, key), entries in self._tables.items():
                route = split.get(op)
                if route is not None:
                    targets = route[0]
                    new = int(targets[route_bucket_int(key, len(targets))])
                else:
                    new = int(mapping[op])
                    if new < 0:
                        continue
                # Key ranges of split siblings are disjoint, so no two
                # sources collide; extend defensively all the same.
                dest = tables.setdefault((new, side, key), entries)
                if dest is not entries:
                    dest.extend(entries)
            self._tables = tables

    # -- shared per-tick helpers -------------------------------------------

    def _use_mode(self, mode: str) -> None:
        if self._mode is None:
            self._mode = mode
            reliable = self.config.reliable
            bound = self.config.retransmit_buffer
            if mode == "array":
                self._transport = (
                    ReliableTransport(
                        bound, scratch=self._scratch, kernels=self._jit
                    )
                    if reliable
                    else ArrayTransport(self._scratch, kernels=self._jit)
                )
                # Two-level join state: sorted base + append buffer,
                # merged once the buffer exceeds _state_merge_limit.
                # (Allocated in both layouts: the epoch ring keeps the
                # reference arrays empty.)
                self._st_comp = np.empty(0, dtype=np.uint64)
                self._st_ts = np.empty(0, dtype=np.int64)
                self._st_size = np.empty(0, dtype=np.float64)
                self._stb_comp = np.empty(0, dtype=np.uint64)
                self._stb_ts = np.empty(0, dtype=np.int64)
                self._stb_size = np.empty(0, dtype=np.float64)
                self._stb_sorted: tuple[np.ndarray, np.ndarray] | None = None
                # Epoch-ring join state: a ring of sorted chunks (older
                # first) plus an append buffer carrying stored expiry
                # ticks; see _flush_epoch / _probe_epoch.  Tick columns
                # (ts, e) are int32 — tick counts stay far below 2^31
                # and halving their width halves the merge and gather
                # bandwidth of the hottest columns (_pair_bucket casts
                # operands through uint64, so hashes are unchanged, and
                # arithmetic against int64 upcasts before any output).
                self._ring: list[_EpochChunk] = []
                self._epb_comp = np.empty(0, dtype=np.uint64)
                self._epb_ts = np.empty(0, dtype=np.int32)
                self._epb_size = np.empty(0, dtype=np.float64)
                self._epb_e = np.empty(0, dtype=np.int32)
                self._epb_sorted: tuple[np.ndarray, np.ndarray] | None = None
                self._epb_runs: tuple[np.ndarray, np.ndarray] | None = None
            else:
                self._transport = (
                    ReliableHeapTransport(bound) if reliable else HeapTransport()
                )
                self._tables = {}
        elif self._mode != mode:
            raise RuntimeError(
                "DataPlane committed to the other step path; build a twin "
                "instance to compare step() against step_scalar()"
            )

    def _host_array(self) -> np.ndarray:
        """Current hosting node of every op, from live placements.

        Resolved fresh each tick, which is what re-homes in-flight
        tuples across migrations for free: delivery looks the target
        service's node up *now*, not at send time.

        On the arena path the column is cached and refreshed per
        segment only when the owning circuit's placement-version
        counter changed (``Circuit.assign`` bumps it), eliminating the
        per-tick Python loop over every service; the legacy path keeps
        the full rebuild as the reference.
        """
        if not self.config.incremental:
            host = np.zeros(self._num_ops, dtype=np.int64)
            for circuit, sids, base in self._circuit_rows:
                placement = circuit.placement
                for i, sid in enumerate(sids):
                    host[base + i] = placement[sid]
            return host
        cache = self._host_cache
        if cache is None or cache.size != self._num_ops:
            cache = self._host_cache = np.zeros(self._num_ops, dtype=np.int64)
            for _, _, seg in self._arena_rows:
                seg.host_version = -1
        for circuit, sids, seg in self._arena_rows:
            version = circuit._placement_version
            if seg.host_version == version:
                continue
            placement = circuit.placement
            base = seg.op_base
            for i, sid in enumerate(sids):
                cache[base + i] = placement[sid]
            seg.host_version = version
        return cache

    def _draw_tick(self) -> tuple[np.ndarray, np.ndarray]:
        """The tick's source randomness (shared by both step paths)."""
        counts = self._rng.poisson(self._src_rate).astype(np.int64)
        u = self._rng.random(int(counts.sum()))
        return counts, u

    def _alive(self) -> np.ndarray:
        return self.overlay.alive_mask()

    def _apply_drift(self, now: int) -> None:
        """Walk the realized operator parameters along their drift specs.

        Deterministic (no RNG) and applied identically by both step
        paths, so twin data planes remain tick-for-tick equivalent; the
        specs re-assert themselves after recompiles because this runs
        at the start of every tick.
        """
        for spec in self.config.drift:
            op = self._op_index.get((spec.circuit, spec.service))
            if op is None:
                continue
            if spec.gated and now <= spec.begin:
                continue
            value = spec.value(now)
            if spec.param == "selectivity":
                self._op_sel[op] = min(1.0, value)
            elif spec.param == "match_probability":
                self._op_pmatch[op] = min(1.0, value)
            elif spec.param == "aggregate_factor":
                self._op_factor[op] = min(1.0, value)
            else:  # source_rate
                pos = self._src_pos.get(op)
                if pos is not None:
                    self._src_rate[pos] = value

    def _begin_tick_stats(self) -> None:
        """Snapshot the cumulative counters the per-tick stats diff."""
        self._snap_link = self._link_tuples.copy()
        self._snap_drops = self.dropped_by_node.copy()
        self._snap_processed = self.processed_by_node.copy()
        self._snap_node_kind = self.processed_node_kind.copy()

    def _end_tick_stats(self) -> None:
        """Publish this tick's per-link / per-node measured statistics.

        With tombstoned arena rows, only *live* link rows are published
        (in row order, matching :meth:`link_keys`); dead rows carry no
        traffic but must not leak into the control plane's estimator.
        """
        diff = self._link_tuples - self._snap_link
        self.tick_link_tuples = (
            diff if self._live_links is None else diff[self._live_links]
        )
        self.tick_node_drops = self.dropped_by_node - self._snap_drops
        self.tick_node_processed = self.processed_by_node - self._snap_processed
        self.tick_node_kind_processed = (
            self.processed_node_kind - self._snap_node_kind
        ).reshape(self.overlay.num_nodes, 4)

    def _finish_tick_cpu(self, host: np.ndarray, cpu_dropped: float) -> float:
        """Scatter the tick's per-op CPU cost to hosting nodes.

        Hosts are fixed for the duration of a tick (migrations happen
        between ticks), so one weighted bincount attributes every cost
        unit; the per-tick vector is published as
        :attr:`tick_node_cpu`.  Returns the tick total.
        """
        node_cpu = np.bincount(
            host, weights=self._tick_op_cost, minlength=self.overlay.num_nodes
        )
        self.tick_node_cpu = node_cpu
        self.tick_op_cpu = self._tick_op_cost.copy()
        self.cpu_by_node += node_cpu
        tick_cpu = float(self._tick_op_cost.sum())
        self.cpu_cost_total += tick_cpu
        self.cpu_dropped_total += cpu_dropped
        return tick_cpu

    def _effective_cap(self) -> np.ndarray | None:
        """Per-node admission limit: capacity ∧ controller shed limits."""
        if self._shed_active == 0:
            return self._cap
        if self._cap is None:
            return self._shed
        return np.minimum(self._cap, self._shed)

    def _state_counts(self) -> np.ndarray:
        """Windowed join-state entries per (op, side), committed mode.

        The O(state) full scan — the ``admission="frozen"`` reference
        and the rebuild source of the high-water ledger.  On the epoch
        ring only live rows (``e >= now``) count: they are exactly the
        rows the eager-evicting reference layouts still hold.
        """
        counts = np.zeros(2 * self._num_ops)
        if self._mode == "array":
            if self._epoch:
                now = self.tick
                for ch in self._ring:
                    live = ch.e >= now
                    idx = (ch.comp[live] >> _U(32)).astype(np.int64)
                    if idx.size:
                        counts += np.bincount(idx, minlength=2 * self._num_ops)
                if self._epb_comp.size:
                    live = self._epb_e >= now
                    idx = (self._epb_comp[live] >> _U(32)).astype(np.int64)
                    if idx.size:
                        counts += np.bincount(idx, minlength=2 * self._num_ops)
                return counts.reshape(self._num_ops, 2)
            for comp in (self._st_comp, self._stb_comp):
                if comp.size:
                    idx = (comp >> _U(32)).astype(np.int64)
                    counts += np.bincount(idx, minlength=2 * self._num_ops)
        elif self._mode == "heap":
            for (op, side, _key), entries in self._tables.items():
                counts[2 * op + side] += len(entries)
        return counts.reshape(self._num_ops, 2)

    # -- high-water admission ledger ---------------------------------------
    #
    # ``admission="highwater"`` replaces the tick-start O(state) scan
    # with an exact incremental ledger: per-(op, side) live counts plus
    # a circular death histogram indexed by stored expiry tick modulo
    # the expiry horizon (window + max slack + margin).  Inserts are a
    # bincount plus one scatter-add into the histogram — O(batch) with
    # no sort; the tick boundary retires exactly one histogram row —
    # O(ops).  At every tick start the ledger equals the full scan, so
    # the 1/256-quantized admission prices are bit-identical to the
    # frozen-scan reference.  Structural remaps (compaction,
    # recompiles, scale events, uninstalls) mark the ledger dirty; the
    # next price computation rebuilds it from state.

    @property
    def _hw_on(self) -> bool:
        """Ledger maintenance needed?  Only join probe prices read it."""
        return (
            self.config.admission == "highwater"
            and self._model.probe_cost != 0
        )

    def _hw_state_counts(self) -> np.ndarray:
        """Ledger view of :meth:`_state_counts`, rebuilt when dirty."""
        if self._hw_dirty or self._hw_counts.size != 2 * self._num_ops:
            self._hw_rebuild()
        return self._hw_counts.astype(np.float64).reshape(self._num_ops, 2)

    def _hw_rebuild(self) -> None:
        """Recount live state and re-derive the death histogram."""
        num2 = 2 * self._num_ops
        now = self.tick
        # Every live row's stored expiry sits in [now, now + window +
        # max slack], so a circular histogram over that horizon (plus a
        # margin row so "just inserted" and "about to retire" never
        # alias) indexes deaths by ``e % horizon``.  Slack changes
        # funnel through remap, which marks the ledger dirty — the
        # horizon is re-derived here every rebuild.
        slack_max = int(self._slack.max()) if self._slack.size else 0
        self._hw_h = self.config.window + slack_max + 2
        self._hw_deaths = np.zeros((self._hw_h, num2), dtype=np.int64)
        self._hw_clock = now
        counts = np.zeros(num2, dtype=np.int64)
        if self._epoch:
            levels = [(ch.comp, ch.e) for ch in self._ring]
            if self._epb_comp.size:
                levels.append((self._epb_comp, self._epb_e))
        else:
            levels = []
            for comp, ts in (
                (self._st_comp, self._st_ts),
                (self._stb_comp, self._stb_ts),
            ):
                if comp.size:
                    ops = (comp >> _U(33)).astype(np.int64)
                    levels.append(
                        (comp, ts + self.config.window + self._slack[ops])
                    )
        for comp, e in levels:
            live = e >= now
            if not live.all():
                comp = comp[live]
                e = e[live]
            opside = (comp >> _U(32)).astype(np.int64)
            if opside.size:
                counts += np.bincount(opside, minlength=num2)
                np.add.at(self._hw_deaths, (e % self._hw_h, opside), 1)
        self._hw_counts = counts
        self._hw_dirty = False

    def _hw_insert(self, comp: np.ndarray, e_sched: np.ndarray) -> None:
        """Fold one insert batch into the ledger (O(batch), no sort)."""
        num2 = 2 * self._num_ops
        if self._hw_dirty or self._hw_counts.size != num2:
            self._hw_dirty = True
            return
        if e_sched.size and int(e_sched.max()) - self._hw_clock >= self._hw_h:
            # Horizon outgrown (e.g. slack raised without a remap in
            # between) — fall back to a rebuild at the next pricing.
            self._hw_dirty = True
            return
        opside = (comp >> _U(32)).astype(np.int64)
        self._hw_counts += np.bincount(opside, minlength=num2)
        np.add.at(self._hw_deaths, (e_sched % self._hw_h, opside), 1)

    def _hw_advance(self, now: int) -> None:
        """Retire expired histogram rows at the tick boundary (O(ops))."""
        if self._hw_dirty or now <= self._hw_clock:
            return
        if now - self._hw_clock >= self._hw_h:
            self._hw_counts -= self._hw_deaths.sum(axis=0)
            self._hw_deaths[:] = 0
        else:
            for t in range(self._hw_clock, now):
                row = self._hw_deaths[t % self._hw_h]
                self._hw_counts -= row
                row[:] = 0
        self._hw_clock = now

    def _admission_costs(self) -> np.ndarray:
        """Expected per-tuple admission cost of every (op, in-port).

        Frozen once per tick (right after state eviction, before any
        delivery round), so both step paths price admission from the
        identical tick-start state: joins charge their base plus the
        probe cost of the *expected* candidate count — the opposite
        side's current state over the key domain — and aggregates their
        base plus one batch increment.  Deterministic (no RNG, no
        mid-tick state), hence twin-safe; prices are quantized to 1/256
        cost units so dropped-demand totals accumulate exactly in any
        summation order (the dyadic-exactness discipline).
        """
        model = self._model
        adm = np.repeat(self._kind_cost[:, None], 2, axis=1)
        if model.aggregate_batch_cost:
            adm[self._kind == _AGG] += model.aggregate_batch_cost
        if model.probe_cost:
            joins = self._kind == _JOIN
            if joins.any():
                counts = (
                    self._hw_state_counts()
                    if self._mode == "array"
                    and self.config.admission == "highwater"
                    else self._state_counts()
                )
                # A k-replica join sees only its domain/k key slice, so
                # the expected candidates per admitted tuple scale by k.
                expected = counts[:, ::-1] / np.maximum(
                    self._op_domain[:, None] / self._op_replicas[:, None],
                    1.0,
                )
                adm[joins] += model.probe_cost * expected[joins]
        return np.round(adm * 256.0) / 256.0

    def set_shed_limit(self, node: int, limit: float | None) -> None:
        """Set (or clear, with None) a controller shed limit on a node.

        The limit is in CPU cost units per tick, like ``node_capacity``
        (== tuples/tick under the default unit model).  Tuples rejected
        because of a shed limit are dropped with their own attribution
        (``dropped_shed``), distinct from capacity backpressure.
        """
        if not 0 <= node < self.overlay.num_nodes:
            raise ValueError(f"node {node} outside overlay")
        if limit is not None and limit < 0:
            raise ValueError("shed limit must be non-negative")
        was_active = bool(np.isfinite(self._shed[node]))
        self._shed[node] = np.inf if limit is None else float(limit)
        is_active = limit is not None
        self._shed_active += int(is_active) - int(was_active)

    @property
    def load_model(self) -> LoadModel:
        """The model currently pricing admission and cost attribution.

        Starts as ``config.load_model`` (unit model when None) and moves
        with :meth:`set_load_model` — readers wanting the live pricing
        basis (e.g. the controller's drift feedback) must use this, not
        the frozen config.
        """
        return self._model

    def set_load_model(self, model: LoadModel) -> None:
        """Swap the active load model (the controller's calibration hook).

        Takes effect at the next tick's admission pricing and cost
        attribution: the per-op kind-cost column is re-gathered and the
        high-water ledger invalidated (its schedule is model-gated).
        Keep coefficients dyadic (1/256 grid) to preserve the
        exact-accumulation discipline.
        """
        self._model = model
        self._kind_cost = model.kind_costs()[self._kind]
        self._hw_dirty = True

    def _shed_attribution(self, nodes: np.ndarray) -> np.ndarray:
        """True where an admission drop at ``nodes`` is shed-attributed.

        A node's drop counts as *shed* when the controller's limit is
        the binding constraint (tighter than the configured capacity).
        """
        base = (
            np.full(nodes.shape, np.inf)
            if self._cap is None
            else self._cap[nodes]
        )
        return self._shed[nodes] < base

    @staticmethod
    def _percentiles(lat: np.ndarray) -> tuple[float, float, float]:
        if lat.size == 0:
            return 0.0, 0.0, 0.0
        p50, p95, p99 = np.percentile(lat, [50.0, 95.0, 99.0])
        return float(p50), float(p95), float(p99)

    # -- vectorized path ---------------------------------------------------

    def step(self) -> TrafficRecord:
        """Advance one tick through the batched kernels."""
        self._use_mode("array")
        trace = self._trace_handle()
        prof = self._prof_handle()
        self._transport.trace = trace
        if trace is not None:
            trace.begin_tick(self.tick + 1)
        self._tick_recompiles = 0
        if prof is not None:
            prof.begin("compile")
        dropped_sync = self._sync()
        if prof is not None:
            prof.end()
        self.tick += 1
        now = self.tick
        self._apply_drift(now)
        self._begin_tick_stats()
        host = self._host_array()
        alive = self._alive()
        lat = self.overlay.latencies.values
        cap = self._effective_cap()
        node_used = (
            self._scratch.zeros("node_used", self.overlay.num_nodes)
            if cap is not None
            else None
        )
        reliable = self.config.reliable
        self._tick_usage = 0.0
        t_emitted = t_delivered = t_processed = 0
        t_dropped = dropped_sync
        t_shed = 0
        t_cpu_dropped = 0.0
        tick_lat: list[np.ndarray] = []

        self._evict_state_array(now)
        # Per-op measured CPU cost of this tick (reused scratch; views
        # into it never outlive the tick); admission prices are frozen
        # now, from the post-eviction state (twin-identical).
        self._tick_op_cost = self._scratch.zeros("op_cost", self._num_ops)
        adm = self._admission_costs() if cap is not None else None

        # 0. Reliable redelivery: buffered tuples whose target service's
        # current host is alive again rejoin this tick's first round.
        t_redelivered = 0
        if reliable:
            if prof is not None:
                prof.begin("redeliver")
            t_redelivered = self._transport.redeliver(alive[host], now)
            self.redelivered += t_redelivered
            if prof is not None:
                prof.end()

        # 1. Sources emit (one Poisson draw + one uniform draw, total).
        if prof is not None:
            prof.begin("sources")
        counts, u = self._draw_tick()
        if counts.size and counts.sum():
            live = np.repeat(alive[host[self._src_ops]], counts)
            keys = np.floor(u * np.repeat(self._src_domain, counts)).astype(np.int64)
            ops = np.repeat(self._src_ops, counts)[live]
            keys = keys[live]
            m = ops.size
            if m:
                t_emitted = m
                self.emitted += m
                self._send_array(
                    ops, keys, np.full(m, now, dtype=np.int64), np.ones(m), now, host, lat,
                    trace=trace, emit=True,
                )
        if prof is not None:
            prof.end()

        # 2. Delivery rounds until nothing further is due this tick.
        if prof is not None:
            prof.begin("delivery")
        while True:
            if prof is not None:
                prof.begin("extract")
            batch = self._transport.due(now)
            if batch is None:
                if prof is not None:
                    prof.end()
                break
            order = np.lexsort((batch["seq"], batch["port"], batch["op"]))
            op = batch["op"][order]
            port = batch["port"][order]
            key = batch["key"][order]
            ts = batch["ts"][order]
            size = batch["size"][order]
            seq = batch["seq"][order]
            node = host[op]
            if prof is not None:
                prof.end()
                prof.begin("admission")
            if trace is not None:
                trace.record(trace.DELIVER, seq, op, node)

            live = alive[node]
            ndead = int(op.size - live.sum())
            if ndead:
                if reliable:
                    dead = ~live
                    overflow = self._transport.buffer(
                        op[dead], port[dead], key[dead], ts[dead], size[dead], seq[dead]
                    )
                    self.dropped_overflow += overflow
                    t_dropped += overflow
                    if trace is not None:
                        # buffer() accepts a canonical-order prefix, so
                        # the accepted/overflowed split is positional.
                        accept = ndead - overflow
                        dseq, dop, dnode = seq[dead], op[dead], node[dead]
                        trace.record(
                            trace.BUFFER, dseq[:accept], dop[:accept], dnode[:accept]
                        )
                        trace.record(
                            trace.DROP_OVERFLOW,
                            dseq[accept:], dop[accept:], dnode[accept:],
                        )
                else:
                    self.dropped_dead += ndead
                    t_dropped += ndead
                    if trace is not None:
                        dead = ~live
                        trace.record(trace.DROP_DEAD, seq[dead], op[dead], node[dead])
                op, port, key, ts, size, node = (
                    a[live] for a in (op, port, key, ts, size, node)
                )
                if trace is not None:
                    seq = seq[live]
            if cap is not None and op.size:
                costs = adm[op, np.minimum(port, 1)]
                keep = self._jit.capacity_gate(node, node_used, cap, costs)
                ncap = int(op.size - keep.sum())
                if ncap:
                    rejected = node[~keep]
                    shed_mask = self._shed_attribution(rejected)
                    nshed = int(shed_mask.sum())
                    self.dropped_shed += nshed
                    t_shed += nshed
                    self.dropped_capacity += ncap - nshed
                    t_dropped += ncap
                    t_cpu_dropped += float(costs[~keep].sum())
                    np.add.at(self.dropped_by_node, rejected, 1)
                    if trace is not None:
                        rseq, rop = seq[~keep], op[~keep]
                        trace.record(
                            trace.DROP_SHED,
                            rseq[shed_mask], rop[shed_mask], rejected[shed_mask],
                        )
                        trace.record(
                            trace.DROP_CAPACITY,
                            rseq[~shed_mask], rop[~shed_mask], rejected[~shed_mask],
                        )
                    op, port, key, ts, size = (
                        a[keep] for a in (op, port, key, ts, size)
                    )
                    if trace is not None:
                        seq = seq[keep]
            if prof is not None:
                prof.end()
            m = op.size
            if m == 0:
                continue
            t_processed += m
            self.processed += m
            np.add.at(self.processed_by_node, host[op], 1)
            np.add.at(
                self.processed_node_kind,
                host[op] * 4 + self._kind[op].astype(np.int64),
                1,
            )
            if trace is not None:
                trace.record(trace.PROCESS, seq, op, host[op])
            # Base per-tuple kind costs; aggregates and joins add their
            # batch / probe terms inside _process_array.
            self._tick_op_cost += np.bincount(
                op, weights=self._kind_cost[op], minlength=self._num_ops
            )

            sink = self._is_sink[op]
            ns = int(sink.sum())
            if ns:
                t_delivered += ns
                self.sink_delivered += ns
                tick_lat.append(
                    (now - ts[sink]).astype(np.float64) * self.config.tick_ms
                )
                if self.sink_log is not None:
                    so, sk, st, ssz = op[sink], key[sink], ts[sink], size[sink]
                    self.sink_log.extend(
                        (
                            self._op_names[int(so[i])][1],
                            int(sk[i]),
                            int(st[i]),
                            float(ssz[i]),
                        )
                        for i in range(ns)
                    )
            rest = ~sink
            if rest.any():
                pos = np.flatnonzero(rest)
                if prof is not None:
                    prof.begin("operators")
                out = self._process_array(
                    op[rest], port[rest], key[rest], ts[rest], size[rest], pos, now
                )
                if prof is not None:
                    prof.end()
                if out is not None:
                    if prof is not None:
                        prof.begin("fanout")
                    self._send_array(*out, now, host, lat, trace=trace)
                    if prof is not None:
                        prof.end()
        if prof is not None:
            prof.end()

        self._usage_total += self._tick_usage
        self._end_tick_stats()
        tick_cpu = self._finish_tick_cpu(host, t_cpu_dropped)
        lat_all = (
            np.concatenate(tick_lat) if tick_lat else np.empty(0, dtype=np.float64)
        )
        p50, p95, p99 = self._percentiles(lat_all)
        if self._obs is not None:
            self._obs.data_plane_tick(self, lat_all)
        return TrafficRecord(
            tick=now,
            emitted=t_emitted,
            delivered=t_delivered,
            dropped=t_dropped,
            processed=t_processed,
            in_flight=self._transport.in_flight,
            usage=self._tick_usage,
            latency_p50=p50,
            latency_p95=p95,
            latency_p99=p99,
            shed=t_shed,
            redelivered=t_redelivered,
            buffered=self._transport.buffered,
            cpu_cost=tick_cpu,
            cpu_dropped=t_cpu_dropped,
            recompiles=self._tick_recompiles,
        )

    @staticmethod
    def _capacity_filter(
        nodes: np.ndarray,
        node_used: np.ndarray,
        cap: np.ndarray,
        costs: np.ndarray,
    ) -> np.ndarray:
        """First-come-first-served per-node admission in canonical order.

        The NumPy reference implementation lives in
        :func:`repro.runtime.jit.capacity_gate_numpy`; the hot loop
        dispatches through the configured kernel tier instead, which
        must admit the identical canonical-order prefix per node.
        """
        return jit_kernels.capacity_gate_numpy(nodes, node_used, cap, costs)

    def _evict_state_array(self, now: int) -> None:
        if self._epoch:
            # O(expired): drop whole chunks whose youngest row expired;
            # partially-expired chunks stay — their dead rows are
            # invisible to probes (liveness mask) and to the admission
            # counts, and are physically shed at the next merge that
            # touches them.
            if self._ring and any(ch.max_e < now for ch in self._ring):
                self._ring = [ch for ch in self._ring if ch.max_e >= now]
        else:
            if self._st_comp.size:
                ops = (self._st_comp >> _U(33)).astype(np.int64)
                thr = now - self.config.window - self._slack[ops]
                keep = self._st_ts >= thr
                if not keep.all():
                    self._st_comp = self._st_comp[keep]
                    self._st_ts = self._st_ts[keep]
                    self._st_size = self._st_size[keep]
            if self._stb_comp.size:
                ops = (self._stb_comp >> _U(33)).astype(np.int64)
                thr = now - self.config.window - self._slack[ops]
                keep = self._stb_ts >= thr
                if not keep.all():
                    self._stb_comp = self._stb_comp[keep]
                    self._stb_ts = self._stb_ts[keep]
                    self._stb_size = self._stb_size[keep]
                    self._stb_sorted = None
        if self._hw_on:
            self._hw_advance(now)

    def _merge_state(self) -> None:
        """Absorb the append buffer into the sorted base (one copy).

        Buffer entries are younger than every base entry with the same
        composite key, so a stable sort of the buffer followed by a
        ``side="right"`` insert preserves global insertion order within
        equal keys — the invariant the match-rank enumeration relies
        on.
        """
        if not self._stb_comp.size:
            return
        order = np.argsort(self._stb_comp, kind="stable")
        comp = self._stb_comp[order]
        where = np.searchsorted(self._st_comp, comp, side="right")
        self._st_comp = np.insert(self._st_comp, where, comp)
        self._st_ts = np.insert(self._st_ts, where, self._stb_ts[order])
        self._st_size = np.insert(self._st_size, where, self._stb_size[order])
        self._stb_comp = np.empty(0, dtype=np.uint64)
        self._stb_ts = np.empty(0, dtype=np.int64)
        self._stb_size = np.empty(0, dtype=np.float64)
        self._stb_sorted = None

    def _buffer_sorted(self) -> tuple[np.ndarray, np.ndarray]:
        """(stable order, sorted comps) view of the append buffer, cached."""
        if self._stb_sorted is None:
            order = np.argsort(self._stb_comp, kind="stable")
            self._stb_sorted = (order, self._stb_comp[order])
        return self._stb_sorted

    def _epb_sorted_view(self) -> tuple[np.ndarray, np.ndarray]:
        """(stable order, sorted comps) view of the epoch buffer, cached."""
        if self._epb_sorted is None:
            order = np.argsort(self._epb_comp, kind="stable")
            self._epb_sorted = (order, self._epb_comp[order])
        return self._epb_sorted

    def _epb_runs_view(self) -> tuple[np.ndarray, np.ndarray]:
        """(distinct comps, run starts + sentinel) of the sorted buffer.

        Same layout as :meth:`_EpochChunk.index`, so buffer probes use
        the identical one-sweep run lookup as ring chunks.
        """
        if self._epb_runs is None:
            _order, comp = self._epb_sorted_view()
            head = np.flatnonzero(comp[1:] != comp[:-1]) + 1
            starts = np.concatenate(([0], head, [comp.size]))
            self._epb_runs = (comp[starts[:-1]], starts)
        return self._epb_runs

    def _flush_epoch(self, merge: bool = True) -> None:
        """Seal the append buffer into a fresh youngest chunk.

        Only the batch is sorted (stable, preserving insertion order
        within equal keys — every row here is younger than every
        equal-key row already in the ring).  With ``merge`` the ring
        then rebalances under the two-generation discipline: the
        sealed chunk folds into the young generation (O(young)), and
        the young generation folds into the old one only once it
        reaches a quarter of its size — so probes see at most three
        sorted levels (old, young, buffer) while each row is copied
        only O(ratio) times into the old generation over its life,
        instead of the reference's every-merge O(state) rewrite.
        """
        if self._epb_comp.size:
            order, comp = self._epb_sorted_view()
            live = self._epb_e >= self.tick
            if live.all():
                chunk = _EpochChunk(
                    comp, self._epb_ts[order],
                    self._epb_size[order], self._epb_e[order],
                )
            else:
                keep = order[live[order]]
                chunk = _EpochChunk(
                    self._epb_comp[keep], self._epb_ts[keep],
                    self._epb_size[keep], self._epb_e[keep],
                )
            if chunk.comp.size:
                self._ring.append(chunk)
            self._epb_comp = np.empty(0, dtype=np.uint64)
            self._epb_ts = np.empty(0, dtype=np.int32)
            self._epb_size = np.empty(0, dtype=np.float64)
            self._epb_e = np.empty(0, dtype=np.int32)
            self._epb_sorted = None
            self._epb_runs = None
        if merge:
            ring = self._ring
            ratio = self._epoch_gen_ratio
            if ratio is None:
                # Binary-counter ladder: absorb while the youngest is
                # at least as large as its elder.
                while (
                    len(ring) >= 2
                    and ring[-2].comp.size <= ring[-1].comp.size
                ):
                    young = ring.pop()
                    merged = self._merge_chunks(ring.pop(), young, shed=True)
                    if merged is not None:
                        ring.append(merged)
                return
            if len(ring) > 2:
                sealed = ring.pop()
                young = self._merge_chunks(ring.pop(), sealed)
                if young is not None:
                    ring.append(young)
            if (
                len(ring) == 2
                and ring[1].comp.size * ratio >= ring[0].comp.size
            ):
                young = ring.pop()
                merged = self._merge_chunks(ring.pop(), young, shed=True)
                if merged is not None:
                    ring.append(merged)

    def _merge_chunks(
        self, old: _EpochChunk, young: _EpochChunk, shed: bool = False
    ) -> _EpochChunk | None:
        """Merge two adjacent generations (older rows before equal keys).

        With ``shed``, the older side drops its expired rows first —
        they are invisible to probes and counts, so dropping them here
        is unobservable; young-side generations skip the check (their
        dead rows are shed when they eventually reach the old
        generation).  The two sorted runs then interleave: one
        ``side="right"`` searchsorted of the younger (smaller) run
        into the older one places younger rows after equal-key older
        rows, preserving global insertion order within equal composite
        keys, and integer placement vectors move both runs (int fancy
        indexing runs several times faster than np.insert's boolean
        masks at these sizes).
        """
        now = self.tick
        a, b = old, young
        if a.max_e < now:
            a = None
        elif shed and a.min_e < now:
            keep = np.flatnonzero(a.e >= now)
            if keep.size < a.comp.size:
                a = _EpochChunk(
                    a.comp[keep], a.ts[keep], a.size[keep], a.e[keep]
                )
        if b is not None and b.max_e < now:
            b = None
        if a is None:
            return b
        if b is None:
            return a
        na, nb = a.comp.size, b.comp.size
        pos_b = np.arange(nb) + np.searchsorted(a.comp, b.comp, side="right")
        is_b = np.zeros(na + nb, dtype=bool)
        is_b[pos_b] = True
        pos_a = np.flatnonzero(~is_b)
        comp = np.empty(na + nb, dtype=np.uint64)
        ts = np.empty(na + nb, dtype=np.int32)
        size = np.empty(na + nb, dtype=np.float64)
        e = np.empty(na + nb, dtype=np.int32)
        for out, left, right in (
            (comp, a.comp, b.comp),
            (ts, a.ts, b.ts),
            (size, a.size, b.size),
            (e, a.e, b.e),
        ):
            out[pos_a] = left
            out[pos_b] = right
        return _EpochChunk(comp, ts, size, e)

    def _process_array(self, op, port, key, ts, size, pos, now):
        """Run one round's kept non-sink arrivals through the operators.

        Outputs are reassembled in canonical order — (input position,
        match rank) — so downstream sequence numbers match the
        per-tuple reference exactly.
        """
        k = self._kind[op]
        outs: list[tuple] = []

        m = k == _RELAY
        if m.any():
            outs.append((op[m], key[m], ts[m], size[m], pos[m], np.zeros(int(m.sum()), dtype=np.int64)))
        m = k == _FILTER
        if m.any():
            b = _filter_bucket(key[m], self._gid[op[m]])
            keep = b < self._op_sel[op[m]]
            if keep.any():
                outs.append(
                    (op[m][keep], key[m][keep], ts[m][keep], size[m][keep], pos[m][keep],
                     np.zeros(int(keep.sum()), dtype=np.int64))
                )
        m = k == _AGG
        if m.any():
            ops_a = op[m]
            uniq, starts, cnts = np.unique(ops_a, return_index=True, return_counts=True)
            rank = np.arange(ops_a.size) - np.repeat(starts, cnts)
            c = self._agg_credit[ops_a]
            f = self._op_factor[ops_a]
            emit = np.floor(c + (rank + 1) * f) > np.floor(c + rank * f)
            self._agg_credit[uniq] = (
                self._agg_credit[uniq] + cnts * self._op_factor[uniq]
            ) % 1.0
            if self._model.aggregate_batch_cost:
                # Each of the batch's m tuples costs an extra c₁·m.
                self._tick_op_cost[uniq] += (
                    self._model.aggregate_batch_cost * cnts.astype(float) * cnts
                )
            if emit.any():
                outs.append(
                    (ops_a[emit], key[m][emit], ts[m][emit], size[m][emit], pos[m][emit],
                     np.zeros(int(emit.sum()), dtype=np.int64))
                )
        m = k == _JOIN
        if m.any():
            p0 = m & (port == 0)
            p1 = m & (port == 1)
            pairs = self._probe_array(op[p0], key[p0], ts[p0], size[p0], pos[p0], side=1)
            if pairs is not None:
                outs.append(pairs)
            self._insert_state_array(op[p0], key[p0], ts[p0], size[p0], side=0)
            pairs = self._probe_array(op[p1], key[p1], ts[p1], size[p1], pos[p1], side=0)
            if pairs is not None:
                outs.append(pairs)
            self._insert_state_array(op[p1], key[p1], ts[p1], size[p1], side=1)

        if not outs:
            return None
        o_op = np.concatenate([o[0] for o in outs])
        o_key = np.concatenate([o[1] for o in outs])
        o_ts = np.concatenate([o[2] for o in outs])
        o_size = np.concatenate([o[3] for o in outs])
        o_pos = np.concatenate([o[4] for o in outs])
        o_rank = np.concatenate([o[5] for o in outs])
        order = np.lexsort((o_rank, o_pos))
        return o_op[order], o_key[order], o_ts[order], o_size[order]

    def _probe_array(self, op, key, ts, size, pos, side: int):
        """Match arrivals against the other side's windowed join state.

        One composite-key ``searchsorted`` over *all* joins at once,
        against both state levels: the sorted base first, then the
        append buffer (probed through its cached stable sort).  Base
        entries are older than buffer entries with the same key, so
        offsetting the buffer match ranks by the base hit count per
        query reproduces the per-tuple reference's insertion-order
        enumeration exactly.
        """
        if self._epoch:
            return self._probe_epoch(op, key, ts, size, pos, side)
        if op.size == 0 or (not self._st_comp.size and not self._stb_comp.size):
            return None
        qcomp = (op.astype(_U) << _U(33)) | (_U(side) << _U(32)) | key.astype(_U)
        hits: list[tuple] = []

        lo, hi = self._jit.probe_ranges(self._st_comp, qcomp)
        base_cnt = hi - lo
        probes = base_cnt
        total = int(base_cnt.sum())
        if total:
            rep = np.repeat(np.arange(op.size), base_cnt)
            starts = np.concatenate(([0], np.cumsum(base_cnt)[:-1]))
            within = np.arange(total) - starts[rep]
            sidx = lo[rep] + within
            hits.append((rep, within, self._st_ts[sidx], self._st_size[sidx]))

        if self._stb_comp.size:
            border, bcomp = self._buffer_sorted()
            blo, bhi = self._jit.probe_ranges(bcomp, qcomp)
            cnt = bhi - blo
            probes = probes + cnt
            btotal = int(cnt.sum())
            if btotal:
                rep = np.repeat(np.arange(op.size), cnt)
                starts = np.concatenate(([0], np.cumsum(cnt)[:-1]))
                within = np.arange(btotal) - starts[rep]
                sidx = border[blo[rep] + within]
                hits.append(
                    (
                        rep,
                        base_cnt[rep] + within,
                        self._stb_ts[sidx],
                        self._stb_size[sidx],
                    )
                )

        if self._model.probe_cost and probes.any():
            # Probes are charged whether or not they produced a match:
            # every candidate state entry examined costs c₂.
            self._tick_op_cost += np.bincount(
                op, weights=self._model.probe_cost * probes, minlength=self._num_ops
            )
        if not hits:
            return None
        if len(hits) == 1:
            rep, rank, sts, ssize = hits[0]
        else:
            rep = np.concatenate([h[0] for h in hits])
            rank = np.concatenate([h[1] for h in hits])
            sts = np.concatenate([h[2] for h in hits])
            ssize = np.concatenate([h[3] for h in hits])
        ats = ts[rep]
        ok = np.abs(ats - sts) <= self.config.window
        ok &= (
            _pair_bucket(key[rep], ats, sts, self._gid[op[rep]])
            < self._op_pmatch[op[rep]]
        )
        if not ok.any():
            return None
        return (
            op[rep][ok],
            key[rep][ok],
            np.maximum(ats, sts)[ok],
            (size[rep] + ssize)[ok],
            pos[rep][ok],
            rank[ok],
        )

    def _probe_epoch(self, op, key, ts, size, pos, side: int):
        """Epoch-ring variant of :meth:`_probe_array`.

        Each chunk is probed oldest-first; per-query rank offsets
        accumulate the *enumerated* candidate count across levels, so
        live candidates carry strictly increasing ranks in global
        insertion order — dead rows in partially-expired chunks bump
        the offsets but never match, and ranks only order outputs, so
        the canonical ``(input position, match rank)`` output order is
        bit-identical to the eager-evicting reference.  Probe costs
        charge live candidates only (exactly the rows the reference
        still holds).
        """
        if op.size == 0 or (not self._ring and not self._epb_comp.size):
            return None
        qcomp = (op.astype(_U) << _U(33)) | (_U(side) << _U(32)) | key.astype(_U)
        now = self.tick
        arange_q = np.arange(op.size)
        hits: list[tuple] = []
        probes = np.zeros(op.size, dtype=np.int64)
        base = np.zeros(op.size, dtype=np.int64)

        enumerated = False

        def level(lo, cnt, ts_col, size_col, e_col, all_live, order=None):
            nonlocal enumerated
            total = int(cnt.sum())
            if not total:
                return
            rep = np.repeat(arange_q, cnt)
            starts = np.concatenate(([0], np.cumsum(cnt)[:-1]))
            within = np.arange(total) - starts[rep]
            sidx = lo[rep] + within
            if order is not None:
                sidx = order[sidx]
            rank = base[rep] + within if enumerated else within
            enumerated = True
            if all_live:
                hits.append((rep, rank, ts_col[sidx], size_col[sidx]))
                probes[:] += cnt
            else:
                live = e_col[sidx] >= now
                nlive = int(np.count_nonzero(live))
                if nlive == total:
                    hits.append((rep, rank, ts_col[sidx], size_col[sidx]))
                    probes[:] += cnt
                elif nlive:
                    # Dead candidates are the minority: charge the
                    # full enumeration, then refund them.
                    probes[:] += cnt
                    probes[:] -= np.bincount(
                        rep[~live], minlength=op.size
                    )
                    keep = np.flatnonzero(live)
                    sidx = sidx[keep]
                    hits.append(
                        (rep[keep], rank[keep],
                         ts_col[sidx], size_col[sidx])
                    )
            base[:] += cnt

        for ch in self._ring:
            # One binary-search sweep over the chunk's distinct keys
            # (amortised over its immutable lifetime) instead of the
            # two row-level sweeps of the reference layout.
            uniq, starts = ch.index()
            if not uniq.size:
                continue
            j = np.searchsorted(uniq, qcomp, side="left")
            jc = np.minimum(j, uniq.size - 1)
            eq = uniq[jc] == qcomp
            level(
                starts[jc], (starts[jc + 1] - starts[jc]) * eq,
                ch.ts, ch.size, ch.e, ch.min_e >= now,
            )
        if self._epb_comp.size:
            border, _bcomp = self._epb_sorted_view()
            uniq, starts = self._epb_runs_view()
            j = np.searchsorted(uniq, qcomp, side="left")
            jc = np.minimum(j, uniq.size - 1)
            eq = uniq[jc] == qcomp
            level(
                starts[jc], (starts[jc + 1] - starts[jc]) * eq,
                self._epb_ts, self._epb_size, self._epb_e,
                int(self._epb_e.min()) >= now, border,
            )

        if self._model.probe_cost and probes.any():
            # Probes are charged whether or not they produced a match:
            # every live candidate state row examined costs c₂.
            self._tick_op_cost += np.bincount(
                op, weights=self._model.probe_cost * probes,
                minlength=self._num_ops,
            )
        if not hits:
            return None
        if len(hits) == 1:
            rep, rank, sts, ssize = hits[0]
        else:
            rep = np.concatenate([h[0] for h in hits])
            rank = np.concatenate([h[1] for h in hits])
            sts = np.concatenate([h[2] for h in hits])
            ssize = np.concatenate([h[3] for h in hits])
        ats = ts[rep]
        ok = np.abs(ats - sts) <= self.config.window
        ok &= (
            _pair_bucket(key[rep], ats, sts, self._gid[op[rep]])
            < self._op_pmatch[op[rep]]
        )
        if not ok.any():
            return None
        return (
            op[rep][ok],
            key[rep][ok],
            np.maximum(ats, sts)[ok],
            (size[rep] + ssize)[ok],
            pos[rep][ok],
            rank[ok],
        )

    def _insert_state_array(self, op, key, ts, size, side: int) -> None:
        """Append new join state to the buffer level (O(batch), not
        O(state)); the sorted base / epoch ring absorbs it on the
        periodic merge or flush."""
        if op.size == 0:
            return
        comp = (op.astype(_U) << _U(33)) | (_U(side) << _U(32)) | key.astype(_U)
        if self._epoch:
            # Stored expiry, clamped up to the insert tick: rows dead
            # on arrival stay probe-visible until the next tick start,
            # exactly as under eager tick-start eviction.
            e = np.maximum(
                ts + self.config.window + self._slack[op], self.tick
            )
            # Cast BEFORE concatenating: mixing an int32 column with an
            # int64 batch would silently upcast the whole buffer.
            self._epb_comp = np.concatenate((self._epb_comp, comp))
            self._epb_ts = np.concatenate((self._epb_ts, ts.astype(np.int32)))
            self._epb_size = np.concatenate((self._epb_size, size))
            self._epb_e = np.concatenate((self._epb_e, e.astype(np.int32)))
            self._epb_sorted = None
            self._epb_runs = None
            if self._hw_on:
                self._hw_insert(comp, e)
            if self._epb_comp.size >= self._epoch_flush_limit:
                self._flush_epoch()
            return
        if self._hw_on:
            e = np.maximum(
                ts + self.config.window + self._slack[op], self.tick
            )
            self._hw_insert(comp, e)
        self._stb_comp = np.concatenate((self._stb_comp, comp))
        self._stb_ts = np.concatenate((self._stb_ts, ts))
        self._stb_size = np.concatenate((self._stb_size, size))
        self._stb_sorted = None
        if self._stb_comp.size >= self._state_merge_limit:
            self._merge_state()

    def _send_array(
        self, ops, keys, ts, sizes, now, host, lat, trace=None, emit=False
    ) -> None:
        """Fan outputs out over their CSR out-links and hand to transport."""
        if ops.size == 0:
            return
        deg = self._out_deg[ops]
        total = int(deg.sum())
        if total == 0:
            return
        rep = np.repeat(np.arange(ops.size), deg)
        cum = np.cumsum(deg)
        starts = np.concatenate(([0], cum[:-1]))
        within = np.arange(total) - starts[rep]
        link = self._out_offsets[ops[rep]] + within
        if self._has_partitioned:
            # Hash-router: a link into replica i of a k-family only
            # carries tuples whose key bucket is i, so each tuple
            # traverses exactly one split link (group-1 links carry
            # everything).  Zero RNG draws — both step paths route
            # identically — and the filter runs before sequence
            # assignment so seq stays dense in canonical order.
            group = self._link_group[link]
            if (group > 1).any():
                route = (group == 1) | (
                    route_bucket(keys[rep], group) == self._link_index[link]
                )
                rep = rep[route]
                link = link[route]
                total = int(link.size)
                if total == 0:
                    return
        dst = self._link_dst[link]
        u = host[ops[rep]]
        v = host[dst]
        l = lat[u, v]
        dt = np.rint(l / self.config.tick_ms).astype(np.int64)
        seq = np.arange(self._next_seq, self._next_seq + total, dtype=np.int64)
        self._next_seq += total
        if trace is not None:
            # A wire tuple's span is keyed by its target op (like every
            # delivery-side event); the node column carries the sender.
            trace.record(trace.EMIT if emit else trace.SEND, seq, dst, u)
        np.add.at(self._link_tuples, link, 1)
        np.add.at(self._link_size, link, sizes[rep])
        self._tick_usage += float(l.sum())
        self._transport.send(
            now + dt, dst, self._link_port[link], keys[rep], ts[rep], sizes[rep], seq
        )

    # -- per-tuple reference path ------------------------------------------

    def step_scalar(self) -> TrafficRecord:
        """Advance one tick through the retained per-tuple reference.

        Same semantics, same RNG draws, per-tuple heapq transport and
        per-key join tables — the "before" side of E18.
        """
        self._use_mode("heap")
        trace = self._trace_handle()
        prof = self._prof_handle()
        self._transport.trace = trace
        if trace is not None:
            trace.begin_tick(self.tick + 1)
        self._tick_recompiles = 0
        if prof is not None:
            prof.begin("compile")
        dropped_sync = self._sync()
        if prof is not None:
            prof.end()
        self.tick += 1
        now = self.tick
        self._apply_drift(now)
        self._begin_tick_stats()
        host = self._host_array()
        alive = self._alive()
        latm = self.overlay.latencies.values
        cap = self._effective_cap()
        node_used = (
            np.zeros(self.overlay.num_nodes) if cap is not None else None
        )
        reliable = self.config.reliable
        self._tick_usage = 0.0
        t_emitted = t_delivered = t_processed = 0
        t_dropped = dropped_sync
        t_shed = 0
        t_cpu_dropped = 0.0
        tick_lat: list[float] = []
        w = self.config.window
        tick_ms = self.config.tick_ms

        self._evict_state_scalar(now)
        # Same per-tick cost state as step(): admission prices frozen
        # from the post-eviction state, per-op costs accumulated as
        # tuples are processed.
        self._tick_op_cost = np.zeros(self._num_ops)
        adm = self._admission_costs() if cap is not None else None

        # 0. Reliable redelivery (per-tuple walk over the buffer).
        t_redelivered = 0
        if reliable:
            if prof is not None:
                prof.begin("redeliver")
            t_redelivered = self._transport.redeliver(alive[host], now)
            self.redelivered += t_redelivered
            if prof is not None:
                prof.end()

        # 1. Sources emit, consuming the same per-tick draws.
        if prof is not None:
            prof.begin("sources")
        counts, u = self._draw_tick()
        offset = 0
        for s in range(counts.size):
            c = int(counts[s])
            seg = u[offset : offset + c]
            offset += c
            opx = int(self._src_ops[s])
            if not alive[host[opx]]:
                continue
            dom = float(self._src_domain[s])
            for x in seg:
                self._send_scalar(opx, int(x * dom), now, 1.0, now, 0, host, latm, trace)
            t_emitted += c
            self.emitted += c
        if prof is not None:
            prof.end()

        # 2. Delivery rounds, one tuple at a time in canonical order.
        if prof is not None:
            prof.begin("delivery")
        round_ = 1
        while True:
            batch = self._transport.due(now, round_)
            if not batch:
                break
            batch.sort(key=lambda e: (e[3], e[4], e[2]))  # (op, port, seq)
            agg_rank: dict[int, int] = {}
            for _arr, _rnd, _seq, opx, portx, key, ts, size in batch:
                node = int(host[opx])
                if trace is not None:
                    trace.record_one(trace.DELIVER, _seq, opx, node)
                if not alive[node]:
                    if reliable:
                        if not self._transport.buffer_one(
                            opx, portx, key, ts, size, _seq
                        ):
                            self.dropped_overflow += 1
                            t_dropped += 1
                            if trace is not None:
                                trace.record_one(
                                    trace.DROP_OVERFLOW, _seq, opx, node
                                )
                        elif trace is not None:
                            trace.record_one(trace.BUFFER, _seq, opx, node)
                    else:
                        self.dropped_dead += 1
                        t_dropped += 1
                        if trace is not None:
                            trace.record_one(trace.DROP_DEAD, _seq, opx, node)
                    continue
                if cap is not None:
                    cost = float(adm[opx, min(portx, 1)])
                    if node_used[node] >= cap[node]:
                        if self._shed[node] < (
                            np.inf if self._cap is None else self._cap[node]
                        ):
                            self.dropped_shed += 1
                            t_shed += 1
                            if trace is not None:
                                trace.record_one(trace.DROP_SHED, _seq, opx, node)
                        else:
                            self.dropped_capacity += 1
                            if trace is not None:
                                trace.record_one(
                                    trace.DROP_CAPACITY, _seq, opx, node
                                )
                        t_dropped += 1
                        t_cpu_dropped += cost
                        self.dropped_by_node[node] += 1
                        continue
                    node_used[node] += cost
                t_processed += 1
                self.processed += 1
                self.processed_by_node[node] += 1
                self.processed_node_kind[node * 4 + int(self._kind[opx])] += 1
                if trace is not None:
                    trace.record_one(trace.PROCESS, _seq, opx, node)
                self._tick_op_cost[opx] += self._kind_cost[opx]
                if self._is_sink[opx]:
                    t_delivered += 1
                    self.sink_delivered += 1
                    tick_lat.append(float(now - ts) * tick_ms)
                    if self.sink_log is not None:
                        self.sink_log.append(
                            (self._op_names[opx][1], key, ts, float(size))
                        )
                    continue
                kindx = int(self._kind[opx])
                if kindx == _RELAY:
                    outs = [(key, ts, size)]
                elif kindx == _FILTER:
                    if _filter_bucket_int(key, int(self._gid[opx])) < self._op_sel[opx]:
                        outs = [(key, ts, size)]
                    else:
                        outs = []
                elif kindx == _AGG:
                    r = agg_rank.get(opx, 0)
                    c0 = float(self._agg_credit[opx])
                    f = float(self._op_factor[opx])
                    if math.floor(c0 + (r + 1) * f) > math.floor(c0 + r * f):
                        outs = [(key, ts, size)]
                    else:
                        outs = []
                    agg_rank[opx] = r + 1
                else:  # _JOIN
                    outs = []
                    pm = float(self._op_pmatch[opx])
                    entries = self._tables.get((opx, 1 - portx, key), ())
                    if self._model.probe_cost and entries:
                        self._tick_op_cost[opx] += self._model.probe_cost * len(
                            entries
                        )
                    gidx = int(self._gid[opx])
                    for sts, ssz in entries:
                        if abs(ts - sts) <= w and _pair_bucket_int(key, ts, sts, gidx) < pm:
                            outs.append((key, max(ts, sts), size + ssz))
                    self._tables.setdefault((opx, portx, key), []).append((ts, size))
                for k2, t2, s2 in outs:
                    self._send_scalar(opx, k2, t2, s2, now, round_, host, latm, trace)
            for opx, r in agg_rank.items():
                self._agg_credit[opx] = (
                    self._agg_credit[opx] + r * float(self._op_factor[opx])
                ) % 1.0
                if self._model.aggregate_batch_cost:
                    # Each of the round batch's r tuples cost an extra c₁·r.
                    self._tick_op_cost[opx] += (
                        self._model.aggregate_batch_cost * float(r) * r
                    )
            round_ += 1
        if prof is not None:
            prof.end()

        self._usage_total += self._tick_usage
        self._end_tick_stats()
        tick_cpu = self._finish_tick_cpu(host, t_cpu_dropped)
        lat_all = np.asarray(tick_lat, dtype=np.float64)
        p50, p95, p99 = self._percentiles(lat_all)
        if self._obs is not None:
            self._obs.data_plane_tick(self, lat_all)
        return TrafficRecord(
            tick=now,
            emitted=t_emitted,
            delivered=t_delivered,
            dropped=t_dropped,
            processed=t_processed,
            in_flight=self._transport.in_flight,
            usage=self._tick_usage,
            latency_p50=p50,
            latency_p95=p95,
            latency_p99=p99,
            shed=t_shed,
            redelivered=t_redelivered,
            buffered=self._transport.buffered,
            cpu_cost=tick_cpu,
            cpu_dropped=t_cpu_dropped,
            recompiles=self._tick_recompiles,
        )

    def _evict_state_scalar(self, now: int) -> None:
        w = self.config.window
        dead_keys = []
        for (opx, side, key), entries in self._tables.items():
            thr = now - w - int(self._slack[opx])
            kept = [e for e in entries if e[0] >= thr]
            if kept:
                self._tables[(opx, side, key)] = kept
            else:
                dead_keys.append((opx, side, key))
        for key in dead_keys:
            del self._tables[key]

    def _send_scalar(
        self, opx, key, ts, size, now, round_, host, latm, trace=None
    ) -> None:
        base = int(self._out_offsets[opx])
        for li in range(base, base + int(self._out_deg[opx])):
            g = int(self._link_group[li])
            if g > 1 and route_bucket_int(key, g) != int(self._link_index[li]):
                continue  # hash-router: not this replica's key slice
            dst = int(self._link_dst[li])
            l = float(latm[host[opx], host[dst]])
            dt = int(np.rint(l / self.config.tick_ms))
            seq = self._next_seq
            self._next_seq += 1
            if trace is not None:
                trace.record_one(
                    trace.EMIT if round_ == 0 else trace.SEND,
                    seq,
                    dst,
                    int(host[opx]),
                )
            self._link_tuples[li] += 1
            self._link_size[li] += size
            self._tick_usage += l
            self._transport.send_one(
                now + dt,
                round_ + 1 if dt == 0 else 1,
                seq,
                dst,
                int(self._link_port[li]),
                key,
                ts,
                size,
            )

    # -- reporting ---------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Total tuples explicitly dropped, summed over all attributions
        (capacity + shed + dead + uninstall + retransmit overflow)."""
        return (
            self.dropped_capacity
            + self.dropped_shed
            + self.dropped_dead
            + self.dropped_uninstalled
            + self.dropped_overflow
        )

    def accounting(self) -> dict:
        """Conservation balance: every tuple delivered, dropped, in
        flight, or parked in the retransmit buffer.

        ``balanced`` is True iff no tuple was silently lost::

            sent == transport_delivered + in_flight + buffered
            transport_delivered == processed + dropped

        (``buffered`` is 0 without ``RuntimeConfig.reliable``, which
        collapses the first line to the PR-3 invariant.)
        """
        tr = self._transport
        sent = tr.sent if tr is not None else 0
        delivered = tr.delivered if tr is not None else 0
        in_flight = tr.in_flight if tr is not None else 0
        buffered = tr.buffered if tr is not None else 0
        return {
            "emitted": self.emitted,
            "sent": sent,
            "transport_delivered": delivered,
            "in_flight": in_flight,
            "buffered": buffered,
            "processed": self.processed,
            "dropped": self.dropped,
            "delivered": self.sink_delivered,
            "cpu_cost": self.cpu_cost_total,
            "cpu_dropped": self.cpu_dropped_total,
            "balanced": (
                sent == delivered + in_flight + buffered
                and delivered == self.processed + self.dropped
            ),
        }

    def measured_cpu_rate(self) -> float:
        """Mean measured CPU cost per tick, summed over all nodes."""
        return self.cpu_cost_total / self.tick if self.tick else 0.0

    # -- observability -----------------------------------------------------

    def attach_obs(self, obs) -> None:
        """Attach an observability layer (``repro.obs.Observability``).

        Attach before the first tick — the trace-completeness invariant
        assumes every live tuple's birth was recorded.
        """
        self._obs = obs

    def _trace_handle(self):
        """The active tracer, resolved once per tick (None = no tracing)."""
        obs = self._obs
        if obs is None:
            return None
        tracer = obs.tracer
        return tracer if tracer is not None and tracer.enabled else None

    def _prof_handle(self):
        """The active profiler, resolved once per tick (None = off)."""
        obs = self._obs
        if obs is None:
            return None
        prof = obs.profiler
        return prof if prof is not None and prof.enabled else None

    def trace_completeness(self) -> dict:
        """Check the attached tracer's completeness invariant now.

        Every sampled span must have exactly one birth and terminate at
        most once; open spans must be exactly the sampled part of the
        live in-flight + buffered population.  At ``sample_rate=1.0``
        the per-terminal event counts are additionally reconciled
        against the drop/processed accounting — the per-span refinement
        of :meth:`accounting`'s conservation balance.
        """
        tracer = None if self._obs is None else self._obs.tracer
        if tracer is None:
            raise RuntimeError("no tracer attached (see attach_obs)")
        tr = self._transport
        if tr is None:
            return tracer.check_completeness(
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
            )
        totals = None
        if tracer.sample_rate >= 1.0:
            totals = {
                "births": tr.sent,
                "process": self.processed,
                "drop_dead": self.dropped_dead,
                "drop_capacity": self.dropped_capacity,
                "drop_shed": self.dropped_shed,
                "drop_uninstall": self.dropped_uninstalled,
                "drop_overflow": self.dropped_overflow,
                "redeliver": self.redelivered,
                "buffer": getattr(tr, "buffered_total", 0),
            }
        return tracer.check_completeness(
            tr.inflight_seqs(), tr.buffered_seqs(), totals
        )

    def buffered_backlog(self) -> dict[tuple[str, str], int]:
        """Retransmit-buffer backlog per service, keyed (circuit, sid).

        Empty without the reliable transport (or when nothing is
        buffered).  The control plane's buffer-pressure policy reads
        this to force re-placement of services whose backlog grows.
        """
        tr = self._transport
        if tr is None or tr.buffered == 0:
            return {}
        counts = tr.buffered_by_op(self._num_ops)
        return {
            self._op_names[op]: int(c) for op, c in enumerate(counts) if c
        }

    def link_keys(self) -> list[tuple[str, str, str]]:
        """The *live* links' (circuit, source, target) keys, in the
        order :attr:`tick_link_tuples` reports counts.

        The returned list object is reused until the next structural
        change (compaction keeps it: live contents are unchanged), so
        estimators can cache index maps keyed by its identity.
        """
        return self._live_link_names

    def true_link_rates(self) -> dict[tuple[str, str, str], float]:
        """Expected realized tuples/tick per link, from current params.

        Propagates the *realized* parameter arrays (sources' Poisson λ,
        drifted selectivities/factors/match probabilities) through each
        circuit DAG in topological order — the analytic ground truth
        the control plane's measured-rate estimator should converge to,
        and the oracle input for closed-loop experiments.  Join outputs
        use the expected-match model the compiler inverted:
        ``r0·r1·(2w+1)·pmatch/domain``.
        """
        num_ops = self._num_ops
        in_sum = np.zeros(num_ops)
        join_in = np.zeros((num_ops, 2))
        out_rate = np.zeros(num_ops)
        pending = self._in_deg.copy()
        w = self.config.window
        ready = [op for op in range(num_ops) if pending[op] == 0]
        while ready:
            op = ready.pop()
            kind = int(self._kind[op])
            if self._in_deg[op] == 0:
                pos = self._src_pos.get(op)
                out = float(self._src_rate[pos]) if pos is not None else 0.0
            elif kind == _FILTER:
                out = float(in_sum[op] * self._op_sel[op])
            elif kind == _AGG:
                out = float(in_sum[op] * self._op_factor[op])
            elif kind == _JOIN:
                out = float(
                    join_in[op, 0]
                    * join_in[op, 1]
                    * (2 * w + 1)
                    * self._op_pmatch[op]
                    # A k-replica join matches within its key slice: its
                    # compiled (family) parameters over 1/k-rate inputs
                    # predict family_out/k², one factor of k too low for
                    # the replica's actual family_out/k share.
                    * self._op_replicas[op]
                    / self._op_domain[op]
                )
            else:
                out = float(in_sum[op])
            out_rate[op] = out
            base = int(self._out_offsets[op])
            for li in range(base, base + int(self._out_deg[op])):
                dst = int(self._link_dst[li])
                port = int(self._link_port[li])
                # A partitioned link carries its replica's key share.
                share = out / float(self._link_group[li])
                in_sum[dst] += share
                if port < 2:
                    join_in[dst, port] += share
                pending[dst] -= 1
                if pending[dst] == 0:
                    ready.append(dst)
        rows = (
            range(len(self._link_names))
            if self._live_links is None
            else self._live_links
        )
        return {
            name: float(out_rate[self._link_src_op[i]] / self._link_group[i])
            for i, name in zip(rows, self._live_link_names)
        }

    def measured_usage_rate(self) -> float:
        """Mean measured network usage per tick (Σ tuple × link latency)."""
        return self._usage_total / self.tick if self.tick else 0.0

    def link_stats(self) -> dict[tuple[str, str, str], dict[str, float]]:
        """Measured per-link traffic, keyed (circuit, source, target)."""
        out: dict[tuple[str, str, str], dict[str, float]] = {}
        for name, (tuples, sized) in self._link_stats_folded.items():
            out[name] = {"tuples": float(tuples), "size": sized}
        rows = (
            range(len(self._link_names))
            if self._live_links is None
            else self._live_links
        )
        for i, name in zip(rows, self._live_link_names):
            entry = out.setdefault(name, {"tuples": 0.0, "size": 0.0})
            entry["tuples"] += float(self._link_tuples[i])
            entry["size"] += float(self._link_size[i])
        for entry in out.values():
            entry["rate"] = entry["tuples"] / self.tick if self.tick else 0.0
        return out
