"""Labeled metrics registry: array-backed counters, gauges, histograms.

The registry is built for the data plane's flush model: nothing is
recorded per event.  Each subsystem already accumulates its per-tick
statistics into arrays (``tick_node_cpu``, ``tick_node_drops``,
``tick_link_tuples``, the tick's latency column), and the registry
ingests them with **one vectorized add per metric per tick** — a
:class:`VectorMetric` add is ``values += arr``, a :class:`KeyedMetric`
add is one ``np.add.at`` scatter through an index map cached by the
key-list's identity (the same trick the control plane's
:class:`~repro.control.estimator.RateEstimator` uses for link keys),
and a :class:`Histogram` observe is one ``searchsorted`` + ``bincount``
scatter.  No per-event Python anywhere.

Exported two ways: Prometheus-style text exposition
(:meth:`MetricsRegistry.to_prometheus`) and JSONL
(:meth:`MetricsRegistry.to_jsonl`), both offline-only — exporting never
touches the hot loop.
"""

from __future__ import annotations

import json

import numpy as np

__all__ = [
    "MetricsRegistry",
    "ScalarMetric",
    "VectorMetric",
    "KeyedMetric",
    "Histogram",
]


class ScalarMetric:
    """One unlabeled value: a cumulative counter or a point-in-time gauge."""

    def __init__(self, name: str, kind: str, help: str = "") -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.value = 0.0

    def inc(self, v: float = 1.0) -> None:
        self.value += v

    def set(self, v: float) -> None:
        """Overwrite the value (gauges, or counters mirroring an
        already-cumulative source counter)."""
        self.value = float(v)

    def to_dict(self) -> dict:
        return {"name": self.name, "kind": self.kind, "value": self.value}

    def prometheus_lines(self, ns: str) -> list[str]:
        return [f"{ns}_{self.name} {_fmt(self.value)}"]


class VectorMetric:
    """One value per dense integer label (e.g. per node id).

    ``values[i]`` belongs to label value ``i``; the array auto-grows if
    a larger batch arrives (installs can add nodes in principle).
    """

    def __init__(
        self, name: str, kind: str, size: int, label: str = "node", help: str = ""
    ) -> None:
        self.name = name
        self.kind = kind
        self.label = label
        self.help = help
        self.values = np.zeros(size)

    def _fit(self, n: int) -> None:
        if n > self.values.size:
            fresh = np.zeros(n)
            fresh[: self.values.size] = self.values
            self.values = fresh

    def add(self, arr: np.ndarray) -> None:
        self._fit(arr.size)
        self.values[: arr.size] += arr

    def set(self, arr: np.ndarray) -> None:
        self._fit(arr.size)
        self.values[: arr.size] = arr

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "label": self.label,
            "values": self.values.tolist(),
        }

    def prometheus_lines(self, ns: str) -> list[str]:
        idx = np.flatnonzero(self.values)
        return [
            f'{ns}_{self.name}{{{self.label}="{int(i)}"}} {_fmt(self.values[i])}'
            for i in idx
        ]


class KeyedMetric:
    """One value per tuple-valued key (e.g. per (circuit, src, dst) link).

    :meth:`add` takes the caller's *key list* plus an aligned value
    array; the key→column map is rebuilt only when the list object's
    identity changes (the data plane reuses its ``link_keys()`` list
    until a structural change), so the steady-state flush is a cached
    index lookup plus one ``np.add.at``.
    """

    def __init__(
        self, name: str, kind: str, labels: tuple[str, ...], help: str = ""
    ) -> None:
        self.name = name
        self.kind = kind
        self.labels = labels
        self.help = help
        self._index: dict[tuple, int] = {}
        self._values = np.zeros(0)
        self._cached_keys: list | None = None
        self._cached_cols: np.ndarray | None = None

    def _columns(self, keys: list) -> np.ndarray:
        if keys is not self._cached_keys:
            cols = np.empty(len(keys), dtype=np.int64)
            for i, key in enumerate(keys):
                col = self._index.get(key)
                if col is None:
                    col = self._index[key] = len(self._index)
                cols[i] = col
            if len(self._index) > self._values.size:
                fresh = np.zeros(len(self._index))
                fresh[: self._values.size] = self._values
                self._values = fresh
            self._cached_keys = keys
            self._cached_cols = cols
        return self._cached_cols

    def add(self, keys: list, arr: np.ndarray) -> None:
        if not keys:
            return
        # Resolve columns first: _columns may grow (replace) _values.
        cols = self._columns(keys)
        np.add.at(self._values, cols, arr)

    def set(self, keys: list, arr: np.ndarray) -> None:
        """Overwrite the keyed values (gauge semantics): columns not in
        ``keys`` keep their last-set value."""
        if not keys:
            return
        cols = self._columns(keys)
        self._values[cols] = arr

    def items(self) -> list[tuple[tuple, float]]:
        return [(key, float(self._values[col])) for key, col in self._index.items()]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": list(self.labels),
            "values": [
                {"key": [str(k) for k in key], "value": value}
                for key, value in self.items()
            ],
        }

    def prometheus_lines(self, ns: str) -> list[str]:
        lines = []
        for key, value in self.items():
            if not value:
                continue
            label_str = ",".join(
                f'{label}="{part}"' for label, part in zip(self.labels, key)
            )
            lines.append(f"{ns}_{self.name}{{{label_str}}} {_fmt(value)}")
        return lines


class Histogram:
    """Fixed-bucket histogram observed one array at a time.

    ``edges`` are the inclusive upper bounds of the finite buckets; an
    implicit +Inf bucket catches the rest.  Observing a batch is one
    ``searchsorted`` plus one ``bincount`` scatter.
    """

    kind = "histogram"

    def __init__(self, name: str, edges, help: str = "") -> None:
        self.name = name
        self.help = help
        self.edges = np.asarray(edges, dtype=np.float64)
        if self.edges.size == 0 or (np.diff(self.edges) <= 0).any():
            raise ValueError("edges must be non-empty and strictly increasing")
        self.counts = np.zeros(self.edges.size + 1, dtype=np.int64)
        self.sum = 0.0
        self.count = 0

    def observe(self, arr: np.ndarray) -> None:
        if arr.size == 0:
            return
        idx = np.searchsorted(self.edges, arr, side="left")
        self.counts += np.bincount(idx, minlength=self.counts.size)
        self.sum += float(arr.sum())
        self.count += int(arr.size)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "edges": self.edges.tolist(),
            "counts": self.counts.tolist(),
            "sum": self.sum,
            "count": self.count,
        }

    def prometheus_lines(self, ns: str) -> list[str]:
        lines = []
        cum = np.cumsum(self.counts)
        for edge, c in zip(self.edges, cum[:-1]):
            lines.append(f'{ns}_{self.name}_bucket{{le="{_fmt(edge)}"}} {int(c)}')
        lines.append(f'{ns}_{self.name}_bucket{{le="+Inf"}} {int(cum[-1])}')
        lines.append(f"{ns}_{self.name}_sum {_fmt(self.sum)}")
        lines.append(f"{ns}_{self.name}_count {self.count}")
        return lines


def _fmt(v: float) -> str:
    f = float(v)
    return str(int(f)) if f == int(f) else repr(f)


class MetricsRegistry:
    """Create-or-get registry of named metrics with text/JSONL export."""

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._metrics: dict[str, object] = {}

    def _get(self, name: str, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory()
        return metric

    def counter(self, name: str, help: str = "") -> ScalarMetric:
        return self._get(name, lambda: ScalarMetric(name, "counter", help))

    def gauge(self, name: str, help: str = "") -> ScalarMetric:
        return self._get(name, lambda: ScalarMetric(name, "gauge", help))

    def vector_counter(
        self, name: str, size: int, label: str = "node", help: str = ""
    ) -> VectorMetric:
        return self._get(
            name, lambda: VectorMetric(name, "counter", size, label, help)
        )

    def vector_gauge(
        self, name: str, size: int, label: str = "node", help: str = ""
    ) -> VectorMetric:
        return self._get(name, lambda: VectorMetric(name, "gauge", size, label, help))

    def keyed_counter(
        self, name: str, labels: tuple[str, ...], help: str = ""
    ) -> KeyedMetric:
        return self._get(name, lambda: KeyedMetric(name, "counter", labels, help))

    def keyed_gauge(
        self, name: str, labels: tuple[str, ...], help: str = ""
    ) -> KeyedMetric:
        return self._get(name, lambda: KeyedMetric(name, "gauge", labels, help))

    def histogram(self, name: str, edges, help: str = "") -> Histogram:
        return self._get(name, lambda: Histogram(name, edges, help))

    def get(self, name: str):
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list[str]:
        return list(self._metrics)

    def to_prometheus(self) -> str:
        """Prometheus text exposition of every registered metric."""
        ns = self.namespace
        lines: list[str] = []
        for metric in self._metrics.values():
            if metric.help:
                lines.append(f"# HELP {ns}_{metric.name} {metric.help}")
            lines.append(f"# TYPE {ns}_{metric.name} {metric.kind}")
            lines.extend(metric.prometheus_lines(ns))
        return "\n".join(lines) + "\n"

    def to_jsonl(self, path) -> None:
        """One JSON object per metric."""
        with open(path, "w") as fh:
            for metric in self._metrics.values():
                fh.write(json.dumps(metric.to_dict()) + "\n")
