"""Hierarchical phase profiler for the simulator and data-plane stages.

:class:`PhaseProfiler` is a stack of ``perf_counter`` timers.  Nested
:meth:`begin`/:meth:`end` pairs accumulate into slash-joined paths —
the simulator opens ``data_plane`` around the tick's data-plane call,
the data plane opens ``extract`` inside it, and the total lands under
``data_plane/extract`` — which is how one profiler instance threaded
through :class:`~repro.obs.Observability` yields the full phase tree
without the layers knowing about each other.

Cost discipline: every call site guards with ``prof is not None``
(resolved once per tick), so a disabled profiler costs one attribute
check per tick and an absent one costs nothing; enabled, each phase is
two ``perf_counter`` calls plus a dict update.  The profiler only
*reads* the clock — it never touches simulation state or RNG, so
profiling is behaviorally unobservable (pinned by the obs property
suite).

:meth:`mark_tick` snapshots the running totals into a per-tick
breakdown; :meth:`report` renders the cumulative tree and
:meth:`to_json` exports both.
"""

from __future__ import annotations

import json
from time import perf_counter

__all__ = ["PhaseProfiler"]


class PhaseProfiler:
    """Nested named timers with per-tick deltas (see module docstring)."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._stack: list[tuple[str, float]] = []
        self.totals: dict[str, float] = {}
        self.counts: dict[str, int] = {}
        self.per_tick: list[dict] = []
        self._last: dict[str, float] = {}

    def begin(self, name: str) -> None:
        """Open a phase; nested opens extend the path with ``/``."""
        self._stack.append((name, perf_counter()))

    def end(self) -> None:
        """Close the innermost open phase and accumulate its time."""
        t1 = perf_counter()
        name, t0 = self._stack.pop()
        if self._stack:
            path = "/".join(n for n, _ in self._stack) + "/" + name
        else:
            path = name
        self.totals[path] = self.totals.get(path, 0.0) + (t1 - t0)
        self.counts[path] = self.counts.get(path, 0) + 1

    def phase(self, name: str):
        """Context-manager sugar for offline (non-hot-loop) callers."""
        return _Phase(self, name)

    def mark_tick(self, tick: int) -> None:
        """Snapshot the per-phase time spent since the previous mark."""
        deltas = {
            path: total - self._last.get(path, 0.0)
            for path, total in self.totals.items()
            if total - self._last.get(path, 0.0) > 0.0
        }
        self.per_tick.append({"tick": tick, "phases": deltas})
        self._last = dict(self.totals)

    def summary(self) -> list[tuple[str, float, int]]:
        """(path, total seconds, calls), slowest first."""
        return sorted(
            ((p, t, self.counts[p]) for p, t in self.totals.items()),
            key=lambda row: -row[1],
        )

    def report(self) -> str:
        """Cumulative phase tree as an aligned plain-text table."""
        rows = self.summary()
        if not rows:
            return "(no phases recorded)"
        width = max(len(p) for p, _, _ in rows)
        lines = [f"{'phase'.ljust(width)}  {'total_s':>10}  {'calls':>8}"]
        for path, total, calls in rows:
            lines.append(f"{path.ljust(width)}  {total:>10.6f}  {calls:>8}")
        return "\n".join(lines)

    def to_json(self, path) -> None:
        """Export totals, call counts, and the per-tick breakdown."""
        with open(path, "w") as fh:
            json.dump(
                {
                    "totals_s": self.totals,
                    "calls": self.counts,
                    "per_tick": self.per_tick,
                },
                fh,
                indent=2,
            )
            fh.write("\n")


class _Phase:
    __slots__ = ("_prof", "_name")

    def __init__(self, prof: PhaseProfiler, name: str) -> None:
        self._prof = prof
        self._name = name

    def __enter__(self):
        self._prof.begin(self._name)
        return self._prof

    def __exit__(self, *exc):
        self._prof.end()
        return False
