"""End-to-end observability: tuple tracing, metrics, phase profiling.

:class:`Observability` bundles the three instruments and owns the
standard wiring:

* a :class:`~repro.obs.trace.TupleTracer` recording hash-sampled wire
  tuple spans at every lifecycle event (attached to the data plane and
  its transport),
* a :class:`~repro.obs.metrics.MetricsRegistry` flushed once per tick
  from the per-tick statistic arrays every subsystem already exports,
* a :class:`~repro.obs.profiler.PhaseProfiler` threaded through the
  simulator phases and the data plane's kernel stages,
* an :class:`~repro.obs.events.EventLog` the controller appends its
  structured decisions to.

Attach it at construction time::

    obs = Observability(tracing=True, trace_rate=0.01,
                        metrics=True, profiling=True)
    sim = Simulation(overlay, ..., data_plane=plane, obs=obs)
    sim.run(200)
    obs.export("telemetry/")     # traces.jsonl, metrics.prom,
                                 # metrics.jsonl, profile.json,
                                 # events.jsonl

The whole layer is **behaviorally unobservable**: it draws no RNG,
mutates no simulation state, and every hot-path hook hides behind a
single ``is not None`` check resolved once per tick — an obs-on run
produces tick-for-tick identical :class:`~repro.sbon.metrics.
TickRecord` streams to an obs-off run (pinned by
``tests/property/test_obs_properties.py`` and asserted by E22).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import PhaseProfiler
from repro.obs.trace import EVENT_NAMES, TupleTracer

__all__ = [
    "Observability",
    "TupleTracer",
    "MetricsRegistry",
    "PhaseProfiler",
    "EventLog",
    "EVENT_NAMES",
]

# Delivery-latency histogram bucket upper bounds (ms).
LATENCY_EDGES_MS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0)


class Observability:
    """The assembled observability layer (see module docstring).

    Args:
        tracing: enable sampled tuple tracing.
        trace_rate: fraction of wire tuples traced (deterministic
            SplitMix64 bucket of the seq, twin-identical).
        trace_salt: sampling-hash salt.
        metrics: enable the per-tick metrics registry flush.
        profiling: enable the phase profiler.
    """

    def __init__(
        self,
        tracing: bool = False,
        trace_rate: float = 0.01,
        trace_salt: int = 0xB5,
        metrics: bool = False,
        profiling: bool = False,
    ) -> None:
        self.tracer = (
            TupleTracer(trace_rate, trace_salt) if tracing else None
        )
        self.registry = MetricsRegistry() if metrics else None
        self.profiler = PhaseProfiler() if profiling else None
        self.events = EventLog()

    # -- per-tick flushes --------------------------------------------------

    def data_plane_tick(self, plane, latencies: np.ndarray) -> None:
        """Flush one executed tick's data-plane statistics.

        Called by :meth:`DataPlane.step` / :meth:`DataPlane.step_scalar`
        after the tick's arrays are final; every update is one
        vectorized add (see :mod:`repro.obs.metrics`).
        """
        reg = self.registry
        if reg is None:
            return
        n = plane.overlay.num_nodes
        reg.vector_counter(
            "node_processed_total", n, help="tuples processed per node"
        ).add(plane.tick_node_processed)
        reg.vector_counter(
            "node_dropped_total", n, help="admission drops per node"
        ).add(plane.tick_node_drops)
        reg.vector_counter(
            "node_cpu_cost_total", n, help="measured CPU cost units per node"
        ).add(plane.tick_node_cpu)
        reg.keyed_counter(
            "link_tuples_total",
            ("circuit", "source", "target"),
            help="tuples carried per circuit link",
        ).add(plane.link_keys(), plane.tick_link_tuples)

        reg.counter("emitted_total", help="tuples emitted by sources").set(
            plane.emitted
        )
        reg.counter("delivered_total", help="tuples delivered to sinks").set(
            plane.sink_delivered
        )
        reg.counter("processed_total").set(plane.processed)
        reg.counter("dropped_capacity_total").set(plane.dropped_capacity)
        reg.counter("dropped_shed_total").set(plane.dropped_shed)
        reg.counter("dropped_dead_total").set(plane.dropped_dead)
        reg.counter("dropped_uninstalled_total").set(plane.dropped_uninstalled)
        reg.counter("dropped_overflow_total").set(plane.dropped_overflow)
        reg.counter("redelivered_total").set(plane.redelivered)
        reg.counter("recompiles_total").set(plane.recompiles)

        transport = plane._transport
        if transport is not None:
            reg.gauge("in_flight", help="tuples on the wire").set(
                transport.in_flight
            )
            reg.gauge("buffered", help="tuples in the retransmit buffer").set(
                transport.buffered
            )
        if latencies.size:
            reg.histogram(
                "latency_ms",
                LATENCY_EDGES_MS,
                help="end-to-end delivery latency (ms)",
            ).observe(latencies)

    def simulation_tick(self, sim, record) -> None:
        """Flush one simulation tick: record-level metrics, re-optimizer
        and controller counters, and the profiler's per-tick mark."""
        reg = self.registry
        if reg is not None:
            reg.gauge("network_usage", help="estimated usage").set(
                record.network_usage
            )
            reg.gauge("data_usage", help="measured usage this tick").set(
                record.data_usage
            )
            reg.gauge("mean_load").set(record.mean_load)
            reg.gauge("max_load").set(record.max_load)
            reg.gauge("circuits").set(record.circuits)
            reg.counter("migrations_total").inc(record.migrations)
            reg.counter("failures_total").inc(record.failures)
            reg.counter("reopt_accepts_total", help="re-optimizer accepted moves").set(
                sim.reopt_accepts
            )
            reg.counter("reopt_rejects_total", help="re-optimizer reverted moves").set(
                sim.reopt_rejects
            )
            reg.counter("reopt_arena_builds_total", help="fused reopt arena rebuilds").set(
                sim.reopt_arena_builds
            )
            controller = sim.controller
            if controller is not None:
                reg.counter("calibrations_total").set(controller.calibrations)
                reg.counter("cpu_calibrations_total").set(
                    controller.cpu_calibrations
                )
                reg.counter("control_triggers_total").set(controller.triggers)
                reg.counter("buffer_evacuations_total").set(
                    controller.buffer_evacuations
                )
                reg.gauge("shed_nodes").set(len(controller.shed_nodes))
                reg.gauge("drop_ewma").set(controller.drop_ewma)
                reg.gauge("latency_ewma_ms").set(controller.latency_ewma)
        if self.profiler is not None and self.profiler.enabled:
            self.profiler.mark_tick(record.tick)

    # -- export ------------------------------------------------------------

    def export(self, out_dir) -> dict[str, Path]:
        """Write every enabled instrument's telemetry under ``out_dir``.

        Returns the written paths keyed by artifact name: ``traces``
        (JSONL), ``metrics_prom`` (Prometheus text), ``metrics``
        (JSONL), ``profile`` (JSON), ``events`` (JSONL).
        """
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        written: dict[str, Path] = {}
        if self.tracer is not None:
            path = out / "traces.jsonl"
            self.tracer.to_jsonl(path)
            written["traces"] = path
        if self.registry is not None:
            path = out / "metrics.prom"
            path.write_text(self.registry.to_prometheus())
            written["metrics_prom"] = path
            path = out / "metrics.jsonl"
            self.registry.to_jsonl(path)
            written["metrics"] = path
        if self.profiler is not None:
            path = out / "profile.json"
            self.profiler.to_json(path)
            written["profile"] = path
        path = out / "events.jsonl"
        self.events.to_jsonl(path)
        written["events"] = path
        return written
