"""Structured event log for control-plane decisions.

Controller decisions used to be invisible outside the aggregate
counters; the event log records each one as a small dict — calibration
passes, re-placement triggers (with the breach reason and the excluded
nodes), shed set/release, buffer-pressure evacuations — appended by the
controller when an :class:`~repro.obs.Observability` is attached.

Events are rare (a handful per tick at most), so plain Python appends
are fine here; the never-trace-in-hot-loop rule applies to per-tuple
work, not to per-decision work.
"""

from __future__ import annotations

import json

__all__ = ["EventLog"]


class EventLog:
    """Append-only list of ``{"tick", "kind", ...}`` event dicts."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def emit(self, tick: int, kind: str, **fields) -> None:
        self.events.append({"tick": tick, "kind": kind, **fields})

    def of_kind(self, kind: str) -> list[dict]:
        return [e for e in self.events if e["kind"] == kind]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def to_jsonl(self, path) -> None:
        with open(path, "w") as fh:
            for event in self.events:
                fh.write(json.dumps(event) + "\n")
