"""Sampled tuple tracing: hash-selected spans over the wire-tuple lifecycle.

A *span* is the life of one wire tuple, identified by its globally
unique transport sequence number (``seq`` is assigned in
``DataPlane._send_array`` / ``_send_scalar`` and, by the twin
discipline, identical across the vectorized and scalar step paths).
Sampling is a deterministic SplitMix64 bucket of the seq — the *same*
hash family the data plane's filters and joins use — so twin data
planes sample exactly the same tuples, and a 1%-sampled trace costs one
vectorized hash per recorded batch instead of per-tuple Python.

Events are appended to a struct-of-arrays buffer (grow-by-doubling
int64 columns), one :meth:`TupleTracer.record` call per lifecycle site:

====================  ====================================================
event                 meaning
====================  ====================================================
``EMIT``              a source put a fresh tuple on an out-link
``SEND``              an operator output fanned onto an out-link
``REDELIVER``         the reliable transport re-injected a buffered tuple
``DELIVER``           the transport handed the tuple to its target's host
``BUFFER``            delivered to a dead host; parked for retransmission
``PROCESS``           admitted and consumed by the target operator
``DROP_DEAD``         delivered to a dead host, no reliable transport
``DROP_CAPACITY``     rejected by per-node admission capacity
``DROP_SHED``         rejected by a controller shed limit
``DROP_UNINSTALL``    in flight / buffered when its circuit uninstalled
``DROP_OVERFLOW``     dead-bound but the retransmit buffer was full
====================  ====================================================

``PROCESS`` and the five ``DROP_*`` codes are *terminal*: a span ends
in exactly one of them.  Event codes are ordered causally, so sorting
events by ``(tick, seq, event)`` reconstructs every span's true
lifecycle order — the basis of the **trace-completeness invariant**
(:meth:`TupleTracer.check_completeness`), the per-span refinement of
the data plane's conservation balance: every sampled span has exactly
one birth, at most one terminal, open spans are exactly the sampled
part of ``in_flight + buffered``, and (at ``sample_rate=1.0``) the
terminal counts per attribution equal the drop/processed accounting.

Never trace in the hot loop: every call site in the data plane is
guarded by a single ``trace is not None`` check, the tracer draws no
RNG and mutates no runtime state, so an obs-on run is tick-for-tick
identical to an obs-off run (pinned by the obs property suite).
"""

from __future__ import annotations

import json

import numpy as np

from repro.runtime.dataplane import _filter_bucket, _filter_bucket_int

__all__ = ["TupleTracer", "EVENT_NAMES"]

EVENT_NAMES = (
    "emit",
    "send",
    "redeliver",
    "deliver",
    "buffer",
    "process",
    "drop_dead",
    "drop_capacity",
    "drop_shed",
    "drop_uninstall",
    "drop_overflow",
)


class TupleTracer:
    """Deterministic hash-sampled span recorder (see module docstring).

    Args:
        sample_rate: fraction of seqs traced (SplitMix64 bucket of the
            seq < rate); 1.0 traces everything, at which point
            :meth:`check_completeness` can reconcile terminal counts
            against the data plane's accounting exactly.
        salt: hash salt of the sampling bucket — distinct from any
            operator gid so trace sampling never correlates with
            filter/join decisions.
        enabled: start recording immediately (callers re-check
            :attr:`enabled` once per tick, so flipping it pauses
            tracing with zero hot-loop cost).
    """

    EMIT = 0
    SEND = 1
    REDELIVER = 2
    DELIVER = 3
    BUFFER = 4
    PROCESS = 5
    DROP_DEAD = 6
    DROP_CAPACITY = 7
    DROP_SHED = 8
    DROP_UNINSTALL = 9
    DROP_OVERFLOW = 10

    _FIRST_TERMINAL = PROCESS
    _INITIAL = 1024

    def __init__(
        self, sample_rate: float = 0.01, salt: int = 0xB5, enabled: bool = True
    ) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError("sample_rate must be in (0, 1]")
        self.sample_rate = float(sample_rate)
        self.salt = int(salt)
        self._salt64 = np.int64(salt)
        self.enabled = enabled
        self.current_tick = 0
        self._cap = self._INITIAL
        self._t = np.empty(self._cap, dtype=np.int64)
        self._e = np.empty(self._cap, dtype=np.int64)
        self._s = np.empty(self._cap, dtype=np.int64)
        self._o = np.empty(self._cap, dtype=np.int64)
        self._nd = np.empty(self._cap, dtype=np.int64)
        self._n = 0

    # -- sampling ----------------------------------------------------------

    def sampled(self, seqs: np.ndarray) -> np.ndarray | None:
        """Boolean sample mask over an int64 seq array (None = all)."""
        if self.sample_rate >= 1.0:
            return None
        # The 0-d salt deliberately wraps mod 2^64; silence the
        # scalar-overflow warning NumPy raises only for 0-d operands.
        with np.errstate(over="ignore"):
            return _filter_bucket(seqs, self._salt64) < self.sample_rate

    def sample_one(self, seq: int) -> bool:
        """Per-tuple twin of :meth:`sampled` (same hash, same salt)."""
        return (
            self.sample_rate >= 1.0
            or _filter_bucket_int(int(seq), self.salt) < self.sample_rate
        )

    # -- recording ---------------------------------------------------------

    def begin_tick(self, tick: int) -> None:
        """Stamp subsequent events with ``tick`` (set once per tick)."""
        self.current_tick = tick

    def _grow(self, needed: int) -> None:
        cap = self._cap
        while cap < needed:
            cap *= 2
        for name in ("_t", "_e", "_s", "_o", "_nd"):
            old = getattr(self, name)
            fresh = np.empty(cap, dtype=np.int64)
            fresh[: self._n] = old[: self._n]
            setattr(self, name, fresh)
        self._cap = cap

    def record(
        self,
        event: int,
        seqs: np.ndarray,
        ops: np.ndarray,
        nodes: np.ndarray | None = None,
    ) -> None:
        """Append one event for every *sampled* seq of a batch.

        One vectorized hash + one masked append; no per-tuple Python.
        ``nodes`` is -1 when the site has no meaningful node (e.g.
        transport-side uninstall drops).
        """
        if not self.enabled or seqs.size == 0:
            return
        mask = self.sampled(seqs)
        if mask is not None:
            seqs = seqs[mask]
            if seqs.size == 0:
                return
            ops = ops[mask]
            if nodes is not None:
                nodes = nodes[mask]
        m = seqs.size
        if self._n + m > self._cap:
            self._grow(self._n + m)
        lo, hi = self._n, self._n + m
        self._t[lo:hi] = self.current_tick
        self._e[lo:hi] = event
        self._s[lo:hi] = seqs
        self._o[lo:hi] = ops
        self._nd[lo:hi] = -1 if nodes is None else nodes
        self._n = hi

    def record_one(self, event: int, seq: int, op: int, node: int = -1) -> None:
        """Per-tuple twin of :meth:`record` (the scalar step path)."""
        if not self.enabled or not self.sample_one(seq):
            return
        if self._n + 1 > self._cap:
            self._grow(self._n + 1)
        i = self._n
        self._t[i] = self.current_tick
        self._e[i] = event
        self._s[i] = seq
        self._o[i] = op
        self._nd[i] = node
        self._n = i + 1

    # Transport-facing hooks: transports hold a duck-typed ``trace``
    # attribute and never import event codes.
    def record_redeliver(self, seqs: np.ndarray, ops: np.ndarray) -> None:
        self.record(self.REDELIVER, seqs, ops)

    def record_redeliver_one(self, seq: int, op: int) -> None:
        self.record_one(self.REDELIVER, seq, op)

    def record_drop_uninstall(self, seqs: np.ndarray, ops: np.ndarray) -> None:
        self.record(self.DROP_UNINSTALL, seqs, ops)

    def record_drop_uninstall_one(self, seq: int, op: int) -> None:
        self.record_one(self.DROP_UNINSTALL, seq, op)

    # -- reading -----------------------------------------------------------

    @property
    def num_events(self) -> int:
        return self._n

    def events(self) -> dict[str, np.ndarray]:
        """The trace columns (copies), in append order."""
        n = self._n
        return {
            "tick": self._t[:n].copy(),
            "event": self._e[:n].copy(),
            "seq": self._s[:n].copy(),
            "op": self._o[:n].copy(),
            "node": self._nd[:n].copy(),
        }

    def events_canonical(self) -> list[tuple[int, int, int, int, int]]:
        """Events as (tick, seq, event, op, node) tuples in causal order.

        Event codes are causally ordered within a (tick, seq), so this
        order is identical for the vectorized and scalar twins even
        though their append orders differ — the twin-trace equality
        test compares exactly this.
        """
        n = self._n
        order = np.lexsort((self._e[:n], self._s[:n], self._t[:n]))
        return list(
            zip(
                self._t[:n][order].tolist(),
                self._s[:n][order].tolist(),
                self._e[:n][order].tolist(),
                self._o[:n][order].tolist(),
                self._nd[:n][order].tolist(),
            )
        )

    def spans(self) -> dict[int, list[tuple[int, int, int, int]]]:
        """End-to-end span per sampled seq: seq -> [(tick, event, op, node)].

        Each span's events are in causal order ((tick, event code) —
        codes are numbered along the lifecycle).
        """
        n = self._n
        order = np.lexsort((self._e[:n], self._t[:n], self._s[:n]))
        out: dict[int, list[tuple[int, int, int, int]]] = {}
        t, e, s, o, nd = (
            self._t[:n][order],
            self._e[:n][order],
            self._s[:n][order],
            self._o[:n][order],
            self._nd[:n][order],
        )
        for i in range(n):
            out.setdefault(int(s[i]), []).append(
                (int(t[i]), int(e[i]), int(o[i]), int(nd[i]))
            )
        return out

    def clear(self) -> None:
        """Drop every recorded event (the buffer capacity is kept)."""
        self._n = 0

    def to_jsonl(self, path) -> None:
        """Write one JSON object per event, in append order."""
        n = self._n
        with open(path, "w") as fh:
            for i in range(n):
                fh.write(
                    json.dumps(
                        {
                            "tick": int(self._t[i]),
                            "event": EVENT_NAMES[int(self._e[i])],
                            "seq": int(self._s[i]),
                            "op": int(self._o[i]),
                            "node": int(self._nd[i]),
                        }
                    )
                    + "\n"
                )

    # -- the completeness invariant ----------------------------------------

    def check_completeness(
        self,
        inflight_seqs: np.ndarray,
        buffered_seqs: np.ndarray,
        totals: dict[str, int] | None = None,
    ) -> dict:
        """Verify the trace-completeness invariant against live state.

        Checks (assuming the tracer was attached before the first tick):

        1. every sampled span has exactly one birth (EMIT or SEND);
        2. every sampled span has at most one terminal event;
        3. a span *without* a terminal is open: its last event is a
           send-like event and its seq is in flight, or its last event
           is BUFFER and its seq is parked — and conversely every
           sampled in-flight / buffered seq is an open span;
        4. a span *with* a terminal is closed: its seq is neither in
           flight nor buffered;
        5. with ``totals`` (only meaningful at ``sample_rate=1.0``),
           event counts reconcile with the accounting: births ==
           transport ``sent``, and each terminal code's count equals
           its drop/processed counter.

        Returns a dict with ``ok`` plus violation details; property
        tests assert ``result["ok"]`` every tick.
        """
        n = self._n
        violations: list[str] = []
        e, s = self._e[:n], self._s[:n]
        births = (e == self.EMIT) | (e == self.SEND)
        terminal = e >= self._FIRST_TERMINAL
        uniq, inv = np.unique(s, return_inverse=True)
        nspans = uniq.size
        birth_per = np.bincount(inv, weights=births, minlength=nspans)
        term_per = np.bincount(inv, weights=terminal, minlength=nspans)
        if (birth_per != 1).any():
            bad = uniq[birth_per != 1][:5]
            violations.append(f"spans without exactly one birth: {bad.tolist()}")
        if (term_per > 1).any():
            bad = uniq[term_per > 1][:5]
            violations.append(f"spans with multiple terminals: {bad.tolist()}")

        # Last event per span in causal order.
        order = np.lexsort((e, self._t[:n], s))
        last_idx = np.zeros(nspans, dtype=np.int64)
        last_idx[inv[order]] = order
        last_event = e[last_idx]

        def _sampled_set(seqs: np.ndarray) -> set[int]:
            seqs = np.asarray(seqs, dtype=np.int64)
            mask = self.sampled(seqs)
            if mask is not None:
                seqs = seqs[mask]
            return set(seqs.tolist())

        inflight = _sampled_set(inflight_seqs)
        buffered = _sampled_set(buffered_seqs)
        open_mask = term_per == 0
        for seq, last in zip(uniq[open_mask], last_event[open_mask]):
            seq = int(seq)
            if last == self.BUFFER:
                if seq not in buffered:
                    violations.append(f"open span {seq} (buffer) not in buffer")
            elif last in (self.EMIT, self.SEND, self.REDELIVER):
                if seq not in inflight:
                    violations.append(f"open span {seq} (sent) not in flight")
            else:
                violations.append(
                    f"open span {seq} ends mid-delivery ({EVENT_NAMES[int(last)]})"
                )
        closed = set(uniq[~open_mask].tolist())
        leaked = (inflight | buffered) & closed
        if leaked:
            violations.append(f"closed spans still live: {sorted(leaked)[:5]}")
        unseen = (inflight | buffered) - set(uniq.tolist())
        if unseen:
            violations.append(f"live sampled seqs never traced: {sorted(unseen)[:5]}")

        if totals is not None:
            counts = np.bincount(e, minlength=len(EVENT_NAMES))
            observed = {
                "births": int(counts[self.EMIT] + counts[self.SEND]),
                "process": int(counts[self.PROCESS]),
                "drop_dead": int(counts[self.DROP_DEAD]),
                "drop_capacity": int(counts[self.DROP_CAPACITY]),
                "drop_shed": int(counts[self.DROP_SHED]),
                "drop_uninstall": int(counts[self.DROP_UNINSTALL]),
                "drop_overflow": int(counts[self.DROP_OVERFLOW]),
                "redeliver": int(counts[self.REDELIVER]),
                "buffer": int(counts[self.BUFFER]),
            }
            for key, expect in totals.items():
                if observed.get(key, 0) != expect:
                    violations.append(
                        f"{key}: traced {observed.get(key, 0)} != accounted {expect}"
                    )

        return {
            "ok": not violations,
            "violations": violations,
            "spans": int(nspans),
            "open": int(open_mask.sum()),
            "closed": int(nspans - open_mask.sum()),
            "events": int(n),
        }
