"""Measured-rate estimation for the control plane.

:class:`RateEstimator` turns the data plane's per-tick measured
statistics (per-link tuple counts, per-node drop/processed counts) into
calibrated rates: an exponentially weighted moving average per key plus
a windowed ring buffer of the raw samples for robust quantiles.

Performance architecture (struct-of-arrays)
-------------------------------------------

The production path is fully array-backed: keys map to columns of a
contiguous state block — ``ewma (m,)``, ``seen (m,)`` and a
``(window, m)`` sample ring — and one :meth:`observe` call updates
every observed column with three vectorized expressions.  The column
index of a stable key list is cached by list identity, so the steady
state does no per-key Python work at all (the data plane reuses its
``link_keys()`` list object between recompiles).

Scalar reference
----------------

:meth:`observe_scalar` is the retained per-key twin: plain dict lookups
and Python-float EWMA updates consuming *identical* inputs, kept
sample-aligned with the ring (unobserved known keys record an explicit
0, late-arriving keys are zero-backfilled) so both paths answer
:meth:`rates` and :meth:`quantile` bit-for-bit equally.  One estimator
instance commits to one path on first use — build a twin to compare —
mirroring the :class:`~repro.runtime.dataplane.DataPlane` discipline.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Sequence

import numpy as np

__all__ = ["RateEstimator"]


class RateEstimator:
    """EWMA + windowed-quantile estimator over keyed per-tick counts.

    Args:
        alpha: EWMA gain — weight of the newest sample.  The first
            observation of a key initializes its EWMA directly (no
            zero bias).
        window: ring depth for windowed quantiles.
    """

    def __init__(self, alpha: float = 0.3, window: int = 32):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if window <= 0:
            raise ValueError("window must be positive")
        self.alpha = alpha
        self.window = window
        self.ticks = 0
        self._mode: str | None = None
        # Array path.
        self._index: dict[Hashable, int] = {}
        self._keys: list[Hashable] = []
        self._ewma = np.empty(0)
        self._seen = np.empty(0, dtype=np.int64)
        self._ring = np.zeros((window, 0))
        self._filled = 0
        self._cursor = 0
        self._idx_cache: tuple[Sequence[Hashable], np.ndarray] | None = None
        # True while every key ever observed came from a keys=None call
        # (so key k is column k) — enables the identity fast path.
        self._identity_keys = True
        # Scalar path.
        self._ewma_d: dict[Hashable, float] = {}
        self._seen_d: dict[Hashable, int] = {}
        self._ring_d: dict[Hashable, deque] = {}

    # -- shared -------------------------------------------------------------

    def _use_mode(self, mode: str) -> None:
        if self._mode is None:
            self._mode = mode
        elif self._mode != mode:
            raise RuntimeError(
                "RateEstimator committed to the other observe path; build "
                "a twin instance to compare observe() vs observe_scalar()"
            )

    @staticmethod
    def _as_keys(values: np.ndarray, keys: Sequence[Hashable] | None):
        if keys is None:
            return range(len(values))
        if len(keys) != len(values):
            raise ValueError("keys and values must have equal length")
        return keys

    @property
    def num_keys(self) -> int:
        return len(self._keys) if self._mode != "scalar" else len(self._ewma_d)

    def keys(self) -> list[Hashable]:
        """All keys ever observed, in first-observation order."""
        if self._mode == "scalar":
            return list(self._ewma_d)
        return list(self._keys)

    # -- array path ---------------------------------------------------------

    def _grow(self, extra: int) -> None:
        self._ewma = np.concatenate((self._ewma, np.zeros(extra)))
        self._seen = np.concatenate((self._seen, np.zeros(extra, dtype=np.int64)))
        self._ring = np.concatenate(
            (self._ring, np.zeros((self.window, extra))), axis=1
        )

    def _column_index(self, values: np.ndarray, keys) -> np.ndarray:
        if keys is None and self._identity_keys:
            # Fast path: key k IS column k, no per-key Python work.
            n = len(values)
            if n > len(self._keys):
                for k in range(len(self._keys), n):
                    self._index[k] = k
                    self._keys.append(k)
                self._grow(n - self._ewma.size)
            return np.arange(n)
        if keys is not None and self._idx_cache is not None:
            cached_obj, idx = self._idx_cache
            if cached_obj is keys and idx.size == len(values):
                return idx
        self._identity_keys = False
        key_iter = self._as_keys(values, keys)
        fresh = 0
        for key in key_iter:
            if key not in self._index:
                self._index[key] = len(self._keys)
                self._keys.append(key)
                fresh += 1
        if fresh:
            self._grow(fresh)
        idx = np.fromiter(
            (self._index[k] for k in self._as_keys(values, keys)),
            dtype=np.int64,
            count=len(values),
        )
        if keys is not None:
            self._idx_cache = (keys, idx)
        return idx

    def observe(self, values: np.ndarray, keys: Sequence[Hashable] | None = None) -> None:
        """Ingest one tick of per-key counts (vectorized).

        ``keys`` defaults to the integer range ``0..len(values)-1``.
        Known keys absent from ``keys`` record an implicit 0 sample in
        the ring (their EWMA freezes); unseen keys grow the state.
        Duplicate keys in one observation are *summed* into one sample
        (both paths), so aliased keys — e.g. parallel circuit links
        sharing a (source, target) pair — stay well-defined.
        """
        self._use_mode("array")
        values = np.asarray(values, dtype=float)
        idx = self._column_index(values, keys)
        self.ticks += 1
        self._ring[self._cursor, :] = 0.0
        np.add.at(self._ring, (self._cursor, idx), values)
        uidx = np.unique(idx)
        summed = self._ring[self._cursor, uidx]
        first = self._seen[uidx] == 0
        blended = (1.0 - self.alpha) * self._ewma[uidx] + self.alpha * summed
        self._ewma[uidx] = np.where(first, summed, blended)
        self._seen[uidx] += 1
        self._cursor = (self._cursor + 1) % self.window
        self._filled = min(self._filled + 1, self.window)

    # -- scalar reference path ----------------------------------------------

    def observe_scalar(
        self, values: np.ndarray, keys: Sequence[Hashable] | None = None
    ) -> None:
        """Per-key Python-loop twin of :meth:`observe` (same inputs)."""
        self._use_mode("scalar")
        values = np.asarray(values, dtype=float)
        key_list = list(self._as_keys(values, keys))
        self.ticks += 1
        # Duplicate keys sum into one sample, as in the array path.
        observed: dict[Hashable, float] = {}
        for key, value in zip(key_list, values):
            observed[key] = observed.get(key, 0.0) + float(value)
        for key, value in observed.items():
            if key not in self._ewma_d:
                # Zero-backfill so the per-key sample list aligns with
                # the array ring's pre-existing all-zero column.
                backfill = min(self._filled, self.window)
                self._ring_d[key] = deque(
                    [0.0] * backfill, maxlen=self.window
                )
                self._ewma_d[key] = value
                self._seen_d[key] = 1
            else:
                self._ewma_d[key] = (
                    (1.0 - self.alpha) * self._ewma_d[key] + self.alpha * value
                )
                self._seen_d[key] += 1
        for key, ring in self._ring_d.items():
            ring.append(observed.get(key, 0.0))
        self._filled = min(self._filled + 1, self.window)

    # -- queries (both paths) -----------------------------------------------

    def rate(self, key: Hashable, default: float = 0.0) -> float:
        """Current EWMA rate of one key (``default`` when never seen)."""
        if self._mode == "scalar":
            return self._ewma_d.get(key, default)
        col = self._index.get(key)
        return float(self._ewma[col]) if col is not None else default

    def seen(self, key: Hashable) -> int:
        """How many ticks actually observed this key."""
        if self._mode == "scalar":
            return self._seen_d.get(key, 0)
        col = self._index.get(key)
        return int(self._seen[col]) if col is not None else 0

    def rates(self, keys: Sequence[Hashable] | None = None) -> np.ndarray:
        """EWMA rates for ``keys`` (default: all, first-seen order)."""
        if self._mode == "scalar":
            source = self._ewma_d
            if keys is None:
                return np.array(list(source.values()), dtype=float)
            return np.array([source.get(k, 0.0) for k in keys], dtype=float)
        if keys is None:
            return self._ewma.copy()
        cols = np.fromiter(
            (self._index.get(k, -1) for k in keys), dtype=np.int64, count=len(keys)
        )
        out = np.zeros(len(keys))
        hit = cols >= 0
        out[hit] = self._ewma[cols[hit]]
        return out

    def quantile(self, q: float, keys: Sequence[Hashable] | None = None) -> np.ndarray:
        """Windowed per-key quantile over the last ``window`` samples.

        Unobserved ticks count as explicit 0 samples, in both paths.
        """
        if self._filled == 0:
            size = self.num_keys if keys is None else len(keys)
            return np.zeros(size)
        if self._mode == "scalar":
            key_list = list(self._ewma_d) if keys is None else list(keys)
            return np.array(
                [
                    float(np.percentile(np.asarray(self._ring_d[k]), q * 100.0))
                    if k in self._ring_d
                    else 0.0
                    for k in key_list
                ]
            )
        block = self._ring[: self._filled]
        if keys is None:
            cols = np.arange(len(self._keys))
        else:
            cols = np.fromiter(
                (self._index.get(k, -1) for k in keys),
                dtype=np.int64,
                count=len(keys),
            )
        out = np.zeros(cols.size)
        hit = cols >= 0
        if hit.any():
            out[hit] = np.percentile(block[:, cols[hit]], q * 100.0, axis=0)
        return out
