"""The closed-loop controller: measured rates back into the optimizer.

The optimizer prices circuits from *estimated* link rates; the data
plane measures what the links really carry.  :class:`Controller` closes
that loop each tick:

1. **Ingest** — the data plane's per-tick measured statistics
   (per-link tuple counts, per-node drop / processed counts, the tick's
   drop fraction and delivery-latency p95) feed the
   :class:`~repro.control.estimator.RateEstimator` banks.
2. **Calibrate** — every ``calibrate_interval`` ticks past warmup, the
   measured EWMA link rates are written back into the circuits'
   estimated link rates (``Circuit.set_link_rates``) and pushed into
   the re-optimizer's cached :class:`_CircuitKernel` prices
   (``refresh_kernel_rates``), so the next re-optimization pass
   minimizes the *measured* objective rather than the stale estimate.
   Oracle mode short-circuits measurement and calibrates from
   :meth:`DataPlane.true_link_rates` — the upper bound a perfect
   estimator could reach.
3. **React** — when the measured drop fraction (or latency p95) EWMA
   breaches the policy threshold, the controller requests an immediate
   *backpressure-aware* re-placement: the record names the nodes whose
   measured admission-drop rate is high so the simulator's triggered
   pass excludes them as migration targets.  Independently, a load-
   shedding policy caps admission on nodes whose measured **CPU cost
   rate** exceeds ``shed_limit`` (cost units per tick — tuple counts
   under the unit load model; drops attributed ``dropped_shed``) and
   releases the cap once the pressure subsides.
4. **Close the load loop** — beside the link-rate calibration, the
   measured per-node CPU cost (EWMA, or the windowed quantile when
   ``calibrate_quantile`` is set) is normalized by the cost-rate
   reference and written into the cost space's load dimension
   (:meth:`Overlay.set_measured_cpu`), so the re-optimizer and the
   mappers *place away from CPU-hot nodes* — measured compute pressure
   changes where operators run.
5. **Relieve buffer pressure** — services whose reliable-transport
   retransmit backlog exceeds ``buffer_evacuate_backlog`` are named in
   the record (``evacuate_services``); the simulator forces their
   re-placement so buffered tuples re-home instead of waiting for a
   dead host to return.

Scalar reference: :meth:`step_scalar` routes the identical inputs
through the estimator banks' per-key scalar twins, so twin controllers
(one per step path, like the data-plane twins) make bit-identical
decisions — the E19 benchmark's before/after pair.  Policy state
(EWMAs, cooldowns, shed sets) is plain Python arithmetic shared by both
paths.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.control.estimator import RateEstimator
from repro.core.load_model import (
    KIND_AGGREGATE,
    KIND_FILTER,
    KIND_JOIN,
    KIND_RELAY,
    LoadModel,
)
from repro.core.reoptimizer import refresh_kernel_rates

__all__ = ["ControlConfig", "ControlRecord", "Controller"]


@dataclass(frozen=True)
class ControlConfig:
    """Policy knobs of the closed-loop controller.

    Attributes:
        alpha: EWMA gain of every estimator bank and policy series.
        quantile_window: ring depth of the estimators' windowed
            quantiles.
        warmup: ticks of measurement before the controller acts at all.
        calibrate_interval: ticks between rate calibrations.
        min_observations: a link needs this many measured ticks before
            its estimate is overwritten (younger links keep the prior).
        min_rate: floor for calibrated rates (spring weights and prices
            degenerate at exactly zero).
        drop_threshold: measured drop-fraction EWMA above which a
            re-placement is triggered (None disables).
        latency_threshold_ms: delivery-latency p95 EWMA above which a
            re-placement is triggered (None disables).
        trigger_cooldown: minimum ticks between triggered re-placements.
        exclude_drop_rate: nodes whose measured admission-drop EWMA
            exceeds this many tuples/tick are excluded as migration
            targets in a triggered pass (None excludes nobody).
        shed_limit: measured CPU cost units/tick above which a node
            gets an admission cap at exactly this limit (None disables
            load shedding).  Cost units == tuple counts under the
            default unit load model.
        shed_release: release the cap once the node's CPU-cost EWMA
            falls below ``shed_release * shed_limit``.
        calibrate_quantile: when set (e.g. 0.95), link rates and CPU
            loads are calibrated from the estimators' windowed
            quantiles instead of the EWMA mean — provisioning for
            bursts rather than averages.
        cpu_ref: CPU cost units/tick corresponding to a fully loaded
            node, for the load-dimension write-back; None derives it
            from the data plane's ``node_capacity``, then
            ``shed_limit`` (write-back skipped when neither exists).
        cpu_calibrate: False disables the load-dimension write-back
            (the count-era behavior: placement never sees measured
            compute pressure).
        buffer_evacuate_backlog: retransmit-buffered tuples per service
            above which the controller forces that service's
            re-placement (None disables the policy).
        drift_calibrate: fold the fitted per-kind effective costs back
            into the data plane's live load model at each calibration.
            Observed kinds' base coefficients absorb the fitted cost
            (re-quantized to the dyadic 1/256 grid) and their dynamic
            probe/batch coefficients are zeroed, so admission prices
            track the measured effective cost and the loop converges —
            once priced and fitted costs coincide the drift ratios
            settle at 1 and no further pushes happen.
    """

    alpha: float = 0.3
    quantile_window: int = 32
    warmup: int = 8
    calibrate_interval: int = 5
    min_observations: int = 4
    min_rate: float = 1e-3
    drop_threshold: float | None = 0.05
    latency_threshold_ms: float | None = None
    trigger_cooldown: int = 10
    exclude_drop_rate: float | None = 1.0
    shed_limit: float | None = None
    shed_release: float = 0.8
    calibrate_quantile: float | None = None
    cpu_ref: float | None = None
    cpu_calibrate: bool = True
    buffer_evacuate_backlog: int | None = None
    drift_calibrate: bool = False

    def __post_init__(self) -> None:
        if not 0 < self.alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if self.quantile_window <= 0:
            raise ValueError("quantile_window must be positive")
        if self.warmup < 0 or self.calibrate_interval <= 0:
            raise ValueError("warmup must be >= 0 and calibrate_interval > 0")
        if self.min_observations < 1:
            raise ValueError("min_observations must be >= 1")
        if self.min_rate <= 0:
            raise ValueError("min_rate must be positive")
        if self.trigger_cooldown < 0:
            raise ValueError("trigger_cooldown must be non-negative")
        if not 0 < self.shed_release <= 1:
            raise ValueError("shed_release must be in (0, 1]")
        if self.calibrate_quantile is not None and not 0 < self.calibrate_quantile < 1:
            raise ValueError("calibrate_quantile must be in (0, 1)")
        if self.cpu_ref is not None and self.cpu_ref <= 0:
            raise ValueError("cpu_ref must be positive")
        if self.buffer_evacuate_backlog is not None and self.buffer_evacuate_backlog < 1:
            raise ValueError("buffer_evacuate_backlog must be >= 1")


@dataclass(frozen=True)
class ControlRecord:
    """What the controller did with one tick's measurements.

    Attributes:
        tick: data-plane tick the measurements belong to.
        calibrated_links: link rates written back this tick (0 when no
            calibration ran).
        replace_triggered: True when a policy breach requested an
            immediate re-placement pass.
        excluded_nodes: nodes the triggered pass must avoid (measured
            admission-drop hot spots).
        shed_nodes: nodes newly capped by the shedding policy.
        released_nodes: nodes whose shed cap was lifted.
        drop_ewma: current measured drop-fraction EWMA.
        latency_ewma: current delivery-latency p95 EWMA (ms).
        calibrated_cpu: nodes whose measured CPU load was written into
            the cost space's load dimension this tick (0 when no
            write-back ran).
        evacuate_services: (circuit, service) pairs whose retransmit
            backlog breached ``buffer_evacuate_backlog`` — the
            simulator forces their re-placement this tick.
    """

    tick: int
    calibrated_links: int = 0
    replace_triggered: bool = False
    excluded_nodes: tuple[int, ...] = ()
    shed_nodes: tuple[int, ...] = ()
    released_nodes: tuple[int, ...] = ()
    drop_ewma: float = 0.0
    latency_ewma: float = 0.0
    calibrated_cpu: int = 0
    evacuate_services: tuple[tuple[str, str], ...] = ()


class Controller:
    """Feeds the data plane's measurements back into placement decisions.

    Args:
        data_plane: the executing :class:`~repro.runtime.dataplane.DataPlane`.
        config: policy knobs (defaults: calibration on, trigger on
            drops, shedding off).
        kernel_cache: the simulator's compiled-circuit kernel cache;
            calibration refreshes cached ``_CircuitKernel`` prices in
            place.  The simulator wires its own cache in when it owns
            the controller.
        oracle: calibrate from :meth:`DataPlane.true_link_rates`
            instead of measurements (the perfect-information upper
            bound for closed-loop experiments).
        calibrate_quantile: convenience override of
            ``ControlConfig.calibrate_quantile`` — e.g.
            ``Controller(plane, calibrate_quantile=0.95)`` prices from
            the estimators' windowed p95 instead of the EWMA mean.
    """

    def __init__(
        self,
        data_plane,
        config: ControlConfig | None = None,
        kernel_cache: dict | None = None,
        oracle: bool = False,
        calibrate_quantile: float | None = None,
    ):
        self.data_plane = data_plane
        self.overlay = data_plane.overlay
        self.config = config or ControlConfig()
        if calibrate_quantile is not None:
            self.config = replace(
                self.config, calibrate_quantile=calibrate_quantile
            )
        self.kernel_cache = kernel_cache
        self.oracle = oracle
        cfg = self.config
        self.link_rates = RateEstimator(cfg.alpha, cfg.quantile_window)
        self.node_drops = RateEstimator(cfg.alpha, cfg.quantile_window)
        self.node_processed = RateEstimator(cfg.alpha, cfg.quantile_window)
        self.node_cpu = RateEstimator(cfg.alpha, cfg.quantile_window)
        self.drop_ewma = 0.0
        self.latency_ewma = 0.0
        self.ticks = 0
        self.calibrations = 0
        self.cpu_calibrations = 0
        self.triggers = 0
        self.buffer_evacuations = 0
        self.shed_nodes: set[int] = set()
        self._last_trigger: int | None = None
        # Load-model drift fit: accumulate the normal equations of
        # measured per-node cost against per-(node, kind) processed
        # counts; solved at each calibration (see cost_drift).
        self._drift_xtx = np.zeros((4, 4))
        self._drift_xty = np.zeros(4)
        self._drift_ticks = 0
        self.cost_drift: np.ndarray | None = None
        # Structured-event sink (repro.obs.events.EventLog) or None;
        # the simulator wires an attached Observability's log in here.
        self.events = None
        # Why the most recent re-placement trigger fired:
        # "drop_ewma", "latency_ewma", or "drop_ewma+latency_ewma".
        self.last_trigger_reason: str | None = None

    # -- tick entry points ---------------------------------------------------

    def step(self, traffic) -> ControlRecord:
        """Ingest one tick's measurements and act (vectorized path)."""
        return self._step(traffic, scalar=False)

    def step_scalar(self, traffic) -> ControlRecord:
        """Per-key twin of :meth:`step` consuming identical inputs."""
        return self._step(traffic, scalar=True)

    def _step(self, traffic, scalar: bool) -> ControlRecord:
        dp = self.data_plane
        cfg = self.config
        self.ticks += 1
        observe = "observe_scalar" if scalar else "observe"
        getattr(self.link_rates, observe)(
            dp.tick_link_tuples.astype(float), dp.link_keys()
        )
        getattr(self.node_drops, observe)(dp.tick_node_drops.astype(float))
        getattr(self.node_processed, observe)(dp.tick_node_processed.astype(float))
        getattr(self.node_cpu, observe)(dp.tick_node_cpu)
        x = dp.tick_node_kind_processed.astype(float)
        if x.shape[0] == dp.tick_node_cpu.shape[0]:
            self._drift_xtx += x.T @ x
            self._drift_xty += x.T @ dp.tick_node_cpu
            self._drift_ticks += 1

        denom = traffic.processed + traffic.dropped
        frac = traffic.dropped / denom if denom else 0.0
        self.drop_ewma = (1.0 - cfg.alpha) * self.drop_ewma + cfg.alpha * frac
        if traffic.delivered:
            self.latency_ewma = (
                (1.0 - cfg.alpha) * self.latency_ewma
                + cfg.alpha * traffic.latency_p95
            )

        calibrated = 0
        calibrated_cpu = 0
        armed = self.ticks >= cfg.warmup
        if armed and self.ticks % cfg.calibrate_interval == 0:
            calibrated = self.calibrate()
            calibrated_cpu = self.calibrate_cpu()
            self.fit_cost_drift()
            if cfg.drift_calibrate:
                self.apply_cost_drift()

        shed_new, shed_released = self._shed_policy(armed)
        triggered, excluded = self._trigger_policy(armed)
        evacuate = self._buffer_policy(armed)

        events = self.events
        if events is not None:
            tick = traffic.tick
            if calibrated or calibrated_cpu:
                events.emit(
                    tick,
                    "calibration",
                    links=int(calibrated),
                    cpu_nodes=int(calibrated_cpu),
                )
            if shed_new:
                events.emit(
                    tick,
                    "shed_set",
                    nodes=list(shed_new),
                    limit=cfg.shed_limit,
                )
            if shed_released:
                events.emit(tick, "shed_release", nodes=list(shed_released))
            if triggered:
                events.emit(
                    tick,
                    "replace_triggered",
                    reason=self.last_trigger_reason,
                    drop_ewma=self.drop_ewma,
                    latency_ewma_ms=self.latency_ewma,
                    excluded_nodes=list(excluded),
                )
            if evacuate:
                events.emit(
                    tick,
                    "buffer_evacuate",
                    services=[list(pair) for pair in evacuate],
                )

        return ControlRecord(
            tick=traffic.tick,
            calibrated_links=calibrated,
            replace_triggered=triggered,
            excluded_nodes=excluded,
            shed_nodes=shed_new,
            released_nodes=shed_released,
            drop_ewma=self.drop_ewma,
            latency_ewma=self.latency_ewma,
            calibrated_cpu=calibrated_cpu,
            evacuate_services=evacuate,
        )

    # -- calibration ---------------------------------------------------------

    def calibrated_rates(self, circuit) -> np.ndarray | None:
        """Per-link calibrated rates aligned with ``circuit.links``.

        Measured mode returns the EWMA of each link's realized
        tuples/tick — or, with ``calibrate_quantile`` set, the windowed
        quantile of the raw samples, provisioning for bursts above the
        mean (links with fewer than ``min_observations`` samples keep
        their current estimate); oracle mode returns the data plane's
        analytic true rates.  Parallel links sharing a (source, target)
        pair alias one measurement key (their counts sum), so they keep
        their priors rather than absorb each other's traffic.  None
        when nothing would change.
        """
        cfg = self.config
        truth = self.data_plane.true_link_rates() if self.oracle else None
        key_uses: dict[tuple, int] = {}
        for link in circuit.links:
            key = (circuit.name, link.source, link.target)
            key_uses[key] = key_uses.get(key, 0) + 1
        qvals = None
        if truth is None and cfg.calibrate_quantile is not None:
            qvals = self.link_rates.quantile(
                cfg.calibrate_quantile,
                [(circuit.name, l.source, l.target) for l in circuit.links],
            )
        rates = []
        changed = False
        for i, link in enumerate(circuit.links):
            key = (circuit.name, link.source, link.target)
            if key_uses[key] > 1:
                value = None
            elif truth is not None:
                value = truth.get(key)
            elif self.link_rates.seen(key) >= cfg.min_observations:
                value = (
                    float(qvals[i]) if qvals is not None else self.link_rates.rate(key)
                )
            else:
                value = None
            rate = link.rate if value is None else max(cfg.min_rate, value)
            changed = changed or rate != link.rate
            rates.append(rate)
        return np.asarray(rates) if changed else None

    def calibrate(self) -> int:
        """Write calibrated rates into every installed circuit now.

        Updates both the circuits' link estimates (what evaluators and
        the scalar re-optimizer references price) and any cached
        compiled kernels (what the batched passes price), then drops
        the overlay's usage-index cache so estimated-usage reporting
        reflects the calibration.  Returns the number of links whose
        rate changed.
        """
        changed = 0
        for circuit in self.overlay.circuits.values():
            rates = self.calibrated_rates(circuit)
            if rates is None:
                continue
            before = np.array([l.rate for l in circuit.links])
            circuit.set_link_rates(rates)
            refresh_kernel_rates(self.kernel_cache, circuit, rates)
            changed += int((before != rates).sum())
        if changed:
            self.overlay.invalidate_usage_cache()
            self.calibrations += 1
        return changed

    def cpu_reference(self) -> float | None:
        """Cost units/tick of a fully loaded node, for the write-back.

        Resolution order: ``ControlConfig.cpu_ref``, then the
        overlay's own reference (set when a cost-typed load process
        feeds :meth:`Overlay.set_background_cost` — background and
        measured cost then share one ``cpu_ref`` by construction),
        then the data plane's ``node_capacity``, then ``shed_limit``;
        None (and a skipped write-back) when none of them is
        configured.
        """
        cfg = self.config
        if cfg.cpu_ref is not None:
            return cfg.cpu_ref
        overlay_ref = self.overlay.cpu_reference()
        if overlay_ref is not None:
            return overlay_ref
        if self.data_plane.config.node_capacity is not None:
            return float(self.data_plane.config.node_capacity)
        if cfg.shed_limit is not None:
            return cfg.shed_limit
        return None

    def calibrate_cpu(self) -> int:
        """Write measured per-node CPU load into the load dimension.

        The measured cost rates (EWMA, or the windowed
        ``calibrate_quantile``) are normalized by the cost-rate
        reference, clipped to [0, 1], and handed to
        :meth:`Overlay.set_measured_cpu`; the cost space's load
        dimension then reflects real compute pressure and the next
        re-optimization pass places away from CPU-hot nodes.  Returns
        the number of nodes written (0 when disabled or no reference
        exists).
        """
        cfg = self.config
        ref = self.cpu_reference()
        if not cfg.cpu_calibrate or ref is None:
            return 0
        keys = range(self.overlay.num_nodes)
        if cfg.calibrate_quantile is not None:
            cpu = self.node_cpu.quantile(cfg.calibrate_quantile, keys)
        else:
            cpu = self.node_cpu.rates(keys)
        self.overlay.set_measured_cpu(np.clip(cpu / ref, 0.0, 1.0))
        self.overlay.refresh_cost_space()
        self.cpu_calibrations += 1
        return int(len(cpu))

    def fit_cost_drift(self) -> np.ndarray | None:
        """Regress measured node cost on per-kind processed counts.

        Least-squares over the accumulated normal equations gives the
        *fitted* per-tuple cost of each operator kind; dividing by the
        load model's *priced* base coefficients yields the drift ratio
        published as :attr:`cost_drift` (NaN for kinds never observed).
        A ratio near 1 means the pricing the autoscaler's breach signal
        relies on tracks reality; join/aggregate ratios above 1 are
        expected when their dynamic probe/batch terms are active, since
        the fit folds those into the base coefficient.  Runs at each
        calibration; returns the fresh ratios (None before any data).
        """
        if self._drift_ticks == 0:
            return None
        seen = np.diag(self._drift_xtx) > 0
        fitted = np.full(4, np.nan)
        if seen.any():
            sub = self._drift_xtx[np.ix_(seen, seen)]
            coef, *_ = np.linalg.lstsq(sub, self._drift_xty[seen], rcond=None)
            fitted[seen] = coef
        model = self.data_plane.load_model
        self.cost_drift = fitted / model.kind_costs()
        if self.events is not None:
            self.events.emit(
                self.ticks,
                "cost_drift",
                ratios=[None if np.isnan(r) else float(r) for r in self.cost_drift],
            )
        return self.cost_drift

    def apply_cost_drift(self) -> LoadModel | None:
        """Fold the fitted effective costs back into the live load model.

        Each observed kind's base coefficient is replaced by the fitted
        per-tuple cost re-quantized to the dyadic 1/256 grid (floored at
        1/256), and the dynamic coefficient the fit folded in (probe /
        batch) is zeroed once the fold moves that base — after that the
        priced and fitted costs coincide, so subsequent drift ratios
        settle at 1 instead of re-adding the dynamic term to the base at
        every calibration.  Unseen kinds keep their
        priced coefficients and dynamic terms.  The accumulated normal
        equations are reset so the next fit measures the new pricing
        regime cleanly.  Returns the model pushed to the data plane
        (None when there is no drift estimate or nothing changed).
        """
        drift = self.cost_drift
        if drift is None or not np.isfinite(drift).any():
            return None
        model = self.data_plane.load_model
        base = model.kind_costs()
        quant = np.round(base * drift * 256.0) / 256.0
        new = np.where(np.isfinite(drift), np.maximum(quant, 1.0 / 256.0), base)
        fields = {
            "relay_cost": float(new[KIND_RELAY]),
            "filter_cost": float(new[KIND_FILTER]),
            "aggregate_cost": float(new[KIND_AGGREGATE]),
            "join_cost": float(new[KIND_JOIN]),
        }
        # Retire a dynamic coefficient only when the fold actually moved
        # its base — a ratio of exactly 1 (e.g. joins observed before
        # any state built up, so zero probes were charged) means there
        # was nothing to fold yet, and zeroing the term then would lock
        # in under-pricing once state does accumulate.
        if np.isfinite(drift[KIND_AGGREGATE]) and (
            fields["aggregate_cost"] != model.aggregate_cost
        ):
            fields["aggregate_batch_cost"] = 0.0
        if np.isfinite(drift[KIND_JOIN]) and (
            fields["join_cost"] != model.join_cost
        ):
            fields["probe_cost"] = 0.0
        calibrated = replace(model, **fields)
        self._drift_xtx[:] = 0.0
        self._drift_xty[:] = 0.0
        self._drift_ticks = 0
        if calibrated == model:
            return None
        self.data_plane.set_load_model(calibrated)
        if self.events is not None:
            self.events.emit(
                self.ticks,
                "load_model_calibrated",
                kind_costs=[float(c) for c in calibrated.kind_costs()],
                probe_cost=calibrated.probe_cost,
                batch_cost=calibrated.aggregate_batch_cost,
            )
        return calibrated

    # -- policies ------------------------------------------------------------

    def _shed_policy(
        self, armed: bool
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        cfg = self.config
        if cfg.shed_limit is None or not armed:
            return (), ()
        # The shed currency is measured CPU cost units per tick (equal
        # to processed tuple counts under the unit load model).
        cpu = self.node_cpu.rates()
        overloaded = cpu > cfg.shed_limit
        relaxed = cpu < cfg.shed_release * cfg.shed_limit
        newly = tuple(
            int(i)
            for i in np.flatnonzero(overloaded)
            if int(i) not in self.shed_nodes
        )
        released = tuple(
            int(i) for i in np.flatnonzero(relaxed) if int(i) in self.shed_nodes
        )
        for node in newly:
            self.data_plane.set_shed_limit(node, cfg.shed_limit)
            self.shed_nodes.add(node)
        for node in released:
            self.data_plane.set_shed_limit(node, None)
            self.shed_nodes.discard(node)
        return newly, released

    def _trigger_policy(self, armed: bool) -> tuple[bool, tuple[int, ...]]:
        cfg = self.config
        if not armed:
            return False, ()
        if (
            self._last_trigger is not None
            and self.ticks - self._last_trigger < cfg.trigger_cooldown
        ):
            return False, ()
        reasons = []
        if cfg.drop_threshold is not None and self.drop_ewma > cfg.drop_threshold:
            reasons.append("drop_ewma")
        if (
            cfg.latency_threshold_ms is not None
            and self.latency_ewma > cfg.latency_threshold_ms
        ):
            reasons.append("latency_ewma")
        if not reasons:
            return False, ()
        self._last_trigger = self.ticks
        self.triggers += 1
        self.last_trigger_reason = "+".join(reasons)
        excluded: tuple[int, ...] = ()
        if cfg.exclude_drop_rate is not None:
            drops = self.node_drops.rates()
            excluded = tuple(
                int(i) for i in np.flatnonzero(drops > cfg.exclude_drop_rate)
            )
        return True, excluded

    def _buffer_policy(self, armed: bool) -> tuple[tuple[str, str], ...]:
        """Name services whose retransmit backlog breached the bound.

        The simulator forces a re-placement of every named service in
        the same tick (mapper excluding the backlogged host), so the
        buffered tuples re-home to the new host and redeliver instead
        of waiting for the dead node to return.
        """
        cfg = self.config
        if cfg.buffer_evacuate_backlog is None or not armed:
            return ()
        backlog = self.data_plane.buffered_backlog()
        hot = tuple(
            sorted(
                key
                for key, count in backlog.items()
                if count >= cfg.buffer_evacuate_backlog
            )
        )
        if hot:
            self.buffer_evacuations += 1
        return hot
