"""Control plane: closing the estimate→measure loop (PR 4).

The PR-3 data plane *measures* what the overlay really carries; the
optimizer stack *estimates*.  This package feeds the measurements back:

* :mod:`repro.control.estimator` — :class:`RateEstimator`: array-backed
  EWMA + windowed quantiles over keyed per-tick counts, with a per-key
  scalar twin (``observe_scalar``) consuming identical inputs.
* :mod:`repro.control.controller` — :class:`Controller`: calibrates the
  circuits' estimated link rates (and the re-optimizer's cached kernel
  prices) from measured rates, triggers backpressure-aware
  re-placement when measured drops/latency breach policy, and drives a
  load-shedding policy with explicit drop attribution.

Wire it into the tick loop with ``Simulation(..., data_plane=True,
control=True)`` — the simulator steps the controller right after the
data plane each tick and honors its triggered re-placements.
"""

from repro.control.controller import ControlConfig, Controller, ControlRecord
from repro.control.estimator import RateEstimator

__all__ = ["ControlConfig", "Controller", "ControlRecord", "RateEstimator"]
