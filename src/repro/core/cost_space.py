"""The cost space: a metric space over physical nodes (§3.1).

A :class:`CostSpaceSpec` fixes the *semantics* of a space — how many
vector dimensions, which scalar metrics with which weighting functions —
which "must be known by all nodes in the SBON".  A :class:`CostSpace`
is then a concrete snapshot: one :class:`CostCoordinate` per physical
node, built from a latency embedding (vector part) and current node
metrics (scalar part).

An SBON can run multiple independent cost spaces for different
application classes; in this library that is simply multiple
``CostSpace`` instances over the same node population.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.coordinates import CostCoordinate
from repro.core.weighting import WeightingFunction, squared

__all__ = ["ScalarDimension", "CostSpaceSpec", "CostSpace"]


@dataclass(frozen=True)
class ScalarDimension:
    """Semantics of one scalar dimension: metric name + weighting."""

    metric: str
    weighting: WeightingFunction

    def describe(self) -> str:
        return f"{self.metric}:{self.weighting.describe()}"


@dataclass(frozen=True)
class CostSpaceSpec:
    """Shared semantics of a cost space (dimensions, units, weightings).

    Attributes:
        vector_dims: number of latency-embedding dimensions.
        scalar_dimensions: ordered scalar dimensions.
        name: identifier of the space (there may be several per SBON).
    """

    vector_dims: int
    scalar_dimensions: tuple[ScalarDimension, ...] = ()
    name: str = "default"

    def __post_init__(self) -> None:
        if self.vector_dims < 1:
            raise ValueError("cost space needs at least one vector dimension")
        metrics = [d.metric for d in self.scalar_dimensions]
        if len(metrics) != len(set(metrics)):
            raise ValueError("duplicate scalar metric names")

    @property
    def dims(self) -> int:
        return self.vector_dims + len(self.scalar_dimensions)

    @classmethod
    def latency_only(cls, vector_dims: int = 2, name: str = "latency") -> "CostSpaceSpec":
        """A pure latency space (the simplest space in §3.1)."""
        return cls(vector_dims=vector_dims, name=name)

    @classmethod
    def latency_load(
        cls,
        vector_dims: int = 2,
        load_weighting: WeightingFunction | None = None,
        name: str = "latency+load",
    ) -> "CostSpaceSpec":
        """Figure 2's space: latency dims plus a squared-CPU-load dim."""
        weighting = load_weighting or squared()
        return cls(
            vector_dims=vector_dims,
            scalar_dimensions=(ScalarDimension("cpu_load", weighting),),
            name=name,
        )

    @classmethod
    def latency_load_memory(
        cls,
        vector_dims: int = 2,
        load_weighting: WeightingFunction | None = None,
        memory_weighting: WeightingFunction | None = None,
        name: str = "latency+load+memory",
    ) -> "CostSpaceSpec":
        """Latency dims plus CPU-load and memory-consumption dims (§3.1).

        Memory consumption is the other scalar cost the paper names;
        the default weighting is squared, like the load dimension.
        """
        return cls(
            vector_dims=vector_dims,
            scalar_dimensions=(
                ScalarDimension("cpu_load", load_weighting or squared()),
                ScalarDimension("memory", memory_weighting or squared()),
            ),
            name=name,
        )


@dataclass
class CostSpace:
    """A snapshot of every node's coordinate in one cost space.

    Build with :meth:`from_embedding`; refresh scalar parts with
    :meth:`update_metrics` as node state changes (the iterative
    recomputation of §3.2).
    """

    spec: CostSpaceSpec
    coordinates: list[CostCoordinate] = field(default_factory=list)

    def __post_init__(self) -> None:
        for coord in self.coordinates:
            self._check_shape(coord)

    def _check_shape(self, coord: CostCoordinate) -> None:
        if coord.vector_dims != self.spec.vector_dims:
            raise ValueError(
                f"coordinate has {coord.vector_dims} vector dims, "
                f"space requires {self.spec.vector_dims}"
            )
        if coord.scalar_dims != len(self.spec.scalar_dimensions):
            raise ValueError(
                f"coordinate has {coord.scalar_dims} scalar dims, "
                f"space requires {len(self.spec.scalar_dimensions)}"
            )

    @classmethod
    def from_embedding(
        cls,
        spec: CostSpaceSpec,
        embedding: np.ndarray,
        metrics: dict[str, np.ndarray | list[float]] | None = None,
    ) -> "CostSpace":
        """Construct coordinates from an embedding plus node metrics.

        Args:
            spec: the space semantics.
            embedding: ``(n, spec.vector_dims)`` latency coordinates.
            metrics: raw metric arrays (length n) keyed by metric name;
                required for every scalar dimension in the spec.
        """
        embedding = np.asarray(embedding, dtype=float)
        if embedding.ndim != 2 or embedding.shape[1] != spec.vector_dims:
            raise ValueError(
                f"embedding must be (n, {spec.vector_dims}), got {embedding.shape}"
            )
        metrics = metrics or {}
        n = embedding.shape[0]
        scalar_columns = cls._weighted_scalars(spec, metrics, n)
        coords = [
            CostCoordinate.from_arrays(embedding[i], scalar_columns[:, i])
            for i in range(n)
        ]
        return cls(spec=spec, coordinates=coords)

    @staticmethod
    def _weighted_scalars(
        spec: CostSpaceSpec,
        metrics: dict[str, np.ndarray | list[float]],
        n: int,
    ) -> np.ndarray:
        columns = np.zeros((len(spec.scalar_dimensions), n))
        for row, dim in enumerate(spec.scalar_dimensions):
            if dim.metric not in metrics:
                raise ValueError(f"missing metric {dim.metric!r} for cost space")
            raw = np.asarray(metrics[dim.metric], dtype=float)
            if raw.shape != (n,):
                raise ValueError(
                    f"metric {dim.metric!r} must have shape ({n},), got {raw.shape}"
                )
            columns[row] = [dim.weighting(v) for v in raw]
        return columns

    # -- access ----------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.coordinates)

    def coordinate(self, node: int) -> CostCoordinate:
        """The full coordinate of a physical node."""
        return self.coordinates[node]

    def vector_matrix(self) -> np.ndarray:
        """``(n, vector_dims)`` array of all vector parts."""
        return np.array([c.vector for c in self.coordinates])

    def full_matrix(self) -> np.ndarray:
        """``(n, dims)`` array of all full coordinates."""
        return np.array([c.full_array() for c in self.coordinates])

    def distance(self, u: int, v: int) -> float:
        """Full cost-space distance between two nodes."""
        return self.coordinates[u].distance_to(self.coordinates[v])

    def vector_distance(self, u: int, v: int) -> float:
        """Latency-estimating distance (vector dims only)."""
        return self.coordinates[u].vector_distance_to(self.coordinates[v])

    def estimated_latency(self, u: int, v: int) -> float:
        """Alias for :meth:`vector_distance`, named for intent."""
        return self.vector_distance(u, v)

    # -- updates ---------------------------------------------------------

    def update_metrics(self, metrics: dict[str, np.ndarray | list[float]]) -> None:
        """Recompute all scalar components from fresh metric values."""
        n = self.num_nodes
        columns = self._weighted_scalars(self.spec, metrics, n)
        self.coordinates = [
            CostCoordinate(coord.vector, tuple(float(v) for v in columns[:, i]))
            for i, coord in enumerate(self.coordinates)
        ]

    def update_vector(self, node: int, vector: np.ndarray | list[float]) -> None:
        """Replace one node's vector part (embedding refinement)."""
        old = self.coordinates[node]
        new = CostCoordinate.from_arrays(vector, old.scalar)
        self._check_shape(new)
        self.coordinates[node] = new

    # -- queries ---------------------------------------------------------

    def nearest_node(
        self,
        target: CostCoordinate,
        exclude: set[int] | None = None,
    ) -> int:
        """Exhaustive nearest physical node to a target coordinate.

        The reference ("oracle") physical mapping; the decentralized
        catalog approximates this.
        """
        self._check_shape(target)
        exclude = exclude or set()
        best_node = -1
        best_dist = float("inf")
        for node, coord in enumerate(self.coordinates):
            if node in exclude:
                continue
            d = target.distance_to(coord)
            if d < best_dist:
                best_dist = d
                best_node = node
        if best_node < 0:
            raise ValueError("no eligible node")
        return best_node

    def nodes_within(
        self,
        target: CostCoordinate,
        radius: float,
        exclude: set[int] | None = None,
    ) -> list[int]:
        """All nodes within ``radius`` of ``target`` in the full space."""
        self._check_shape(target)
        if radius < 0:
            raise ValueError("radius must be non-negative")
        exclude = exclude or set()
        return [
            node
            for node, coord in enumerate(self.coordinates)
            if node not in exclude and target.distance_to(coord) <= radius
        ]

    def bounding_box(self, margin: float = 0.05) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """(lows, highs) of all full coordinates, padded by ``margin``.

        Used to configure the Hilbert mapper of the catalog backend.
        """
        matrix = self.full_matrix()
        lows = matrix.min(axis=0)
        highs = matrix.max(axis=0)
        span = np.maximum(highs - lows, 1e-9)
        lows = lows - margin * span
        highs = highs + margin * span
        return (
            tuple(float(v) for v in lows),
            tuple(float(v) for v in highs),
        )
