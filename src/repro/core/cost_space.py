"""The cost space: a metric space over physical nodes (§3.1).

A :class:`CostSpaceSpec` fixes the *semantics* of a space — how many
vector dimensions, which scalar metrics with which weighting functions —
which "must be known by all nodes in the SBON".  A :class:`CostSpace`
is then a concrete snapshot: one coordinate per physical node, built
from a latency embedding (vector part) and current node metrics (scalar
part).

An SBON can run multiple independent cost spaces for different
application classes; in this library that is simply multiple
``CostSpace`` instances over the same node population.

Performance architecture (struct-of-arrays)
-------------------------------------------

The snapshot's source of truth is a single contiguous ``(n, dims)``
float64 matrix (``full_matrix()``); :class:`CostCoordinate` objects are
thin *views* materialized lazily for API compatibility.  Every hot
query — :meth:`nearest_node`, :meth:`nodes_within`, :meth:`distance`,
:meth:`bounding_box` — is a single vectorized expression over that
matrix, and the batched forms :meth:`nearest_nodes` /
:meth:`distances_from` amortize one matrix pass over many targets
(physical mapping, reuse search).  Updates (:meth:`update_metrics`,
:meth:`update_vector`) write the matrix in place and invalidate the
coordinate-view cache.  ``full_matrix()``/``vector_matrix()`` return
read-only views of the live matrix — copy before mutating.

Scalar reference implementations of the queries are retained
(``nearest_node_scalar``, ``nodes_within_scalar``) as the ground truth
for equivalence tests and before/after benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.coordinates import CostCoordinate
from repro.core.weighting import WeightingFunction, squared

__all__ = [
    "ScalarDimension",
    "CostSpaceSpec",
    "CostSpace",
    "nearest_node_scalar",
    "nodes_within_scalar",
]

#: Cap on elements in one batched-query difference tensor (~32 MB of
#: float64); larger target batches are processed in chunks of this size.
_BATCH_ELEMENT_BUDGET = 4_000_000


@dataclass(frozen=True)
class ScalarDimension:
    """Semantics of one scalar dimension: metric name + weighting."""

    metric: str
    weighting: WeightingFunction

    def describe(self) -> str:
        return f"{self.metric}:{self.weighting.describe()}"


@dataclass(frozen=True)
class CostSpaceSpec:
    """Shared semantics of a cost space (dimensions, units, weightings).

    Attributes:
        vector_dims: number of latency-embedding dimensions.
        scalar_dimensions: ordered scalar dimensions.
        name: identifier of the space (there may be several per SBON).
    """

    vector_dims: int
    scalar_dimensions: tuple[ScalarDimension, ...] = ()
    name: str = "default"

    def __post_init__(self) -> None:
        if self.vector_dims < 1:
            raise ValueError("cost space needs at least one vector dimension")
        metrics = [d.metric for d in self.scalar_dimensions]
        if len(metrics) != len(set(metrics)):
            raise ValueError("duplicate scalar metric names")

    @property
    def dims(self) -> int:
        return self.vector_dims + len(self.scalar_dimensions)

    @classmethod
    def latency_only(cls, vector_dims: int = 2, name: str = "latency") -> "CostSpaceSpec":
        """A pure latency space (the simplest space in §3.1)."""
        return cls(vector_dims=vector_dims, name=name)

    @classmethod
    def latency_load(
        cls,
        vector_dims: int = 2,
        load_weighting: WeightingFunction | None = None,
        name: str = "latency+load",
    ) -> "CostSpaceSpec":
        """Figure 2's space: latency dims plus a squared-CPU-load dim."""
        weighting = load_weighting or squared()
        return cls(
            vector_dims=vector_dims,
            scalar_dimensions=(ScalarDimension("cpu_load", weighting),),
            name=name,
        )

    @classmethod
    def latency_load_memory(
        cls,
        vector_dims: int = 2,
        load_weighting: WeightingFunction | None = None,
        memory_weighting: WeightingFunction | None = None,
        name: str = "latency+load+memory",
    ) -> "CostSpaceSpec":
        """Latency dims plus CPU-load and memory-consumption dims (§3.1).

        Memory consumption is the other scalar cost the paper names;
        the default weighting is squared, like the load dimension.
        """
        return cls(
            vector_dims=vector_dims,
            scalar_dimensions=(
                ScalarDimension("cpu_load", load_weighting or squared()),
                ScalarDimension("memory", memory_weighting or squared()),
            ),
            name=name,
        )


class CostSpace:
    """A snapshot of every node's coordinate in one cost space.

    Build with :meth:`from_embedding`; refresh scalar parts with
    :meth:`update_metrics` as node state changes (the iterative
    recomputation of §3.2).

    State lives in one ``(n, dims)`` float matrix (vector columns first,
    then one column per scalar dimension); ``coordinates`` /
    :meth:`coordinate` expose lazily-built :class:`CostCoordinate`
    views of its rows.
    """

    def __init__(
        self,
        spec: CostSpaceSpec,
        coordinates: list[CostCoordinate] | None = None,
    ):
        self.spec = spec
        coordinates = coordinates or []
        for coord in coordinates:
            self._check_shape(coord)
        matrix = np.empty((len(coordinates), spec.dims), dtype=float)
        for i, coord in enumerate(coordinates):
            matrix[i] = coord.full_array()
        self._matrix = matrix
        self._coord_cache: list[CostCoordinate] | None = (
            list(coordinates) if coordinates else None
        )
        self._penalty_cache: np.ndarray | None = None

    @classmethod
    def _from_matrix(cls, spec: CostSpaceSpec, matrix: np.ndarray) -> "CostSpace":
        """Internal: wrap an already-validated ``(n, dims)`` matrix."""
        space = cls(spec=spec)
        space._matrix = np.ascontiguousarray(matrix, dtype=float)
        space._coord_cache = None
        space._penalty_cache = None
        return space

    def _check_shape(self, coord: CostCoordinate) -> None:
        if coord.vector_dims != self.spec.vector_dims:
            raise ValueError(
                f"coordinate has {coord.vector_dims} vector dims, "
                f"space requires {self.spec.vector_dims}"
            )
        if coord.scalar_dims != len(self.spec.scalar_dimensions):
            raise ValueError(
                f"coordinate has {coord.scalar_dims} scalar dims, "
                f"space requires {len(self.spec.scalar_dimensions)}"
            )

    @classmethod
    def from_embedding(
        cls,
        spec: CostSpaceSpec,
        embedding: np.ndarray,
        metrics: dict[str, np.ndarray | list[float]] | None = None,
    ) -> "CostSpace":
        """Construct coordinates from an embedding plus node metrics.

        Args:
            spec: the space semantics.
            embedding: ``(n, spec.vector_dims)`` latency coordinates.
            metrics: raw metric arrays (length n) keyed by metric name;
                required for every scalar dimension in the spec.
        """
        embedding = np.asarray(embedding, dtype=float)
        if embedding.ndim != 2 or embedding.shape[1] != spec.vector_dims:
            raise ValueError(
                f"embedding must be (n, {spec.vector_dims}), got {embedding.shape}"
            )
        metrics = metrics or {}
        n = embedding.shape[0]
        scalar_columns = cls._weighted_scalars(spec, metrics, n)
        matrix = np.hstack([embedding, scalar_columns.T])
        return cls._from_matrix(spec, matrix)

    @staticmethod
    def _weighted_scalars(
        spec: CostSpaceSpec,
        metrics: dict[str, np.ndarray | list[float]],
        n: int,
    ) -> np.ndarray:
        """Weighted ``(scalar_dims, n)`` columns, one vectorized pass each."""
        columns = np.zeros((len(spec.scalar_dimensions), n))
        for row, dim in enumerate(spec.scalar_dimensions):
            if dim.metric not in metrics:
                raise ValueError(f"missing metric {dim.metric!r} for cost space")
            raw = np.asarray(metrics[dim.metric], dtype=float)
            if raw.shape != (n,):
                raise ValueError(
                    f"metric {dim.metric!r} must have shape ({n},), got {raw.shape}"
                )
            columns[row] = dim.weighting.apply_array(raw)
        return columns

    # -- access ----------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self._matrix.shape[0]

    @property
    def coordinates(self) -> list[CostCoordinate]:
        """All coordinates as :class:`CostCoordinate` views (lazy, cached)."""
        if self._coord_cache is None:
            vd = self.spec.vector_dims
            self._coord_cache = [
                CostCoordinate(tuple(row[:vd]), tuple(row[vd:]))
                for row in self._matrix.tolist()
            ]
        return self._coord_cache

    def coordinate(self, node: int) -> CostCoordinate:
        """The full coordinate of a physical node."""
        return self.coordinates[node]

    def vector_matrix(self) -> np.ndarray:
        """``(n, vector_dims)`` read-only view of all vector parts."""
        view = self._matrix[:, : self.spec.vector_dims]
        view.flags.writeable = False
        return view

    def full_matrix(self) -> np.ndarray:
        """``(n, dims)`` read-only view of all full coordinates."""
        view = self._matrix[:]
        view.flags.writeable = False
        return view

    def distance(self, u: int, v: int) -> float:
        """Full cost-space distance between two nodes."""
        return float(np.linalg.norm(self._matrix[u] - self._matrix[v]))

    def vector_distance(self, u: int, v: int) -> float:
        """Latency-estimating distance (vector dims only)."""
        vd = self.spec.vector_dims
        return float(np.linalg.norm(self._matrix[u, :vd] - self._matrix[v, :vd]))

    def estimated_latency(self, u: int, v: int) -> float:
        """Alias for :meth:`vector_distance`, named for intent."""
        return self.vector_distance(u, v)

    def scalar_penalty(self, node: int) -> float:
        """Euclidean magnitude of one node's scalar part (0 if none)."""
        return float(np.linalg.norm(self._matrix[node, self.spec.vector_dims:]))

    def scalar_penalties(self) -> np.ndarray:
        """Per-node scalar penalties, cached until the next update.

        The re-optimizer prices thousands of candidate migrations per
        tick against the same snapshot; the cache makes each lookup an
        O(1) fancy-index instead of an O(n) reduction.
        """
        if self._penalty_cache is None:
            scalars = self._matrix[:, self.spec.vector_dims:]
            self._penalty_cache = np.sqrt(np.einsum("ns,ns->n", scalars, scalars))
            self._penalty_cache.flags.writeable = False
        return self._penalty_cache

    # -- updates ---------------------------------------------------------

    def update_metrics(self, metrics: dict[str, np.ndarray | list[float]]) -> None:
        """Recompute all scalar components from fresh metric values."""
        n = self.num_nodes
        columns = self._weighted_scalars(self.spec, metrics, n)
        self._matrix[:, self.spec.vector_dims:] = columns.T
        self._coord_cache = None
        self._penalty_cache = None

    def update_vector(self, node: int, vector: np.ndarray | list[float]) -> None:
        """Replace one node's vector part (embedding refinement)."""
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (self.spec.vector_dims,):
            raise ValueError(
                f"coordinate has {vector.shape[0] if vector.ndim == 1 else '?'} "
                f"vector dims, space requires {self.spec.vector_dims}"
            )
        self._matrix[node, : self.spec.vector_dims] = vector
        self._coord_cache = None
        self._penalty_cache = None

    def update_vectors(self, embedding: np.ndarray) -> None:
        """Replace every node's vector part in one batched write."""
        embedding = np.asarray(embedding, dtype=float)
        if embedding.shape != (self.num_nodes, self.spec.vector_dims):
            raise ValueError(
                f"embedding must be ({self.num_nodes}, {self.spec.vector_dims}), "
                f"got {embedding.shape}"
            )
        self._matrix[:, : self.spec.vector_dims] = embedding
        self._coord_cache = None
        self._penalty_cache = None

    # -- queries ---------------------------------------------------------

    def _target_array(self, target: CostCoordinate | np.ndarray) -> np.ndarray:
        if isinstance(target, CostCoordinate):
            self._check_shape(target)
            return target.full_array()
        target = np.asarray(target, dtype=float)
        if target.shape != (self.spec.dims,):
            raise ValueError(
                f"target must have {self.spec.dims} dims, got {target.shape}"
            )
        return target

    def distances_from(self, target: CostCoordinate | np.ndarray) -> np.ndarray:
        """Full-space distance from ``target`` to every node, in one pass.

        Accepts a :class:`CostCoordinate` or a raw ``(dims,)`` array.
        This is the batched primitive behind physical mapping, the
        multi-query reuse search, and placement refinement.
        """
        t = self._target_array(target)
        diff = self._matrix - t
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))

    def nearest_node(
        self,
        target: CostCoordinate,
        exclude: set[int] | None = None,
    ) -> int:
        """Exhaustive nearest physical node to a target coordinate.

        The reference ("oracle") physical mapping; the decentralized
        catalog approximates this.  One vectorized matrix pass.
        """
        dists = self.distances_from(target)
        if exclude:
            for node in exclude:
                if 0 <= node < dists.shape[0]:
                    dists[node] = np.inf
        if dists.shape[0] == 0 or not np.isfinite(dists.min(initial=np.inf)):
            raise ValueError("no eligible node")
        return int(np.argmin(dists))

    def nearest_nodes(
        self,
        targets: np.ndarray | list[CostCoordinate],
        exclude: set[int] | None = None,
    ) -> np.ndarray:
        """Nearest node for each of ``m`` targets in one batched pass.

        Args:
            targets: ``(m, dims)`` array or list of coordinates.

        Returns:
            ``(m,)`` int array of node indices.
        """
        if len(targets) == 0:
            return np.zeros(0, dtype=int)
        if isinstance(targets, np.ndarray):
            t = np.asarray(targets, dtype=float)
            if t.ndim != 2 or t.shape[1] != self.spec.dims:
                raise ValueError(
                    f"targets must be (m, {self.spec.dims}), got {t.shape}"
                )
        else:
            t = np.empty((len(targets), self.spec.dims), dtype=float)
            for i, coord in enumerate(targets):
                t[i] = self._target_array(coord)
        n = self.num_nodes
        if n == 0:
            raise ValueError("no eligible node")
        excluded = (
            [node for node in exclude if 0 <= node < n] if exclude else []
        )
        # Squared distances suffice for the argmin; ties resolve to the
        # lowest index, matching the scalar reference scan.  Direct
        # per-dimension differences accumulated in place (not the
        # expanded cross-term form) keep the arithmetic shape of
        # single-target queries — no catastrophic cancellation — while
        # avoiding the (chunk, n, dims) intermediate tensor.  Targets
        # are chunked so the (chunk, n) buffers stay bounded.
        chunk = max(1, _BATCH_ELEMENT_BUDGET // max(n, 1))
        result = np.empty(t.shape[0], dtype=int)
        for start in range(0, t.shape[0], chunk):
            block = t[start:start + chunk]
            d2: np.ndarray | None = None
            for k in range(self.spec.dims):
                part = np.subtract.outer(block[:, k], self._matrix[:, k])
                np.multiply(part, part, out=part)
                if d2 is None:
                    d2 = part
                else:
                    np.add(d2, part, out=d2)
            if excluded:
                d2[:, excluded] = np.inf
            if not np.all(np.isfinite(d2.min(axis=1))):
                raise ValueError("no eligible node")
            result[start:start + chunk] = np.argmin(d2, axis=1)
        return result

    def nodes_within(
        self,
        target: CostCoordinate,
        radius: float,
        exclude: set[int] | None = None,
    ) -> list[int]:
        """All nodes within ``radius`` of ``target`` in the full space."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        dists = self.distances_from(target)
        inside = np.flatnonzero(dists <= radius)
        if exclude:
            return [int(node) for node in inside if int(node) not in exclude]
        return [int(node) for node in inside]

    def bounding_box(self, margin: float = 0.05) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """(lows, highs) of all full coordinates, padded by ``margin``.

        Used to configure the Hilbert mapper of the catalog backend.
        """
        lows = self._matrix.min(axis=0)
        highs = self._matrix.max(axis=0)
        span = np.maximum(highs - lows, 1e-9)
        lows = lows - margin * span
        highs = highs + margin * span
        return (
            tuple(float(v) for v in lows),
            tuple(float(v) for v in highs),
        )


# -- scalar reference implementations ------------------------------------
#
# The pre-vectorization query paths, retained verbatim as the ground
# truth for equivalence tests and the before/after benchmark tables.


def nearest_node_scalar(
    space: CostSpace,
    target: CostCoordinate,
    exclude: set[int] | None = None,
) -> int:
    """Per-node Python-loop nearest node (reference implementation)."""
    space._check_shape(target)
    exclude = exclude or set()
    best_node = -1
    best_dist = float("inf")
    for node, coord in enumerate(space.coordinates):
        if node in exclude:
            continue
        d = target.distance_to(coord)
        if d < best_dist:
            best_dist = d
            best_node = node
    if best_node < 0:
        raise ValueError("no eligible node")
    return best_node


def nodes_within_scalar(
    space: CostSpace,
    target: CostCoordinate,
    radius: float,
    exclude: set[int] | None = None,
) -> list[int]:
    """Per-node Python-loop radius query (reference implementation)."""
    space._check_shape(target)
    if radius < 0:
        raise ValueError("radius must be non-negative")
    exclude = exclude or set()
    return [
        node
        for node, coord in enumerate(space.coordinates)
        if node not in exclude and target.distance_to(coord) <= radius
    ]
