"""Circuit cost models: estimated (cost-space) and actual (ground truth).

The paper's placement objective is *network utilization* — "the amount
of data in transit in the network" (§3.2) — which for a placed circuit
is ``Σ over links of rate × latency(host(src), host(dst))``.  Secondary
metrics: the consumer's data latency (longest producer→consumer path
delay, the metric behind Figure 1's "total data latency") and a load
penalty from the scalar dimensions.

Two evaluators implement the same interface:

* :class:`CostSpaceEvaluator` — what the *optimizer* sees: latency is
  estimated by vector distance in the cost space, load by scalar
  penalties.  Decentralized and cheap, but approximate.
* :class:`GroundTruthEvaluator` — what the *network* actually does:
  latency from the true latency matrix, load from the true load vector.
  Benchmarks report this one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from repro.core.circuit import Circuit
from repro.core.cost_space import CostSpace
from repro.core.weighting import WeightingFunction, squared
from repro.network.latency import LatencyMatrix

__all__ = [
    "CircuitCost",
    "CostEvaluator",
    "CostSpaceEvaluator",
    "GroundTruthEvaluator",
    "network_usage",
    "consumer_latency",
]


@dataclass(frozen=True)
class CircuitCost:
    """Cost breakdown of a fully placed circuit.

    Attributes:
        network_usage: Σ rate × latency over links (primary objective).
        consumer_latency: worst-case source→sink path delay.
        load_penalty: Σ of (weighted) load over hosting nodes.
        total: scalarized objective the optimizer minimizes.
    """

    network_usage: float
    consumer_latency: float
    load_penalty: float
    total: float

    def __lt__(self, other: "CircuitCost") -> bool:
        return self.total < other.total


class CostEvaluator(Protocol):
    """Anything that can price a placed circuit."""

    def latency(self, u: int, v: int) -> float:
        """Latency (actual or estimated) between two physical nodes."""
        ...

    def node_penalty(self, node: int) -> float:
        """Scalar (load) penalty of hosting on ``node``."""
        ...

    def latency_array(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Batched :meth:`latency` over parallel node-index arrays."""
        ...

    def penalty_array(self, nodes: np.ndarray) -> np.ndarray:
        """Batched :meth:`node_penalty` over a node-index array."""
        ...

    def evaluate(self, circuit: Circuit, load_weight: float = 1.0) -> CircuitCost:
        """Price a fully placed circuit."""
        ...


def network_usage(circuit: Circuit, latency_fn: Callable[[int, int], float]) -> float:
    """Σ rate × latency over all circuit links (requires full placement)."""
    if not circuit.is_fully_placed():
        raise ValueError(f"circuit {circuit.name} is not fully placed")
    total = 0.0
    for link in circuit.links:
        u = circuit.host_of(link.source)
        v = circuit.host_of(link.target)
        if u != v:
            total += link.rate * latency_fn(u, v)
    return total


def consumer_latency(circuit: Circuit, latency_fn: Callable[[int, int], float]) -> float:
    """Longest source→sink path delay through the placed circuit.

    Computed by dynamic programming over the (acyclic) link graph:
    the arrival delay at a service is the max over its inputs of
    (input's delay + link latency).
    """
    if not circuit.is_fully_placed():
        raise ValueError(f"circuit {circuit.name} is not fully placed")
    delay: dict[str, float] = {}

    incoming: dict[str, list] = {sid: [] for sid in circuit.services}
    for link in circuit.links:
        incoming[link.target].append(link)

    def arrival(sid: str) -> float:
        if sid in delay:
            return delay[sid]
        links = incoming[sid]
        if not links:
            delay[sid] = 0.0
            return 0.0
        worst = 0.0
        for link in links:
            u = circuit.host_of(link.source)
            v = circuit.host_of(link.target)
            hop = 0.0 if u == v else latency_fn(u, v)
            worst = max(worst, arrival(link.source) + hop)
        delay[sid] = worst
        return worst

    sinks = circuit.sink_ids()
    if not sinks:
        return 0.0
    return max(arrival(sid) for sid in sinks)


def _evaluate(
    circuit: Circuit,
    latency_fn: Callable[[int, int], float],
    penalty_fn: Callable[[int], float],
    load_weight: float,
) -> CircuitCost:
    usage = network_usage(circuit, latency_fn)
    latency = consumer_latency(circuit, latency_fn)
    # Count each distinct hosting node once, but only for unpinned
    # services — pinned endpoints are not a placement choice.
    unpinned_hosts = {
        circuit.host_of(sid) for sid in circuit.unpinned_ids()
    }
    penalty = sum(penalty_fn(node) for node in unpinned_hosts)
    return CircuitCost(
        network_usage=usage,
        consumer_latency=latency,
        load_penalty=penalty,
        total=usage + load_weight * penalty,
    )


class CostSpaceEvaluator:
    """Prices circuits using only cost-space information (decentralized)."""

    def __init__(self, cost_space: CostSpace):
        self.cost_space = cost_space

    def latency(self, u: int, v: int) -> float:
        return self.cost_space.vector_distance(u, v)

    def node_penalty(self, node: int) -> float:
        return self.cost_space.scalar_penalty(node)

    def latency_array(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        vectors = self.cost_space.vector_matrix()
        diff = vectors[u] - vectors[v]
        np.multiply(diff, diff, out=diff)
        return np.sqrt(diff.sum(axis=1))

    def penalty_array(self, nodes: np.ndarray) -> np.ndarray:
        return self.cost_space.scalar_penalties()[nodes]

    def evaluate(self, circuit: Circuit, load_weight: float = 1.0) -> CircuitCost:
        return _evaluate(circuit, self.latency, self.node_penalty, load_weight)


class GroundTruthEvaluator:
    """Prices circuits with true latencies and loads (the benchmark judge).

    Args:
        latencies: the real all-pairs latency matrix.
        loads: per-node true CPU loads in [0, 1] (optional).
        load_weighting: weighting applied to raw loads for the penalty
            term; defaults to the paper's squared function so estimated
            and actual penalties are commensurable.
    """

    def __init__(
        self,
        latencies: LatencyMatrix,
        loads: np.ndarray | list[float] | None = None,
        load_weighting: WeightingFunction | None = None,
    ):
        self.latencies = latencies
        if loads is None:
            loads = np.zeros(latencies.num_nodes)
        self.loads = np.asarray(loads, dtype=float)
        if self.loads.shape != (latencies.num_nodes,):
            raise ValueError("loads must have one entry per node")
        self.load_weighting = load_weighting or squared()

    def latency(self, u: int, v: int) -> float:
        return self.latencies.latency(u, v)

    def node_penalty(self, node: int) -> float:
        return self.load_weighting(float(self.loads[node]))

    def latency_array(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        return self.latencies.values[u, v]

    def penalty_array(self, nodes: np.ndarray) -> np.ndarray:
        return self.load_weighting.apply_array(self.loads[nodes])

    def update_loads(self, loads: np.ndarray | list[float]) -> None:
        """Refresh the true load vector (driven by the simulator)."""
        loads = np.asarray(loads, dtype=float)
        if loads.shape != self.loads.shape:
            raise ValueError("load vector shape mismatch")
        self.loads = loads

    def evaluate(self, circuit: Circuit, load_weight: float = 1.0) -> CircuitCost:
        return _evaluate(circuit, self.latency, self.node_penalty, load_weight)
