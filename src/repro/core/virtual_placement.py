"""Virtual placement: ideal coordinates for unpinned services (§3.2).

Virtual placement runs *before* any service is instantiated: given the
circuit's link structure, the pinned endpoints' vector coordinates, and
the link data rates, compute the coordinate in the **vector dimensions
only** where each unpinned service would ideally sit.  (Scalar
dimensions are ideal at zero and join at physical-mapping time.)

Algorithms, per the paper:

* **Relaxation placement** [Pietzuch et al., TR-26-04] — circuits are
  modelled as springs whose constant equals the link data rate and
  whose extension is the latency; services are massless bodies.  The
  equilibrium minimizes Σ rate·dist² (a proxy for the network
  utilization Σ rate·dist), found by iterative relaxation: each
  unpinned service repeatedly moves to the rate-weighted centroid
  of its neighbors.
* **Centroid placement** — unweighted centroid of neighbors, iterated.
* **Gradient descent placement** [Bonfils & Bonnet] — minimizes the
  *true* utilization objective Σ rate·dist with Weiszfeld-style
  iterations (each service moves to the rate/distance-weighted centroid
  of its neighbors).

All three return a :class:`VirtualPlacement` mapping each unpinned
service id to a vector coordinate, plus convergence diagnostics.

Performance architecture (struct-of-arrays)
-------------------------------------------

The circuit's link structure is compiled once per placement into a
CSR-style neighbor index (:class:`_CircuitArrays`: flat segment /
neighbor / rate arrays over a dense position matrix whose first rows
are the unpinned services).  Each sweep then updates *every* unpinned
service simultaneously from the previous iterate with segment-sum
matrix operations — no per-service Python loop.  Simultaneous (Jacobi)
sweeps converge to the same unique equilibrium as the earlier in-place
(Gauss–Seidel) sweeps because the spring energy is strictly convex,
but propagate information about half as fast per sweep; the default
iteration budgets are doubled to compensate (a sweep is ~2 orders of
magnitude cheaper, so the net speedup stands).

Scalar reference implementations of one sweep and of both objectives
are retained (``sweep_scalar``, ``placement_energy_scalar``,
``placement_utilization_scalar``) as the ground truth for equivalence
tests and before/after benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.circuit import Circuit

__all__ = [
    "VirtualPlacement",
    "relaxation_placement",
    "centroid_placement",
    "gradient_descent_placement",
    "exact_spring_equilibrium",
    "placement_energy",
    "placement_utilization",
    "placement_energy_scalar",
    "placement_utilization_scalar",
    "sweep_scalar",
]

#: Circuits with at least this many unpinned services use the sparse
#: Laplacian solver (when scipy is present); below it the dense solve
#: is faster and allocates trivially.
SPARSE_SOLVER_THRESHOLD = 64

_sparse_modules: tuple | None = None


def _sparse() -> tuple | None:
    """scipy.sparse modules if importable, cached; None otherwise."""
    global _sparse_modules
    if _sparse_modules is None:
        try:
            from scipy.sparse import csr_matrix
            from scipy.sparse.linalg import factorized

            _sparse_modules = (csr_matrix, factorized)
        except ImportError:
            _sparse_modules = ()
    return _sparse_modules or None


@dataclass
class VirtualPlacement:
    """Result of a virtual-placement run.

    Attributes:
        positions: unpinned service id -> vector coordinate (ndarray).
        iterations: relaxation sweeps performed.
        converged: True if movement fell below tolerance before the
            iteration cap.
        objective: final value of the algorithm's objective function.
    """

    positions: dict[str, np.ndarray]
    iterations: int
    converged: bool
    objective: float

    def position_of(self, service_id: str) -> np.ndarray:
        if service_id not in self.positions:
            raise KeyError(f"no virtual position for {service_id}")
        return self.positions[service_id]


def _pinned_and_unpinned(
    circuit: Circuit, pinned_positions: dict[str, np.ndarray]
) -> tuple[dict[str, np.ndarray], list[str]]:
    """Validate inputs; return (pinned positions, unpinned ids)."""
    pinned_ids = set(circuit.pinned_ids())
    missing = pinned_ids - set(pinned_positions)
    if missing:
        raise ValueError(f"missing vector positions for pinned services {sorted(missing)}")
    unpinned = circuit.unpinned_ids()
    positions = {sid: np.asarray(p, dtype=float) for sid, p in pinned_positions.items()}
    dims = {p.shape for p in positions.values()}
    if len(dims) > 1:
        raise ValueError("pinned positions have inconsistent dimensionality")
    return positions, unpinned


class _CircuitArrays:
    """CSR-style neighbor index over a dense position matrix.

    Rows ``0..num_unpinned-1`` of :attr:`matrix` are the unpinned
    services (in ``circuit.unpinned_ids()`` order, initialized to the
    pinned centroid); the remaining rows are the pinned services.  The
    flat arrays enumerate every (unpinned service, neighbor) incidence
    in circuit-link order, exactly as ``circuit.neighbors`` would:

    * ``seg[e]`` — unpinned row the entry belongs to,
    * ``nbr[e]`` — matrix row of the neighbor,
    * ``rates[e]`` — the connecting link's rate.
    """

    def __init__(self, circuit: Circuit, positions: dict[str, np.ndarray], unpinned: list[str]):
        self.unpinned = unpinned
        row_of = {sid: i for i, sid in enumerate(unpinned)}
        pinned = [sid for sid in circuit.services if sid not in row_of]
        for offset, sid in enumerate(pinned):
            row_of[sid] = len(unpinned) + offset

        dims = next(iter(positions.values())).shape[0] if positions else 2
        pinned_matrix = np.array([positions[sid] for sid in circuit.pinned_ids()])
        center = pinned_matrix.mean(axis=0)
        self.matrix = np.empty((len(circuit.services), dims), dtype=float)
        self.matrix[: len(unpinned)] = center
        for sid in pinned:
            self.matrix[row_of[sid]] = positions[sid]

        # Per-service incidence lists in link order (the order
        # ``circuit.neighbors`` yields), then flattened.
        per_service: list[list[tuple[int, float]]] = [[] for _ in unpinned]
        for link in circuit.links:
            if link.source in row_of and row_of[link.source] < len(unpinned):
                per_service[row_of[link.source]].append((row_of[link.target], link.rate))
            if link.target in row_of and row_of[link.target] < len(unpinned):
                per_service[row_of[link.target]].append((row_of[link.source], link.rate))
        seg: list[int] = []
        nbr: list[int] = []
        rates: list[float] = []
        for i, entries in enumerate(per_service):
            for neighbor_row, rate in entries:
                seg.append(i)
                nbr.append(neighbor_row)
                rates.append(rate)
        self.seg = np.asarray(seg, dtype=int)
        self.nbr = np.asarray(nbr, dtype=int)
        self.rates = np.asarray(rates, dtype=float)

    def sweep(self, rate_weighted: bool, distance_weighted: bool) -> float:
        """One simultaneous sweep over all unpinned services, in-place.

        Returns the largest movement distance.  All segment sums are
        single vectorized passes over the flat incidence arrays.
        """
        num_unpinned = len(self.unpinned)
        if self.seg.size == 0 or num_unpinned == 0:
            return 0.0
        weights = self.rates if rate_weighted else np.ones_like(self.rates)
        neighbor_pos = self.matrix[self.nbr]
        if distance_weighted:
            diff = self.matrix[self.seg] - neighbor_pos
            dist = np.sqrt(np.einsum("ed,ed->e", diff, diff))
            weights = weights / np.maximum(dist, 1e-9)
        totals = np.bincount(self.seg, weights=weights, minlength=num_unpinned)
        weighted = weights[:, None] * neighbor_pos
        acc = np.empty((num_unpinned, self.matrix.shape[1]))
        for k in range(self.matrix.shape[1]):
            acc[:, k] = np.bincount(self.seg, weights=weighted[:, k], minlength=num_unpinned)
        movable = totals > 0
        old = self.matrix[:num_unpinned]
        new = old.copy()
        new[movable] = acc[movable] / totals[movable, None]
        moves = np.sqrt(np.einsum("ud,ud->u", new - old, new - old))
        self.matrix[:num_unpinned] = new
        return float(moves.max(initial=0.0))

    def unpinned_positions(self) -> dict[str, np.ndarray]:
        return {
            sid: self.matrix[i].copy() for i, sid in enumerate(self.unpinned)
        }


def sweep_scalar(
    circuit: Circuit,
    positions: dict[str, np.ndarray],
    unpinned: list[str],
    rate_weighted: bool,
    distance_weighted: bool,
) -> float:
    """One simultaneous relaxation sweep, service by service (reference).

    The pre-vectorization per-service Python loop, retained as the
    equivalence/benchmark baseline for :meth:`_CircuitArrays.sweep`.
    All new positions are computed from the previous iterate and
    applied together, mirroring the simultaneous matrix sweep.
    """
    max_move = 0.0
    updates: dict[str, np.ndarray] = {}
    for sid in unpinned:
        weights = []
        points = []
        for neighbor, rate in circuit.neighbors(sid):
            weight = rate if rate_weighted else 1.0
            if distance_weighted:
                dist = float(np.linalg.norm(positions[sid] - positions[neighbor]))
                weight = weight / max(dist, 1e-9)
            weights.append(weight)
            points.append(positions[neighbor])
        if not points:
            continue
        weights_arr = np.asarray(weights, dtype=float)
        total = weights_arr.sum()
        if total <= 0:
            continue
        new_pos = (np.asarray(points) * weights_arr[:, None]).sum(axis=0) / total
        max_move = max(max_move, float(np.linalg.norm(new_pos - positions[sid])))
        updates[sid] = new_pos
    positions.update(updates)
    return max_move


def _iterate(
    circuit: Circuit,
    pinned_positions: dict[str, np.ndarray],
    rate_weighted: bool,
    distance_weighted: bool,
    max_iterations: int,
    tolerance: float,
    objective_fn,
) -> VirtualPlacement:
    positions, unpinned = _pinned_and_unpinned(circuit, pinned_positions)
    if not unpinned:
        return VirtualPlacement({}, 0, True, objective_fn(circuit, positions))
    arrays = _CircuitArrays(circuit, positions, unpinned)

    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        move = arrays.sweep(rate_weighted, distance_weighted)
        if move < tolerance:
            converged = True
            break
    placed = arrays.unpinned_positions()
    positions.update(placed)
    return VirtualPlacement(
        positions=placed,
        iterations=iterations,
        converged=converged,
        objective=objective_fn(circuit, positions),
    )


def _link_geometry(
    circuit: Circuit, positions: dict[str, np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """(rates, distances) over circuit links, one vectorized pass."""
    links = circuit.links
    if not links:
        return np.zeros(0), np.zeros(0)
    rates = np.fromiter((l.rate for l in links), dtype=float, count=len(links))
    source = np.array([positions[l.source] for l in links], dtype=float)
    target = np.array([positions[l.target] for l in links], dtype=float)
    diff = source - target
    return rates, np.sqrt(np.einsum("ld,ld->l", diff, diff))


def placement_energy(circuit: Circuit, positions: dict[str, np.ndarray]) -> float:
    """Spring energy Σ rate × dist² over circuit links (relaxation objective)."""
    rates, dist = _link_geometry(circuit, positions)
    return float(np.dot(rates, dist * dist))


def placement_utilization(circuit: Circuit, positions: dict[str, np.ndarray]) -> float:
    """Network utilization Σ rate × dist over circuit links (true objective)."""
    rates, dist = _link_geometry(circuit, positions)
    return float(np.dot(rates, dist))


def placement_energy_scalar(circuit: Circuit, positions: dict[str, np.ndarray]) -> float:
    """Per-link Python-loop spring energy (reference implementation)."""
    total = 0.0
    for link in circuit.links:
        d = float(np.linalg.norm(positions[link.source] - positions[link.target]))
        total += link.rate * d * d
    return total


def placement_utilization_scalar(
    circuit: Circuit, positions: dict[str, np.ndarray]
) -> float:
    """Per-link Python-loop network utilization (reference implementation)."""
    total = 0.0
    for link in circuit.links:
        d = float(np.linalg.norm(positions[link.source] - positions[link.target]))
        total += link.rate * d
    return total


def relaxation_placement(
    circuit: Circuit,
    pinned_positions: dict[str, np.ndarray],
    max_iterations: int = 400,
    tolerance: float = 1e-4,
) -> VirtualPlacement:
    """Spring relaxation: services settle at rate-weighted neighbor centroids.

    The fixed point is the global minimum of the spring energy
    Σ rate·dist² (the energy is convex), so iteration order does not
    change the answer, only the convergence speed.  The default
    iteration budget assumes simultaneous sweeps (see module
    docstring); deep chain circuits may need more.
    """
    return _iterate(
        circuit,
        pinned_positions,
        rate_weighted=True,
        distance_weighted=False,
        max_iterations=max_iterations,
        tolerance=tolerance,
        objective_fn=placement_energy,
    )


def centroid_placement(
    circuit: Circuit,
    pinned_positions: dict[str, np.ndarray],
    max_iterations: int = 400,
    tolerance: float = 1e-4,
) -> VirtualPlacement:
    """Unweighted centroid placement (rate-oblivious baseline)."""
    return _iterate(
        circuit,
        pinned_positions,
        rate_weighted=False,
        distance_weighted=False,
        max_iterations=max_iterations,
        tolerance=tolerance,
        objective_fn=placement_energy,
    )


def exact_spring_equilibrium(
    circuit: Circuit,
    pinned_positions: dict[str, np.ndarray],
) -> VirtualPlacement:
    """Closed-form spring equilibrium via a linear solve.

    The spring energy Σ rate·dist² is a convex quadratic, so its
    minimum satisfies, per unpinned service *i* and per dimension::

        (Σ_j k_ij) x_i - Σ_{j unpinned} k_ij x_j = Σ_{j pinned} k_ij p_j

    which is a (symmetric, diagonally dominant) linear system — the
    graph Laplacian restricted to unpinned services.  Large circuits
    solve it with ``scipy.sparse`` (the Laplacian has one entry per
    link, not O(n²)); a dense ``np.linalg.solve`` fallback covers small
    systems and scipy-less environments.  This is the ground truth the
    iterative :func:`relaxation_placement` converges to; tests verify
    their agreement, and it is useful when exactness matters more than
    decentralizability.
    """
    positions, unpinned = _pinned_and_unpinned(circuit, pinned_positions)
    if not unpinned:
        return VirtualPlacement({}, 0, True, placement_energy(circuit, positions))
    index = {sid: rank for rank, sid in enumerate(unpinned)}
    n = len(unpinned)
    dims = next(iter(positions.values())).shape[0]

    # COO assembly straight from the link list: one diagonal + one
    # off-diagonal (or right-hand-side) contribution per link endpoint.
    diag = np.zeros(n)
    rhs = np.zeros((n, dims))
    off_rows: list[int] = []
    off_cols: list[int] = []
    off_vals: list[float] = []
    for link in circuit.links:
        for sid, other in ((link.source, link.target), (link.target, link.source)):
            i = index.get(sid)
            if i is None:
                continue
            diag[i] += link.rate
            j = index.get(other)
            if j is not None:
                off_rows.append(i)
                off_cols.append(j)
                off_vals.append(-link.rate)
            else:
                rhs[i] += link.rate * positions[other]

    # Isolated services (no links) keep a zero row; pin them to the
    # pinned centroid to keep the system solvable.
    isolated = diag == 0
    if np.any(isolated):
        center = np.mean(
            [positions[sid] for sid in circuit.pinned_ids()], axis=0
        )
        diag[isolated] = 1.0
        rhs[isolated] = center

    sparse = _sparse()
    if sparse is not None and n >= SPARSE_SOLVER_THRESHOLD:
        csr_matrix, factorized = sparse
        rows = np.concatenate([np.arange(n), np.asarray(off_rows, dtype=int)])
        cols = np.concatenate([np.arange(n), np.asarray(off_cols, dtype=int)])
        vals = np.concatenate([diag, np.asarray(off_vals, dtype=float)])
        laplacian = csr_matrix((vals, (rows, cols)), shape=(n, n))
        solve = factorized(laplacian.tocsc())
        solution = np.column_stack([solve(rhs[:, k]) for k in range(dims)])
    else:
        laplacian = np.zeros((n, n))
        laplacian[np.arange(n), np.arange(n)] = diag
        np.add.at(laplacian, (off_rows, off_cols), off_vals)
        solution = np.linalg.solve(laplacian, rhs)

    placed = {sid: solution[index[sid]] for sid in unpinned}
    positions.update(placed)
    return VirtualPlacement(
        positions=placed,
        iterations=0,
        converged=True,
        objective=placement_energy(circuit, positions),
    )


def gradient_descent_placement(
    circuit: Circuit,
    pinned_positions: dict[str, np.ndarray],
    max_iterations: int = 1000,
    tolerance: float = 1e-5,
) -> VirtualPlacement:
    """Weiszfeld-style descent on the true utilization Σ rate·dist.

    Each unpinned service iterates toward the rate/distance-weighted
    centroid of its neighbors — the update of the classic Weiszfeld
    algorithm for the (weighted) geometric median, generalized to the
    circuit graph.
    """
    return _iterate(
        circuit,
        pinned_positions,
        rate_weighted=True,
        distance_weighted=True,
        max_iterations=max_iterations,
        tolerance=tolerance,
        objective_fn=placement_utilization,
    )
