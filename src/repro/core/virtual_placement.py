"""Virtual placement: ideal coordinates for unpinned services (§3.2).

Virtual placement runs *before* any service is instantiated: given the
circuit's link structure, the pinned endpoints' vector coordinates, and
the link data rates, compute the coordinate in the **vector dimensions
only** where each unpinned service would ideally sit.  (Scalar
dimensions are ideal at zero and join at physical-mapping time.)

Algorithms, per the paper:

* **Relaxation placement** [Pietzuch et al., TR-26-04] — circuits are
  modelled as springs whose constant equals the link data rate and
  whose extension is the latency; services are massless bodies.  The
  equilibrium minimizes Σ rate·dist² (a proxy for the network
  utilization Σ rate·dist), found by iterative per-service relaxation:
  each unpinned service repeatedly moves to the rate-weighted centroid
  of its neighbors.
* **Centroid placement** — unweighted centroid of neighbors, iterated.
* **Gradient descent placement** [Bonfils & Bonnet] — minimizes the
  *true* utilization objective Σ rate·dist with Weiszfeld-style
  iterations (each service moves to the rate/distance-weighted centroid
  of its neighbors).

All three return a :class:`VirtualPlacement` mapping each unpinned
service id to a vector coordinate, plus convergence diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.circuit import Circuit

__all__ = [
    "VirtualPlacement",
    "relaxation_placement",
    "centroid_placement",
    "gradient_descent_placement",
    "exact_spring_equilibrium",
    "placement_energy",
    "placement_utilization",
]


@dataclass
class VirtualPlacement:
    """Result of a virtual-placement run.

    Attributes:
        positions: unpinned service id -> vector coordinate (ndarray).
        iterations: relaxation sweeps performed.
        converged: True if movement fell below tolerance before the
            iteration cap.
        objective: final value of the algorithm's objective function.
    """

    positions: dict[str, np.ndarray]
    iterations: int
    converged: bool
    objective: float

    def position_of(self, service_id: str) -> np.ndarray:
        if service_id not in self.positions:
            raise KeyError(f"no virtual position for {service_id}")
        return self.positions[service_id]


def _pinned_and_unpinned(
    circuit: Circuit, pinned_positions: dict[str, np.ndarray]
) -> tuple[dict[str, np.ndarray], list[str]]:
    """Validate inputs; return (pinned positions, unpinned ids)."""
    pinned_ids = set(circuit.pinned_ids())
    missing = pinned_ids - set(pinned_positions)
    if missing:
        raise ValueError(f"missing vector positions for pinned services {sorted(missing)}")
    unpinned = circuit.unpinned_ids()
    positions = {sid: np.asarray(p, dtype=float) for sid, p in pinned_positions.items()}
    dims = {p.shape for p in positions.values()}
    if len(dims) > 1:
        raise ValueError("pinned positions have inconsistent dimensionality")
    return positions, unpinned


def _initial_guess(
    circuit: Circuit,
    positions: dict[str, np.ndarray],
    unpinned: list[str],
) -> dict[str, np.ndarray]:
    """Start every unpinned service at the mean of the pinned endpoints."""
    pinned_matrix = np.array([positions[sid] for sid in circuit.pinned_ids()])
    center = pinned_matrix.mean(axis=0)
    return {sid: center.copy() for sid in unpinned}


def _sweep(
    circuit: Circuit,
    positions: dict[str, np.ndarray],
    unpinned: list[str],
    rate_weighted: bool,
    distance_weighted: bool,
) -> float:
    """One relaxation sweep; returns the largest movement distance."""
    max_move = 0.0
    for sid in unpinned:
        weights = []
        points = []
        for neighbor, rate in circuit.neighbors(sid):
            weight = rate if rate_weighted else 1.0
            if distance_weighted:
                dist = float(np.linalg.norm(positions[sid] - positions[neighbor]))
                weight = weight / max(dist, 1e-9)
            weights.append(weight)
            points.append(positions[neighbor])
        if not points:
            continue
        weights_arr = np.asarray(weights, dtype=float)
        total = weights_arr.sum()
        if total <= 0:
            continue
        new_pos = (np.asarray(points) * weights_arr[:, None]).sum(axis=0) / total
        max_move = max(max_move, float(np.linalg.norm(new_pos - positions[sid])))
        positions[sid] = new_pos
    return max_move


def _iterate(
    circuit: Circuit,
    pinned_positions: dict[str, np.ndarray],
    rate_weighted: bool,
    distance_weighted: bool,
    max_iterations: int,
    tolerance: float,
    objective_fn,
) -> VirtualPlacement:
    positions, unpinned = _pinned_and_unpinned(circuit, pinned_positions)
    if not unpinned:
        return VirtualPlacement({}, 0, True, objective_fn(circuit, positions))
    positions.update(_initial_guess(circuit, positions, unpinned))

    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        move = _sweep(circuit, positions, unpinned, rate_weighted, distance_weighted)
        if move < tolerance:
            converged = True
            break
    return VirtualPlacement(
        positions={sid: positions[sid] for sid in unpinned},
        iterations=iterations,
        converged=converged,
        objective=objective_fn(circuit, positions),
    )


def placement_energy(circuit: Circuit, positions: dict[str, np.ndarray]) -> float:
    """Spring energy Σ rate × dist² over circuit links (relaxation objective)."""
    total = 0.0
    for link in circuit.links:
        d = float(np.linalg.norm(positions[link.source] - positions[link.target]))
        total += link.rate * d * d
    return total


def placement_utilization(circuit: Circuit, positions: dict[str, np.ndarray]) -> float:
    """Network utilization Σ rate × dist over circuit links (true objective)."""
    total = 0.0
    for link in circuit.links:
        d = float(np.linalg.norm(positions[link.source] - positions[link.target]))
        total += link.rate * d
    return total


def relaxation_placement(
    circuit: Circuit,
    pinned_positions: dict[str, np.ndarray],
    max_iterations: int = 200,
    tolerance: float = 1e-4,
) -> VirtualPlacement:
    """Spring relaxation: services settle at rate-weighted neighbor centroids.

    The fixed point is the global minimum of the spring energy
    Σ rate·dist² (the energy is convex), so iteration order does not
    change the answer, only the convergence speed.
    """
    return _iterate(
        circuit,
        pinned_positions,
        rate_weighted=True,
        distance_weighted=False,
        max_iterations=max_iterations,
        tolerance=tolerance,
        objective_fn=placement_energy,
    )


def centroid_placement(
    circuit: Circuit,
    pinned_positions: dict[str, np.ndarray],
    max_iterations: int = 200,
    tolerance: float = 1e-4,
) -> VirtualPlacement:
    """Unweighted centroid placement (rate-oblivious baseline)."""
    return _iterate(
        circuit,
        pinned_positions,
        rate_weighted=False,
        distance_weighted=False,
        max_iterations=max_iterations,
        tolerance=tolerance,
        objective_fn=placement_energy,
    )


def exact_spring_equilibrium(
    circuit: Circuit,
    pinned_positions: dict[str, np.ndarray],
) -> VirtualPlacement:
    """Closed-form spring equilibrium via a linear solve.

    The spring energy Σ rate·dist² is a convex quadratic, so its
    minimum satisfies, per unpinned service *i* and per dimension::

        (Σ_j k_ij) x_i - Σ_{j unpinned} k_ij x_j = Σ_{j pinned} k_ij p_j

    which is a (symmetric, diagonally dominant) linear system — the
    graph Laplacian restricted to unpinned services.  This is the
    ground truth the iterative :func:`relaxation_placement` converges
    to; tests verify their agreement, and it is useful when exactness
    matters more than decentralizability.
    """
    positions, unpinned = _pinned_and_unpinned(circuit, pinned_positions)
    if not unpinned:
        return VirtualPlacement({}, 0, True, placement_energy(circuit, positions))
    index = {sid: rank for rank, sid in enumerate(unpinned)}
    n = len(unpinned)
    dims = next(iter(positions.values())).shape[0]

    laplacian = np.zeros((n, n))
    rhs = np.zeros((n, dims))
    for sid in unpinned:
        i = index[sid]
        for neighbor, rate in circuit.neighbors(sid):
            laplacian[i, i] += rate
            if neighbor in index:
                laplacian[i, index[neighbor]] -= rate
            else:
                rhs[i] += rate * positions[neighbor]

    # Isolated services (no links) keep a zero row; pin them to the
    # pinned centroid to keep the system solvable.
    center = np.mean(
        [positions[sid] for sid in circuit.pinned_ids()], axis=0
    )
    for sid in unpinned:
        i = index[sid]
        if laplacian[i, i] == 0:
            laplacian[i, i] = 1.0
            rhs[i] = center

    solution = np.linalg.solve(laplacian, rhs)
    placed = {sid: solution[index[sid]] for sid in unpinned}
    positions.update(placed)
    return VirtualPlacement(
        positions=placed,
        iterations=0,
        converged=True,
        objective=placement_energy(circuit, positions),
    )


def gradient_descent_placement(
    circuit: Circuit,
    pinned_positions: dict[str, np.ndarray],
    max_iterations: int = 500,
    tolerance: float = 1e-5,
) -> VirtualPlacement:
    """Weiszfeld-style descent on the true utilization Σ rate·dist.

    Each unpinned service iterates toward the rate/distance-weighted
    centroid of its neighbors — the update of the classic Weiszfeld
    algorithm for the (weighted) geometric median, generalized to the
    circuit graph.
    """
    return _iterate(
        circuit,
        pinned_positions,
        rate_weighted=True,
        distance_weighted=True,
        max_iterations=max_iterations,
        tolerance=tolerance,
        objective_fn=placement_utilization,
    )
