"""Local plan rewriting during re-optimization (§3.3).

"As part of re-optimization, a node can perform limited plan re-writing
as long as it is running all affected services.  This could involve the
reordering of services, the decomposition of existing services into
sub-services to reduce load, or the re-composition of services to
reduce network communication."

Four rewrite groups are implemented, each strictly local (it only
touches services that share a host, or a single service family):

* :func:`recompose_colocated_joins` — two adjacent JOIN services hosted
  on the *same* node are merged into one multi-way join service.  The
  inter-service link disappears (it was intra-node and free, but the
  merged service has lower fixed overhead and one less migration unit).
* :func:`decompose_join` — the inverse: a multi-way join whose host is
  overloaded is split back into a two-way join tree so the pieces can
  be placed on different nodes.
* :func:`reorder_adjacent_joins` — for two adjacent joins on one host,
  try the alternative associations of their three inputs and keep the
  one with the lowest intermediate rate (a classic local join
  reordering, valid because the host runs both services).
* :func:`replicate_operator` / :func:`merge_replicas` — elastic
  scaling (PR 9): split a CPU-hot join/aggregate into ``k``
  key-partitioned replicas plus one downstream merge relay, or fold a
  family back into its single base service.  Upstream links are
  expanded in place into one link per replica — the data plane's
  hash-router delivers each tuple to exactly one of them by SplitMix64
  key bucket — and the merge relay re-interleaves the replicas'
  outputs onto the base's original out-links.  The original *family*
  rates are carried exactly on :class:`~repro.core.circuit.ReplicaInfo`
  (never divided and re-multiplied) so the compiled operator
  parameters are bitwise-identical to the unreplicated circuit's: a
  k=1→k→1 round-trip restores the exact original behavior.

All rewrites take and return :class:`~repro.core.circuit.Circuit`
objects; they never touch services on other hosts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.circuit import Circuit, ReplicaInfo, Service
from repro.query.operators import ServiceKind, ServiceSpec
from repro.query.selectivity import Statistics, rate_of_subset

__all__ = [
    "RewriteResult",
    "colocated_join_pairs",
    "recompose_colocated_joins",
    "decompose_join",
    "reorder_adjacent_joins",
    "replicate_operator",
    "merge_replicas",
    "replica_families",
    "replica_sid",
    "merge_sid",
]


@dataclass(frozen=True)
class RewriteResult:
    """Outcome of a rewrite attempt.

    Attributes:
        circuit: the rewritten circuit (a fresh object; input untouched).
        applied: True if a rewrite actually happened.
        description: human-readable summary of what changed.
    """

    circuit: Circuit
    applied: bool
    description: str = ""


def _adjacent_join_pairs(circuit: Circuit) -> list[tuple[str, str]]:
    """(upstream, downstream) pairs of directly linked JOIN services."""
    pairs = []
    for link in circuit.links:
        src = circuit.services.get(link.source)
        dst = circuit.services.get(link.target)
        if (
            src is not None
            and dst is not None
            and src.kind is ServiceKind.JOIN
            and dst.kind is ServiceKind.JOIN
        ):
            pairs.append((link.source, link.target))
    return pairs


def colocated_join_pairs(circuit: Circuit) -> list[tuple[str, str]]:
    """Adjacent join pairs whose services share a physical host."""
    if not circuit.is_fully_placed():
        raise ValueError("circuit must be placed to find colocated services")
    return [
        (up, down)
        for up, down in _adjacent_join_pairs(circuit)
        if circuit.host_of(up) == circuit.host_of(down)
    ]


def recompose_colocated_joins(
    circuit: Circuit, upstream: str, downstream: str
) -> RewriteResult:
    """Merge two colocated adjacent joins into one multi-way join.

    The merged service keeps the downstream id (its output links are
    unchanged), absorbs the upstream's inputs, and covers the union of
    producers.  Only valid when both run on the same host (§3.3).
    """
    if circuit.host_of(upstream) != circuit.host_of(downstream):
        raise ValueError("recomposition requires colocated services")
    up_svc = circuit.services[upstream]
    down_svc = circuit.services[downstream]
    if up_svc.kind is not ServiceKind.JOIN or down_svc.kind is not ServiceKind.JOIN:
        raise ValueError("recomposition applies to JOIN services")

    merged = Circuit(name=circuit.name)
    for sid, service in circuit.services.items():
        if sid == upstream:
            continue
        if sid == downstream:
            service = Service(
                service_id=sid,
                spec=down_svc.spec,
                pinned_node=down_svc.pinned_node,
                producers=up_svc.producers | down_svc.producers,
            )
        merged.services[sid] = service
    for link in circuit.links:
        if link.source == upstream and link.target == downstream:
            continue  # the intra-node link disappears
        source = downstream if link.source == upstream else link.source
        target = downstream if link.target == upstream else link.target
        merged.add_link(source, target, link.rate)
    for sid, node in circuit.placement.items():
        if sid != upstream:
            merged.placement[sid] = node
    return RewriteResult(
        circuit=merged,
        applied=True,
        description=f"merged {upstream} into {downstream}",
    )


def decompose_join(
    circuit: Circuit,
    service_id: str,
    stats: Statistics,
) -> RewriteResult:
    """Split a multi-way join back into a two-way join plus a sub-join.

    The inputs are partitioned greedily: the most selective input pair
    (lowest joint output rate) becomes the new sub-service, which feeds
    the remaining join.  The sub-service starts on the same host (a
    later re-optimization pass is free to migrate it — that is the
    point of decomposing "to reduce load").

    Returns ``applied=False`` when the service has only two inputs.
    """
    service = circuit.services[service_id]
    if service.kind is not ServiceKind.JOIN:
        raise ValueError("decomposition applies to JOIN services")
    in_links = [l for l in circuit.links if l.target == service_id]
    if len(in_links) <= 2:
        return RewriteResult(circuit.copy(), False, "already a two-way join")

    def input_producers(link) -> frozenset[str]:
        return circuit.services[link.source].producers

    # Pick the pair of inputs with the smallest combined output rate.
    best_pair = None
    best_rate = float("inf")
    for i in range(len(in_links)):
        for j in range(i + 1, len(in_links)):
            joint = input_producers(in_links[i]) | input_producers(in_links[j])
            rate = rate_of_subset(stats, joint)
            if rate < best_rate:
                best_rate = rate
                best_pair = (in_links[i], in_links[j])
    assert best_pair is not None
    a, b = best_pair

    sub_id = f"{service_id}.sub"
    rewritten = circuit.copy()
    rewritten.services = dict(circuit.services)
    rewritten.links = [l for l in circuit.links if l not in (a, b)]
    rewritten.placement = dict(circuit.placement)

    sub_producers = input_producers(a) | input_producers(b)
    rewritten.services[sub_id] = Service(
        service_id=sub_id,
        spec=ServiceSpec.join(),
        pinned_node=None,
        producers=sub_producers,
    )
    rewritten.links.append(type(a)(a.source, sub_id, a.rate))
    rewritten.links.append(type(b)(b.source, sub_id, b.rate))
    rewritten.links.append(type(a)(sub_id, service_id, best_rate))
    rewritten.placement[sub_id] = circuit.host_of(service_id)
    return RewriteResult(
        rewritten, True, f"split {service_id}: new sub-join {sub_id} over {sorted(sub_producers)}"
    )


def reorder_adjacent_joins(
    circuit: Circuit,
    upstream: str,
    downstream: str,
    stats: Statistics,
) -> RewriteResult:
    """Try the alternative associations of two colocated adjacent joins.

    With upstream = (X ⋈ Y) feeding downstream = (· ⋈ Z), the host can
    locally re-associate to (X ⋈ Z)·Y or (Y ⋈ Z)·X.  The association
    with the lowest intermediate rate wins; if the current one is
    already best, nothing changes.

    Only the upstream's *producer grouping* changes — both services
    stay on their host, so this is a legal local rewrite.
    """
    if circuit.host_of(upstream) != circuit.host_of(downstream):
        raise ValueError("reordering requires colocated services")
    up_svc = circuit.services[upstream]
    up_inputs = [l for l in circuit.links if l.target == upstream]
    down_inputs = [
        l for l in circuit.links if l.target == downstream and l.source != upstream
    ]
    if len(up_inputs) != 2 or len(down_inputs) != 1:
        return RewriteResult(circuit.copy(), False, "shape not reorderable")

    x_link, y_link = up_inputs
    z_link = down_inputs[0]
    x = circuit.services[x_link.source].producers
    y = circuit.services[y_link.source].producers
    z = circuit.services[z_link.source].producers

    options = {
        "xy": (x | y, x_link, y_link, z_link),
        "xz": (x | z, x_link, z_link, y_link),
        "yz": (y | z, y_link, z_link, x_link),
    }
    rates = {
        key: rate_of_subset(stats, group)
        for key, (group, *_rest) in options.items()
    }
    best_key = min(rates, key=rates.get)
    if best_key == "xy":
        return RewriteResult(circuit.copy(), False, "current association optimal")

    group, first, second, third = options[best_key]
    rewritten = circuit.copy()
    rewritten.services = dict(circuit.services)
    rewritten.links = [
        l for l in circuit.links if l not in (x_link, y_link, z_link)
    ]
    rewritten.services[upstream] = Service(
        service_id=upstream,
        spec=up_svc.spec,
        pinned_node=up_svc.pinned_node,
        producers=group,
    )
    link_cls = type(x_link)
    rewritten.links.append(link_cls(first.source, upstream, first.rate))
    rewritten.links.append(link_cls(second.source, upstream, second.rate))
    rewritten.links.append(link_cls(third.source, downstream, third.rate))
    # The upstream -> downstream link now carries the new group's rate.
    rewritten.links = [
        l for l in rewritten.links
        if not (l.source == upstream and l.target == downstream)
    ]
    rewritten.links.append(link_cls(upstream, downstream, rates[best_key]))
    return RewriteResult(
        rewritten, True, f"re-associated {upstream} to join {sorted(group)}"
    )


# -- elastic scaling: key-partitioned replication (PR 9) -------------------

_REPLICABLE = (ServiceKind.JOIN, ServiceKind.AGGREGATE)


def replica_sid(base: str, index: int) -> str:
    """Service id of replica ``index`` of ``base``."""
    return f"{base}@r{index}"


def merge_sid(base: str) -> str:
    """Service id of the merge relay of ``base``'s replica family."""
    return f"{base}@merge"


def replica_families(circuit: Circuit) -> dict[str, dict]:
    """Replica families present in a circuit, keyed by base service id.

    Each value is ``{"replicas": [sid, ...] (index order), "merge":
    sid | None, "count": k}``.  Used by the rewrite primitives, the
    autoscaler, and the replica-count metric.
    """
    families: dict[str, dict] = {}
    for sid, service in circuit.services.items():
        info = service.replica
        if info is None:
            continue
        fam = families.setdefault(
            info.base, {"replicas": [None] * info.count, "merge": None, "count": info.count}
        )
        if info.is_merge:
            fam["merge"] = sid
        else:
            fam["replicas"][info.index] = sid
    return families


def _resolve_base(circuit: Circuit, service_id: str) -> str | None:
    """The family base a service id refers to, or None if unreplicated."""
    service = circuit.services.get(service_id)
    if service is not None and service.replica is not None:
        return service.replica.base
    if service is None and service_id in replica_families(circuit):
        return service_id
    return None


def _unreplicate(circuit: Circuit, base: str) -> Circuit:
    """Fold a replica family back into its single base service.

    The base reappears at replica 0's position in the service order
    (and on replica 0's host); the stored family rates restore every
    original link exactly.
    """
    fam = replica_families(circuit)[base]
    replicas: list[str] = fam["replicas"]
    family = set(replicas)
    if fam["merge"] is not None:
        family.add(fam["merge"])
    r0 = circuit.services[replicas[0]]
    info = r0.replica
    restored = Service(
        service_id=base,
        spec=r0.spec,
        pinned_node=None,
        producers=r0.producers,
    )
    flat = Circuit(name=circuit.name)
    for sid, service in circuit.services.items():
        if sid == replicas[0]:
            flat.services[base] = restored
        elif sid not in family:
            flat.services[sid] = service
    port = 0
    out_seen = False
    for link in circuit.links:
        if link.target in family:
            if link.source in family:
                continue  # internal replica -> merge link
            if link.target == replicas[0]:
                flat.add_link(link.source, base, info.in_rates[port])
                port += 1
            # Split copies to the other replicas collapse away.
        elif link.source in family:
            # Merge out-links carry the original downstream rates.
            flat.add_link(base, link.target, link.rate)
            out_seen = True
        else:
            flat.add_link(link.source, link.target, link.rate)
    assert out_seen, "replica family had no downstream links"
    for sid, node in circuit.placement.items():
        if sid == replicas[0]:
            flat.placement[base] = node
        elif sid not in family:
            flat.placement[sid] = node
    return flat


def _replicate(
    circuit: Circuit, base: str, k: int, hints: list[int | None] | None
) -> Circuit:
    """Split an unreplicated service into ``k`` replicas plus a merge.

    ``hints`` optionally places replica ``i`` on ``hints[i]``; missing
    hints (and the merge relay) default to the base's current host.
    """
    service = circuit.services[base]
    in_links = [l for l in circuit.links if l.target == base]
    out_links = [l for l in circuit.links if l.source == base]
    in_rates = tuple(l.rate for l in in_links)
    out_rate = out_links[0].rate
    rep_sids = [replica_sid(base, i) for i in range(k)]
    m_sid = merge_sid(base)

    rewritten = Circuit(name=circuit.name)
    for sid, svc in circuit.services.items():
        if sid == base:
            for i in range(k):
                rewritten.services[rep_sids[i]] = Service(
                    service_id=rep_sids[i],
                    spec=service.spec,
                    pinned_node=None,
                    producers=service.producers,
                    replica=ReplicaInfo(base, i, k, in_rates, out_rate),
                )
            rewritten.services[m_sid] = Service(
                service_id=m_sid,
                spec=ServiceSpec.relay(),
                pinned_node=None,
                producers=service.producers,
                replica=ReplicaInfo(base, -1, k, in_rates, out_rate),
            )
        else:
            rewritten.services[sid] = svc
    out_seen = False
    for link in circuit.links:
        if link.target == base:
            # Expand in place into one split link per replica, so each
            # replica's in-port order equals the base's in-port order.
            for sid in rep_sids:
                rewritten.add_link(link.source, sid, link.rate / k)
        elif link.source == base:
            if not out_seen:
                for sid in rep_sids:
                    rewritten.add_link(sid, m_sid, out_rate / k)
                out_seen = True
            rewritten.add_link(m_sid, link.target, link.rate)
        else:
            rewritten.add_link(link.source, link.target, link.rate)

    home = circuit.placement.get(base)
    for sid, node in circuit.placement.items():
        if sid != base:
            rewritten.placement[sid] = node
    for i, sid in enumerate(rep_sids):
        node = hints[i] if hints is not None and i < len(hints) else None
        node = home if node is None else node
        if node is not None:
            rewritten.placement[sid] = node
    if home is not None:
        rewritten.placement[m_sid] = home
    return rewritten


def replicate_operator(
    circuit: Circuit,
    service_id: str,
    k: int,
    placement: list[int | None] | None = None,
) -> RewriteResult:
    """Scale a join/aggregate to ``k`` key-partitioned replicas.

    ``service_id`` may name an unreplicated service, the base of an
    existing family, or any member of one — rescaling an existing
    family folds it flat first and re-splits with the new ``k``
    (replica sids for indices below the old count are preserved, as
    are their hosts unless ``placement`` overrides them).  ``k == 1``
    on a family merges it back (see :func:`merge_replicas`).

    Only unpinned JOIN / AGGREGATE services with both inputs and
    outputs replicate; everything else returns ``applied=False``.
    Join families partition their state by key, so the merged output
    is exactly the unreplicated circuit's (canonical order);
    aggregate families are rate-preserving (the credit decimation is
    batch-order dependent across replicas).
    """
    if k < 1:
        raise ValueError("replica count must be >= 1")
    base = _resolve_base(circuit, service_id)
    if base is not None:
        fam = replica_families(circuit)[base]
        current = fam["count"]
        if k == current:
            return RewriteResult(circuit.copy(), False, f"{base} already at k={k}")
        hints = placement
        if hints is None:
            hints = [circuit.placement.get(sid) for sid in fam["replicas"]]
        flat = _unreplicate(circuit, base)
        if k == 1:
            return RewriteResult(
                flat, True, f"merged {base} back to a single instance"
            )
        return RewriteResult(
            _replicate(flat, base, k, hints),
            True,
            f"rescaled {base} from {current} to {k} replicas",
        )
    service = circuit.services.get(service_id)
    if service is None:
        raise KeyError(f"no service {service_id}")
    if service.kind not in _REPLICABLE:
        return RewriteResult(
            circuit.copy(), False, "only join/aggregate services replicate"
        )
    if service.is_pinned:
        return RewriteResult(
            circuit.copy(), False, "pinned services cannot replicate"
        )
    has_in = any(l.target == service_id for l in circuit.links)
    has_out = any(l.source == service_id for l in circuit.links)
    if not has_in or not has_out:
        return RewriteResult(
            circuit.copy(), False, "sources and sinks cannot replicate"
        )
    if k == 1:
        return RewriteResult(
            circuit.copy(), False, "k=1 is the unreplicated form"
        )
    return RewriteResult(
        _replicate(circuit, service_id, k, placement),
        True,
        f"split {service_id} into {k} key-partitioned replicas",
    )


def merge_replicas(circuit: Circuit, service_id: str) -> RewriteResult:
    """Fold a replica family back into its single base service.

    ``service_id`` may name the family base or any member.  Returns
    ``applied=False`` when the service is not replicated.
    """
    base = _resolve_base(circuit, service_id)
    if base is None:
        return RewriteResult(circuit.copy(), False, f"{service_id} is not replicated")
    return RewriteResult(
        _unreplicate(circuit, base),
        True,
        f"merged {base}'s replicas back to a single instance",
    )
