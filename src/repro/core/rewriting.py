"""Local plan rewriting during re-optimization (§3.3).

"As part of re-optimization, a node can perform limited plan re-writing
as long as it is running all affected services.  This could involve the
reordering of services, the decomposition of existing services into
sub-services to reduce load, or the re-composition of services to
reduce network communication."

Three rewrites are implemented, each strictly local (it only touches
services that share a host, or a single service):

* :func:`recompose_colocated_joins` — two adjacent JOIN services hosted
  on the *same* node are merged into one multi-way join service.  The
  inter-service link disappears (it was intra-node and free, but the
  merged service has lower fixed overhead and one less migration unit).
* :func:`decompose_join` — the inverse: a multi-way join whose host is
  overloaded is split back into a two-way join tree so the pieces can
  be placed on different nodes.
* :func:`reorder_adjacent_joins` — for two adjacent joins on one host,
  try the alternative associations of their three inputs and keep the
  one with the lowest intermediate rate (a classic local join
  reordering, valid because the host runs both services).

All rewrites take and return :class:`~repro.core.circuit.Circuit`
objects; they never touch services on other hosts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.circuit import Circuit, Service
from repro.query.operators import ServiceKind, ServiceSpec
from repro.query.selectivity import Statistics, rate_of_subset

__all__ = [
    "RewriteResult",
    "colocated_join_pairs",
    "recompose_colocated_joins",
    "decompose_join",
    "reorder_adjacent_joins",
]


@dataclass(frozen=True)
class RewriteResult:
    """Outcome of a rewrite attempt.

    Attributes:
        circuit: the rewritten circuit (a fresh object; input untouched).
        applied: True if a rewrite actually happened.
        description: human-readable summary of what changed.
    """

    circuit: Circuit
    applied: bool
    description: str = ""


def _adjacent_join_pairs(circuit: Circuit) -> list[tuple[str, str]]:
    """(upstream, downstream) pairs of directly linked JOIN services."""
    pairs = []
    for link in circuit.links:
        src = circuit.services.get(link.source)
        dst = circuit.services.get(link.target)
        if (
            src is not None
            and dst is not None
            and src.kind is ServiceKind.JOIN
            and dst.kind is ServiceKind.JOIN
        ):
            pairs.append((link.source, link.target))
    return pairs


def colocated_join_pairs(circuit: Circuit) -> list[tuple[str, str]]:
    """Adjacent join pairs whose services share a physical host."""
    if not circuit.is_fully_placed():
        raise ValueError("circuit must be placed to find colocated services")
    return [
        (up, down)
        for up, down in _adjacent_join_pairs(circuit)
        if circuit.host_of(up) == circuit.host_of(down)
    ]


def recompose_colocated_joins(
    circuit: Circuit, upstream: str, downstream: str
) -> RewriteResult:
    """Merge two colocated adjacent joins into one multi-way join.

    The merged service keeps the downstream id (its output links are
    unchanged), absorbs the upstream's inputs, and covers the union of
    producers.  Only valid when both run on the same host (§3.3).
    """
    if circuit.host_of(upstream) != circuit.host_of(downstream):
        raise ValueError("recomposition requires colocated services")
    up_svc = circuit.services[upstream]
    down_svc = circuit.services[downstream]
    if up_svc.kind is not ServiceKind.JOIN or down_svc.kind is not ServiceKind.JOIN:
        raise ValueError("recomposition applies to JOIN services")

    merged = Circuit(name=circuit.name)
    for sid, service in circuit.services.items():
        if sid == upstream:
            continue
        if sid == downstream:
            service = Service(
                service_id=sid,
                spec=down_svc.spec,
                pinned_node=down_svc.pinned_node,
                producers=up_svc.producers | down_svc.producers,
            )
        merged.services[sid] = service
    for link in circuit.links:
        if link.source == upstream and link.target == downstream:
            continue  # the intra-node link disappears
        source = downstream if link.source == upstream else link.source
        target = downstream if link.target == upstream else link.target
        merged.add_link(source, target, link.rate)
    for sid, node in circuit.placement.items():
        if sid != upstream:
            merged.placement[sid] = node
    return RewriteResult(
        circuit=merged,
        applied=True,
        description=f"merged {upstream} into {downstream}",
    )


def decompose_join(
    circuit: Circuit,
    service_id: str,
    stats: Statistics,
) -> RewriteResult:
    """Split a multi-way join back into a two-way join plus a sub-join.

    The inputs are partitioned greedily: the most selective input pair
    (lowest joint output rate) becomes the new sub-service, which feeds
    the remaining join.  The sub-service starts on the same host (a
    later re-optimization pass is free to migrate it — that is the
    point of decomposing "to reduce load").

    Returns ``applied=False`` when the service has only two inputs.
    """
    service = circuit.services[service_id]
    if service.kind is not ServiceKind.JOIN:
        raise ValueError("decomposition applies to JOIN services")
    in_links = [l for l in circuit.links if l.target == service_id]
    if len(in_links) <= 2:
        return RewriteResult(circuit.copy(), False, "already a two-way join")

    def input_producers(link) -> frozenset[str]:
        return circuit.services[link.source].producers

    # Pick the pair of inputs with the smallest combined output rate.
    best_pair = None
    best_rate = float("inf")
    for i in range(len(in_links)):
        for j in range(i + 1, len(in_links)):
            joint = input_producers(in_links[i]) | input_producers(in_links[j])
            rate = rate_of_subset(stats, joint)
            if rate < best_rate:
                best_rate = rate
                best_pair = (in_links[i], in_links[j])
    assert best_pair is not None
    a, b = best_pair

    sub_id = f"{service_id}.sub"
    rewritten = circuit.copy()
    rewritten.services = dict(circuit.services)
    rewritten.links = [l for l in circuit.links if l not in (a, b)]
    rewritten.placement = dict(circuit.placement)

    sub_producers = input_producers(a) | input_producers(b)
    rewritten.services[sub_id] = Service(
        service_id=sub_id,
        spec=ServiceSpec.join(),
        pinned_node=None,
        producers=sub_producers,
    )
    rewritten.links.append(type(a)(a.source, sub_id, a.rate))
    rewritten.links.append(type(b)(b.source, sub_id, b.rate))
    rewritten.links.append(type(a)(sub_id, service_id, best_rate))
    rewritten.placement[sub_id] = circuit.host_of(service_id)
    return RewriteResult(
        rewritten, True, f"split {service_id}: new sub-join {sub_id} over {sorted(sub_producers)}"
    )


def reorder_adjacent_joins(
    circuit: Circuit,
    upstream: str,
    downstream: str,
    stats: Statistics,
) -> RewriteResult:
    """Try the alternative associations of two colocated adjacent joins.

    With upstream = (X ⋈ Y) feeding downstream = (· ⋈ Z), the host can
    locally re-associate to (X ⋈ Z)·Y or (Y ⋈ Z)·X.  The association
    with the lowest intermediate rate wins; if the current one is
    already best, nothing changes.

    Only the upstream's *producer grouping* changes — both services
    stay on their host, so this is a legal local rewrite.
    """
    if circuit.host_of(upstream) != circuit.host_of(downstream):
        raise ValueError("reordering requires colocated services")
    up_svc = circuit.services[upstream]
    up_inputs = [l for l in circuit.links if l.target == upstream]
    down_inputs = [
        l for l in circuit.links if l.target == downstream and l.source != upstream
    ]
    if len(up_inputs) != 2 or len(down_inputs) != 1:
        return RewriteResult(circuit.copy(), False, "shape not reorderable")

    x_link, y_link = up_inputs
    z_link = down_inputs[0]
    x = circuit.services[x_link.source].producers
    y = circuit.services[y_link.source].producers
    z = circuit.services[z_link.source].producers

    options = {
        "xy": (x | y, x_link, y_link, z_link),
        "xz": (x | z, x_link, z_link, y_link),
        "yz": (y | z, y_link, z_link, x_link),
    }
    rates = {
        key: rate_of_subset(stats, group)
        for key, (group, *_rest) in options.items()
    }
    best_key = min(rates, key=rates.get)
    if best_key == "xy":
        return RewriteResult(circuit.copy(), False, "current association optimal")

    group, first, second, third = options[best_key]
    rewritten = circuit.copy()
    rewritten.services = dict(circuit.services)
    rewritten.links = [
        l for l in circuit.links if l not in (x_link, y_link, z_link)
    ]
    rewritten.services[upstream] = Service(
        service_id=upstream,
        spec=up_svc.spec,
        pinned_node=up_svc.pinned_node,
        producers=group,
    )
    link_cls = type(x_link)
    rewritten.links.append(link_cls(first.source, upstream, first.rate))
    rewritten.links.append(link_cls(second.source, upstream, second.rate))
    rewritten.links.append(link_cls(third.source, downstream, third.rate))
    # The upstream -> downstream link now carries the new group's rate.
    rewritten.links = [
        l for l in rewritten.links
        if not (l.source == upstream and l.target == downstream)
    ]
    rewritten.links.append(link_cls(upstream, downstream, rates[best_key]))
    return RewriteResult(
        rewritten, True, f"re-associated {upstream} to join {sorted(group)}"
    )
