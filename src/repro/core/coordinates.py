"""Cost-space coordinates: vector (pairwise) + scalar (per-node) parts.

A point in a cost space (§3.1) has two kinds of components:

* **vector components** — produced by a network-coordinate embedding;
  the *difference* between two nodes' vector components estimates a
  pairwise cost (latency).
* **scalar components** — produced by a weighting function from local
  node state; their *absolute magnitude* is the cost (zero is ideal).

Distance between two full coordinates is Euclidean over all
components.  Distance between a *virtual placement target* (which has
ideal, i.e. zero, scalar components) and a node's full coordinate is
therefore ``sqrt(|Δvector|² + Σ scalar²)`` — this is how "node N1 is
closer in latency but seems far away once load is considered"
(Figure 3) falls out of plain geometry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CostCoordinate"]


@dataclass(frozen=True)
class CostCoordinate:
    """An immutable point in a cost space.

    Attributes:
        vector: tuple of vector components (latency-embedding coords).
        scalar: tuple of scalar components (weighted node-local costs),
            possibly empty.
    """

    vector: tuple[float, ...]
    scalar: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if not self.vector:
            raise ValueError("a coordinate needs at least one vector component")
        for s in self.scalar:
            if s < 0:
                raise ValueError(f"scalar component {s} must be non-negative")

    @classmethod
    def from_arrays(
        cls, vector: np.ndarray | list[float], scalar: np.ndarray | list[float] = ()
    ) -> "CostCoordinate":
        return cls(
            tuple(float(v) for v in vector),
            tuple(float(s) for s in scalar),
        )

    @property
    def vector_dims(self) -> int:
        return len(self.vector)

    @property
    def scalar_dims(self) -> int:
        return len(self.scalar)

    @property
    def dims(self) -> int:
        """Total dimensionality of the coordinate."""
        return self.vector_dims + self.scalar_dims

    def vector_array(self) -> np.ndarray:
        return np.asarray(self.vector, dtype=float)

    def scalar_array(self) -> np.ndarray:
        return np.asarray(self.scalar, dtype=float)

    def full_array(self) -> np.ndarray:
        """Concatenated (vector, scalar) components as one array."""
        return np.asarray(self.vector + self.scalar, dtype=float)

    def distance_to(self, other: "CostCoordinate") -> float:
        """Euclidean distance in the full cost space."""
        self._check_compatible(other)
        return float(np.linalg.norm(self.full_array() - other.full_array()))

    def vector_distance_to(self, other: "CostCoordinate") -> float:
        """Distance in the vector dimensions only (latency estimate).

        This is the distance virtual placement optimizes (§3.2): scalar
        dimensions do not affect *where* a service ideally sits.
        """
        if self.vector_dims != other.vector_dims:
            raise ValueError("coordinates have different vector dimensionality")
        return float(np.linalg.norm(self.vector_array() - other.vector_array()))

    def with_ideal_scalars(self) -> "CostCoordinate":
        """This point with all scalar components set to the ideal zero.

        Virtual placement targets are expressed this way: "the ideal
        scalar components will all be zero" (§3.2).
        """
        return CostCoordinate(self.vector, tuple(0.0 for _ in self.scalar))

    def scalar_penalty(self) -> float:
        """Euclidean magnitude of the scalar part (distance from ideal)."""
        if not self.scalar:
            return 0.0
        return float(np.linalg.norm(self.scalar_array()))

    def _check_compatible(self, other: "CostCoordinate") -> None:
        if (
            self.vector_dims != other.vector_dims
            or self.scalar_dims != other.scalar_dims
        ):
            raise ValueError(
                "coordinates belong to different cost-space shapes: "
                f"({self.vector_dims}+{self.scalar_dims}) vs "
                f"({other.vector_dims}+{other.scalar_dims})"
            )

    def __str__(self) -> str:
        vec = ", ".join(f"{v:.2f}" for v in self.vector)
        if not self.scalar:
            return f"({vec})"
        sca = ", ".join(f"{s:.2f}" for s in self.scalar)
        return f"({vec} | {sca})"
