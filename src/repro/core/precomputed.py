"""Pre-computed dynamic plans baseline (§2.3, after Graefe & Ward).

The paper discusses an earlier approach to network-aware optimization:
"pre-calculate and store plans and sub-plans in the database ... each
plan is generated with a different set of network assumptions.  Then,
when an expected query is issued, the optimizer examines current
network state and tries to find the pre-computed plan that best matches
current conditions.  This approach is limited in that the optimizer
must guess which future node and network states are relevant."

This module implements that baseline so the limitation can be measured
(ablation E11): at *compile time* the optimizer draws K perturbed
snapshots of the cost space (guessed futures), runs integrated
optimization under each, and stores the distinct winning plans.  At
*run time* it may only place plans from that stored set — if the true
conditions drifted somewhere no guess anticipated, the best current
plan may simply not be on the menu.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field

import numpy as np

from repro.core.cost_space import CostSpace
from repro.core.costs import CostEvaluator, CostSpaceEvaluator
from repro.core.optimizer import (
    IntegratedOptimizer,
    OptimizationResult,
    _PlacingOptimizerBase,
)
from repro.core.physical_mapping import CatalogMapper, ExhaustiveMapper
from repro.core.virtual_placement import relaxation_placement
from repro.query.model import QuerySpec
from repro.query.plan import LogicalPlan
from repro.query.selectivity import Statistics

__all__ = ["PlanBook", "PrecomputedPlansOptimizer", "perturbed_cost_space"]


def perturbed_cost_space(
    space: CostSpace,
    vector_sigma: float,
    load_sigma: float,
    seed: int,
) -> CostSpace:
    """A guessed future: jitter vector coords and scalar metrics.

    ``vector_sigma`` is relative to the space's span; scalar components
    are re-randomized around their current magnitude.
    """
    rng = np.random.default_rng(seed)
    vectors = space.vector_matrix()
    span = float(np.linalg.norm(vectors.max(axis=0) - vectors.min(axis=0)))
    noise = rng.normal(0.0, vector_sigma * max(span, 1e-9), size=vectors.shape)
    guessed = copy.deepcopy(space)
    guessed.update_vectors(vectors + noise)
    if space.spec.scalar_dimensions:
        # Guess a fresh load pattern of comparable magnitude.
        loads = np.clip(rng.normal(0.3, load_sigma, size=space.num_nodes), 0, 1)
        guessed.update_metrics({space.spec.scalar_dimensions[0].metric: loads})
    return guessed


@dataclass
class PlanBook:
    """The stored plans for one query, keyed by signature."""

    query_name: str
    plans: dict[str, LogicalPlan] = field(default_factory=dict)

    def add(self, plan: LogicalPlan) -> None:
        self.plans[plan.signature()] = plan

    def __len__(self) -> int:
        return len(self.plans)

    def __iter__(self):
        return iter(self.plans.values())


class PrecomputedPlansOptimizer(_PlacingOptimizerBase):
    """Graefe-Ward-style baseline: choose among pre-stored plans only.

    Args:
        cost_space: the *current* cost space used at run time.
        num_assumptions: how many guessed futures to compile against.
        vector_sigma: relative magnitude of the guessed latency drift.
        load_sigma: spread of the guessed load patterns.
        seed: determinism for the guesses.
        (mapper / evaluator / placement_fn / load_weight as elsewhere.)
    """

    def __init__(
        self,
        cost_space: CostSpace,
        num_assumptions: int = 4,
        vector_sigma: float = 0.05,
        load_sigma: float = 0.2,
        seed: int = 0,
        mapper: ExhaustiveMapper | CatalogMapper | None = None,
        evaluator: CostEvaluator | None = None,
        placement_fn=relaxation_placement,
        load_weight: float = 1.0,
    ):
        super().__init__(cost_space, mapper, evaluator, placement_fn, load_weight)
        if num_assumptions < 1:
            raise ValueError("num_assumptions must be >= 1")
        self.num_assumptions = num_assumptions
        self.vector_sigma = vector_sigma
        self.load_sigma = load_sigma
        self._seed = seed
        self._books: dict[str, PlanBook] = {}

    # -- compile time ------------------------------------------------------

    def compile(self, query: QuerySpec, stats: Statistics) -> PlanBook:
        """Pre-compute plans for ``query`` under guessed network futures.

        Each guess is a perturbed copy of the *compile-time* cost space;
        the integrated optimizer picks a plan under that guess, and the
        distinct winners form the plan book.
        """
        book = PlanBook(query_name=query.name)
        rng = random.Random(self._seed)
        for k in range(self.num_assumptions):
            guessed = perturbed_cost_space(
                self.cost_space,
                vector_sigma=self.vector_sigma,
                load_sigma=self.load_sigma,
                seed=rng.randrange(1 << 30),
            )
            optimizer = IntegratedOptimizer(
                guessed,
                mapper=ExhaustiveMapper(guessed),
                evaluator=CostSpaceEvaluator(guessed),
                placement_fn=self.placement_fn,
                load_weight=self.load_weight,
            )
            book.add(optimizer.optimize(query, stats).plan)
        self._books[query.name] = book
        return book

    def book_for(self, query_name: str) -> PlanBook:
        if query_name not in self._books:
            raise KeyError(f"query {query_name} was never compiled")
        return self._books[query_name]

    # -- run time ----------------------------------------------------------

    def optimize(self, query: QuerySpec, stats: Statistics) -> OptimizationResult:
        """Place every stored plan under *current* conditions; keep the best.

        Raises if the query was never compiled — the baseline only works
        for "common anticipated queries", exactly the limitation the
        paper points out.
        """
        book = self.book_for(query.name)
        best = None
        candidates = []
        from repro.core.optimizer import CandidateOutcome

        for plan in book:
            circuit, placement, mapping, cost = self.place_plan(plan, query, stats)
            candidates.append(CandidateOutcome(plan, cost))
            if best is None or cost.total < best[4].total:
                best = (plan, circuit, placement, mapping, cost)
        assert best is not None
        plan, circuit, placement, mapping, cost = best
        return OptimizationResult(
            query_name=query.name,
            plan=plan,
            circuit=circuit,
            cost=cost,
            virtual_placement=placement,
            mapping=mapping,
            candidates=candidates,
            placements_evaluated=len(book),
        )
