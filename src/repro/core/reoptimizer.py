"""Dynamic re-optimization of running circuits (§3.3).

Long-running queries outlive the conditions they were optimized for.
The paper describes two recovery mechanisms, both implemented here:

* **Local re-optimization** — each node hosting part of a circuit can
  re-run virtual placement + physical mapping for the services it
  hosts, migrating a service to a better node.  This is cheap,
  decentralized, and runs continuously.  A *migration threshold*
  (relative cost improvement required) prevents oscillation, since
  migrations are not free in a real system.
* **Full re-optimization** — when drift is stronger (e.g. selectivity
  estimates changed as the circuit matured), a node triggers a complete
  integrated optimization while the original circuit still runs; if the
  new candidate is sufficiently cheaper, a "parallel circuit" replaces
  the original.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.circuit import Circuit
from repro.core.coordinates import CostCoordinate
from repro.core.costs import CircuitCost, CostEvaluator, CostSpaceEvaluator
from repro.core.cost_space import CostSpace
from repro.core.optimizer import (
    IntegratedOptimizer,
    OptimizationResult,
    pinned_vector_positions,
)
from repro.core.physical_mapping import CatalogMapper, ExhaustiveMapper
from repro.core.virtual_placement import relaxation_placement
from repro.query.model import QuerySpec
from repro.query.selectivity import Statistics

__all__ = ["Migration", "ReoptimizationReport", "Reoptimizer"]


@dataclass(frozen=True)
class Migration:
    """One service movement decided by local re-optimization."""

    service_id: str
    from_node: int
    to_node: int
    cost_before: float
    cost_after: float

    @property
    def improvement(self) -> float:
        return self.cost_before - self.cost_after


@dataclass
class ReoptimizationReport:
    """What one re-optimization pass did to a circuit."""

    migrations: list[Migration] = field(default_factory=list)
    cost_before: CircuitCost | None = None
    cost_after: CircuitCost | None = None
    full_reoptimization: bool = False
    replaced_plan: bool = False

    @property
    def migrated(self) -> bool:
        return bool(self.migrations)

    @property
    def improvement(self) -> float:
        if self.cost_before is None or self.cost_after is None:
            return 0.0
        return self.cost_before.total - self.cost_after.total


class Reoptimizer:
    """Re-optimizes running circuits against a *current* cost space.

    The cost space passed in is expected to be refreshed externally
    (``CostSpace.update_metrics`` / ``update_vector``) as the network
    drifts; the re-optimizer only reads it.

    Args:
        cost_space: current cost-space snapshot.
        mapper: physical-mapping backend for migrations.
        evaluator: circuit pricing (cost-space estimates by default).
        migration_threshold: minimum *relative* total-cost improvement
            required to perform a migration (hysteresis).
        load_weight: load-penalty weight, as in the optimizers.
    """

    def __init__(
        self,
        cost_space: CostSpace,
        mapper: ExhaustiveMapper | CatalogMapper | None = None,
        evaluator: CostEvaluator | None = None,
        migration_threshold: float = 0.02,
        load_weight: float = 1.0,
    ):
        if migration_threshold < 0:
            raise ValueError("migration_threshold must be non-negative")
        self.cost_space = cost_space
        self.mapper = mapper or ExhaustiveMapper(cost_space)
        self.evaluator = evaluator or CostSpaceEvaluator(cost_space)
        self.migration_threshold = migration_threshold
        self.load_weight = load_weight

    # -- local re-optimization ----------------------------------------------

    def local_step(self, circuit: Circuit) -> ReoptimizationReport:
        """One decentralized pass: re-place and maybe migrate each service.

        For every unpinned service (in isolation, holding the others
        fixed — exactly what its host can do locally): recompute the
        ideal coordinate from current neighbor positions, remap it, and
        migrate if the circuit total improves by more than the
        threshold.
        """
        if not circuit.is_fully_placed():
            raise ValueError("circuit must be placed before re-optimization")
        report = ReoptimizationReport()
        report.cost_before = self.evaluator.evaluate(
            circuit, load_weight=self.load_weight
        )
        current_cost = report.cost_before
        scalar_dims = len(self.cost_space.spec.scalar_dimensions)

        for sid in circuit.unpinned_ids():
            target_vector = self._local_target(circuit, sid)
            target = CostCoordinate.from_arrays(
                target_vector, np.zeros(scalar_dims)
            )
            candidate_node, _ = self.mapper.map_coordinate(target)
            old_node = circuit.host_of(sid)
            if candidate_node == old_node:
                continue
            circuit.assign(sid, candidate_node)
            new_cost = self.evaluator.evaluate(circuit, load_weight=self.load_weight)
            required = current_cost.total * (1 - self.migration_threshold)
            if new_cost.total < required:
                report.migrations.append(
                    Migration(
                        service_id=sid,
                        from_node=old_node,
                        to_node=candidate_node,
                        cost_before=current_cost.total,
                        cost_after=new_cost.total,
                    )
                )
                current_cost = new_cost
            else:
                circuit.assign(sid, old_node)  # revert

        report.cost_after = current_cost
        return report

    def _local_target(self, circuit: Circuit, service_id: str) -> np.ndarray:
        """Rate-weighted centroid of a service's neighbors' current hosts.

        The single-service spring equilibrium: the local analogue of
        relaxation placement, computable by the hosting node alone.
        """
        vectors = self.cost_space.vector_matrix()
        neighbors = circuit.neighbors(service_id)
        if not neighbors:
            return vectors[circuit.host_of(service_id)].copy()
        hosts = [circuit.host_of(neighbor) for neighbor, _ in neighbors]
        points = vectors[hosts]
        weights_arr = np.fromiter(
            (rate for _, rate in neighbors), dtype=float, count=len(neighbors)
        )
        total = weights_arr.sum()
        if total <= 0:
            return points.mean(axis=0)
        return weights_arr @ points / total

    def run_until_stable(
        self, circuit: Circuit, max_passes: int = 20
    ) -> ReoptimizationReport:
        """Repeat local passes until no migration happens (or cap)."""
        combined = ReoptimizationReport()
        for _ in range(max_passes):
            report = self.local_step(circuit)
            if combined.cost_before is None:
                combined.cost_before = report.cost_before
            combined.cost_after = report.cost_after
            combined.migrations.extend(report.migrations)
            if not report.migrated:
                break
        return combined

    # -- local plan rewriting ------------------------------------------------

    def rewrite_step(
        self, circuit: Circuit, stats: Statistics
    ) -> tuple[Circuit, list[str]]:
        """Apply profitable local plan rewrites (§3.3).

        For every pair of adjacent joins colocated on one host (the only
        situation where a node may rewrite "as long as it is running all
        affected services"):

        1. try :func:`reorder_adjacent_joins` — keep it if the estimated
           circuit cost drops;
        2. try :func:`recompose_colocated_joins` — keep it if the cost
           does not increase (merging colocated joins removes a
           migration unit for free).

        Returns:
            (possibly rewritten circuit, descriptions of applied
            rewrites).  The input circuit is never mutated.
        """
        from repro.core.rewriting import (
            colocated_join_pairs,
            recompose_colocated_joins,
            reorder_adjacent_joins,
        )

        current = circuit.copy()
        applied: list[str] = []
        progress = True
        while progress:
            progress = False
            for upstream, downstream in colocated_join_pairs(current):
                cost_before = self.evaluator.evaluate(
                    current, load_weight=self.load_weight
                ).total
                reordered = reorder_adjacent_joins(
                    current, upstream, downstream, stats
                )
                if reordered.applied:
                    cost_after = self.evaluator.evaluate(
                        reordered.circuit, load_weight=self.load_weight
                    ).total
                    if cost_after < cost_before - 1e-12:
                        current = reordered.circuit
                        applied.append(reordered.description)
                        progress = True
                        break
                merged = recompose_colocated_joins(current, upstream, downstream)
                cost_after = self.evaluator.evaluate(
                    merged.circuit, load_weight=self.load_weight
                ).total
                if cost_after <= cost_before + 1e-12:
                    current = merged.circuit
                    applied.append(merged.description)
                    progress = True
                    break
        return current, applied

    # -- full re-optimization -------------------------------------------------

    def full_reoptimize(
        self,
        circuit: Circuit,
        query: QuerySpec,
        stats: Statistics,
        replace_threshold: float = 0.05,
    ) -> tuple[ReoptimizationReport, OptimizationResult | None]:
        """Re-run integrated optimization; replace the circuit if it pays.

        Models the paper's "stronger form of re-optimization": deploy a
        parallel circuit and cancel the original iff the new one is at
        least ``replace_threshold`` (relative) cheaper under *current*
        statistics and network state.

        Returns:
            (report, new_result) — ``new_result`` is None if the
            original circuit was kept.
        """
        if replace_threshold < 0:
            raise ValueError("replace_threshold must be non-negative")
        report = ReoptimizationReport(full_reoptimization=True)
        report.cost_before = self.evaluator.evaluate(
            circuit, load_weight=self.load_weight
        )
        optimizer = IntegratedOptimizer(
            self.cost_space,
            mapper=self.mapper,
            evaluator=self.evaluator,
            load_weight=self.load_weight,
        )
        fresh = optimizer.optimize(query, stats)
        required = report.cost_before.total * (1 - replace_threshold)
        if fresh.cost.total < required:
            report.replaced_plan = True
            report.cost_after = fresh.cost
            return report, fresh
        report.cost_after = report.cost_before
        return report, None

    # -- failure handling -------------------------------------------------

    def evacuate(self, circuit: Circuit, failed_node: int) -> list[Migration]:
        """Force services off a failed node, ignoring thresholds."""
        migrations: list[Migration] = []
        was_excluded = failed_node in self.mapper.excluded
        self.mapper.exclude(failed_node)
        try:
            scalar_dims = len(self.cost_space.spec.scalar_dimensions)
            for sid in circuit.unpinned_ids():
                if circuit.host_of(sid) != failed_node:
                    continue
                target_vector = self._local_target(circuit, sid)
                target = CostCoordinate.from_arrays(
                    target_vector, np.zeros(scalar_dims)
                )
                before = self.evaluator.evaluate(
                    circuit, load_weight=self.load_weight
                ).total
                new_node, _ = self.mapper.map_coordinate(target)
                circuit.assign(sid, new_node)
                after = self.evaluator.evaluate(
                    circuit, load_weight=self.load_weight
                ).total
                migrations.append(
                    Migration(sid, failed_node, new_node, before, after)
                )
        finally:
            if not was_excluded:
                self.mapper.include(failed_node)
        return migrations
