"""Dynamic re-optimization of running circuits (§3.3).

Long-running queries outlive the conditions they were optimized for.
The paper describes two recovery mechanisms, both implemented here:

* **Local re-optimization** — each node hosting part of a circuit can
  re-run virtual placement + physical mapping for the services it
  hosts, migrating a service to a better node.  This is cheap,
  decentralized, and runs continuously.  A *migration threshold*
  (relative cost improvement required) prevents oscillation, since
  migrations are not free in a real system.
* **Full re-optimization** — when drift is stronger (e.g. selectivity
  estimates changed as the circuit matured), a node triggers a complete
  integrated optimization while the original circuit still runs; if the
  new candidate is sufficiently cheaper, a "parallel circuit" replaces
  the original.

Performance architecture (struct-of-arrays)
-------------------------------------------

Each circuit compiles once into a :class:`_CircuitKernel` — a CSR-style
(service, neighbor, rate) incidence index plus flat link-endpoint
arrays, mirroring the virtual-placement ``_CircuitArrays`` discipline.
A local pass then:

1. computes the spring targets of *all* unpinned services in one
   segment-sum over the current host positions (Jacobi snapshot: all
   targets and candidate nodes are derived from the placement at the
   start of the pass, like the simultaneous placement sweeps of PR 1 —
   a deliberate semantic change from the earlier in-place recomputation
   after each accepted migration; repeated passes converge to the same
   stable placements, and the scalar references below implement the
   *same* snapshot semantics so equivalence is testable);
2. maps all targets in one batched ``map_coordinates`` call (a single
   chunked cost-space pass, shared across *all* circuits in
   :meth:`Reoptimizer.step_all`);
3. prices each candidate migration with vectorized link reductions
   (``evaluator.latency_array`` / ``penalty_array``) while keeping the
   accept/revert decisions sequential, so the hysteresis threshold
   always compares against the up-to-date total.

The pre-vectorization per-candidate ``evaluator.evaluate`` loops are
retained as ``local_step_scalar`` / ``evacuate_scalar`` references and
pinned to the production kernels at 1e-9 by
``tests/property/test_vectorized_equivalence.py``.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field

import numpy as np

from repro.core.circuit import Circuit
from repro.core.coordinates import CostCoordinate
from repro.core.costs import CircuitCost, CostEvaluator, CostSpaceEvaluator
from repro.core.cost_space import CostSpace
from repro.core.optimizer import (
    IntegratedOptimizer,
    OptimizationResult,
    pinned_vector_positions,
)
from repro.core.physical_mapping import CatalogMapper, ExhaustiveMapper
from repro.core.virtual_placement import relaxation_placement
from repro.query.model import QuerySpec
from repro.query.selectivity import Statistics

__all__ = [
    "Migration",
    "ReoptimizationReport",
    "Reoptimizer",
    "refresh_kernel_rates",
]


@dataclass(frozen=True)
class Migration:
    """One service movement decided by local re-optimization."""

    service_id: str
    from_node: int
    to_node: int
    cost_before: float
    cost_after: float

    @property
    def improvement(self) -> float:
        return self.cost_before - self.cost_after


@dataclass
class ReoptimizationReport:
    """What one re-optimization pass did to a circuit."""

    migrations: list[Migration] = field(default_factory=list)
    cost_before: CircuitCost | None = None
    cost_after: CircuitCost | None = None
    full_reoptimization: bool = False
    replaced_plan: bool = False

    @property
    def migrated(self) -> bool:
        return bool(self.migrations)

    @property
    def improvement(self) -> float:
        if self.cost_before is None or self.cost_after is None:
            return 0.0
        return self.cost_before.total - self.cost_after.total


class _CircuitKernel:
    """Flat link/incidence arrays of one circuit (structure only).

    Placement-independent: compiled once per circuit structure and
    reused across passes/ticks; the per-pass state is a ``hosts`` int
    array indexed by service row.

    Attributes:
        sids: all service ids, row order.
        unpinned_sids / unpinned_rows: the migratable services.
        link_src / link_dst / link_rates: flat link-endpoint rows.
        inc_seg / inc_nbr / inc_rates: CSR-style (unpinned service,
            neighbor row, link rate) incidence entries, grouped by
            service in circuit-link order — exactly the enumeration
            ``circuit.neighbors`` produces.
    """

    def __init__(self, circuit: Circuit):
        self.sids = list(circuit.services)
        self.row_of = {sid: i for i, sid in enumerate(self.sids)}
        self.unpinned_sids = circuit.unpinned_ids()
        unpinned_pos = {sid: k for k, sid in enumerate(self.unpinned_sids)}
        self.unpinned_rows = np.array(
            [self.row_of[sid] for sid in self.unpinned_sids], dtype=int
        )
        src, dst, rates = [], [], []
        seg, nbr, inc_link = [], [], []
        for li, link in enumerate(circuit.links):
            s_row = self.row_of[link.source]
            t_row = self.row_of[link.target]
            src.append(s_row)
            dst.append(t_row)
            rates.append(link.rate)
            if link.source in unpinned_pos:
                seg.append(unpinned_pos[link.source])
                nbr.append(t_row)
                inc_link.append(li)
            if link.target in unpinned_pos:
                seg.append(unpinned_pos[link.target])
                nbr.append(s_row)
                inc_link.append(li)
        self.link_src = np.asarray(src, dtype=int)
        self.link_dst = np.asarray(dst, dtype=int)
        order = np.argsort(np.asarray(seg, dtype=int), kind="stable")
        self.inc_seg = np.asarray(seg, dtype=int)[order]
        self.inc_nbr = np.asarray(nbr, dtype=int)[order]
        self.inc_link = np.asarray(inc_link, dtype=int)[order]
        # CSR bounds of each unpinned service's incidence slice (inc_seg
        # is sorted): entries of service k live in [inc_lo[k], inc_hi[k]).
        m = len(self.unpinned_sids)
        self.inc_lo = np.searchsorted(self.inc_seg, np.arange(m), side="left")
        self.inc_hi = np.searchsorted(self.inc_seg, np.arange(m), side="right")
        self.seg_count = np.bincount(self.inc_seg, minlength=m)
        self.set_rates(np.asarray(rates, dtype=float))

    def set_rates(self, rates: np.ndarray) -> None:
        """Re-price the kernel's links in place (calibrated rates).

        Structure (incidence, CSR bounds) is placement- and
        rate-independent, so the control plane can push measured rates
        into a cached kernel without recompiling: one gather refreshes
        the incidence weights and one segment-sum the spring weights.
        """
        rates = np.asarray(rates, dtype=float)
        if rates.shape != self.link_src.shape:
            raise ValueError("rates must align with the circuit's links")
        self.link_rates = rates.copy()
        self.inc_rates = self.link_rates[self.inc_link]
        m = len(self.unpinned_sids)
        self.seg_weight = np.zeros(m)
        np.add.at(self.seg_weight, self.inc_seg, self.inc_rates)
        # Monotone re-pricing counter: the fused reopt arena caches
        # copies of the rate columns and uses this to notice staleness.
        self.rates_version = getattr(self, "rates_version", 0) + 1

    def hosts(self, circuit: Circuit) -> np.ndarray:
        """Current placement as a row-indexed node array."""
        placement = circuit.placement
        return np.fromiter(
            (placement[sid] for sid in self.sids), dtype=int, count=len(self.sids)
        )

    def targets(self, hosts: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        """Spring target of every unpinned service, one segment-sum pass.

        Matches ``Reoptimizer._local_target``: rate-weighted centroid
        of the neighbors' host vectors; unweighted mean when all rates
        are zero; the service's own host vector when isolated.
        """
        m = len(self.unpinned_sids)
        dims = vectors.shape[1]
        points = vectors[hosts[self.inc_nbr]]
        weighted = np.zeros((m, dims))
        np.add.at(weighted, self.inc_seg, self.inc_rates[:, None] * points)
        out = np.empty((m, dims))
        has_weight = self.seg_weight > 0
        out[has_weight] = (
            weighted[has_weight] / self.seg_weight[has_weight, None]
        )
        zero_weight = ~has_weight & (self.seg_count > 0)
        if np.any(zero_weight):
            sums = np.zeros((m, dims))
            np.add.at(sums, self.inc_seg, points)
            out[zero_weight] = (
                sums[zero_weight] / self.seg_count[zero_weight, None]
            )
        isolated = self.seg_count == 0
        if np.any(isolated):
            out[isolated] = vectors[hosts[self.unpinned_rows[isolated]]]
        return out

    def total(
        self, hosts: np.ndarray, evaluator: CostEvaluator, load_weight: float
    ) -> float:
        """Scalarized circuit total (usage + weighted load penalty).

        Colocated links contribute zero latency in both evaluators, so
        no explicit ``u != v`` mask is needed.
        """
        usage = float(
            np.dot(
                self.link_rates,
                evaluator.latency_array(
                    hosts[self.link_src], hosts[self.link_dst]
                ),
            )
        )
        distinct = list({int(h) for h in hosts[self.unpinned_rows]})
        penalty = float(evaluator.penalty_array(np.asarray(distinct)).sum())
        return usage + load_weight * penalty


#: Reserved kernel-cache key the fused reopt arena is cached under
#: (never a circuit name: circuit names come from query specs).
_ARENA_KEY = "__arena__"


class _ReoptArena:
    """Fused concatenation of many circuit kernels (PR 7).

    One global CSR incidence/link table spanning every active kernel,
    with per-kernel row/segment/link offsets, so a whole-tick local
    pass runs **one** segment-sum for all spring targets, **one**
    batched ``map_coordinates``, and **one** ``latency_array`` sweep
    each for current link usage and speculative candidate pricing —
    instead of per-circuit Python dispatch of the same kernels.

    All fused reductions visit each circuit's entries contiguously in
    the same order as the per-circuit kernels (``np.add.at`` is
    unbuffered and the evaluators are elementwise), so results are
    bit-identical to :meth:`Reoptimizer.step_all_percircuit` — pinned
    by the arena property tests.

    The arena holds *copies* of each kernel's rate columns; it notices
    in-place re-pricing (``_CircuitKernel.set_rates``, driven by the
    control plane through :func:`refresh_kernel_rates`) via the
    kernels' ``rates_version`` counters and refreshes lazily.
    """

    def __init__(self, kernels: list["_CircuitKernel"]):
        self.kernels = list(kernels)
        row_counts = [len(k.sids) for k in self.kernels]
        seg_counts = [len(k.unpinned_sids) for k in self.kernels]
        link_counts = [k.link_src.size for k in self.kernels]
        self.row_offsets = np.concatenate(([0], np.cumsum(row_counts)))
        self.seg_offsets = np.concatenate(([0], np.cumsum(seg_counts)))
        self.link_offsets = np.concatenate(([0], np.cumsum(link_counts)))
        self.num_rows = int(self.row_offsets[-1])
        self.num_segments = int(self.seg_offsets[-1])

        def cat(parts, dtype):
            if not parts:
                return np.zeros(0, dtype=dtype)
            return np.concatenate(parts).astype(dtype, copy=False)

        self.inc_seg = cat(
            [k.inc_seg + s for k, s in zip(self.kernels, self.seg_offsets)], int
        )
        self.inc_nbr = cat(
            [k.inc_nbr + r for k, r in zip(self.kernels, self.row_offsets)], int
        )
        self.unpinned_rows = cat(
            [k.unpinned_rows + r for k, r in zip(self.kernels, self.row_offsets)],
            int,
        )
        self.link_src = cat(
            [k.link_src + r for k, r in zip(self.kernels, self.row_offsets)], int
        )
        self.link_dst = cat(
            [k.link_dst + r for k, r in zip(self.kernels, self.row_offsets)], int
        )
        self.seg_count = cat([k.seg_count for k in self.kernels], int)
        self.refresh_rates()

    def refresh_rates(self) -> None:
        """Re-copy every kernel's rate columns (after re-pricing)."""
        parts_inc = [k.inc_rates for k in self.kernels]
        parts_seg = [k.seg_weight for k in self.kernels]
        self.inc_rates = (
            np.concatenate(parts_inc) if parts_inc else np.zeros(0)
        )
        self.seg_weight = (
            np.concatenate(parts_seg) if parts_seg else np.zeros(0)
        )
        self._versions = [k.rates_version for k in self.kernels]

    def matches(self, kernels: list["_CircuitKernel"]) -> bool:
        """True when built from exactly these kernel objects, in order."""
        return len(kernels) == len(self.kernels) and all(
            a is b for a, b in zip(kernels, self.kernels)
        )

    def rates_stale(self) -> bool:
        return any(
            k.rates_version != v for k, v in zip(self.kernels, self._versions)
        )

    def targets(self, hosts: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        """Spring targets of every unpinned service of every circuit.

        One global segment-sum; the per-segment math (rate-weighted
        centroid / unweighted mean / own host when isolated) matches
        ``_CircuitKernel.targets`` entry for entry.
        """
        m = self.num_segments
        dims = vectors.shape[1]
        points = vectors[hosts[self.inc_nbr]]
        weighted = np.zeros((m, dims))
        np.add.at(weighted, self.inc_seg, self.inc_rates[:, None] * points)
        out = np.empty((m, dims))
        has_weight = self.seg_weight > 0
        out[has_weight] = (
            weighted[has_weight] / self.seg_weight[has_weight, None]
        )
        zero_weight = ~has_weight & (self.seg_count > 0)
        if np.any(zero_weight):
            sums = np.zeros((m, dims))
            np.add.at(sums, self.inc_seg, points)
            out[zero_weight] = (
                sums[zero_weight] / self.seg_count[zero_weight, None]
            )
        isolated = self.seg_count == 0
        if np.any(isolated):
            out[isolated] = vectors[hosts[self.unpinned_rows[isolated]]]
        return out

    def speculative_usage(
        self,
        hosts: np.ndarray,
        candidates: np.ndarray,
        evaluator: CostEvaluator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-service incident usage, old vs candidate, fused.

        Two global ``latency_array`` sweeps over the whole incidence
        table replace two per circuit; segment sums accumulate in the
        same entry order as the per-circuit twin in ``_accept_pass``.
        """
        inc_nbr_hosts = hosts[self.inc_nbr]
        inc_old = self.inc_rates * evaluator.latency_array(
            hosts[self.unpinned_rows[self.inc_seg]], inc_nbr_hosts
        )
        inc_new = self.inc_rates * evaluator.latency_array(
            candidates[self.inc_seg], inc_nbr_hosts
        )
        old_usage = np.zeros(self.num_segments)
        new_usage = np.zeros(self.num_segments)
        np.add.at(old_usage, self.inc_seg, inc_old)
        np.add.at(new_usage, self.inc_seg, inc_new)
        return old_usage, new_usage


def refresh_kernel_rates(
    kernel_cache: dict | None, circuit: Circuit, rates: np.ndarray
) -> bool:
    """Push calibrated link rates into a cached circuit kernel, if any.

    The calibrated-rate pricing hook the control plane uses: the
    simulator's kernel cache maps circuit name to ``(weakref, kernel)``;
    when the cached kernel still belongs to this circuit object its
    prices are refreshed in place (``_CircuitKernel.set_rates``), so
    the next re-optimization pass — batched or not — prices the
    *measured* objective without recompiling structure.  Returns True
    when a kernel was refreshed.

    The fused reopt arena (cached under ``"__arena__"`` in the same
    cache) holds copies of the kernels' rate columns; ``set_rates``
    bumps the kernel's ``rates_version``, which the arena checks each
    pass, so a refresh here reaches the fused path lazily with no
    explicit invalidation.
    """
    if not kernel_cache:
        return False
    cached = kernel_cache.get(circuit.name)
    if cached is None:
        return False
    ref, kernel = cached
    if ref() is not circuit:
        return False
    kernel.set_rates(rates)
    return True


class Reoptimizer:
    """Re-optimizes running circuits against a *current* cost space.

    The cost space passed in is expected to be refreshed externally
    (``CostSpace.update_metrics`` / ``update_vector``) as the network
    drifts; the re-optimizer only reads it.

    Args:
        cost_space: current cost-space snapshot.
        mapper: physical-mapping backend for migrations.
        evaluator: circuit pricing (cost-space estimates by default).
        migration_threshold: minimum *relative* total-cost improvement
            required to perform a migration (hysteresis).
        load_weight: load-penalty weight, as in the optimizers.
        kernel_cache: optional dict that persists compiled circuit
            kernels across Reoptimizer instances (the simulator passes
            one so structure is compiled once per circuit, not per
            tick).
    """

    def __init__(
        self,
        cost_space: CostSpace,
        mapper: ExhaustiveMapper | CatalogMapper | None = None,
        evaluator: CostEvaluator | None = None,
        migration_threshold: float = 0.02,
        load_weight: float = 1.0,
        kernel_cache: dict | None = None,
    ):
        if migration_threshold < 0:
            raise ValueError("migration_threshold must be non-negative")
        self.cost_space = cost_space
        self.mapper = mapper or ExhaustiveMapper(cost_space)
        self.evaluator = evaluator or CostSpaceEvaluator(cost_space)
        self.migration_threshold = migration_threshold
        self.load_weight = load_weight
        self._kernels = kernel_cache if kernel_cache is not None else {}
        # Decision counters (observability): accepted vs hysteresis-
        # rejected candidate moves, and fused-arena rebuilds.  Pure
        # increments — they never influence a decision.
        self.accepts = 0
        self.rejects = 0
        self.arena_builds = 0
        # (circuit name, service id) pairs excluded from this pass's
        # accept sweeps — the simulator populates it with the
        # autoscaler's cooldown families so placement doesn't migrate
        # operators whose replicas were just re-split (their state and
        # in-flight tuples are still settling).  Frozen services are
        # skipped before pricing, not priced-and-rejected, so the
        # accept/reject counters and the running total stay unbiased.
        self.frozen: set[tuple[str, str]] = set()

    def _kernel(self, circuit: Circuit) -> _CircuitKernel:
        # Keyed by name, validated by object identity via weakref: a
        # replaced (or GC'd-and-reallocated) circuit can never be
        # served a stale kernel, and dead entries are overwritten.
        cached = self._kernels.get(circuit.name)
        if cached is not None:
            ref, kernel = cached
            if ref() is circuit:
                return kernel
        kernel = _CircuitKernel(circuit)
        self._kernels[circuit.name] = (weakref.ref(circuit), kernel)
        return kernel

    # -- local re-optimization ----------------------------------------------

    def _full_targets(
        self, kernel: _CircuitKernel, hosts: np.ndarray
    ) -> np.ndarray:
        """(m, dims) target coordinates with ideal (zero) scalar parts."""
        vectors = self.cost_space.vector_matrix()
        targets = np.zeros((len(kernel.unpinned_sids), self.cost_space.spec.dims))
        targets[:, : self.cost_space.spec.vector_dims] = kernel.targets(
            hosts, vectors
        )
        return targets

    def _accept_pass(
        self,
        circuit: Circuit,
        kernel: _CircuitKernel,
        hosts: np.ndarray,
        candidates: np.ndarray,
        precomputed: tuple[np.ndarray, np.ndarray, float] | None = None,
    ) -> tuple[list[Migration], float]:
        """Sequential accept/revert sweep over pre-mapped candidates.

        All candidates are priced *speculatively* in one batch first:
        moving service ``k`` from its snapshot host to ``candidates[k]``
        only re-prices the links incident to ``k``, so one vectorized
        pass over the kernel's incidence entries yields every
        candidate's usage delta at once.  The accept decisions then
        resolve conflicts sequentially against the running total
        (Gauss–Seidel over Jacobi targets, exactly the prior
        semantics): a service whose neighbor already moved re-prices
        its few incident links against the live hosts, everyone else
        uses the speculative delta; the load-penalty delta is tracked
        through a running multiset of occupied hosts.

        ``precomputed`` is ``(old_usage, new_usage, current_total)``
        from the fused cross-circuit pass (:meth:`step_all`): the same
        quantities this method would derive itself, already computed in
        one global sweep, so the per-circuit batch is skipped.

        Returns:
            (migrations, final total).
        """
        if precomputed is None:
            current_total = kernel.total(hosts, self.evaluator, self.load_weight)
            # Speculative batch: per-candidate incident usage, old vs
            # new, from the snapshot hosts (one latency_array pass each).
            inc_nbr_hosts = hosts[kernel.inc_nbr]
            inc_old = kernel.inc_rates * self.evaluator.latency_array(
                hosts[kernel.unpinned_rows[kernel.inc_seg]], inc_nbr_hosts
            )
            inc_new = kernel.inc_rates * self.evaluator.latency_array(
                candidates[kernel.inc_seg], inc_nbr_hosts
            )
            m = len(kernel.unpinned_sids)
            old_usage = np.zeros(m)
            new_usage = np.zeros(m)
            np.add.at(old_usage, kernel.inc_seg, inc_old)
            np.add.at(new_usage, kernel.inc_seg, inc_new)
        else:
            old_usage, new_usage, current_total = precomputed
        migrations: list[Migration] = []
        moved = np.zeros(len(hosts), dtype=bool)

        # Penalty bookkeeping: multiset of hosts over unpinned services
        # plus a penalty lookup for every node that can appear.
        occupancy: dict[int, int] = {}
        for node in hosts[kernel.unpinned_rows]:
            occupancy[int(node)] = occupancy.get(int(node), 0) + 1
        involved = np.unique(
            np.concatenate((hosts[kernel.unpinned_rows], candidates))
        )
        penalty_of = dict(
            zip(
                (int(n) for n in involved),
                self.evaluator.penalty_array(involved),
            )
        )

        frozen = self.frozen
        for k, sid in enumerate(kernel.unpinned_sids):
            row = kernel.unpinned_rows[k]
            old_node = int(hosts[row])
            candidate = int(candidates[k])
            if candidate == old_node:
                continue
            if frozen and (circuit.name, sid) in frozen:
                continue
            lo, hi = kernel.inc_lo[k], kernel.inc_hi[k]
            if moved[kernel.inc_nbr[lo:hi]].any():
                # A neighbor migrated earlier in this sweep: re-price
                # this service's incident slice against the live hosts.
                nbr_hosts = hosts[kernel.inc_nbr[lo:hi]]
                rates = kernel.inc_rates[lo:hi]
                delta_usage = float(
                    np.dot(
                        rates,
                        self.evaluator.latency_array(
                            np.full(hi - lo, candidate), nbr_hosts
                        ),
                    )
                    - np.dot(
                        rates,
                        self.evaluator.latency_array(
                            np.full(hi - lo, old_node), nbr_hosts
                        ),
                    )
                )
            else:
                delta_usage = float(new_usage[k] - old_usage[k])
            delta_penalty = 0.0
            if occupancy.get(candidate, 0) == 0:
                delta_penalty += penalty_of[candidate]
            if occupancy[old_node] == 1:
                delta_penalty -= penalty_of[old_node]
            new_total = current_total + delta_usage + self.load_weight * delta_penalty
            if new_total < current_total * (1 - self.migration_threshold):
                hosts[row] = candidate
                moved[row] = True
                occupancy[old_node] -= 1
                occupancy[candidate] = occupancy.get(candidate, 0) + 1
                circuit.assign(sid, candidate)
                migrations.append(
                    Migration(
                        service_id=sid,
                        from_node=old_node,
                        to_node=candidate,
                        cost_before=current_total,
                        cost_after=new_total,
                    )
                )
                current_total = new_total
                self.accepts += 1
            else:
                self.rejects += 1
        return migrations, current_total

    def local_step(self, circuit: Circuit) -> ReoptimizationReport:
        """One decentralized pass: re-place and maybe migrate each service.

        Targets and candidate nodes for every unpinned service are
        computed from the placement at the start of the pass (one
        segment-sum + one batched mapping); accept decisions are
        sequential against the up-to-date circuit total, migrating only
        when the total improves by more than the threshold.
        """
        if not circuit.is_fully_placed():
            raise ValueError("circuit must be placed before re-optimization")
        report = ReoptimizationReport()
        report.cost_before = self.evaluator.evaluate(
            circuit, load_weight=self.load_weight
        )
        kernel = self._kernel(circuit)
        if not kernel.unpinned_sids:
            report.cost_after = report.cost_before
            return report
        hosts = kernel.hosts(circuit)
        candidates, _ = self.mapper.map_coordinates(
            self._full_targets(kernel, hosts)
        )
        report.migrations, _ = self._accept_pass(circuit, kernel, hosts, candidates)
        report.cost_after = (
            self.evaluator.evaluate(circuit, load_weight=self.load_weight)
            if report.migrations
            else report.cost_before
        )
        return report

    def local_step_scalar(self, circuit: Circuit) -> ReoptimizationReport:
        """Per-candidate ``evaluator.evaluate`` loop (retained reference).

        Same Jacobi-snapshot semantics as :meth:`local_step`, priced
        with the pre-vectorization full-circuit evaluation per
        candidate.
        """
        if not circuit.is_fully_placed():
            raise ValueError("circuit must be placed before re-optimization")
        report = ReoptimizationReport()
        report.cost_before = self.evaluator.evaluate(
            circuit, load_weight=self.load_weight
        )
        current_cost = report.cost_before
        scalar_dims = len(self.cost_space.spec.scalar_dimensions)
        targets = {
            sid: self._local_target(circuit, sid) for sid in circuit.unpinned_ids()
        }

        for sid in circuit.unpinned_ids():
            if self.frozen and (circuit.name, sid) in self.frozen:
                continue
            target = CostCoordinate.from_arrays(
                targets[sid], np.zeros(scalar_dims)
            )
            candidate_node, _ = self.mapper.map_coordinate(target)
            old_node = circuit.host_of(sid)
            if candidate_node == old_node:
                continue
            circuit.assign(sid, candidate_node)
            new_cost = self.evaluator.evaluate(circuit, load_weight=self.load_weight)
            required = current_cost.total * (1 - self.migration_threshold)
            if new_cost.total < required:
                report.migrations.append(
                    Migration(
                        service_id=sid,
                        from_node=old_node,
                        to_node=candidate_node,
                        cost_before=current_cost.total,
                        cost_after=new_cost.total,
                    )
                )
                current_cost = new_cost
                self.accepts += 1
            else:
                circuit.assign(sid, old_node)  # revert
                self.rejects += 1

        report.cost_after = current_cost
        return report

    def _collect_active(self, circuits: list[Circuit]):
        """Kernels + host snapshots of the circuits with unpinned work."""
        kernels: list[_CircuitKernel] = []
        hosts_list: list[np.ndarray] = []
        active: list[int] = []
        for i, circuit in enumerate(circuits):
            if not circuit.is_fully_placed():
                raise ValueError("circuit must be placed before re-optimization")
            kernel = self._kernel(circuit)
            if not kernel.unpinned_sids:
                continue
            kernels.append(kernel)
            hosts_list.append(kernel.hosts(circuit))
            active.append(i)
        return kernels, hosts_list, active

    def _arena(self, kernels: list[_CircuitKernel]) -> _ReoptArena:
        """The fused arena for these kernels, cached and lazily refreshed."""
        arena = self._kernels.get(_ARENA_KEY)
        if not isinstance(arena, _ReoptArena) or not arena.matches(kernels):
            arena = _ReoptArena(kernels)
            self._kernels[_ARENA_KEY] = arena
            self.arena_builds += 1
        elif arena.rates_stale():
            arena.refresh_rates()
        return arena

    def step_all(self, circuits: list[Circuit]) -> list[ReoptimizationReport]:
        """One fused local pass over many circuits (the arena path).

        The active kernels are concatenated into one global incidence
        table (:class:`_ReoptArena`, cached across passes), so the
        whole tick costs **one** spring-target segment-sum, **one**
        batched ``map_coordinates``, **one** link-usage sweep, and
        **one** speculative candidate-pricing sweep — no per-circuit
        kernel dispatch.  Only the accept/revert decisions stay
        sequential per circuit (they must: the hysteresis threshold
        compares against the live running total).  Bit-identical to
        :meth:`step_all_percircuit`; reports carry migrations only, as
        there.
        """
        reports = [ReoptimizationReport() for _ in circuits]
        kernels, hosts_list, active = self._collect_active(circuits)
        if not active:
            return reports
        arena = self._arena(kernels)
        ghosts = np.concatenate(hosts_list)
        vdims = self.cost_space.spec.vector_dims
        targets = np.zeros((arena.num_segments, self.cost_space.spec.dims))
        targets[:, :vdims] = arena.targets(
            ghosts, self.cost_space.vector_matrix()
        )
        candidates, _ = self.mapper.map_coordinates(targets)
        old_usage, new_usage = arena.speculative_usage(
            ghosts, candidates, self.evaluator
        )
        # One global latency sweep prices every circuit's current links;
        # the per-circuit total then reduces slices exactly the way
        # ``_CircuitKernel.total`` does (same dot, same distinct-host
        # penalty), so accept thresholds match the per-circuit path.
        link_lat = self.evaluator.latency_array(
            ghosts[arena.link_src], ghosts[arena.link_dst]
        )
        for idx, (kernel, hosts, i) in enumerate(zip(kernels, hosts_list, active)):
            l0, l1 = arena.link_offsets[idx], arena.link_offsets[idx + 1]
            usage = float(np.dot(kernel.link_rates, link_lat[l0:l1]))
            distinct = list({int(h) for h in hosts[kernel.unpinned_rows]})
            penalty = float(
                self.evaluator.penalty_array(np.asarray(distinct)).sum()
            )
            s0, s1 = arena.seg_offsets[idx], arena.seg_offsets[idx + 1]
            reports[i].migrations, _ = self._accept_pass(
                circuits[i],
                kernel,
                hosts,
                candidates[s0:s1],
                precomputed=(
                    old_usage[s0:s1],
                    new_usage[s0:s1],
                    usage + self.load_weight * penalty,
                ),
            )
        return reports

    def step_all_percircuit(
        self, circuits: list[Circuit]
    ) -> list[ReoptimizationReport]:
        """Per-circuit kernel dispatch, mapped in a single batch.

        The pre-arena bulk path, retained as the fused :meth:`step_all`'s
        reference twin: each circuit's spring targets and speculative
        prices come from its own kernel; only ``map_coordinates`` is
        shared.  Reports carry migrations only — the full
        :class:`CircuitCost` breakdowns (which need the consumer-latency
        DP) are skipped in this bulk path.
        """
        reports = [ReoptimizationReport() for _ in circuits]
        kernels, hosts_list, active = self._collect_active(circuits)
        if not active:
            return reports
        chunks = [
            self._full_targets(kernel, hosts)
            for kernel, hosts in zip(kernels, hosts_list)
        ]
        candidates, _ = self.mapper.map_coordinates(np.vstack(chunks))
        offset = 0
        for kernel, hosts, i in zip(kernels, hosts_list, active):
            m = len(kernel.unpinned_sids)
            reports[i].migrations, _ = self._accept_pass(
                circuits[i], kernel, hosts, candidates[offset : offset + m]
            )
            offset += m
        return reports

    def step_all_scalar(self, circuits: list[Circuit]) -> list[ReoptimizationReport]:
        """Per-circuit scalar passes (retained reference for step_all)."""
        return [self.local_step_scalar(circuit) for circuit in circuits]

    def _local_target(self, circuit: Circuit, service_id: str) -> np.ndarray:
        """Rate-weighted centroid of a service's neighbors' current hosts.

        The single-service spring equilibrium: the local analogue of
        relaxation placement, computable by the hosting node alone.
        """
        vectors = self.cost_space.vector_matrix()
        neighbors = circuit.neighbors(service_id)
        if not neighbors:
            return vectors[circuit.host_of(service_id)].copy()
        hosts = [circuit.host_of(neighbor) for neighbor, _ in neighbors]
        points = vectors[hosts]
        weights_arr = np.fromiter(
            (rate for _, rate in neighbors), dtype=float, count=len(neighbors)
        )
        total = weights_arr.sum()
        if total <= 0:
            return points.mean(axis=0)
        return weights_arr @ points / total

    def run_until_stable(
        self, circuit: Circuit, max_passes: int = 20
    ) -> ReoptimizationReport:
        """Repeat local passes until no migration happens (or cap)."""
        combined = ReoptimizationReport()
        for _ in range(max_passes):
            report = self.local_step(circuit)
            if combined.cost_before is None:
                combined.cost_before = report.cost_before
            combined.cost_after = report.cost_after
            combined.migrations.extend(report.migrations)
            if not report.migrated:
                break
        return combined

    # -- local plan rewriting ------------------------------------------------

    def rewrite_step(
        self, circuit: Circuit, stats: Statistics
    ) -> tuple[Circuit, list[str]]:
        """Apply profitable local plan rewrites (§3.3).

        For every pair of adjacent joins colocated on one host (the only
        situation where a node may rewrite "as long as it is running all
        affected services"):

        1. try :func:`reorder_adjacent_joins` — keep it if the estimated
           circuit cost drops;
        2. try :func:`recompose_colocated_joins` — keep it if the cost
           does not increase (merging colocated joins removes a
           migration unit for free).

        Returns:
            (possibly rewritten circuit, descriptions of applied
            rewrites).  The input circuit is never mutated.
        """
        from repro.core.rewriting import (
            colocated_join_pairs,
            recompose_colocated_joins,
            reorder_adjacent_joins,
        )

        current = circuit.copy()
        applied: list[str] = []
        progress = True
        while progress:
            progress = False
            for upstream, downstream in colocated_join_pairs(current):
                cost_before = self.evaluator.evaluate(
                    current, load_weight=self.load_weight
                ).total
                reordered = reorder_adjacent_joins(
                    current, upstream, downstream, stats
                )
                if reordered.applied:
                    cost_after = self.evaluator.evaluate(
                        reordered.circuit, load_weight=self.load_weight
                    ).total
                    if cost_after < cost_before - 1e-12:
                        current = reordered.circuit
                        applied.append(reordered.description)
                        progress = True
                        break
                merged = recompose_colocated_joins(current, upstream, downstream)
                cost_after = self.evaluator.evaluate(
                    merged.circuit, load_weight=self.load_weight
                ).total
                if cost_after <= cost_before + 1e-12:
                    current = merged.circuit
                    applied.append(merged.description)
                    progress = True
                    break
        return current, applied

    # -- full re-optimization -------------------------------------------------

    def full_reoptimize(
        self,
        circuit: Circuit,
        query: QuerySpec,
        stats: Statistics,
        replace_threshold: float = 0.05,
    ) -> tuple[ReoptimizationReport, OptimizationResult | None]:
        """Re-run integrated optimization; replace the circuit if it pays.

        Models the paper's "stronger form of re-optimization": deploy a
        parallel circuit and cancel the original iff the new one is at
        least ``replace_threshold`` (relative) cheaper under *current*
        statistics and network state.

        Returns:
            (report, new_result) — ``new_result`` is None if the
            original circuit was kept.
        """
        if replace_threshold < 0:
            raise ValueError("replace_threshold must be non-negative")
        report = ReoptimizationReport(full_reoptimization=True)
        report.cost_before = self.evaluator.evaluate(
            circuit, load_weight=self.load_weight
        )
        optimizer = IntegratedOptimizer(
            self.cost_space,
            mapper=self.mapper,
            evaluator=self.evaluator,
            load_weight=self.load_weight,
        )
        fresh = optimizer.optimize(query, stats)
        required = report.cost_before.total * (1 - replace_threshold)
        if fresh.cost.total < required:
            report.replaced_plan = True
            report.cost_after = fresh.cost
            return report, fresh
        report.cost_after = report.cost_before
        return report, None

    # -- failure handling -------------------------------------------------

    def evacuate(self, circuit: Circuit, failed_node: int) -> list[Migration]:
        """Force services off a failed node, ignoring thresholds.

        Targets are snapshot at entry; per-service before/after totals
        come from the vectorized kernel.
        """
        migrations: list[Migration] = []
        was_excluded = failed_node in self.mapper.excluded
        self.mapper.exclude(failed_node)
        try:
            kernel = self._kernel(circuit)
            hosts = kernel.hosts(circuit)
            affected = [
                k
                for k, row in enumerate(kernel.unpinned_rows)
                if hosts[row] == failed_node
            ]
            if not affected:
                return migrations
            targets = self._full_targets(kernel, hosts)[affected]
            candidates, _ = self.mapper.map_coordinates(targets)
            for k, candidate in zip(affected, candidates):
                sid = kernel.unpinned_sids[k]
                row = kernel.unpinned_rows[k]
                before = kernel.total(hosts, self.evaluator, self.load_weight)
                hosts[row] = int(candidate)
                circuit.assign(sid, int(candidate))
                after = kernel.total(hosts, self.evaluator, self.load_weight)
                migrations.append(
                    Migration(sid, failed_node, int(candidate), before, after)
                )
        finally:
            if not was_excluded:
                self.mapper.include(failed_node)
        return migrations

    def evacuate_scalar(self, circuit: Circuit, failed_node: int) -> list[Migration]:
        """Per-candidate evaluate loop (retained reference for evacuate)."""
        migrations: list[Migration] = []
        was_excluded = failed_node in self.mapper.excluded
        self.mapper.exclude(failed_node)
        try:
            scalar_dims = len(self.cost_space.spec.scalar_dimensions)
            affected = [
                sid
                for sid in circuit.unpinned_ids()
                if circuit.host_of(sid) == failed_node
            ]
            targets = {sid: self._local_target(circuit, sid) for sid in affected}
            for sid in affected:
                target = CostCoordinate.from_arrays(
                    targets[sid], np.zeros(scalar_dims)
                )
                before = self.evaluator.evaluate(
                    circuit, load_weight=self.load_weight
                ).total
                new_node, _ = self.mapper.map_coordinate(target)
                circuit.assign(sid, new_node)
                after = self.evaluator.evaluate(
                    circuit, load_weight=self.load_weight
                ).total
                migrations.append(
                    Migration(sid, failed_node, new_node, before, after)
                )
        finally:
            if not was_excluded:
                self.mapper.include(failed_node)
        return migrations
