"""Weighting functions for scalar cost-space dimensions.

A node computes its scalar coordinate components by applying a
deployer-supplied *weighting function* to a raw local metric (CPU load,
memory pressure, ...).  The paper requires the function to be
non-negative with zero representing the ideal value, and uses the
*squared* function for CPU load in Figure 2 so that overloaded nodes
appear far away from everything in the cost space.

All functions here map a raw metric in ``[0, 1]`` (fraction of
capacity) to a non-negative coordinate in cost-space units; the
``scale`` parameter expresses how many latency-milliseconds of penalty
a fully-loaded node is worth, making scalar and vector dimensions
commensurable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "WeightingFunction",
    "squared",
    "linear",
    "exponential",
    "threshold",
    "zero",
]


@dataclass(frozen=True)
class WeightingFunction:
    """A named, validated scalar weighting function.

    Attributes:
        name: identifier (part of the cost-space semantics every node
            must agree on, §3.1).
        fn: the raw mapping from metric value to penalty.
        scale: multiplier converting the unit penalty to cost-space
            (latency-equivalent) units.
        array_fn: optional vectorized form of ``fn`` operating on a
            whole ndarray at once.  All factories in this module supply
            one; custom functions without it fall back to an element
            loop in :meth:`apply_array`.
    """

    name: str
    fn: Callable[[float], float]
    scale: float = 100.0
    array_fn: Callable[[np.ndarray], np.ndarray] | None = None

    def __post_init__(self) -> None:
        if self.scale < 0:
            raise ValueError("scale must be non-negative")

    def __call__(self, value: float) -> float:
        """Apply the function; validates non-negativity of the result."""
        if value < 0:
            raise ValueError(f"raw metric value {value} must be non-negative")
        result = self.fn(value) * self.scale
        if result < 0:
            raise ValueError(
                f"weighting function {self.name} produced negative cost {result}"
            )
        return result

    def apply_array(self, values: np.ndarray) -> np.ndarray:
        """Apply the weighting to a whole metric array in one shot.

        Semantically identical to ``[self(v) for v in values]`` (same
        validation, same floating-point operations) but evaluated with
        array math when the factory supplied an ``array_fn``.
        """
        values = np.asarray(values, dtype=float)
        if np.any(values < 0):
            bad = float(values[values < 0][0])
            raise ValueError(f"raw metric value {bad} must be non-negative")
        if self.array_fn is None:
            return np.array([self(v) for v in values], dtype=float)
        result = self.array_fn(values) * self.scale
        if np.any(result < 0):
            bad = float(result[result < 0][0])
            raise ValueError(
                f"weighting function {self.name} produced negative cost {bad}"
            )
        return result

    def describe(self) -> str:
        return f"{self.name}(scale={self.scale})"


def squared(scale: float = 100.0) -> WeightingFunction:
    """The paper's default: penalty grows with the square of the load.

    Mild load is nearly free; overload dominates the coordinate,
    "discouraging the use of overloaded nodes" (Figure 2).
    """
    return WeightingFunction("squared", lambda v: v * v, scale, array_fn=lambda v: v * v)


def linear(scale: float = 100.0) -> WeightingFunction:
    """Penalty proportional to the metric."""
    return WeightingFunction("linear", lambda v: v, scale, array_fn=lambda v: v.copy())


def exponential(steepness: float = 4.0, scale: float = 100.0) -> WeightingFunction:
    """Penalty ~ (e^{s·v} - 1)/(e^{s} - 1): near-flat then explosive.

    Models hard capacity walls more aggressively than ``squared``.
    """
    if steepness <= 0:
        raise ValueError("steepness must be positive")
    denom = math.exp(steepness) - 1.0

    def fn(value: float) -> float:
        return (math.exp(steepness * value) - 1.0) / denom

    def array_fn(values: np.ndarray) -> np.ndarray:
        return (np.exp(steepness * values) - 1.0) / denom

    return WeightingFunction(f"exponential[{steepness}]", fn, scale, array_fn=array_fn)


def threshold(knee: float = 0.7, scale: float = 100.0) -> WeightingFunction:
    """Zero below ``knee``, then linear to 1: "free until contended"."""
    if not 0 < knee < 1:
        raise ValueError("knee must be in (0, 1)")

    def fn(value: float) -> float:
        if value <= knee:
            return 0.0
        return (value - knee) / (1.0 - knee)

    def array_fn(values: np.ndarray) -> np.ndarray:
        return np.where(values <= knee, 0.0, (values - knee) / (1.0 - knee))

    return WeightingFunction(f"threshold[{knee}]", fn, scale, array_fn=array_fn)


def zero() -> WeightingFunction:
    """Ignore the metric entirely (scalar dimension disabled)."""
    return WeightingFunction("zero", lambda v: 0.0, 0.0, array_fn=np.zeros_like)
