"""Bandwidth-aware circuit pricing (§3.1's "available bandwidth" cost).

:class:`BandwidthAwareEvaluator` extends the ground-truth evaluator
with congestion penalties: a circuit link carrying rate ``r`` over a
node pair whose bottleneck (widest-path) capacity is ``B`` pays an
inflated transit price for the traffic beyond ``utilization_cap * B``.
This steers the integrated optimizer away from saturating thin edge
links without introducing a hard constraint solver.
"""

from __future__ import annotations

import numpy as np

from repro.core.circuit import Circuit
from repro.core.costs import CircuitCost, GroundTruthEvaluator
from repro.network.bandwidth import BandwidthMatrix
from repro.network.latency import LatencyMatrix

__all__ = ["BandwidthAwareEvaluator"]


class BandwidthAwareEvaluator(GroundTruthEvaluator):
    """Ground-truth pricing plus congestion penalties on thin paths.

    A circuit link carrying rate ``r`` over a pair whose bottleneck
    capacity is ``B`` is congested when ``r > utilization_cap * B``;
    the evaluator adds ``congestion_weight * latency * (r - cap*B)``
    for the excess — the overload data pays an inflated transit price,
    steering placement toward fat paths.
    """

    def __init__(
        self,
        latencies: LatencyMatrix,
        bandwidth: BandwidthMatrix,
        loads: np.ndarray | list[float] | None = None,
        utilization_cap: float = 0.8,
        congestion_weight: float = 4.0,
    ):
        super().__init__(latencies, loads)
        if bandwidth.num_nodes != latencies.num_nodes:
            raise ValueError("bandwidth and latency matrices disagree on size")
        if not 0 < utilization_cap <= 1:
            raise ValueError("utilization_cap must be in (0, 1]")
        if congestion_weight < 0:
            raise ValueError("congestion_weight must be non-negative")
        self.bandwidth = bandwidth
        self.utilization_cap = utilization_cap
        self.congestion_weight = congestion_weight

    def congestion_penalty(self, circuit: Circuit) -> float:
        """Total congestion surcharge of a placed circuit."""
        total = 0.0
        for link in circuit.links:
            u = circuit.host_of(link.source)
            v = circuit.host_of(link.target)
            if u == v:
                continue
            allowed = self.utilization_cap * self.bandwidth.bottleneck(u, v)
            excess = link.rate - allowed
            if excess > 0:
                total += (
                    self.congestion_weight
                    * self.latencies.latency(u, v)
                    * excess
                )
        return total

    def evaluate(self, circuit: Circuit, load_weight: float = 1.0) -> CircuitCost:
        base = super().evaluate(circuit, load_weight=load_weight)
        penalty = self.congestion_penalty(circuit)
        return CircuitCost(
            network_usage=base.network_usage,
            consumer_latency=base.consumer_latency,
            load_penalty=base.load_penalty,
            total=base.total + penalty,
        )
