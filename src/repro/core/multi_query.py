"""Multi-query optimization with cost-space pruning (§3.4).

With many concurrent circuits, a new query could in principle reuse any
existing service, making the search space explode.  The paper's
proposal: *prune by cost-space locality* — only services hosted within
a radius ``r`` of a new service's desired coordinate are considered for
reuse ("if a circuit only has pinned services in the US, it is unlikely
that reusing existing services in Japan will minimize overall cost").

The optimizer here implements that proposal end to end:

1. Optimize the new query stand-alone (integrated optimization) to get
   each unpinned service's desired coordinate.
2. For each join subtree (largest first), search deployed services with
   a matching *reuse key* (same kind, same producer set → same output
   stream) within radius ``r`` of the subtree service's coordinate.
3. Rewrite the plan: a reused subtree is replaced by a pinned *tap* on
   the existing service's host — its upstream data flow already exists
   and costs the new circuit nothing.
4. Re-place the remaining unpinned services and keep the rewrite iff it
   prices below the stand-alone circuit.

Instrumentation reports the candidates examined (vs. total deployed),
which is the complexity-reduction claim of Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.circuit import Circuit, Service, effective_statistics
from repro.core.coordinates import CostCoordinate
from repro.core.costs import CircuitCost, CostEvaluator, CostSpaceEvaluator
from repro.core.cost_space import CostSpace
from repro.core.optimizer import (
    IntegratedOptimizer,
    OptimizationResult,
    pinned_vector_positions,
)
from repro.core.physical_mapping import CatalogMapper, ExhaustiveMapper, map_circuit
from repro.core.virtual_placement import relaxation_placement
from repro.query.model import QuerySpec
from repro.query.operators import ServiceKind, ServiceSpec
from repro.query.plan import JoinNode, LeafNode, LogicalPlan, PlanNode
from repro.query.selectivity import Statistics

__all__ = ["DeployedService", "MultiQueryResult", "MultiQueryOptimizer"]


@dataclass(frozen=True)
class DeployedService:
    """A reusable service instance running somewhere in the SBON."""

    circuit_name: str
    service_id: str
    node: int
    kind: ServiceKind
    producers: frozenset[str]
    output_rate: float

    def reuse_key(self) -> tuple[ServiceKind, frozenset[str]]:
        return (self.kind, self.producers)


@dataclass
class MultiQueryResult:
    """Outcome of reuse-aware optimization of one query.

    Attributes:
        standalone: the no-reuse integrated optimization result.
        circuit: the final (possibly rewritten) placed circuit.
        cost: final circuit cost.
        reused: deployed services tapped by the final circuit.
        candidates_examined: deployed services inspected inside the
            pruning radius, summed over all lookups.
        total_deployed: deployed services in the whole SBON (what an
            unpruned optimizer would have to consider per lookup).
        savings: standalone cost minus final cost (>= 0).
    """

    standalone: OptimizationResult
    circuit: Circuit
    cost: CircuitCost
    reused: list[DeployedService] = field(default_factory=list)
    candidates_examined: int = 0
    total_deployed: int = 0

    @property
    def savings(self) -> float:
        return self.standalone.cost.total - self.cost.total

    @property
    def reuse_happened(self) -> bool:
        return bool(self.reused)


class MultiQueryOptimizer:
    """Reuse-aware integrated optimizer over a population of circuits.

    Also acts as the deployment registry: :meth:`deploy` records a
    placed circuit's unpinned services as reusable, and :meth:`optimize`
    prices new queries against that state.

    Reuse-key semantics: two JOIN services over the same producer set
    compute the same logical stream under the shared statistics model,
    so they are mergeable (§2.2).  Queries with private filters should
    use distinct producer names to opt out.
    """

    def __init__(
        self,
        cost_space: CostSpace,
        radius: float,
        mapper: ExhaustiveMapper | CatalogMapper | None = None,
        evaluator: CostEvaluator | None = None,
        placement_fn=relaxation_placement,
        load_weight: float = 1.0,
        directory=None,
    ):
        if radius < 0:
            raise ValueError("radius must be non-negative")
        self.cost_space = cost_space
        self.radius = radius
        #: optional :class:`repro.dht.directory.ServiceDirectory` — when
        #: set, reuse search goes through the decentralized Hilbert/Chord
        #: directory instead of the in-process registry (§3.4's "Hilbert
        #: DHT" implementation).
        self.directory = directory
        self.mapper = mapper or ExhaustiveMapper(cost_space)
        self.evaluator = evaluator or CostSpaceEvaluator(cost_space)
        self.placement_fn = placement_fn
        self.load_weight = load_weight
        self.deployed: list[DeployedService] = []
        self._integrated = IntegratedOptimizer(
            cost_space,
            mapper=self.mapper,
            evaluator=self.evaluator,
            placement_fn=placement_fn,
            load_weight=load_weight,
        )

    # -- registry ----------------------------------------------------------

    def deploy(self, result: OptimizationResult) -> None:
        """Record a placed circuit's unpinned services as reusable.

        Link rates already reflect the owning query's effective
        statistics, so the registry needs nothing beyond the circuit.
        """
        circuit = result.circuit
        for sid in circuit.unpinned_ids():
            service = circuit.services[sid]
            out_links = circuit.output_links(sid)
            output_rate = out_links[0].rate if out_links else 0.0
            deployed = DeployedService(
                circuit_name=circuit.name,
                service_id=sid,
                node=circuit.host_of(sid),
                kind=service.kind,
                producers=service.producers,
                output_rate=output_rate,
            )
            self.deployed.append(deployed)
            if self.directory is not None:
                from repro.dht.directory import ServiceAdvertisement

                self.directory.publish(
                    ServiceAdvertisement(
                        circuit_name=deployed.circuit_name,
                        service_id=deployed.service_id,
                        node=deployed.node,
                        reuse_key=(deployed.kind, deployed.producers),
                        coordinate=tuple(
                            self.cost_space.coordinate(deployed.node).full_array()
                        ),
                        output_rate=output_rate,
                    )
                )

    def undeploy(self, circuit_name: str) -> None:
        """Remove a circuit's services from the registry (cancellation)."""
        self.deployed = [d for d in self.deployed if d.circuit_name != circuit_name]
        if self.directory is not None:
            self.directory.withdraw(circuit_name)

    # -- reuse search ------------------------------------------------------

    def _within_radius(
        self, target: CostCoordinate, key: tuple[ServiceKind, frozenset[str]]
    ) -> tuple[list[DeployedService], int]:
        """Deployed services matching ``key`` within the pruning radius.

        Returns (matches, candidates_examined): every deployed service
        whose host falls inside the ball is *examined*; only those with
        the right key are matches.  With radius = inf this degenerates
        to the unpruned optimizer that inspects everything.

        When a :class:`~repro.dht.directory.ServiceDirectory` is wired
        in, the search is fully decentralized: one DHT lookup plus a
        ring-neighborhood scan around the target's Hilbert key.
        """
        if self.directory is not None:
            ads, examined = self.directory.search(
                target.full_array(), key, self.radius
            )
            matches = [
                DeployedService(
                    circuit_name=ad.circuit_name,
                    service_id=ad.service_id,
                    node=ad.node,
                    kind=ad.reuse_key[0],
                    producers=ad.reuse_key[1],
                    output_rate=ad.output_rate,
                )
                for ad in ads
            ]
            return matches, examined
        if not self.deployed:
            return [], 0
        # One cost-space pass prices the whole registry; per-service
        # distances are then plain array lookups.
        distances = self.cost_space.distances_from(target)
        matches: list[DeployedService] = []
        examined = 0
        for dep in self.deployed:
            if distances[dep.node] <= self.radius:
                examined += 1
                if dep.reuse_key() == key:
                    matches.append(dep)
        return matches, examined

    # -- optimization ------------------------------------------------------

    def optimize(self, query: QuerySpec, stats: Statistics) -> MultiQueryResult:
        """Optimize ``query`` considering reuse of deployed services."""
        standalone = self._integrated.optimize(query, stats)
        result = MultiQueryResult(
            standalone=standalone,
            circuit=standalone.circuit,
            cost=standalone.cost,
            total_deployed=len(self.deployed),
        )
        if not self.deployed:
            return result

        plan = standalone.plan
        effective = effective_statistics(query, stats)
        scalar_dims = len(self.cost_space.spec.scalar_dimensions)

        # Walk the winning plan top-down; greedily tap the largest
        # reusable subtrees.
        taps: dict[frozenset[str], DeployedService] = {}
        examined_total = 0

        # Desired coordinates come from the standalone virtual placement:
        # service ids are assigned join0, join1, ... in build order, so
        # recover the producers -> position mapping via the circuit.
        position_by_producers: dict[frozenset[str], np.ndarray] = {}
        for sid in standalone.circuit.unpinned_ids():
            service = standalone.circuit.services[sid]
            position_by_producers[service.producers] = (
                standalone.virtual_placement.position_of(sid)
            )

        def visit(node: PlanNode) -> None:
            nonlocal examined_total
            if isinstance(node, LeafNode):
                return
            assert isinstance(node, JoinNode)
            producers = node.producers
            position = position_by_producers.get(producers)
            if position is not None:
                target = CostCoordinate.from_arrays(
                    position, np.zeros(scalar_dims)
                )
                matches, examined = self._within_radius(
                    target, (ServiceKind.JOIN, producers)
                )
                examined_total += examined
                if matches:
                    # Rank only the matched hosts: O(matches) row
                    # lookups, not another full matrix pass.
                    target_arr = target.full_array()
                    full = self.cost_space.full_matrix()
                    best = min(
                        matches,
                        key=lambda d: float(
                            np.linalg.norm(full[d.node] - target_arr)
                        ),
                    )
                    taps[producers] = best
                    return  # whole subtree satisfied; do not recurse
            visit(node.left)
            visit(node.right)

        visit(plan.root)
        result.candidates_examined = examined_total
        if not taps:
            return result

        rewritten = self._build_with_taps(plan, query, effective, taps)
        pinned = pinned_vector_positions(rewritten, self.cost_space)
        placement = self.placement_fn(rewritten, pinned)
        map_circuit(rewritten, placement, self.cost_space, self.mapper)
        cost = self.evaluator.evaluate(rewritten, load_weight=self.load_weight)

        if cost.total < standalone.cost.total:
            result.circuit = rewritten
            result.cost = cost
            result.reused = list(taps.values())
        return result

    def _build_with_taps(
        self,
        plan: LogicalPlan,
        query: QuerySpec,
        effective: Statistics,
        taps: dict[frozenset[str], DeployedService],
    ) -> Circuit:
        """Compile ``plan`` replacing tapped subtrees with pinned taps."""
        circuit = Circuit(name=f"{query.name}+reuse")
        needed_producers = self._producers_outside_taps(plan.root, taps)
        for producer in query.producers:
            if producer.name in needed_producers:
                circuit.add_service(
                    Service(
                        service_id=f"{circuit.name}/src:{producer.name}",
                        spec=ServiceSpec.relay(),
                        pinned_node=producer.node,
                        producers=frozenset((producer.name,)),
                    )
                )

        counter = 0

        def build(node: PlanNode) -> tuple[str, float]:
            nonlocal counter
            tap = taps.get(node.producers) if isinstance(node, JoinNode) else None
            if tap is not None:
                sid = f"{circuit.name}/tap{counter}"
                counter += 1
                circuit.add_service(
                    Service(
                        service_id=sid,
                        spec=ServiceSpec.relay(),
                        pinned_node=tap.node,
                        producers=node.producers,
                    )
                )
                return sid, node.output_rate(effective)
            if isinstance(node, LeafNode):
                return (
                    f"{circuit.name}/src:{node.producer}",
                    effective.rate(node.producer),
                )
            assert isinstance(node, JoinNode)
            left_id, left_rate = build(node.left)
            right_id, right_rate = build(node.right)
            sid = f"{circuit.name}/join{counter}"
            counter += 1
            circuit.add_service(
                Service(
                    service_id=sid,
                    spec=ServiceSpec.join(),
                    pinned_node=None,
                    producers=node.producers,
                )
            )
            circuit.add_link(left_id, sid, left_rate)
            circuit.add_link(right_id, sid, right_rate)
            return sid, node.output_rate(effective)

        tail_id, tail_rate = build(plan.root)

        if query.aggregate_factor is not None:
            agg_id = f"{circuit.name}/agg"
            circuit.add_service(
                Service(
                    service_id=agg_id,
                    spec=ServiceSpec.aggregate(),
                    pinned_node=None,
                    producers=plan.producers,
                )
            )
            circuit.add_link(tail_id, agg_id, tail_rate)
            tail_id, tail_rate = agg_id, tail_rate * query.aggregate_factor

        sink_id = f"{circuit.name}/sink:{query.consumer.name}"
        circuit.add_service(
            Service(
                service_id=sink_id,
                spec=ServiceSpec.relay(),
                pinned_node=query.consumer.node,
                producers=plan.producers,
            )
        )
        circuit.add_link(tail_id, sink_id, tail_rate)
        return circuit

    def _producers_outside_taps(
        self, node: PlanNode, taps: dict[frozenset[str], DeployedService]
    ) -> set[str]:
        """Producers still needing a source service after tapping."""
        if isinstance(node, JoinNode) and node.producers in taps:
            return set()
        if isinstance(node, LeafNode):
            return {node.producer}
        assert isinstance(node, JoinNode)
        return self._producers_outside_taps(
            node.left, taps
        ) | self._producers_outside_taps(node.right, taps)
