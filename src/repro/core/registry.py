"""Multiple independent cost spaces per SBON (§3.1).

"The SBON can support multiple independent cost spaces, each to suit
different classes of applications.  The semantics (dimensions, units,
and weighting functions) of a particular cost-space must be known by
all nodes in the SBON."

The registry holds named cost spaces over the same node population and
enforces the shared-semantics rule: registering a space under an
existing name requires an identical spec (a node disagreeing about the
semantics would corrupt every placement decision).  Queries select the
space they optimize in by name — e.g. a latency-sensitive trading
application uses ``"latency"`` while batch analytics use
``"latency+load"`` with an aggressive load weighting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.cost_space import CostSpace, CostSpaceSpec

__all__ = ["CostSpaceRegistry"]


def _specs_compatible(a: CostSpaceSpec, b: CostSpaceSpec) -> bool:
    """Same semantics: dims, metric names, weighting identities/scales."""
    if a.vector_dims != b.vector_dims:
        return False
    if len(a.scalar_dimensions) != len(b.scalar_dimensions):
        return False
    for da, db in zip(a.scalar_dimensions, b.scalar_dimensions):
        if da.metric != db.metric:
            return False
        if da.weighting.describe() != db.weighting.describe():
            return False
    return True


@dataclass
class CostSpaceRegistry:
    """Named cost spaces over one node population."""

    num_nodes: int
    _spaces: dict[str, CostSpace] = field(default_factory=dict)

    def register(self, space: CostSpace) -> None:
        """Add a space under its spec's name; re-registration must agree.

        Raises:
            ValueError: on a node-count mismatch, or if a space with the
                same name but *different semantics* already exists —
                the inconsistency §3.1 forbids.
        """
        if space.num_nodes != self.num_nodes:
            raise ValueError(
                f"space has {space.num_nodes} nodes, registry expects {self.num_nodes}"
            )
        name = space.spec.name
        existing = self._spaces.get(name)
        if existing is not None and not _specs_compatible(existing.spec, space.spec):
            raise ValueError(
                f"cost space {name!r} already registered with different semantics"
            )
        self._spaces[name] = space

    def get(self, name: str) -> CostSpace:
        """The space registered under ``name``."""
        if name not in self._spaces:
            raise KeyError(
                f"no cost space {name!r}; available: {sorted(self._spaces)}"
            )
        return self._spaces[name]

    @property
    def names(self) -> list[str]:
        return sorted(self._spaces)

    def __len__(self) -> int:
        return len(self._spaces)

    def __contains__(self, name: str) -> bool:
        return name in self._spaces

    def update_all_metrics(self, metrics: dict[str, np.ndarray | list[float]]) -> None:
        """Push fresh node metrics into every space that uses them.

        Each space consumes only the metrics its spec declares; spaces
        with no scalar dimensions are untouched.
        """
        for space in self._spaces.values():
            needed = {d.metric for d in space.spec.scalar_dimensions}
            if not needed:
                continue
            missing = needed - set(metrics)
            if missing:
                raise ValueError(
                    f"space {space.spec.name!r} needs metrics {sorted(missing)}"
                )
            space.update_metrics({m: metrics[m] for m in needed})
