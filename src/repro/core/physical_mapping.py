"""Physical mapping: cost-space coordinates → physical nodes (§3.2).

Virtual placement yields an idealistic coordinate per unpinned service;
physical mapping finds a real node close to it.  The target coordinate
has *ideal (zero) scalar components*, so the full-space distance from
the target to a node is ``sqrt(|Δvector|² + Σ scalar²)`` — a loaded
node "seems far away when the entire cost space coordinate is
considered" (Figure 3) even if it is close in latency.

Two interchangeable backends:

* :class:`ExhaustiveMapper` — scans every node; the ground truth.
* :class:`CatalogMapper` — queries the decentralized Hilbert/Chord
  catalog; approximate but requires no global knowledge.

The difference between the catalog's answer and the exhaustive answer —
and between either answer and the virtual coordinate itself — is the
*mapping error* studied in experiments E3/E6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.circuit import Circuit
from repro.core.coordinates import CostCoordinate
from repro.core.cost_space import CostSpace
from repro.core.virtual_placement import VirtualPlacement
from repro.dht.catalog import CoordinateCatalog
from repro.dht.hilbert import HilbertMapper

__all__ = [
    "ServiceMapping",
    "MappingResult",
    "ExhaustiveMapper",
    "CatalogMapper",
    "map_circuit",
    "build_catalog",
]


@dataclass(frozen=True)
class ServiceMapping:
    """The outcome of mapping one service.

    Attributes:
        service_id: the mapped (unpinned) service.
        node: chosen physical node.
        target: the virtual coordinate (ideal scalars).
        mapping_error: full-space distance from target to chosen node.
        dht_hops: routing hops if the catalog backend was used.
    """

    service_id: str
    node: int
    target: CostCoordinate
    mapping_error: float
    dht_hops: int = 0


@dataclass
class MappingResult:
    """Mapping outcome for a whole circuit."""

    mappings: list[ServiceMapping] = field(default_factory=list)

    @property
    def total_error(self) -> float:
        return sum(m.mapping_error for m in self.mappings)

    @property
    def max_error(self) -> float:
        return max((m.mapping_error for m in self.mappings), default=0.0)

    @property
    def total_dht_hops(self) -> int:
        return sum(m.dht_hops for m in self.mappings)

    def node_of(self, service_id: str) -> int:
        for m in self.mappings:
            if m.service_id == service_id:
                return m.node
        raise KeyError(f"service {service_id} was not mapped")


class ExhaustiveMapper:
    """Ground-truth mapper: full scan of the cost space's coordinates."""

    def __init__(self, cost_space: CostSpace, excluded: set[int] | None = None):
        self.cost_space = cost_space
        self.excluded = set(excluded or ())

    def map_coordinate(self, target: CostCoordinate) -> tuple[int, int]:
        """Return (nearest node, dht_hops=0)."""
        node = self.cost_space.nearest_node(target, exclude=self.excluded)
        return node, 0

    def map_coordinates(self, targets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`map_coordinate`: one matrix pass for m targets.

        Args:
            targets: ``(m, dims)`` full-coordinate array.

        Returns:
            ``(nodes, hops)`` int arrays of length m (hops all zero).
        """
        nodes = self.cost_space.nearest_nodes(targets, exclude=self.excluded)
        return nodes, np.zeros(len(nodes), dtype=int)

    def exclude(self, node: int) -> None:
        """Mark a node ineligible (failed or administratively drained)."""
        self.excluded.add(node)

    def include(self, node: int) -> None:
        self.excluded.discard(node)


class CatalogMapper:
    """Decentralized mapper backed by the Hilbert/Chord catalog.

    Nodes must have been published (see :func:`build_catalog`).  The
    mapper can fall back to nothing: if the scan returns no candidates
    (catalog empty), it raises, mirroring a system with no capacity.
    """

    def __init__(
        self,
        cost_space: CostSpace,
        catalog: CoordinateCatalog,
        scan_width: int = 8,
        excluded: set[int] | None = None,
    ):
        self.cost_space = cost_space
        self.catalog = catalog
        self.scan_width = scan_width
        self.excluded = set(excluded or ())

    def map_coordinate(self, target: CostCoordinate) -> tuple[int, int]:
        """Return (approximately nearest node, DHT routing hops)."""
        entry, stats = self.catalog.nearest(
            target.full_array(), scan_width=self.scan_width, exclude=self.excluded
        )
        if entry is None:
            raise RuntimeError("catalog has no eligible published nodes")
        return entry.physical_node, stats.dht_hops

    def map_coordinates(self, targets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Batched mapping; each target still routes through the DHT.

        Per-target hop counts remain the reported metric, but targets
        whose lookups land on the same catalog owner share one
        ring-neighborhood scan (:meth:`CoordinateCatalog.nearest_batch`)
        instead of repeating the Chord walk per key.
        """
        targets = np.asarray(targets, dtype=float)
        scalar_dims = len(self.cost_space.spec.scalar_dimensions)
        vector_dims = self.cost_space.spec.vector_dims
        if targets.ndim != 2 or targets.shape[1] != vector_dims + scalar_dims:
            raise ValueError("target has wrong dimensionality for this space")
        if len(targets) == 0:
            return np.empty(0, dtype=int), np.empty(0, dtype=int)
        entries, stats = self.catalog.nearest_batch(
            targets, scan_width=self.scan_width, exclude=self.excluded
        )
        nodes = np.empty(len(targets), dtype=int)
        hops = np.empty(len(targets), dtype=int)
        for i, (entry, stat) in enumerate(zip(entries, stats)):
            if entry is None:
                raise RuntimeError("catalog has no eligible published nodes")
            nodes[i] = entry.physical_node
            hops[i] = stat.dht_hops
        return nodes, hops

    def exclude(self, node: int) -> None:
        self.excluded.add(node)

    def include(self, node: int) -> None:
        self.excluded.discard(node)


def build_catalog(
    cost_space: CostSpace,
    bits: int = 10,
    ring_size: int = 64,
    alive: list[bool] | None = None,
) -> CoordinateCatalog:
    """Publish every (alive) node's full coordinate into a fresh catalog."""
    lows, highs = cost_space.bounding_box()
    mapper = HilbertMapper(lows, highs, bits=bits)
    catalog = CoordinateCatalog(mapper, ring_size=ring_size)
    full = cost_space.full_matrix()
    nodes = [
        node
        for node in range(cost_space.num_nodes)
        if alive is None or alive[node]
    ]
    if nodes:
        catalog.publish_batch(nodes, full[nodes])
    return catalog


def map_circuit(
    circuit: Circuit,
    placement: VirtualPlacement,
    cost_space: CostSpace,
    mapper: ExhaustiveMapper | CatalogMapper,
) -> MappingResult:
    """Map every unpinned service of a circuit and assign its host.

    The target coordinate of a service is its virtual vector position
    with ideal (zero) scalar components.  The circuit's ``placement``
    dict is updated in place.  All services map in one batched call
    (mappings are independent: neither exclusions nor coordinates
    change mid-circuit), one cost-space pass for the whole circuit.
    """
    scalar_dims = len(cost_space.spec.scalar_dimensions)
    result = MappingResult()
    unpinned = circuit.unpinned_ids()
    if not unpinned:
        return result
    targets = np.zeros((len(unpinned), cost_space.spec.dims))
    for i, service_id in enumerate(unpinned):
        targets[i, : cost_space.spec.vector_dims] = placement.position_of(service_id)
    nodes, hops = mapper.map_coordinates(targets)
    diff = targets - cost_space.full_matrix()[nodes]
    errors = np.sqrt(np.einsum("md,md->m", diff, diff))
    for i, service_id in enumerate(unpinned):
        node = int(nodes[i])
        circuit.assign(service_id, node)
        target = CostCoordinate.from_arrays(
            targets[i, : cost_space.spec.vector_dims], np.zeros(scalar_dims)
        )
        result.mappings.append(
            ServiceMapping(
                service_id=service_id,
                node=node,
                target=target,
                mapping_error=float(errors[i]),
                dht_hops=int(hops[i]),
            )
        )
    return result
