"""The unified CPU-cost model: one load currency for the whole stack.

Before this module, every layer kept its own incompatible notion of
"load": the data plane gated backpressure on raw tuple *counts*, the
cost space's load dimension carried fractions written by a background
process, and the controller's shed policy capped processed counts.
:class:`LoadModel` replaces all of them with a single currency —
**CPU cost units per tick** — priced per tuple at the operator kernels:

* relay / filter / sink consumption: a flat per-tuple base cost
  (``relay_cost`` / ``filter_cost``),
* aggregates: ``aggregate_cost + aggregate_batch_cost * batch`` per
  tuple, where *batch* is the number of tuples the operator absorbed in
  the same delivery round (state maintenance scales with the batch),
* joins: ``join_cost + probe_cost * probes`` per tuple, where *probes*
  is the number of windowed state entries the arrival was matched
  against (join probes ≫ relays — the paper's motivating asymmetry).

Consumers of the currency (see ``runtime/dataplane.py`` for the
kernel-side convention):

* :class:`~repro.runtime.dataplane.DataPlane` measures a vectorized
  per-node CPU cost every tick alongside tuple counts, and its
  admission backpressure (``RuntimeConfig.node_capacity``) and the
  controller's shed limits gate on *cost units*, not counts;
* :class:`~repro.control.controller.Controller` feeds the measured
  per-node cost back into the cost space's load dimension (normalized
  by a cost-rate reference) so placement migrates away from CPU-hot
  nodes;
* :class:`~repro.network.dynamics.LoadProcess` can express background
  load in the same units (``cpu_capacity``), making ambient and
  measured pressure commensurable.

The default coefficients are *dyadic rationals* (sums of powers of
two), so per-operator cost totals accumulated in any order are exact in
float64 — the vectorized kernels and the per-tuple scalar references
agree bit for bit, keeping the repo's twin-equivalence discipline
intact for the cost columns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "KIND_RELAY",
    "KIND_FILTER",
    "KIND_AGGREGATE",
    "KIND_JOIN",
    "LoadModel",
]

#: Operator-kind codes shared with the data plane's compiled ``kind``
#: column (``runtime/dataplane.py`` aliases these as _RELAY .. _JOIN).
KIND_RELAY, KIND_FILTER, KIND_AGGREGATE, KIND_JOIN = 0, 1, 2, 3


@dataclass(frozen=True)
class LoadModel:
    """Per-tuple CPU cost of each operator kind, in cost units.

    Attributes:
        relay_cost: cost of forwarding (or sink-consuming) one tuple.
        filter_cost: cost of evaluating the predicate on one tuple.
        aggregate_cost: base cost of absorbing one tuple into an
            aggregate.
        aggregate_batch_cost: additional per-tuple cost proportional to
            the delivery-round batch size at that aggregate (``c₁`` of
            ``c₀ + c₁·batch``).
        join_cost: base cost of one join arrival (state insert +
            bookkeeping).
        probe_cost: cost per windowed state entry the arrival is probed
            against (``c₂`` of ``c₀ + c₂·probes``).
    """

    relay_cost: float = 1.0
    filter_cost: float = 1.25
    aggregate_cost: float = 1.5
    aggregate_batch_cost: float = 0.125
    join_cost: float = 2.0
    probe_cost: float = 0.5

    def __post_init__(self) -> None:
        for name in ("relay_cost", "filter_cost", "aggregate_cost", "join_cost"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.aggregate_batch_cost < 0 or self.probe_cost < 0:
            raise ValueError("batch and probe coefficients must be non-negative")

    @classmethod
    def unit(cls) -> "LoadModel":
        """The count-compatible model: every tuple costs exactly 1.

        With the unit model, measured CPU cost *is* the tuple count and
        cost-based admission reproduces the historical count-based
        backpressure decision for decision (the default when
        ``RuntimeConfig.load_model`` is None).
        """
        return cls(
            relay_cost=1.0,
            filter_cost=1.0,
            aggregate_cost=1.0,
            aggregate_batch_cost=0.0,
            join_cost=1.0,
            probe_cost=0.0,
        )

    @property
    def is_unit(self) -> bool:
        """True when the model degenerates to plain tuple counting."""
        return (
            self.relay_cost
            == self.filter_cost
            == self.aggregate_cost
            == self.join_cost
            == 1.0
            and self.aggregate_batch_cost == 0.0
            and self.probe_cost == 0.0
        )

    def kind_costs(self) -> np.ndarray:
        """Base per-tuple cost indexed by operator-kind code (0..3)."""
        return np.array(
            [self.relay_cost, self.filter_cost, self.aggregate_cost, self.join_cost]
        )

    def cost_of(self, kind: int, probes: int = 0, batch: int = 1) -> float:
        """Per-tuple cost of one arrival (scalar reference).

        Args:
            kind: operator-kind code (``KIND_RELAY`` .. ``KIND_JOIN``).
            probes: state entries the arrival probed (joins only).
            batch: delivery-round batch size at the operator
                (aggregates only; each of the ``batch`` tuples costs
                ``aggregate_cost + aggregate_batch_cost * batch``).
        """
        if kind == KIND_JOIN:
            return self.join_cost + self.probe_cost * probes
        if kind == KIND_AGGREGATE:
            return self.aggregate_cost + self.aggregate_batch_cost * batch
        if kind == KIND_FILTER:
            return self.filter_cost
        return self.relay_cost
